"""Chaos harness: run the baselines under a deterministic fault schedule.

One chaos scenario = one :class:`~repro.platform.node.FaaSNode` serving a
fixed-interval request train while a seeded
:class:`~repro.faults.FaultSchedule` injects media errors, latency
spikes, torn snapshot pages, and BPF attach failures.  The record phase
runs clean (operators stage snapshots under controlled conditions);
chaos applies to serving, which is where the paper's latency race — and
therefore the degradation ladder — lives.

The whole run is a pure function of ``(profile, approach, config,
fault_seed)``: :meth:`ChaosResult.fingerprint` is byte-identical across
runs and processes with the same seed, which is what the determinism
tests (and CI) assert.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.faults import FaultConfig, FaultSchedule
from repro.harness.experiment import make_kernel
from repro.harness.report import render_table
from repro.mm.costs import CostModel
from repro.platform.node import FaaSNode, NodeReport
from repro.platform.workload import Arrival
from repro.workloads.profile import FunctionProfile

#: The standard chaos mix: 1 % transient media errors, a few latency
#: spikes, and the odd torn snapshot page.  Deliberately *no* persistent
#: errors: a persistent fault marks the extent bad forever, and a bad
#: extent inside the one shared snapshot file makes every later cold
#: start of that function unservable — real deployments handle that by
#: re-replicating the snapshot, which is outside this model.  Persistent
#: faults stay available through :class:`~repro.faults.FaultConfig` and
#: the forcing hooks for targeted tests.
DEFAULT_CHAOS = FaultConfig(
    media_error_rate=0.01,
    latency_spike_rate=0.02,
    latency_spike_multiplier=8.0,
    torn_page_rate=0.002,
)

#: Degradation counters an approach instance may expose; surfaced in the
#: result whenever nonzero.
APPROACH_FAULT_COUNTERS = (
    "capture_attach_failures",
    "prefetch_fallbacks",
    "prefetch_aborts",
    "demand_retries",
    "demand_fetch_failures",
)


@dataclass
class ChaosResult:
    """Everything one chaos run produced, fingerprintable."""

    approach: str
    function: str
    fault_seed: int
    report: NodeReport
    #: FaultStats.snapshot(): what the schedule injected.
    fault_stats: dict[str, int]
    device_errors: int
    cache_io_retries: int
    cache_io_failures: int
    #: Nonzero approach-level degradation counters (fallbacks, aborts).
    approach_counters: dict[str, int]

    def fingerprint(self) -> str:
        """Exact digest of every number in the run.  Two runs with the
        same seeds must produce byte-identical fingerprints."""
        per_request = [(r.function, r.arrival_time, r.latency, r.cold,
                        r.status, r.retries) for r in self.report.results]
        return repr((
            per_request,
            self.report.peak_memory_bytes,
            sorted(self.fault_stats.items()),
            self.device_errors,
            self.cache_io_retries,
            self.cache_io_failures,
            sorted(self.approach_counters.items()),
        ))


def fixed_interval_arrivals(profile: FunctionProfile, n_requests: int,
                            interval: float,
                            input_seed: int = 0) -> list[Arrival]:
    """Deterministic request train: one arrival every ``interval``."""
    return [Arrival(time=i * interval, function=profile.name,
                    input_seed=input_seed)
            for i in range(n_requests)]


def run_chaos_scenario(profile: FunctionProfile,
                       approach,
                       config: FaultConfig = DEFAULT_CHAOS,
                       fault_seed: int = 0,
                       n_requests: int = 8,
                       interval: float = 0.25,
                       warm_pool_ttl: float | None = None,
                       request_deadline: float | None = None,
                       device_kind: str = "ssd",
                       costs: CostModel | None = None) -> ChaosResult:
    """Serve ``n_requests`` under an installed fault schedule.

    The schedule is installed *after* the record phase so preparation is
    clean and every injected fault lands on the serving path under test.
    """
    kernel = make_kernel(device_kind, costs=costs)
    node = FaaSNode(kernel, approach, [profile],
                    warm_pool_ttl=warm_pool_ttl,
                    request_deadline=request_deadline)
    env = kernel.env
    env.run(env.process(node.prepare(), name="chaos-prepare"))
    schedule = FaultSchedule(seed=fault_seed, config=config).install(kernel)

    report = node.run(fixed_interval_arrivals(profile, n_requests, interval))

    approach_obj = node.approaches[profile.name]
    counters = {name: getattr(approach_obj, name)
                for name in APPROACH_FAULT_COUNTERS
                if getattr(approach_obj, name, 0)}
    return ChaosResult(
        approach=approach_obj.name,
        function=profile.name,
        fault_seed=fault_seed,
        report=report,
        fault_stats=schedule.stats.snapshot(),
        device_errors=kernel.device.stats.errors,
        cache_io_retries=kernel.page_cache.stats.io_retries,
        cache_io_failures=kernel.page_cache.stats.io_failures,
        approach_counters=counters,
    )


def chaos_rows(results: list[ChaosResult]) -> list[list[str]]:
    """Table rows (header first) summarizing chaos runs per approach."""
    header = ["approach", "requests", "ok", "retried", "timeout", "failed",
              "mean cold (ms)", "injected", "spikes", "cache retries",
              "degradations"]
    rows = [header]
    for res in results:
        report = res.report
        cold = report.latencies(cold=True)
        mean_cold = (sum(cold) / len(cold) * 1e3) if cold else 0.0
        injected = (res.fault_stats["media_errors"]
                    + res.fault_stats["persistent_errors"]
                    + res.fault_stats["torn_pages"]
                    + res.fault_stats["attach_failures"])
        degradations = ", ".join(
            f"{k}={v}" for k, v in sorted(res.approach_counters.items()))
        rows.append([
            res.approach,
            str(len(report.results)),
            str(report.completed),
            str(report.request_retries),
            str(report.timeouts),
            str(report.failures),
            f"{mean_cold:.1f}",
            str(injected),
            str(res.fault_stats["latency_spikes"]),
            str(res.cache_io_retries),
            degradations or "-",
        ])
    return rows


def render_chaos(results: list[ChaosResult], title: str = "") -> str:
    seeds = sorted({res.fault_seed for res in results})
    title = title or (f"Chaos scenario (fault seed"
                      f"{'s' if len(seeds) > 1 else ''} "
                      f"{', '.join(map(str, seeds))})")
    return render_table(chaos_rows(results), title=title)
