"""Chaos harness: run the baselines under a deterministic fault schedule.

One chaos scenario = one :class:`~repro.platform.node.FaaSNode` serving a
fixed-interval request train while a seeded
:class:`~repro.faults.FaultSchedule` injects media errors, latency
spikes, torn snapshot pages, and BPF attach failures.  The record phase
runs clean (operators stage snapshots under controlled conditions);
chaos applies to serving, which is where the paper's latency race — and
therefore the degradation ladder — lives.

The whole run is a pure function of ``(profile, approach, config,
fault_seed)``: :meth:`ChaosResult.fingerprint` is byte-identical across
runs and processes with the same seed, which is what the determinism
tests (and CI) assert.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

from repro.faults import FaultConfig, FaultSchedule
from repro.harness.experiment import make_kernel
from repro.harness.report import render_table
from repro.harness.spec import stable_hash, SCHEMA_VERSION
from repro.mm.costs import CostModel
from repro.platform.node import FaaSNode, NodeReport, RequestResult
from repro.platform.workload import Arrival, MemorySample
from repro.workloads.profile import FunctionProfile

#: The standard chaos mix: 1 % transient media errors, a few latency
#: spikes, and the odd torn snapshot page.  Deliberately *no* persistent
#: errors: a persistent fault marks the extent bad forever, and a bad
#: extent inside the one shared snapshot file makes every later cold
#: start of that function unservable — real deployments handle that by
#: re-replicating the snapshot, which is outside this model.  Persistent
#: faults stay available through :class:`~repro.faults.FaultConfig` and
#: the forcing hooks for targeted tests.
DEFAULT_CHAOS = FaultConfig(
    media_error_rate=0.01,
    latency_spike_rate=0.02,
    latency_spike_multiplier=8.0,
    torn_page_rate=0.002,
)

#: Degradation counters an approach instance may expose; surfaced in the
#: result whenever nonzero.
APPROACH_FAULT_COUNTERS = (
    "capture_attach_failures",
    "prefetch_fallbacks",
    "prefetch_aborts",
    "demand_retries",
    "demand_fetch_failures",
)


@dataclass
class ChaosResult:
    """Everything one chaos run produced, fingerprintable."""

    approach: str
    function: str
    fault_seed: int
    report: NodeReport
    #: FaultStats.snapshot(): what the schedule injected.
    fault_stats: dict[str, int]
    device_errors: int
    cache_io_retries: int
    cache_io_failures: int
    #: Nonzero approach-level degradation counters (fallbacks, aborts).
    approach_counters: dict[str, int]

    def fingerprint(self) -> str:
        """Exact digest of every number in the run.  Two runs with the
        same seeds must produce byte-identical fingerprints."""
        per_request = [(r.function, r.arrival_time, r.latency, r.cold,
                        r.status, r.retries) for r in self.report.results]
        return repr((
            per_request,
            self.report.peak_memory_bytes,
            sorted(self.fault_stats.items()),
            self.device_errors,
            self.cache_io_retries,
            self.cache_io_failures,
            sorted(self.approach_counters.items()),
        ))

    # -- serialization (the sweep store's "chaos" kind) ---------------------
    def to_dict(self) -> dict:
        return {
            "approach": self.approach,
            "function": self.function,
            "fault_seed": self.fault_seed,
            "report": {
                "results": [asdict(r) for r in self.report.results],
                "memory_timeline": [asdict(s)
                                    for s in self.report.memory_timeline],
                "peak_memory_bytes": self.report.peak_memory_bytes,
            },
            "fault_stats": dict(self.fault_stats),
            "device_errors": self.device_errors,
            "cache_io_retries": self.cache_io_retries,
            "cache_io_failures": self.cache_io_failures,
            "approach_counters": dict(self.approach_counters),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ChaosResult":
        report = NodeReport(
            results=[RequestResult(**r)
                     for r in data["report"]["results"]],
            memory_timeline=[MemorySample(**s)
                             for s in data["report"]["memory_timeline"]],
            peak_memory_bytes=data["report"]["peak_memory_bytes"],
        )
        return cls(
            approach=data["approach"],
            function=data["function"],
            fault_seed=data["fault_seed"],
            report=report,
            fault_stats=dict(data["fault_stats"]),
            device_errors=data["device_errors"],
            cache_io_retries=data["cache_io_retries"],
            cache_io_failures=data["cache_io_failures"],
            approach_counters=dict(data["approach_counters"]),
        )


def fixed_interval_arrivals(profile: FunctionProfile, n_requests: int,
                            interval: float,
                            input_seed: int = 0) -> list[Arrival]:
    """Deterministic request train: one arrival every ``interval``."""
    return [Arrival(time=i * interval, function=profile.name,
                    input_seed=input_seed)
            for i in range(n_requests)]


def run_chaos_scenario(profile: FunctionProfile,
                       approach,
                       config: FaultConfig = DEFAULT_CHAOS,
                       fault_seed: int = 0,
                       n_requests: int = 8,
                       interval: float = 0.25,
                       warm_pool_ttl: float | None = None,
                       request_deadline: float | None = None,
                       device_kind: str = "ssd",
                       costs: CostModel | None = None,
                       ram_bytes: int | None = None) -> ChaosResult:
    """Serve ``n_requests`` under an installed fault schedule.

    The schedule is installed *after* the record phase so preparation is
    clean and every injected fault lands on the serving path under test.
    ``ram_bytes`` sizes the frame pool AND enables the memory-pressure
    plane (watermarks + kswapd), so reclaim stalls become injectable;
    the default keeps the unpressured kernel and its exact fingerprints.
    """
    if ram_bytes is not None:
        kernel = make_kernel(device_kind, costs=costs, ram_bytes=ram_bytes)
        kernel.reclaim.enable_watermarks()
    else:
        kernel = make_kernel(device_kind, costs=costs)
    node = FaaSNode(kernel, approach, [profile],
                    warm_pool_ttl=warm_pool_ttl,
                    request_deadline=request_deadline)
    env = kernel.env
    env.run(env.process(node.prepare(), name="chaos-prepare"))
    schedule = FaultSchedule(seed=fault_seed, config=config).install(kernel)

    report = node.run(fixed_interval_arrivals(profile, n_requests, interval))

    approach_obj = node.approaches[profile.name]
    counters = {name: getattr(approach_obj, name)
                for name in APPROACH_FAULT_COUNTERS
                if getattr(approach_obj, name, 0)}
    # Reclaim-plane activity joins the fingerprint through the same
    # nonzero-only dict, so unpressured runs (reclaim never fires) keep
    # their historical fingerprints byte-for-byte.
    reclaim_stats = kernel.reclaim.stats
    for name, value in (
            ("reclaim_evictions", reclaim_stats.reclaimed),
            ("reclaim_kswapd_wakeups", reclaim_stats.kswapd_wakeups),
            ("reclaim_stalls", schedule.mm.reclaim_stalls)):
        if value:
            counters[name] = int(value)
    return ChaosResult(
        approach=approach_obj.name,
        function=profile.name,
        fault_seed=fault_seed,
        report=report,
        fault_stats=schedule.stats.snapshot(),
        device_errors=kernel.device.stats.errors,
        cache_io_retries=kernel.page_cache.stats.io_retries,
        cache_io_failures=kernel.page_cache.stats.io_failures,
        approach_counters=counters,
    )


def chaos_key(profile: FunctionProfile, approach: str,
              config: FaultConfig = DEFAULT_CHAOS,
              fault_seed: int = 0, n_requests: int = 8,
              interval: float = 0.25,
              warm_pool_ttl: float | None = None,
              request_deadline: float | None = None,
              device_kind: str = "ssd",
              costs: CostModel | None = None,
              ram_bytes: int | None = None) -> str:
    """Content address of one chaos run — every argument that determines
    the outcome, hashed under the shared schema version (the on-disk
    sweep store files chaos entries by this key)."""
    return stable_hash({
        "schema": SCHEMA_VERSION,
        "kind": "chaos",
        "spec": {
            "function": asdict(profile),
            "approach": approach,
            "config": asdict(config),
            "fault_seed": fault_seed,
            "n_requests": n_requests,
            "interval": interval,
            "warm_pool_ttl": warm_pool_ttl,
            "request_deadline": request_deadline,
            "device_kind": device_kind,
            "costs": asdict(costs) if costs is not None else None,
            "ram_bytes": ram_bytes,
        },
    })


def _chaos_cell(args: tuple) -> ChaosResult:
    """Worker entrypoint for the parallel chaos suite (one approach)."""
    profile, approach, config, fault_seed, n_requests, interval, \
        warm_pool_ttl, request_deadline, device_kind, costs, \
        ram_bytes = args
    return run_chaos_scenario(
        profile, approach, config=config, fault_seed=fault_seed,
        n_requests=n_requests, interval=interval,
        warm_pool_ttl=warm_pool_ttl, request_deadline=request_deadline,
        device_kind=device_kind, costs=costs, ram_bytes=ram_bytes)


def _supervised_chaos_cell(payload) -> ChaosResult:
    """Supervised worker entrypoint: ``(args, fault)`` pairs."""
    from repro.faults.sweep import apply_worker_fault

    args, fault = payload
    apply_worker_fault(fault)
    return _chaos_cell(args)


def run_chaos_suite(profile: FunctionProfile, approaches: list[str],
                    config: FaultConfig = DEFAULT_CHAOS,
                    fault_seed: int = 0, n_requests: int = 8,
                    interval: float = 0.25,
                    warm_pool_ttl: float | None = None,
                    request_deadline: float | None = None,
                    device_kind: str = "ssd",
                    costs: CostModel | None = None,
                    jobs: int = 1, store=None,
                    ram_bytes: int | None = None,
                    timeout: float | None = None,
                    max_retries: int = 2,
                    keep_going: bool = False,
                    injector=None,
                    failures_out: list | None = None,
                    telemetry=None) -> list[ChaosResult]:
    """One chaos run per approach, supervised across worker processes.

    Each cell is an independent pure function of its arguments (a fresh
    kernel, its own seeded schedule), so any job count yields the exact
    serial fingerprints.  With a ``store``
    (:class:`~repro.harness.sweep.ResultStore`), each finished cell
    persists under :func:`chaos_key` *as it completes* and warm reruns
    replay from disk.  ``timeout``/``max_retries``/``keep_going`` and
    ``injector`` have :func:`~repro.harness.sweep.supervised_map`
    semantics; with ``keep_going`` permanently-failed cells are dropped
    from the returned list and appended to ``failures_out``.
    ``telemetry`` (a :class:`~repro.serve.hub.TelemetryHub`) receives
    live suite progress — observation-only, fingerprints unchanged.
    """
    from repro.harness.sweep import SweepCell, supervised_map

    keys = [chaos_key(profile, name, config, fault_seed, n_requests,
                      interval, warm_pool_ttl, request_deadline,
                      device_kind, costs, ram_bytes)
            for name in approaches]
    if store is not None and injector is not None:
        store.fault_injector = injector
    results: dict[int, ChaosResult] = {}
    if store is not None:
        for i, key in enumerate(keys):
            payload = store.load(key, kind="chaos")
            if payload is not None:
                try:
                    results[i] = ChaosResult.from_dict(payload)
                except (KeyError, TypeError, ValueError):
                    store.quarantine(key)
    missing = [i for i in range(len(approaches)) if i not in results]
    cells = [SweepCell(
        index=i,
        item=(profile, approaches[i], config, fault_seed, n_requests,
              interval, warm_pool_ttl, request_deadline, device_kind,
              costs, ram_bytes),
        key=keys[i], label=f"chaos:{profile.name}/{approaches[i]}",
        spec={"kind": "chaos", "function": profile.name,
              "approach": approaches[i], "fault_seed": fault_seed})
        for i in missing]

    if telemetry is not None:
        telemetry.update_sweep(
            requested=len(approaches), unique=len(approaches),
            executed=0, memory_hits=0,
            disk_hits=len(approaches) - len(cells),
            remaining=len(cells), done=False)
        telemetry.flush(phase=f"chaos:{profile.name}")
    executed = 0

    def deliver(cell, result: ChaosResult) -> None:
        nonlocal executed
        results[cell.index] = result
        if store is not None:
            store.save(keys[cell.index], result.to_dict(), kind="chaos")
        if telemetry is not None:
            executed += 1
            telemetry.update_sweep(executed=executed,
                                   remaining=len(cells) - executed)

    _, failures = supervised_map(
        _supervised_chaos_cell, cells, jobs, timeout=timeout,
        max_retries=max_retries, keep_going=keep_going,
        injector=injector, deliver=deliver)
    if failures_out is not None:
        failures_out.extend(failures)
    if telemetry is not None:
        telemetry.update_sweep(quarantined=len(failures), done=True)
        telemetry.flush(phase=f"chaos:{profile.name} done")
    return [results[i] for i in range(len(approaches)) if i in results]


def chaos_rows(results: list[ChaosResult]) -> list[list[str]]:
    """Table rows (header first) summarizing chaos runs per approach."""
    header = ["approach", "requests", "ok", "retried", "timeout", "failed",
              "mean cold (ms)", "injected", "spikes", "cache retries",
              "degradations"]
    rows = [header]
    for res in results:
        report = res.report
        cold = report.latencies(cold=True)
        mean_cold = (sum(cold) / len(cold) * 1e3) if cold else 0.0
        injected = (res.fault_stats["media_errors"]
                    + res.fault_stats["persistent_errors"]
                    + res.fault_stats["torn_pages"]
                    + res.fault_stats["attach_failures"])
        degradations = ", ".join(
            f"{k}={v}" for k, v in sorted(res.approach_counters.items()))
        rows.append([
            res.approach,
            str(len(report.results)),
            str(report.completed),
            str(report.request_retries),
            str(report.timeouts),
            str(report.failures),
            f"{mean_cold:.1f}",
            str(injected),
            str(res.fault_stats["latency_spikes"]),
            str(res.cache_io_retries),
            degradations or "-",
        ])
    return rows


def render_chaos(results: list[ChaosResult], title: str = "") -> str:
    seeds = sorted({res.fault_seed for res in results})
    title = title or (f"Chaos scenario (fault seed"
                      f"{'s' if len(seeds) > 1 else ''} "
                      f"{', '.join(map(str, seeds))})")
    return render_table(chaos_rows(results), title=title)
