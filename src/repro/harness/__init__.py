"""Experiment harness: scenario runner + figure/table regeneration."""

from repro.harness.chaos import (
    DEFAULT_CHAOS,
    ChaosResult,
    chaos_key,
    fixed_interval_arrivals,
    render_chaos,
    run_chaos_scenario,
    run_chaos_suite,
)
from repro.harness.experiment import ResultCache, make_kernel, run_scenario
from repro.harness.figures import (
    CONCURRENT_INSTANCES,
    FIGURE_MATRIX,
    FIGURES,
    FigureData,
    build_figure,
    figure_3a,
    figure_3b,
    figure_3c,
    figure_4,
    figure_specs,
    matrix_specs,
    overheads,
    table_1,
)
from repro.harness.report import render_figure, render_table, render_table1
from repro.harness.spec import SCHEMA_VERSION, ScenarioSpec
from repro.harness.sweep import (
    ResultStore,
    SweepRunner,
    SweepStats,
    execute_spec,
    parallel_map,
)

__all__ = [
    "CONCURRENT_INSTANCES",
    "ChaosResult",
    "DEFAULT_CHAOS",
    "FIGURE_MATRIX",
    "FIGURES",
    "FigureData",
    "ResultCache",
    "ResultStore",
    "SCHEMA_VERSION",
    "ScenarioSpec",
    "SweepRunner",
    "SweepStats",
    "build_figure",
    "chaos_key",
    "execute_spec",
    "figure_3a",
    "figure_3b",
    "figure_3c",
    "figure_4",
    "figure_specs",
    "fixed_interval_arrivals",
    "make_kernel",
    "matrix_specs",
    "overheads",
    "parallel_map",
    "render_chaos",
    "render_figure",
    "render_table",
    "render_table1",
    "run_chaos_scenario",
    "run_chaos_suite",
    "run_scenario",
    "table_1",
]
