"""Experiment harness: scenario runner + figure/table regeneration."""

from repro.harness.experiment import ResultCache, make_kernel, run_scenario
from repro.harness.figures import (
    CONCURRENT_INSTANCES,
    FigureData,
    figure_3a,
    figure_3b,
    figure_3c,
    figure_4,
    overheads,
    table_1,
)
from repro.harness.report import render_figure, render_table, render_table1

__all__ = [
    "CONCURRENT_INSTANCES",
    "FigureData",
    "ResultCache",
    "figure_3a",
    "figure_3b",
    "figure_3c",
    "figure_4",
    "make_kernel",
    "overheads",
    "render_figure",
    "render_table",
    "render_table1",
    "run_scenario",
    "table_1",
]
