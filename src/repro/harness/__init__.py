"""Experiment harness: scenario runner + figure/table regeneration."""

from repro.harness.chaos import (
    DEFAULT_CHAOS,
    ChaosResult,
    fixed_interval_arrivals,
    render_chaos,
    run_chaos_scenario,
)
from repro.harness.experiment import ResultCache, make_kernel, run_scenario
from repro.harness.figures import (
    CONCURRENT_INSTANCES,
    FigureData,
    figure_3a,
    figure_3b,
    figure_3c,
    figure_4,
    overheads,
    table_1,
)
from repro.harness.report import render_figure, render_table, render_table1

__all__ = [
    "CONCURRENT_INSTANCES",
    "ChaosResult",
    "DEFAULT_CHAOS",
    "FigureData",
    "ResultCache",
    "figure_3a",
    "figure_3b",
    "figure_3c",
    "figure_4",
    "fixed_interval_arrivals",
    "make_kernel",
    "overheads",
    "render_chaos",
    "render_figure",
    "render_table",
    "render_table1",
    "run_chaos_scenario",
    "run_scenario",
    "table_1",
]
