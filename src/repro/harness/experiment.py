"""Scenario runner.

One scenario = one cold-start measurement: build a fresh simulated host,
let the approach record the function's working set (offline), drop the
page cache and reset counters, then spawn ``n_instances`` sandboxes at
the same instant (the paper's concurrent-invocation setup, identical
inputs) and measure per-sandbox E2E latency and system-wide peak memory.
"""

from __future__ import annotations

from typing import Callable

from repro.baselines.base import Approach, approach_registry
from repro.harness.spec import ScenarioSpec, stable_hash
from repro.metrics.registry import MetricsRegistry
from repro.metrics.results import ScenarioResult
from repro.mm.costs import CostModel
from repro.mm.kernel import Kernel
from repro.sim import Environment
from repro.storage.hdd import HDDevice
from repro.storage.ssd import SSDevice
from repro.units import GIB, PAGE_SIZE
from repro.workloads.profile import FunctionProfile
from repro.workloads.trace import generate_trace


def make_kernel(device_kind: str = "ssd", ram_bytes: int = 256 * GIB,
                costs: CostModel | None = None) -> Kernel:
    """Fresh host with the requested storage device."""
    env = Environment()
    if device_kind == "ssd":
        device = SSDevice(env)
    elif device_kind == "hdd":
        device = HDDevice(env)
    else:
        raise ValueError(f"unknown device kind {device_kind!r}")
    return Kernel(env=env, device=device, ram_bytes=ram_bytes, costs=costs)


def run_scenario(spec: ScenarioSpec, *,
                 kernel: Kernel | None = None,
                 approach_factory: Callable[[Kernel], Approach]
                 | None = None) -> ScenarioResult:
    """Run one scenario described by a :class:`ScenarioSpec`.

    ``run_scenario(spec)`` is the only entrypoint; the historic
    ``run_scenario(profile, approach, n_instances=..., ...)`` kwargs
    form is gone.  Two keyword-only escape hatches cover what a
    hashable spec cannot express:

    * ``kernel`` — a pre-built (typically instrumented) host to run on
      instead of a fresh default one; unusable with cluster specs.
    * ``approach_factory`` — a callable ``kernel -> Approach`` used in
      place of the registry lookup of ``spec.approach``, for ablation
      variants that are not registered.  The spec's ``approach`` string
      still labels the run; such runs must not be cached by spec (the
      spec alone no longer determines the outcome).

    ``spec.vary_inputs`` gives every concurrent instance a *different*
    input (trace seed), instead of the paper's identical-inputs setup —
    the varying-inputs deduplication study the paper leaves to future
    work.  The record phase always uses ``spec.input_seed``.
    """
    if not isinstance(spec, ScenarioSpec):
        raise TypeError(
            f"run_scenario takes a ScenarioSpec (repro.harness.spec), "
            f"got {type(spec).__name__}; the legacy (profile, approach) "
            f"kwargs form was removed")
    if spec.cluster is not None:
        if kernel is not None:
            raise TypeError("cluster scenarios build one kernel per "
                            "node; the kernel argument is not usable")
        if approach_factory is not None:
            raise TypeError("cluster scenarios resolve approaches per "
                            "node; approach_factory is not usable")
        # Deferred import: the cluster runner composes the platform
        # stack on top of this module's layer.
        from repro.cluster.runner import run_cluster_scenario
        return run_cluster_scenario(spec)
    return _run_scenario(spec.function,
                         (approach_factory if approach_factory is not None
                          else spec.approach),
                         spec.n_instances, spec.input_seed,
                         spec.vary_inputs, spec.device_kind,
                         spec.costs, kernel,
                         ram_bytes=spec.ram_bytes,
                         evict_policy=spec.evict_policy,
                         snapstore_spec=spec.snapstore)


def _run_scenario(profile: FunctionProfile,
                  approach_factory: Callable[[Kernel], Approach] | str,
                  n_instances: int,
                  input_seed: int,
                  vary_inputs: bool,
                  device_kind: str,
                  costs: CostModel | None,
                  kernel: Kernel | None,
                  ram_bytes: int | None = None,
                  evict_policy: str | None = None,
                  snapstore_spec=None) -> ScenarioResult:
    if isinstance(approach_factory, str):
        approach_factory = approach_registry()[approach_factory]
    if kernel is None:
        kernel = make_kernel(device_kind, costs=costs,
                             ram_bytes=(ram_bytes if ram_bytes is not None
                                        else 256 * GIB))
        if ram_bytes is not None:
            # A sized pool is a memory-pressure scenario: watermarks on,
            # kswapd running.  The default pool keeps seed semantics.
            kernel.reclaim.enable_watermarks()
    if snapstore_spec is not None and kernel.snapstore is None:
        from repro.snapstore import install_snapstore
        install_snapstore(kernel, snapstore_spec)
    env = kernel.env
    approach = approach_factory(kernel)
    trace = generate_trace(profile, input_seed)

    # -- offline record phase -----------------------------------------------------
    prep_start = env.now
    prep = env.process(approach.prepare(profile, trace), name="prepare")
    env.run(prep)
    prepare_seconds = env.now - prep_start

    # -- cold-start reset ------------------------------------------------------------
    if kernel.snapstore is not None:
        # Place recorded chunks per the spec before measurement: 'local'
        # pins everything warm (the identity configuration), 'remote'
        # leaves every first access to stage over the network.
        kernel.snapstore.apply_placement()
    kernel.drop_caches()
    kernel.device.reset_stats()
    kernel.frames.reset_peak()
    kernel.reclaim.eviction_log.clear()
    if evict_policy is not None:
        from repro.core.policies import attach_evict_policy
        attach_evict_policy(kernel, evict_policy)
    cache_adds_before = kernel.page_cache.stats.adds
    hook_seconds_before = kernel.page_cache.stats.bpf_hook_seconds

    # -- timed concurrent invocations --------------------------------------------------
    vms: list = []

    def one_instance(index: int):
        start = env.now
        vm = yield from approach.spawn(profile, vm_id=f"vm{index}")
        vms.append(vm)
        instance_trace = trace
        if vary_inputs and index > 0:
            instance_trace = generate_trace(profile, input_seed + index)
        stats = yield from vm.invoke(instance_trace)
        tracer = env.tracer
        if tracer is not None and tracer.enabled:
            # The per-instance E2E span (exactly e2e_seconds long) plus
            # its phase breakdown laid end-to-end beneath it — these are
            # the spans the trace-vs-result consistency test sums.
            track = f"vm{index}"
            tracer.complete(f"restore {track}", "restore", start,
                            dur=stats.e2e_seconds, track=track)
            t = start
            for phase, dur in stats.breakdown.items():
                tracer.complete(phase, "e2e", t, dur=dur, track=track)
                t += dur
        return stats

    processes = [env.process(one_instance(i), name=f"instance-{i}")
                 for i in range(n_instances)]
    done = env.all_of(processes)
    env.run(done)

    usage = kernel.frames.usage()
    result = ScenarioResult(
        function=profile.name,
        approach=approach.name,
        n_instances=n_instances,
        invocations=[p.value for p in processes],
        peak_memory_bytes=kernel.frames.peak_bytes,
        end_memory_bytes=kernel.memory_in_use_bytes(),
        end_anon_bytes=usage.anon * PAGE_SIZE,
        end_file_bytes=usage.file * PAGE_SIZE,
        device_requests=kernel.device.stats.requests,
        device_bytes_read=kernel.device.stats.bytes_read,
        device_bytes_written=kernel.device.stats.bytes_written,
        cache_adds=kernel.page_cache.stats.adds - cache_adds_before,
        bpf_hook_seconds=(kernel.page_cache.stats.bpf_hook_seconds
                          - hook_seconds_before),
        prepare_seconds=prepare_seconds,
        metrics=kernel.metrics.snapshot(),
        device_p50_latency=kernel.device.stats.p50_latency,
        device_p95_latency=kernel.device.stats.p95_latency,
        device_p99_latency=kernel.device.stats.p99_latency,
    )
    _collect_extras(approach, result)
    if kernel.snapstore is not None:
        result.extra.update(kernel.snapstore.result_extras())
    # Reclaim activity, surfaced only when the run actually evicted, so
    # unpressured runs keep their exact extras (identity contract).  The
    # digest fingerprints the full eviction *sequence*: two runs evicting
    # the same pages in a different order get different digests.
    eviction_log = kernel.reclaim.eviction_log
    if eviction_log:
        result.extra["reclaim_evictions"] = float(len(eviction_log))
        result.extra["reclaim_evict_digest"] = float(int(
            stable_hash([list(key) for key in eviction_log])[:12], 16))
    for vm in vms:
        approach.post_invoke(vm)
        vm.teardown()
    return result


def _collect_extras(approach: Approach, result: ScenarioResult) -> None:
    """Approach-specific metrics surfaced to the ablation benches."""
    for attr, key in (
        ("working_set_pages", "ws_pages"),
        ("ws_file_pages", "ws_file_pages"),
        ("ws_pages_exact", "ws_pages_exact"),
        ("inflation_ratio", "inflation_ratio"),
        ("region_count", "region_count"),
        ("captured_pages", "captured_pages"),
        ("metadata_bytes", "metadata_bytes"),
    ):
        value = getattr(approach, attr, None)
        if value is not None:
            result.extra[key] = float(value)
    map_loads = getattr(approach, "map_load_seconds", None)
    if map_loads:
        result.extra["map_load_seconds"] = (
            sum(map_loads.values()) / len(map_loads))
    # Fault-plane degradation counters: surfaced only when something
    # actually degraded, so fault-free runs keep their exact extras.
    for attr in ("capture_attach_failures", "prefetch_fallbacks",
                 "prefetch_aborts", "demand_retries",
                 "demand_fetch_failures"):
        value = getattr(approach, attr, 0)
        if value:
            result.extra[attr] = float(value)


class ResultCache:
    """Memoizes scenario runs across figure builders (3b and 3c share
    every run, for instance), keyed by :class:`ScenarioSpec`.

    Keying on the full spec fixes the historic collision where the key
    omitted ``costs`` and ``vary_inputs``: a cost-model ablation and the
    baseline run now occupy distinct entries.  An optional on-disk
    ``store`` (see :class:`repro.harness.sweep.ResultStore`) shares the
    same spec hash, so the in-memory and persistent caches can never
    disagree about identity.

    Hit/miss/execution counts are exported through a
    :class:`~repro.metrics.registry.MetricsRegistry` (``sweep_*``
    counters) — the sweep engine and CLI read throughput and hit ratio
    from there.
    """

    def __init__(self, store=None,
                 registry: MetricsRegistry | None = None) -> None:
        self._cache: dict[ScenarioSpec, ScenarioResult] = {}
        self.store = store
        self.metrics = registry or MetricsRegistry()
        self._requests = self.metrics.counter(
            "sweep_cache_requests_total", "scenario lookups")
        self._hits_memory = self.metrics.counter(
            "sweep_cache_hits_memory_total", "lookups served from memory")
        self._hits_disk = self.metrics.counter(
            "sweep_cache_hits_disk_total", "lookups served from the store")
        self._executed = self.metrics.counter(
            "sweep_scenarios_executed_total", "scenarios actually simulated")
        if store is not None and hasattr(store, "corrupt_entries"):
            # The store keeps a plain attribute (it may be shared across
            # worker processes and caches); publish it as a collector so
            # snapshots always see the live count.
            self.metrics.register_collector(lambda: {
                "store_corrupt_entries_total": float(store.corrupt_entries)})

    # -- counters (read by the sweep engine and tests) ----------------------
    @property
    def memory_hits(self) -> int:
        return int(self._hits_memory.value)

    @property
    def disk_hits(self) -> int:
        return int(self._hits_disk.value)

    @property
    def executed(self) -> int:
        return int(self._executed.value)

    # -- cache protocol -----------------------------------------------------
    def lookup(self, spec: ScenarioSpec) -> ScenarioResult | None:
        """Memory-then-store lookup; never executes a scenario."""
        result = self._cache.get(spec)
        if result is not None:
            self._hits_memory.inc()
            return result
        if self.store is not None:
            result = self.store.load_scenario(spec)
            if result is not None:
                self._hits_disk.inc()
                self._cache[spec] = result
                return result
        return None

    def insert(self, spec: ScenarioSpec, result: ScenarioResult,
               persist: bool = True) -> None:
        self._cache[spec] = result
        if persist and self.store is not None:
            self.store.save_scenario(spec, result)

    def record_execution(self, spec: ScenarioSpec,
                         result: ScenarioResult) -> None:
        """Insert a freshly simulated result, counting the execution
        (the sweep engine runs scenarios out-of-band, in workers)."""
        self._executed.inc()
        self.insert(spec, result)

    def get(self, spec: ScenarioSpec) -> ScenarioResult:
        """Cached scenario run, keyed by the spec."""
        if not isinstance(spec, ScenarioSpec):
            raise TypeError(
                f"ResultCache.get takes a ScenarioSpec, got "
                f"{type(spec).__name__}; the legacy (profile, approach) "
                f"kwargs form was removed")
        self._requests.inc()
        result = self.lookup(spec)
        if result is None:
            result = run_scenario(spec)
            self._executed.inc()
            self.insert(spec, result)
        return result

    def __len__(self) -> int:
        return len(self._cache)

    def __contains__(self, spec: ScenarioSpec) -> bool:
        return spec in self._cache
