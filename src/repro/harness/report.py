"""Plain-text rendering of regenerated figures and tables.

The benchmarks tee these renderings into ``results/`` so the
paper-vs-measured comparison in EXPERIMENTS.md can be regenerated from a
single run.
"""

from __future__ import annotations

from repro.harness.figures import FigureData


def render_table(rows: list[list[str]], title: str = "") -> str:
    """Fixed-width table; first row is the header."""
    if not rows:
        return title
    widths = [max(len(str(row[col])) for row in rows)
              for col in range(len(rows[0]))]
    lines = []
    if title:
        lines.append(title)
    header, *body = rows
    lines.append("  ".join(str(cell).ljust(width)
                           for cell, width in zip(header, widths)))
    lines.append("  ".join("-" * width for width in widths))
    for row in body:
        lines.append("  ".join(str(cell).ljust(width)
                               for cell, width in zip(row, widths)))
    return "\n".join(lines)


def scenario_rows(results) -> list[list[str]]:
    """Header + one row per :class:`ScenarioResult`, with E2E latency
    percentiles (ms) and device-side request-latency percentiles (us)."""
    header = ["function", "approach", "n", "mean E2E (ms)", "p50 (ms)",
              "p95 (ms)", "p99 (ms)", "dev p50 (us)", "dev p95 (us)",
              "dev p99 (us)", "peak mem (GiB)", "I/O reqs"]
    rows = [header]
    for res in results:
        rows.append([
            res.function,
            res.approach,
            str(res.n_instances),
            f"{res.mean_e2e * 1e3:.1f}",
            f"{res.p50_e2e * 1e3:.1f}",
            f"{res.p95_e2e * 1e3:.1f}",
            f"{res.p99_e2e * 1e3:.1f}",
            f"{res.device_p50_latency * 1e6:.0f}",
            f"{res.device_p95_latency * 1e6:.0f}",
            f"{res.device_p99_latency * 1e6:.0f}",
            f"{res.peak_memory_gib:.2f}",
            str(res.device_requests),
        ])
    return rows


def render_scenarios(results, title: str = "") -> str:
    """Scenario summary table with latency percentile columns."""
    return render_table(scenario_rows(results), title=title)


def render_figure(data: FigureData) -> str:
    title = f"Figure {data.figure}: {data.ylabel}"
    if data.notes:
        title += f"  [{data.notes}]"
    return render_table(data.as_rows(), title=title)


def render_table1(rows: list[dict[str, str]]) -> str:
    header = ["approach", "mechanism", "space", "on-disk WS",
              "in-mem dedup", "alloc filtering", "pre-scan"]
    keys = ["approach", "mechanism", "space", "on_disk_ws_serialization",
            "in_memory_ws_dedup", "stateless_alloc_filtering",
            "snapshot_prescan"]
    table = [header] + [[row[k] for k in keys] for row in rows]
    return render_table(table, title="Table 1: snapshot prefetching "
                                     "technique comparison")
