"""Plain-text rendering of regenerated figures and tables.

The benchmarks tee these renderings into ``results/`` so the
paper-vs-measured comparison in EXPERIMENTS.md can be regenerated from a
single run.
"""

from __future__ import annotations

from repro.harness.figures import FigureData


def render_table(rows: list[list[str]], title: str = "") -> str:
    """Fixed-width table; first row is the header."""
    if not rows:
        return title
    widths = [max(len(str(row[col])) for row in rows)
              for col in range(len(rows[0]))]
    lines = []
    if title:
        lines.append(title)
    header, *body = rows
    lines.append("  ".join(str(cell).ljust(width)
                           for cell, width in zip(header, widths)))
    lines.append("  ".join("-" * width for width in widths))
    for row in body:
        lines.append("  ".join(str(cell).ljust(width)
                               for cell, width in zip(row, widths)))
    return "\n".join(lines)


def render_figure(data: FigureData) -> str:
    title = f"Figure {data.figure}: {data.ylabel}"
    if data.notes:
        title += f"  [{data.notes}]"
    return render_table(data.as_rows(), title=title)


def render_table1(rows: list[dict[str, str]]) -> str:
    header = ["approach", "mechanism", "space", "on-disk WS",
              "in-mem dedup", "alloc filtering", "pre-scan"]
    keys = ["approach", "mechanism", "space", "on_disk_ws_serialization",
            "in_memory_ws_dedup", "stateless_alloc_filtering",
            "snapshot_prescan"]
    table = [header] + [[row[k] for k in keys] for row in rows]
    return render_table(table, title="Table 1: snapshot prefetching "
                                     "technique comparison")
