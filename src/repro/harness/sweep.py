"""Parallel sweep engine with a content-addressed on-disk result store.

The paper's evaluation is a matrix of (function x approach x concurrency
x device) cold-start scenarios.  Every cell is an independent pure
function of its :class:`~repro.harness.spec.ScenarioSpec` — each run
builds a fresh simulated host from seeded RNGs — so the matrix can be
executed across a ``ProcessPoolExecutor`` with *any* job count and still
produce byte-identical figures, and a finished cell can be persisted and
replayed forever.

Two pieces:

* :class:`ResultStore` — one JSON file per spec under a cache directory,
  named by ``spec.stable_hash()`` (which bakes in
  :data:`~repro.harness.spec.SCHEMA_VERSION`); entries with a different
  schema tag, kind, or unparsable payload read as misses, never as
  wrong answers.
* :class:`SweepRunner` — deduplicates a spec list, resolves what it can
  from a :class:`~repro.harness.experiment.ResultCache` (memory, then
  store), executes the misses serially or across worker processes, and
  reports a :class:`SweepStats`.  Progress and throughput are exported
  through the cache's metrics registry (``sweep_*`` counters and
  gauges), not ad-hoc prints.
"""

from __future__ import annotations

import json
import os
import random
import tempfile
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, Sequence

from repro.harness.experiment import ResultCache, run_scenario
from repro.harness.spec import SCHEMA_VERSION, ScenarioSpec
from repro.metrics.results import ScenarioResult


class ResultStore:
    """Content-addressed on-disk JSON store, one file per entry.

    Keys are content hashes (``ScenarioSpec.stable_hash()`` or any other
    :func:`~repro.harness.spec.stable_hash` digest); each file carries
    the schema version and a ``kind`` tag.  Loads are defensive: a
    missing file, a schema/kind mismatch, or a corrupt payload is a
    *miss* — the scenario simply re-runs — never an exception or a stale
    answer.  Writes are atomic (temp file + ``os.replace``) so a killed
    sweep cannot leave a torn entry behind.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    # -- generic payloads ---------------------------------------------------
    def load(self, key: str, kind: str) -> dict | None:
        try:
            with open(self.path(key)) as fp:
                entry = json.load(fp)
        except (OSError, ValueError):
            return None
        if not isinstance(entry, dict):
            return None
        if entry.get("schema") != SCHEMA_VERSION or entry.get("kind") != kind:
            return None
        payload = entry.get("payload")
        return payload if isinstance(payload, dict) else None

    def save(self, key: str, payload: dict, kind: str,
             spec: dict | None = None) -> None:
        entry = {"schema": SCHEMA_VERSION, "kind": kind, "key": key,
                 "spec": spec, "payload": payload}
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fp:
                json.dump(entry, fp, sort_keys=True)
            os.replace(tmp, self.path(key))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # -- scenario results ---------------------------------------------------
    def load_scenario(self, spec: ScenarioSpec) -> ScenarioResult | None:
        payload = self.load(spec.stable_hash(), kind="scenario")
        if payload is None:
            return None
        try:
            return ScenarioResult.from_dict(payload)
        except (KeyError, TypeError, ValueError):
            return None

    def save_scenario(self, spec: ScenarioSpec,
                      result: ScenarioResult) -> None:
        self.save(spec.stable_hash(), result.to_dict(), kind="scenario",
                  spec=spec.canonical())

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.json"))


def execute_spec(spec: ScenarioSpec) -> ScenarioResult:
    """Worker entrypoint: run one scenario, deterministically seeded.

    The simulation derives every random choice from the spec already;
    re-seeding the global RNG from the spec hash is hygiene that keeps a
    stray ``random.random()`` anywhere in the stack from making results
    depend on execution order or worker identity.
    """
    random.seed(spec.seed_material())
    return run_scenario(spec)


def parallel_map(fn: Callable, items: Sequence, jobs: int) -> list:
    """``[fn(item) for item in items]``, across ``jobs`` processes when
    ``jobs > 1`` (order-preserving, as ``executor.map`` guarantees)."""
    items = list(items)
    if jobs <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    with ProcessPoolExecutor(max_workers=min(jobs, len(items))) as pool:
        return list(pool.map(fn, items))


@dataclass
class SweepStats:
    """One sweep's accounting: where every requested cell came from."""

    requested: int = 0
    unique: int = 0
    executed: int = 0
    memory_hits: int = 0
    disk_hits: int = 0
    elapsed_seconds: float = 0.0

    @property
    def hit_ratio(self) -> float:
        return 1.0 - self.executed / self.unique if self.unique else 0.0

    @property
    def scenarios_per_second(self) -> float:
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.unique / self.elapsed_seconds

    def summary(self) -> str:
        """One stable line for logs and CI greps."""
        return (f"sweep: requested={self.requested} unique={self.unique} "
                f"executed={self.executed} memory_hits={self.memory_hits} "
                f"disk_hits={self.disk_hits} "
                f"hit_ratio={self.hit_ratio:.2f} "
                f"rate={self.scenarios_per_second:.2f}/s "
                f"elapsed={self.elapsed_seconds:.2f}s")


class SweepRunner:
    """Executes a batch of scenario specs, fanning misses out to worker
    processes and landing every result in the shared cache/store."""

    def __init__(self, cache: ResultCache | None = None,
                 jobs: int = 1) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.cache = cache if cache is not None else ResultCache()
        self.jobs = jobs
        registry = self.cache.metrics
        self._runs = registry.counter("sweep_runs_total", "sweep batches")
        self._rate = registry.gauge(
            "sweep_scenarios_per_second", "last sweep's throughput")
        self._ratio = registry.gauge(
            "sweep_hit_ratio", "last sweep's cache-hit ratio")
        self.last_stats: SweepStats | None = None

    def run(self, specs: Iterable[ScenarioSpec]
            ) -> dict[ScenarioSpec, ScenarioResult]:
        """Resolve every spec (cache, store, or fresh execution) and
        return ``{spec: result}`` covering the deduplicated batch."""
        started = time.monotonic()
        stats = SweepStats()
        ordered: list[ScenarioSpec] = []
        seen: set[ScenarioSpec] = set()
        for spec in specs:
            stats.requested += 1
            if spec not in seen:
                seen.add(spec)
                ordered.append(spec)
        stats.unique = len(ordered)

        # lookup() classifies each hit into the registry counters;
        # diff them across the loop rather than re-deriving the split.
        memory_before = self.cache.memory_hits
        disk_before = self.cache.disk_hits
        results: dict[ScenarioSpec, ScenarioResult] = {}
        missing: list[ScenarioSpec] = []
        for spec in ordered:
            cached = self.cache.lookup(spec)
            if cached is not None:
                results[spec] = cached
            else:
                missing.append(spec)
        stats.memory_hits = self.cache.memory_hits - memory_before
        stats.disk_hits = self.cache.disk_hits - disk_before

        for spec, result in zip(missing,
                                parallel_map(execute_spec, missing,
                                             self.jobs)):
            results[spec] = result
            self.cache.record_execution(spec, result)

        stats.executed = len(missing)
        stats.elapsed_seconds = time.monotonic() - started

        self._runs.inc()
        self._rate.set(stats.scenarios_per_second)
        self._ratio.set(stats.hit_ratio)
        self.last_stats = stats
        return results
