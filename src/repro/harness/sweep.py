"""Supervised parallel sweep engine with a content-addressed store.

The paper's evaluation is a matrix of (function x approach x concurrency
x device) cold-start scenarios.  Every cell is an independent pure
function of its :class:`~repro.harness.spec.ScenarioSpec` — each run
builds a fresh simulated host from seeded RNGs — so the matrix can be
executed across a ``ProcessPoolExecutor`` with *any* job count and still
produce byte-identical figures, and a finished cell can be persisted and
replayed forever.

Three pieces:

* :class:`ResultStore` — one JSON file per spec under a cache directory,
  named by ``spec.stable_hash()`` (which bakes in
  :data:`~repro.harness.spec.SCHEMA_VERSION`); entries with a different
  schema tag or kind read as misses, and structurally corrupt files
  (torn writes) are quarantined to ``<key>.json.corrupt`` and counted,
  never silently overwritten or trusted.
* :func:`supervised_map` — the supervising executor: per-cell futures
  with a configurable deadline, bounded retries with seeded backoff,
  automatic pool respawn after ``BrokenProcessPool`` (a SIGKILLed or
  OOM-killed worker takes down the whole pool), and quarantine of
  poison cells after max retries.  A sweep finishes with a failure
  manifest instead of dying.
* :class:`SweepRunner` — deduplicates a spec list, resolves what it can
  from a :class:`~repro.harness.experiment.ResultCache` (memory, then
  store), supervises the misses, and **checkpoints each completed cell
  into the store as it finishes** — an interrupted sweep resumes for
  free on rerun.  SIGINT/SIGTERM are handled by flushing in-flight
  completions before raising :class:`SweepInterrupted`.  Progress is
  exported through the cache's metrics registry (``sweep_*`` counters
  and gauges) and optional tracer instants, not ad-hoc prints.

Failure semantics: cells are pure functions of their spec, so a Python
exception raised *by the cell body* is deterministic and retrying it is
pointless — such cells are quarantined immediately as poison.  Only
infrastructure failures (worker crashes, deadline expiries) are
transient and earn retries.
"""

from __future__ import annotations

import json
import math
import os
import random
import signal
import tempfile
import threading
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Callable, Iterable, Sequence

from repro.faults.retry import RetryPolicy
from repro.faults.sweep import WorkerCrashError, apply_worker_fault
from repro.harness.experiment import ResultCache, run_scenario
from repro.harness.spec import SCHEMA_VERSION, ScenarioSpec
from repro.metrics.results import ScenarioResult

#: Supervisor wake-up granularity: deadline checks, stop-flag polls.
_POLL_INTERVAL = 0.1

#: How long a stop request waits for in-flight cells to flush when no
#: deadline is configured.
_FLUSH_GRACE = 60.0


class ResultStore:
    """Content-addressed on-disk JSON store, one file per entry.

    Keys are content hashes (``ScenarioSpec.stable_hash()`` or any other
    :func:`~repro.harness.spec.stable_hash` digest); each file carries
    the schema version and a ``kind`` tag.  Loads are defensive: a
    missing file or a schema/kind mismatch is a *miss* — the scenario
    simply re-runs.  A file that exists but does not parse (a torn
    write) is **quarantined**: renamed to ``<key>.json.corrupt`` so the
    evidence survives the re-run that overwrites the key, and counted in
    ``corrupt_entries`` (surfaced as ``store_corrupt_entries_total``
    through the owning cache's registry).  Writes are atomic (temp file
    + ``os.replace``) so a killed sweep cannot leave a torn entry
    behind; ``fault_injector`` (a
    :class:`~repro.faults.sweep.SweepFaultInjector`) can tear them on
    purpose for chaos tests.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        #: Corrupt entries quarantined so far (collector-published).
        self.corrupt_entries = 0
        #: Optional SweepFaultInjector tearing writes (chaos harness).
        self.fault_injector = None

    def path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    # -- corruption quarantine ----------------------------------------------
    def quarantine(self, key: str) -> None:
        """Move a corrupt entry aside as ``<key>.json.corrupt``."""
        self._quarantine(self.path(key))

    def _quarantine(self, path: Path) -> None:
        self.corrupt_entries += 1
        try:
            os.replace(path, path.with_suffix(path.suffix + ".corrupt"))
        except OSError:
            pass

    # -- generic payloads ---------------------------------------------------
    def load(self, key: str, kind: str) -> dict | None:
        path = self.path(key)
        try:
            with open(path) as fp:
                raw = fp.read()
        except OSError:
            return None
        try:
            entry = json.loads(raw)
        except ValueError:
            self._quarantine(path)
            return None
        if not isinstance(entry, dict):
            self._quarantine(path)
            return None
        if entry.get("schema") != SCHEMA_VERSION or entry.get("kind") != kind:
            # A legitimate older/foreign entry, not corruption: leave it
            # in place to be overwritten by the re-run.
            return None
        payload = entry.get("payload")
        if not isinstance(payload, dict):
            self._quarantine(path)
            return None
        return payload

    def save(self, key: str, payload: dict, kind: str,
             spec: dict | None = None) -> None:
        entry = {"schema": SCHEMA_VERSION, "kind": kind, "key": key,
                 "spec": spec, "payload": payload}
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fp:
                json.dump(entry, fp, sort_keys=True)
            os.replace(tmp, self.path(key))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        injector = self.fault_injector
        if injector is not None and injector.on_store_write(key):
            self._tear(self.path(key))

    def _tear(self, path: Path) -> None:
        """Truncate an entry mid-file (chaos: a torn write)."""
        try:
            raw = path.read_text()
            path.write_text(raw[:max(1, len(raw) // 2)])
        except OSError:
            pass

    # -- scenario results ---------------------------------------------------
    def load_scenario(self, spec: ScenarioSpec) -> ScenarioResult | None:
        key = spec.stable_hash()
        payload = self.load(key, kind="scenario")
        if payload is None:
            return None
        try:
            return ScenarioResult.from_dict(payload)
        except (KeyError, TypeError, ValueError):
            # Parsed as JSON but not as a result: payload corruption.
            self.quarantine(key)
            return None

    def save_scenario(self, spec: ScenarioSpec,
                      result: ScenarioResult) -> None:
        self.save(spec.stable_hash(), result.to_dict(), kind="scenario",
                  spec=spec.canonical())

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.json"))


def execute_spec(spec: ScenarioSpec) -> ScenarioResult:
    """Worker entrypoint: run one scenario, deterministically seeded.

    The simulation derives every random choice from the spec already;
    re-seeding the global RNG from the spec hash is hygiene that keeps a
    stray ``random.random()`` anywhere in the stack from making results
    depend on execution order or worker identity.
    """
    random.seed(spec.seed_material())
    return run_scenario(spec)


def _supervised_cell(payload) -> ScenarioResult:
    """Worker entrypoint under supervision: ``(spec, fault)`` pairs."""
    spec, fault = payload
    apply_worker_fault(fault)
    return execute_spec(spec)


def parallel_map(fn: Callable, items: Sequence, jobs: int) -> list:
    """``[fn(item) for item in items]``, across ``jobs`` processes when
    ``jobs > 1`` (order-preserving, as ``executor.map`` guarantees).

    Fire-and-forget: a crashed worker raises ``BrokenProcessPool`` and
    loses the whole batch.  Kept for simple helpers; batch sweeps go
    through :func:`supervised_map`.
    """
    items = list(items)
    if jobs <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    with ProcessPoolExecutor(max_workers=min(jobs, len(items))) as pool:
        return list(pool.map(fn, items))


# -- supervision ------------------------------------------------------------

class _CellTimeout(Exception):
    """Internal marker: a cell exceeded its deadline."""


@dataclass
class FailureRecord:
    """One permanently-failed cell in the failure manifest."""

    key: str
    label: str
    attempts: int
    #: ``"crash"`` | ``"timeout"`` | ``"error"``.
    reason: str
    error: str
    spec: dict | None = None

    def to_dict(self) -> dict:
        return asdict(self)


class SweepFailure(RuntimeError):
    """Cells failed permanently and ``keep_going`` was off.

    Every cell that *did* complete before the abort has already been
    delivered (and persisted, when a store is attached); ``failures``
    is the manifest of the ones that did not.
    """

    def __init__(self, failures: Sequence[FailureRecord]):
        self.failures = list(failures)
        preview = "; ".join(
            f"{f.label or f.key[:12]}: {f.reason} ({f.error})"
            for f in self.failures[:4])
        if len(self.failures) > 4:
            preview += f"; ... {len(self.failures) - 4} more"
        super().__init__(
            f"{len(self.failures)} sweep cell(s) failed permanently "
            f"after retries: {preview}")


class SweepInterrupted(KeyboardInterrupt):
    """A stop request (SIGINT/SIGTERM) ended the sweep early.

    In-flight completions were flushed to the cache/store first, so a
    rerun resumes from exactly ``completed`` finished cells.
    """

    def __init__(self, completed: int, remaining: int,
                 signum: int | None = None):
        self.completed = completed
        self.remaining = remaining
        self.signum = signum
        name = (signal.Signals(signum).name if signum is not None
                else "stop request")
        super().__init__(
            f"sweep interrupted by {name}: {completed} cell(s) "
            f"checkpointed, {remaining} remaining (rerun to resume)")


class StopRequest:
    """Cooperative stop flag shared with the supervisor loop."""

    def __init__(self) -> None:
        self.requested = False
        self.signum: int | None = None

    def set(self, signum: int | None = None) -> None:
        self.requested = True
        self.signum = signum

    def reset(self) -> None:
        self.requested = False
        self.signum = None


class SweepCell:
    """One supervised unit of work: payload plus retry bookkeeping."""

    __slots__ = ("index", "item", "key", "label", "spec", "attempts",
                 "ready_at")

    def __init__(self, index: int, item, key: str, label: str = "",
                 spec: dict | None = None):
        self.index = index
        self.item = item
        self.key = key
        self.label = label
        self.spec = spec
        self.attempts = 0
        self.ready_at = 0.0


def write_failure_manifest(path: str | Path,
                           failures: Sequence[FailureRecord]) -> None:
    """Write a failure manifest (always, even when empty — an empty
    manifest is positive evidence the sweep completed clean)."""
    path = Path(path)
    if path.parent and not path.parent.exists():
        path.parent.mkdir(parents=True, exist_ok=True)
    payload = {"schema": SCHEMA_VERSION, "kind": "sweep-failures",
               "failures": [f.to_dict() for f in failures]}
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def _retry_jitter(key: str, attempt: int) -> float:
    """Seeded backoff jitter in [0.5, 1.5): deterministic per (cell,
    attempt), decorrelated across cells so respawned retries don't
    stampede the pool in lockstep."""
    return 0.5 + random.Random(f"{key}:{attempt}").random()


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a pool down *now*, hung or broken workers included."""
    for proc in list(getattr(pool, "_processes", {}).values()):
        try:
            proc.kill()
        except Exception:
            pass
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except Exception:
        pass
    # Killing the workers strands the executor's atexit wakeup hook on
    # a dead pipe, which spews "Exception ignored" noise at interpreter
    # exit.  Once the management thread is gone, marking the wakeup
    # closed silences the hook (it checks the flag before writing).
    thread = getattr(pool, "_executor_manager_thread", None)
    if thread is not None:
        thread.join(timeout=1.0)
        if thread.is_alive():
            return
    wakeup = getattr(pool, "_executor_manager_thread_wakeup", None)
    if wakeup is not None:
        try:
            wakeup.close()
        except Exception:
            pass


def supervised_map(fn: Callable, cells: Sequence[SweepCell], jobs: int, *,
                   timeout: float | None = None, max_retries: int = 2,
                   keep_going: bool = False,
                   retry_policy: RetryPolicy | None = None,
                   injector=None,
                   deliver: Callable[[SweepCell, object], None] | None = None,
                   notify: Callable[[str, SweepCell, str], None] | None = None,
                   stop: StopRequest | None = None,
                   ) -> tuple[dict[int, object], list[FailureRecord]]:
    """Run every cell through ``fn((item, fault))`` under supervision.

    Returns ``(results, failures)`` where ``results`` maps cell index to
    result for every cell that completed.  ``deliver`` fires as each
    cell finishes (checkpointing hook); ``notify(kind, cell, error)``
    fires on ``"crash"``/``"timeout"``/``"retry"``/``"quarantine"``
    events.  With ``keep_going`` the sweep drains everything it can and
    reports the rest in ``failures``; otherwise the first quarantined
    cell aborts the sweep with :class:`SweepFailure` after in-flight
    cells finish.  A :class:`StopRequest` flush-stops the sweep with
    :class:`SweepInterrupted`.
    """
    if max_retries < 0:
        raise ValueError(f"max_retries must be >= 0, got {max_retries}")
    policy = retry_policy or RetryPolicy(max_attempts=max_retries + 1,
                                         backoff_base=0.05,
                                         backoff_multiplier=2.0)
    results: dict[int, object] = {}
    failures: list[FailureRecord] = []

    def event(kind: str, cell: SweepCell, error: str = "") -> None:
        if notify is not None:
            notify(kind, cell, error)

    def complete(cell: SweepCell, result) -> None:
        results[cell.index] = result
        if deliver is not None:
            deliver(cell, result)

    def quarantine(cell: SweepCell, reason: str, error: str) -> None:
        failures.append(FailureRecord(
            key=cell.key, label=cell.label, attempts=cell.attempts,
            reason=reason, error=error, spec=cell.spec))
        event("quarantine", cell, error)

    def transient_failure(cell: SweepCell, reason: str, error: str) -> bool:
        """Count a crash/timeout; schedule a retry or quarantine.
        Returns True when the cell should be requeued."""
        event(reason, cell, error)
        if cell.attempts >= policy.max_attempts:
            quarantine(cell, reason, error)
            return False
        delay = (policy.backoff(cell.attempts)
                 * _retry_jitter(cell.key, cell.attempts))
        cell.ready_at = time.monotonic() + delay
        event("retry", cell, error)
        return True

    def plan_fault(cell: SweepCell):
        if injector is None:
            return None
        return injector.plan(cell.key, cell.attempts)

    queue: deque[SweepCell] = deque(cells)
    if jobs <= 1:
        _supervise_serial(fn, queue, timeout=timeout, keep_going=keep_going,
                          plan_fault=plan_fault, complete=complete,
                          transient_failure=transient_failure,
                          quarantine=quarantine, stop=stop,
                          results=results)
    else:
        _supervise_pool(fn, queue, jobs, timeout=timeout,
                        keep_going=keep_going, plan_fault=plan_fault,
                        complete=complete,
                        transient_failure=transient_failure,
                        quarantine=quarantine, stop=stop, results=results)
    if failures and not keep_going:
        raise SweepFailure(failures)
    return results, failures


def _supervise_serial(fn, queue, *, timeout, keep_going, plan_fault,
                      complete, transient_failure, quarantine, stop,
                      results) -> None:
    """In-process supervision (``jobs == 1``).

    A planned worker kill surfaces as :class:`WorkerCrashError` (killing
    the only process would end the sweep, not exercise it) and a planned
    hang longer than the deadline surfaces as a timeout — the same
    retry/quarantine ladder as the pool path, without sleeping for real.
    """
    while queue:
        if stop is not None and stop.requested:
            raise SweepInterrupted(len(results), len(queue), stop.signum)
        cell = queue.popleft()
        delay = cell.ready_at - time.monotonic()
        if delay > 0:
            time.sleep(delay)
        cell.attempts += 1
        fault = plan_fault(cell)
        try:
            if fault is not None and fault.kill:
                raise WorkerCrashError(
                    f"injected worker kill for {cell.label or cell.key}")
            if (fault is not None and timeout is not None
                    and fault.hang_seconds > timeout):
                raise _CellTimeout(
                    f"no result within {timeout:.3g}s deadline")
            result = fn((cell.item, None))
        except WorkerCrashError as exc:
            if transient_failure(cell, "crash", str(exc)):
                queue.append(cell)
            elif not keep_going:
                return
        except _CellTimeout as exc:
            if transient_failure(cell, "timeout", str(exc)):
                queue.append(cell)
            elif not keep_going:
                return
        except (KeyboardInterrupt, SystemExit):
            raise
        except Exception as exc:
            quarantine(cell, "error", f"{type(exc).__name__}: {exc}")
            if not keep_going:
                return
        else:
            complete(cell, result)


def _supervise_pool(fn, queue, jobs, *, timeout, keep_going, plan_fault,
                    complete, transient_failure, quarantine, stop,
                    results) -> None:
    """Pool supervision: per-cell futures, deadlines, pool respawn.

    ``BrokenProcessPool`` cannot name the worker that died, so every
    in-flight future that surfaces it is charged a crash attempt (the
    cell that killed the worker is necessarily among them); cells torn
    down only because a *sibling* timed out are requeued without an
    attempt charge.
    """
    width = max(1, min(jobs, len(queue)))
    pool = ProcessPoolExecutor(max_workers=width)
    running: dict = {}   # Future -> SweepCell
    deadline_at: dict = {}   # Future -> monotonic deadline
    abort = False

    def respawn() -> None:
        nonlocal pool
        _kill_pool(pool)
        pool = ProcessPoolExecutor(max_workers=width)

    def flush_and_stop() -> None:
        """Drain in-flight completions, then raise SweepInterrupted."""
        grace_end = time.monotonic() + (timeout if timeout is not None
                                        else _FLUSH_GRACE)
        while running and time.monotonic() < grace_end:
            done, _ = wait(set(running), timeout=_POLL_INTERVAL,
                           return_when=FIRST_COMPLETED)
            for fut in done:
                cell = running.pop(fut)
                deadline_at.pop(fut, None)
                try:
                    result = fut.result()
                except (KeyboardInterrupt, SystemExit):
                    raise
                except BaseException:
                    continue   # lost to the interrupt; rerun resumes it
                complete(cell, result)
        remaining = len(queue) + len(running)
        if running:
            _kill_pool(pool)   # a worker outlived the grace; it's hung
        else:
            pool.shutdown(wait=True, cancel_futures=True)
        raise SweepInterrupted(len(results), remaining,
                               stop.signum if stop is not None else None)

    try:
        while True:
            if stop is not None and stop.requested:
                flush_and_stop()
            if not running and (abort or not queue):
                break
            now = time.monotonic()
            broken = False
            if not abort:
                for _ in range(len(queue)):
                    if len(running) >= width:
                        break
                    cell = queue.popleft()
                    if cell.ready_at > now:
                        queue.append(cell)   # still backing off
                        continue
                    cell.attempts += 1
                    fault = plan_fault(cell)
                    try:
                        fut = pool.submit(fn, (cell.item, fault))
                    except BrokenProcessPool:
                        cell.attempts -= 1
                        queue.appendleft(cell)
                        broken = True
                        break
                    running[fut] = cell
                    deadline_at[fut] = (now + timeout if timeout is not None
                                        else math.inf)
            if running:
                done, _ = wait(set(running), timeout=_POLL_INTERVAL,
                               return_when=FIRST_COMPLETED)
                for fut in done:
                    cell = running.pop(fut)
                    deadline_at.pop(fut, None)
                    try:
                        result = fut.result()
                    except BrokenProcessPool as exc:
                        broken = True
                        message = str(exc) or "worker process died"
                        if transient_failure(cell, "crash", message):
                            queue.append(cell)
                        elif not keep_going:
                            abort = True
                    except (KeyboardInterrupt, SystemExit):
                        raise
                    except Exception as exc:
                        quarantine(cell, "error",
                                   f"{type(exc).__name__}: {exc}")
                        if not keep_going:
                            abort = True
                    else:
                        complete(cell, result)
            elif queue and not abort:
                pause = min((c.ready_at for c in queue),
                            default=now) - time.monotonic()
                if pause > 0:
                    time.sleep(min(pause, _POLL_INTERVAL))
            now = time.monotonic()
            expired = {fut for fut, dl in deadline_at.items() if now >= dl}
            if broken or expired:
                # The pool must be replaced (a worker is dead or hung);
                # every in-flight future dies with it.
                for fut, cell in list(running.items()):
                    if fut in expired:
                        message = (f"no result within {timeout:.3g}s "
                                   f"deadline")
                        if transient_failure(cell, "timeout", message):
                            queue.append(cell)
                        elif not keep_going:
                            abort = True
                    else:
                        # Innocent bystander of a sibling's teardown:
                        # resubmit without charging an attempt.
                        cell.attempts -= 1
                        queue.append(cell)
                running.clear()
                deadline_at.clear()
                respawn()
    finally:
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except Exception:
            pass


@dataclass
class SweepStats:
    """One sweep's accounting: where every requested cell came from and
    what the supervisor had to do to get it."""

    requested: int = 0
    unique: int = 0
    executed: int = 0
    memory_hits: int = 0
    disk_hits: int = 0
    elapsed_seconds: float = 0.0
    retries: int = 0
    worker_crashes: int = 0
    timeouts: int = 0
    quarantined: int = 0

    @property
    def hit_ratio(self) -> float:
        return 1.0 - self.executed / self.unique if self.unique else 0.0

    @property
    def scenarios_per_second(self) -> float:
        """Executed cells per second — actual simulation throughput.
        A fully-warm rerun reports 0, not an absurd cache-replay rate."""
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.executed / self.elapsed_seconds

    @property
    def resolved_per_second(self) -> float:
        """Unique cells resolved (any source) per second."""
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.unique / self.elapsed_seconds

    def summary(self) -> str:
        """One stable line for logs and CI greps."""
        line = (f"sweep: requested={self.requested} unique={self.unique} "
                f"executed={self.executed} memory_hits={self.memory_hits} "
                f"disk_hits={self.disk_hits} "
                f"hit_ratio={self.hit_ratio:.2f} "
                f"exec_rate={self.scenarios_per_second:.2f}/s "
                f"resolved_rate={self.resolved_per_second:.2f}/s "
                f"elapsed={self.elapsed_seconds:.2f}s")
        if (self.retries or self.worker_crashes or self.timeouts
                or self.quarantined):
            line += (f" retries={self.retries} "
                     f"worker_crashes={self.worker_crashes} "
                     f"timeouts={self.timeouts} "
                     f"quarantined={self.quarantined}")
        return line


class SweepRunner:
    """Executes a batch of scenario specs under supervision, landing
    every completed cell in the shared cache/store *as it finishes*.

    ``timeout`` is the per-cell deadline in seconds (None = unbounded);
    ``max_retries`` bounds retries for transient failures (worker
    crashes, deadline expiries) beyond the first attempt; ``keep_going``
    turns permanent failures into manifest entries instead of a
    :class:`SweepFailure`; ``injector`` attaches a
    :class:`~repro.faults.sweep.SweepFaultInjector` (chaos harness);
    ``tracer`` receives instant events for crashes/timeouts/retries/
    quarantines on the ``sweep`` track, stamped with wall-clock seconds
    since the sweep started; ``telemetry`` attaches a serve-plane
    :class:`~repro.serve.hub.TelemetryHub` that receives live sweep
    progress (cells resolved / executed / quarantined) for the
    dashboard and ``/metrics`` endpoint.
    """

    def __init__(self, cache: ResultCache | None = None,
                 jobs: int = 1, *, timeout: float | None = None,
                 max_retries: int = 2, keep_going: bool = False,
                 retry_policy: RetryPolicy | None = None,
                 injector=None, tracer=None, telemetry=None) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if timeout is not None and timeout <= 0:
            raise ValueError(f"timeout must be > 0, got {timeout}")
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        self.cache = cache if cache is not None else ResultCache()
        self.jobs = jobs
        self.timeout = timeout
        self.max_retries = max_retries
        self.keep_going = keep_going
        self.retry_policy = retry_policy
        self.injector = injector
        self.tracer = tracer
        #: Serve plane hook (duck-typed TelemetryHub): sweep progress is
        #: published as cells resolve.  Observation-only, default off.
        self.telemetry = telemetry
        if injector is not None and self.cache.store is not None:
            self.cache.store.fault_injector = injector
        registry = self.cache.metrics
        self._runs = registry.counter("sweep_runs_total", "sweep batches")
        self._rate = registry.gauge(
            "sweep_scenarios_per_second",
            "last sweep's executed-cell throughput")
        self._ratio = registry.gauge(
            "sweep_hit_ratio", "last sweep's cache-hit ratio")
        self._retries = registry.counter(
            "sweep_retries_total", "cell attempts retried after a "
            "transient failure")
        self._crashes = registry.counter(
            "sweep_worker_crashes_total", "worker processes lost mid-cell")
        self._timeouts = registry.counter(
            "sweep_timeouts_total", "cells that exceeded their deadline")
        self._quarantined = registry.counter(
            "sweep_quarantined_total", "cells failed permanently and "
            "quarantined to the failure manifest")
        self.last_stats: SweepStats | None = None
        self.last_manifest: list[FailureRecord] = []
        self._stop = StopRequest()

    # -- cooperative shutdown -----------------------------------------------
    def request_stop(self, signum: int | None = None) -> None:
        """Ask the in-progress sweep to flush completions and stop.
        Safe to call from a signal handler or an ``on_result`` hook."""
        self._stop.set(signum)

    def _signal_handler(self, signum, frame) -> None:
        self.request_stop(signum)

    def _install_signal_handlers(self) -> list:
        """Install SIGINT/SIGTERM flush handlers (main thread only);
        returns the previous handlers for restoration."""
        restore = []
        try:
            if threading.current_thread() is not threading.main_thread():
                return restore
            for sig in (signal.SIGINT, signal.SIGTERM):
                restore.append((sig, signal.signal(sig,
                                                   self._signal_handler)))
        except (ValueError, OSError):
            pass
        return restore

    def write_manifest(self, path: str | Path) -> None:
        """Write the last sweep's failure manifest (even when empty)."""
        write_failure_manifest(path, self.last_manifest)

    def run(self, specs: Iterable[ScenarioSpec],
            on_result: Callable[[ScenarioSpec, ScenarioResult], None]
            | None = None) -> dict[ScenarioSpec, ScenarioResult]:
        """Resolve every spec (cache, store, or supervised execution)
        and return ``{spec: result}`` covering the deduplicated batch.

        ``on_result`` fires for each freshly-executed cell right after
        it is checkpointed (progress reporting, test hooks).
        """
        started = time.monotonic()
        stats = SweepStats()
        ordered: list[ScenarioSpec] = []
        seen: set[ScenarioSpec] = set()
        for spec in specs:
            stats.requested += 1
            if spec not in seen:
                seen.add(spec)
                ordered.append(spec)
        stats.unique = len(ordered)

        # lookup() classifies each hit into the registry counters;
        # diff them across the loop rather than re-deriving the split.
        memory_before = self.cache.memory_hits
        disk_before = self.cache.disk_hits
        results: dict[ScenarioSpec, ScenarioResult] = {}
        missing: list[ScenarioSpec] = []
        for spec in ordered:
            cached = self.cache.lookup(spec)
            if cached is not None:
                results[spec] = cached
            else:
                missing.append(spec)
        stats.memory_hits = self.cache.memory_hits - memory_before
        stats.disk_hits = self.cache.disk_hits - disk_before

        cells = [SweepCell(index=i, item=spec, key=spec.stable_hash(),
                           label=f"{spec.function_name}/{spec.approach}",
                           spec=spec.canonical())
                 for i, spec in enumerate(missing)]

        telemetry = self.telemetry
        if telemetry is not None:
            telemetry.update_sweep(
                requested=stats.requested, unique=stats.unique,
                executed=0, memory_hits=stats.memory_hits,
                disk_hits=stats.disk_hits, remaining=len(cells),
                retries=0, worker_crashes=0, timeouts=0, quarantined=0,
                done=False)
            telemetry.flush(phase="sweep")

        def deliver(cell: SweepCell, result: ScenarioResult) -> None:
            spec = cell.item
            results[spec] = result
            stats.executed += 1
            # Checkpoint immediately: a later crash or interrupt cannot
            # lose this cell, and a rerun replays it from the store.
            self.cache.record_execution(spec, result)
            if telemetry is not None:
                telemetry.update_sweep(
                    executed=stats.executed,
                    remaining=len(cells) - stats.executed)
            if on_result is not None:
                on_result(spec, result)

        counters = {"retry": (self._retries, "retries"),
                    "crash": (self._crashes, "worker_crashes"),
                    "timeout": (self._timeouts, "timeouts"),
                    "quarantine": (self._quarantined, "quarantined")}

        def notify(kind: str, cell: SweepCell, error: str) -> None:
            counter, attr = counters[kind]
            counter.inc()
            setattr(stats, attr, getattr(stats, attr) + 1)
            if telemetry is not None:
                telemetry.update_sweep(**{attr: getattr(stats, attr)})
            tracer = self.tracer
            if tracer is not None and tracer.enabled:
                tracer.instant(f"sweep {kind}", "sweep",
                               time.monotonic() - started, track="sweep",
                               cell=cell.label or cell.key[:12],
                               attempt=cell.attempts, error=error)

        self._stop.reset()
        restore = self._install_signal_handlers()
        self.last_manifest = []
        try:
            _, failures = supervised_map(
                _supervised_cell, cells, self.jobs, timeout=self.timeout,
                max_retries=self.max_retries, keep_going=self.keep_going,
                retry_policy=self.retry_policy, injector=self.injector,
                deliver=deliver, notify=notify, stop=self._stop)
            self.last_manifest = failures
        except SweepFailure as exc:
            self.last_manifest = exc.failures
            raise
        finally:
            for sig, previous in restore:
                try:
                    signal.signal(sig, previous)
                except (ValueError, OSError):
                    pass
            stats.elapsed_seconds = time.monotonic() - started
            self._runs.inc()
            self._rate.set(stats.scenarios_per_second)
            self._ratio.set(stats.hit_ratio)
            self.last_stats = stats
            if telemetry is not None:
                telemetry.update_sweep(
                    executed=stats.executed,
                    remaining=len(cells) - stats.executed,
                    elapsed_seconds=round(stats.elapsed_seconds, 3),
                    done=True)
                telemetry.flush(phase="sweep done")
        return results


@dataclass
class SweepOptions:
    """The shared sweep/supervision/chaos/serve knob surface, as one
    value.

    Every sweeping entry point (the ``run``/``fig``/``chaos``/
    ``cluster``/``bench`` CLI commands, and any library caller that
    wants CLI-equivalent behaviour) accepts the same knobs; this
    dataclass is the single definition of their names and defaults, so
    a new command inherits the whole surface by calling
    :meth:`from_args` on a namespace parsed with the shared parent
    parser (see ``repro.__main__``).

    The factory methods resolve the raw knobs into live objects:
    :meth:`make_store` (content-addressed result store or None),
    :meth:`make_injector` (sweep-chaos fault injector or None), and
    :meth:`make_runner` (a fully wired :class:`SweepRunner`).
    """

    jobs: int = 1
    cache_dir: str | None = None
    no_cache: bool = False
    timeout: float | None = None
    max_retries: int = 2
    keep_going: bool = False
    failure_manifest: str | None = None
    sweep_kill_rate: float = 0.0
    sweep_hang_rate: float = 0.0
    sweep_tear_rate: float = 0.0
    sweep_fault_seed: int = 0
    serve: bool = False
    serve_host: str = "127.0.0.1"
    serve_port: int = 8040
    serve_state: str | None = None
    serve_hold: bool = False

    @classmethod
    def from_args(cls, args) -> "SweepOptions":
        """Lift an ``argparse`` namespace parsed with the shared parent
        parser into options; missing attributes keep their defaults, so
        namespaces from commands that only opt into part of the surface
        still resolve."""
        fields = {f.name: f.default for f in
                  cls.__dataclass_fields__.values()}
        return cls(**{name: getattr(args, name, default)
                      for name, default in fields.items()})

    def make_store(self) -> ResultStore | None:
        """``--cache-dir``/``--no-cache``, resolved to a store."""
        if not self.cache_dir or self.no_cache:
            return None
        return ResultStore(self.cache_dir)

    def make_injector(self):
        """The ``--sweep-*-rate`` chaos knobs, resolved to a
        :class:`~repro.faults.sweep.SweepFaultInjector` (or None when
        all rates are zero)."""
        if not (self.sweep_kill_rate or self.sweep_hang_rate
                or self.sweep_tear_rate):
            return None
        from repro.faults.sweep import SweepFaultInjector
        hang_seconds = 30.0
        if self.timeout is not None:
            # Hangs only matter relative to the deadline; outlive it.
            hang_seconds = max(hang_seconds, 2.0 * self.timeout)
        return SweepFaultInjector(
            seed=self.sweep_fault_seed, kill_rate=self.sweep_kill_rate,
            hang_rate=self.sweep_hang_rate, hang_seconds=hang_seconds,
            tear_rate=self.sweep_tear_rate)

    def make_runner(self, cache: ResultCache,
                    telemetry=None) -> SweepRunner:
        """A :class:`SweepRunner` wired up from the supervision knobs."""
        return SweepRunner(cache, jobs=self.jobs, timeout=self.timeout,
                           max_retries=self.max_retries,
                           keep_going=self.keep_going,
                           injector=self.make_injector(),
                           telemetry=telemetry)
