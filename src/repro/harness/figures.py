"""Regeneration of every table and figure in the paper's evaluation.

Each builder returns a :class:`FigureData`: ordered function names,
series (one per approach), and the values the paper plots.  A shared
:class:`~repro.harness.experiment.ResultCache` lets Figure 3b and 3c
reuse the same concurrent runs, exactly as the paper measures latency
and memory from one experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.base import approach_registry
from repro.cluster.spec import ClusterSpec
from repro.harness.experiment import ResultCache
from repro.snapstore.spec import SnapStoreSpec
from repro.workloads.traffic import TrafficSpec
from repro.harness.spec import ScenarioSpec
from repro.units import GIB, MIB, PAGE_SIZE
from repro.workloads.profile import FUNCTIONS, FunctionProfile, profile_by_name

# Ensure all approaches (incl. repro.core's) are registered on import.
import repro.baselines  # noqa: F401
import repro.core  # noqa: F401

#: Number of concurrent instances in the Figure 3b/3c experiments.
CONCURRENT_INSTANCES = 10

#: The scenario matrix behind each figure: (approaches, n_instances).
#: The builders below iterate these same tuples, so enumerating a
#: figure's specs (for a parallel sweep) and building it can never
#: disagree about which cells exist.
FIGURE_MATRIX: dict[str, tuple[tuple[str, ...], int]] = {
    "3a": (("reap", "faasnap", "snapbpf"), 1),
    "3b": (("linux-nora", "linux-ra", "reap", "snapbpf"),
           CONCURRENT_INSTANCES),
    "3c": (("linux-nora", "linux-ra", "reap", "snapbpf"),
           CONCURRENT_INSTANCES),
    "4": (("linux-ra", "pv-ptes", "snapbpf"), 1),
    "overheads": (("snapbpf",), 1),
    "mem": (("linux-ra", "reap", "snapbpf"), CONCURRENT_INSTANCES),
    "cluster": (("linux-ra", "reap", "faasnap", "snapbpf"), 1),
    "traffic": (("linux-ra", "reap", "faasnap", "snapbpf"), 1),
    "storage": (("linux-ra", "reap", "snapbpf"), 1),
}

FIGURES: tuple[str, ...] = tuple(FIGURE_MATRIX)

#: The cluster figure's sweep axes: routing policy x fleet size.
CLUSTER_POLICIES = ("random", "round-robin", "least-loaded",
                    "snapshot-locality")
CLUSTER_NODE_COUNTS = (2, 4)

#: The cluster figure defaults to ONE base function (its cells are whole
#: fleet simulations — 13 base functions x 32 cells would dwarf every
#: other figure combined); pass ``functions=...`` to widen it.
CLUSTER_BASE_FUNCTIONS = ("json",)


def cluster_cell_spec(profile: FunctionProfile, approach: str,
                      policy: str, n_nodes: int,
                      **cluster_kwargs) -> ScenarioSpec:
    """The canonical spec for one cluster-figure cell."""
    return ScenarioSpec(
        function=profile, approach=approach,
        cluster=ClusterSpec(n_nodes=n_nodes, policy=policy,
                            **cluster_kwargs))


#: The traffic figure's keep-alive axis.
TRAFFIC_KEEPALIVES = ("fixed", "histogram")

#: Metrics plotted per (keep-alive, metric) row of the traffic figure:
#: ScenarioResult.extra key and a display label.
TRAFFIC_METRICS = (("traffic_cold_ratio", "cold-ratio"),
                   ("traffic_p999_e2e", "p99.9-e2e"))


def default_traffic_spec(quick: bool = False) -> TrafficSpec:
    """The committed traffic-figure workload: 10k functions, ~1.3M total
    invocations across the 4 approaches x 2 keep-alive cells (quick:
    a CI-sized shrink of the same shape)."""
    if quick:
        return TrafficSpec(n_functions=400, n_tenants=4, total_rps=80.0,
                           duration=10.0, diurnal_period=8.0, n_bursts=2,
                           burst_multiplier=3.0, burst_duration=2.0)
    return TrafficSpec(n_functions=10_000, n_tenants=8, total_rps=2500.0,
                       duration=60.0, diurnal_period=40.0, n_bursts=6,
                       burst_multiplier=3.0, burst_duration=5.0)


def traffic_cluster_kwargs(quick: bool = False) -> dict:
    """Fleet shape for one traffic cell (slots sized so the slowest
    approach, linux-ra cold starts, fits below capacity outside bursts)."""
    if quick:
        return {"n_nodes": 3, "overflow_inflight": 8}
    return {"n_nodes": 48, "overflow_inflight": 32}


def traffic_cell_spec(profile: FunctionProfile, approach: str,
                      keepalive: str,
                      traffic: TrafficSpec | None = None,
                      quick: bool = False,
                      **cluster_kwargs) -> ScenarioSpec:
    """The canonical spec for one traffic-figure cell."""
    kwargs = {**traffic_cluster_kwargs(quick), **cluster_kwargs}
    return ScenarioSpec(
        function=profile, approach=approach,
        cluster=ClusterSpec(
            keepalive=keepalive,
            traffic=traffic or default_traffic_spec(quick), **kwargs))

#: The storage figure's tier axis: snapstore configurations swept
#: against the flat-file baseline.  ``local`` is the identity
#: configuration (results byte-identical to ``flat``); ``tiered`` caps
#: the local tier so demotion to the HDD tier actually happens.
STORAGE_TIERS: dict[str, SnapStoreSpec | None] = {
    "flat": None,
    "local": SnapStoreSpec(),
    "base-local": SnapStoreSpec(placement="base-local"),
    "tiered": SnapStoreSpec(placement="base-local", hdd_tier=True,
                            local_capacity_bytes=256 * MIB),
    "remote": SnapStoreSpec(placement="remote"),
}

#: The storage figure's routing axis: the locality-vs-random margin is
#: the point (a locality miss now costs real staged remote fetches).
STORAGE_POLICIES = ("random", "snapshot-locality")

STORAGE_NODE_COUNT = 4

#: Metrics reported per (tier, policy) row of the storage figure:
#: ScenarioResult.extra key, display label, and scale factor.
STORAGE_METRICS = (
    ("cluster_cold_ratio", "cold-ratio", 1.0),
    ("cluster_p99_latency", "p99-e2e", 1.0),
    ("snapstore_dedup_factor", "dedup", 1.0),
    ("snapstore_local_bytes", "local-GiB", 1.0 / GIB),
    ("snapstore_hdd_bytes", "hdd-GiB", 1.0 / GIB),
    ("snapstore_remote_bytes", "remote-GiB", 1.0 / GIB),
)


def storage_cluster_kwargs(quick: bool = False) -> dict:
    """Cluster workload shared by the storage figure and the CLI's
    ``storage`` command; ``quick`` shrinks it to CI smoke size."""
    if quick:
        return dict(n_functions=2, duration=3.0)
    return {}


def storage_cell_spec(profile: FunctionProfile, approach: str,
                      tier: str, policy: str,
                      n_nodes: int = STORAGE_NODE_COUNT,
                      **cluster_kwargs) -> ScenarioSpec:
    """The canonical spec for one storage-figure cell."""
    return ScenarioSpec(
        function=profile, approach=approach,
        snapstore=STORAGE_TIERS[tier],
        cluster=ClusterSpec(n_nodes=n_nodes, policy=policy,
                            **cluster_kwargs))


#: Approaches whose restore installs private anonymous frames via
#: userfaultfd (per-VM, unreclaimable) rather than shared page-cache
#: pages.  Used to compose the memory-pressure figure and to size pools.
UFFD_APPROACHES = ("reap", "faast")

#: Frame-pool headroom factors for the memory-pressure figure: 1.0
#: leaves the full reclaimable set resident, 0.25 forces the kernel to
#: shed three quarters of it.  REAP's pool is sized by the same formula
#: but its reclaimable set is empty — its frames are pinned anonymous.
MEM_HEADROOMS = (1.0, 0.25)


def pressure_ram_bytes(profile: FunctionProfile, approach: str,
                       n_instances: int, headroom: float) -> int:
    """Frame-pool size that leaves ``headroom`` of the run's reclaimable
    pages worth of room above its unreclaimable footprint.

    The unreclaimable floor is composed per approach: userfaultfd
    restores pin ``n x (ws + alloc)`` anonymous frames; page-cache
    restores pin ``n x (alloc + written)`` anonymous frames (runtime
    allocations plus CoW copies of written pages) plus the still-mapped
    ``ws - written`` file pages shared by all instances.  The reclaimable
    set is the file pages whose last mapping went away (CoW-released
    written pages) — or, for uffd, the spent record-phase cache fill.
    """
    ws = profile.ws_pages
    alloc = profile.alloc_pages
    written = int(ws * profile.write_frac)
    if approach in UFFD_APPROACHES:
        anon = n_instances * (ws + alloc)
        pinned_file = 0
        reclaimable = ws
    else:
        anon = n_instances * (alloc + written)
        pinned_file = ws - written
        reclaimable = written
    slack = 256  # allocator churn: in-flight fills, transient CoW pairs
    return (anon + pinned_file + int(reclaimable * headroom)
            + slack) * PAGE_SIZE


def figure_specs(figure: str, functions=None) -> list[ScenarioSpec]:
    """Every scenario cell one figure needs, as sweepable specs."""
    approaches, n_instances = FIGURE_MATRIX[figure]
    if figure == "cluster":
        return [cluster_cell_spec(p, a, policy, n_nodes)
                for p in _cluster_profiles(functions) for a in approaches
                for policy in CLUSTER_POLICIES
                for n_nodes in CLUSTER_NODE_COUNTS]
    if figure == "traffic":
        return [traffic_cell_spec(p, a, keepalive)
                for p in _cluster_profiles(functions) for a in approaches
                for keepalive in TRAFFIC_KEEPALIVES]
    if figure == "storage":
        return [storage_cell_spec(p, a, tier, policy)
                for p in _cluster_profiles(functions) for a in approaches
                for tier in STORAGE_TIERS for policy in STORAGE_POLICIES]
    if figure == "mem":
        return [
            ScenarioSpec(
                function=p, approach=a, n_instances=n_instances,
                ram_bytes=pressure_ram_bytes(p, a, n_instances, g))
            for p in _profiles(functions) for a in approaches
            for g in MEM_HEADROOMS]
    return [ScenarioSpec(function=p, approach=a, n_instances=n_instances)
            for p in _profiles(functions) for a in approaches]


def matrix_specs(figures=None, functions=None) -> list[ScenarioSpec]:
    """The union of several figures' cells, deduplicated in first-seen
    order (3b and 3c share every run, 3a and 4 share snapbpf x1)."""
    specs: list[ScenarioSpec] = []
    seen: set[ScenarioSpec] = set()
    for figure in (figures if figures is not None else FIGURES):
        for spec in figure_specs(figure, functions):
            if spec not in seen:
                seen.add(spec)
                specs.append(spec)
    return specs


@dataclass
class FigureData:
    """One regenerated figure: functions x series -> value."""

    figure: str
    ylabel: str
    functions: list[str]
    series: dict[str, list[float]] = field(default_factory=dict)
    notes: str = ""

    def value(self, function: str, series: str) -> float:
        return self.series[series][self.functions.index(function)]

    def as_rows(self) -> list[list[str]]:
        header = ["function"] + list(self.series)
        rows = [header]
        for i, function in enumerate(self.functions):
            rows.append([function] + [f"{self.series[s][i]:.3f}"
                                      for s in self.series])
        return rows


def _profiles(functions) -> list[FunctionProfile]:
    if functions is None:
        return list(FUNCTIONS)
    by_name = {p.name: p for p in FUNCTIONS}
    return [p if isinstance(p, FunctionProfile) else by_name[p]
            for p in functions]


def _cluster_profiles(functions) -> list[FunctionProfile]:
    if functions is None:
        return [profile_by_name(name) for name in CLUSTER_BASE_FUNCTIONS]
    return _profiles(functions)


def figure_3a(cache: ResultCache | None = None,
              functions=None) -> FigureData:
    """Fig. 3a: E2E latency (s), single instance: REAP / FaaSnap / SnapBPF."""
    cache = cache or ResultCache()
    profiles = _profiles(functions)
    data = FigureData(figure="3a", ylabel="E2E latency (s)",
                      functions=[p.name for p in profiles])
    approaches, n_instances = FIGURE_MATRIX["3a"]
    for approach in approaches:
        data.series[approach] = [
            cache.get(ScenarioSpec(function=p, approach=approach,
                                   n_instances=n_instances)).mean_e2e
            for p in profiles]
    return data


def figure_3b(cache: ResultCache | None = None, functions=None,
              normalize: bool = True) -> FigureData:
    """Fig. 3b: E2E latency, 10 concurrent instances, normalized to
    Linux-NoRA: Linux-NoRA / Linux-RA / REAP / SnapBPF."""
    cache = cache or ResultCache()
    profiles = _profiles(functions)
    approaches, n_instances = FIGURE_MATRIX["3b"]
    raw = {a: [cache.get(ScenarioSpec(function=p, approach=a,
                                      n_instances=n_instances)).mean_e2e
               for p in profiles] for a in approaches}
    data = FigureData(
        figure="3b",
        ylabel=("E2E latency (normalized to Linux-NoRA)"
                if normalize else "E2E latency (s)"),
        functions=[p.name for p in profiles],
        notes=f"{CONCURRENT_INSTANCES} concurrent instances, "
              f"identical inputs")
    for approach in approaches:
        if normalize:
            data.series[approach] = [
                raw[approach][i] / raw["linux-nora"][i]
                for i in range(len(profiles))]
        else:
            data.series[approach] = raw[approach]
    return data


def figure_3c(cache: ResultCache | None = None, functions=None) -> FigureData:
    """Fig. 3c: system-wide memory (GiB), 10 concurrent instances."""
    cache = cache or ResultCache()
    profiles = _profiles(functions)
    data = FigureData(
        figure="3c", ylabel="Memory consumption (GiB)",
        functions=[p.name for p in profiles],
        notes=f"{CONCURRENT_INSTANCES} concurrent instances")
    approaches, n_instances = FIGURE_MATRIX["3c"]
    for approach in approaches:
        data.series[approach] = [
            cache.get(ScenarioSpec(function=p, approach=approach,
                                   n_instances=n_instances))
            .peak_memory_bytes / GIB
            for p in profiles]
    return data


def figure_4(cache: ResultCache | None = None, functions=None) -> FigureData:
    """Fig. 4: breakdown — normalized E2E latency of Linux-RA (baseline),
    PV PTE marking alone, and full SnapBPF (PV + eBPF prefetch)."""
    cache = cache or ResultCache()
    profiles = _profiles(functions)
    approaches, n_instances = FIGURE_MATRIX["4"]
    raw = {a: [cache.get(ScenarioSpec(function=p, approach=a,
                                      n_instances=n_instances)).mean_e2e
               for p in profiles] for a in approaches}
    data = FigureData(
        figure="4", ylabel="Normalized E2E latency (Linux-RA = 1.0)",
        functions=[p.name for p in profiles],
        notes="single instance; lower is better")
    for approach in approaches:
        data.series[approach] = [raw[approach][i] / raw["linux-ra"][i]
                                 for i in range(len(profiles))]
    return data


def overheads(cache: ResultCache | None = None, functions=None) -> FigureData:
    """§4 'SnapBPF Overheads': offset-load (eBPF map) latency, absolute
    (ms) and as a fraction of E2E latency."""
    cache = cache or ResultCache()
    profiles = _profiles(functions)
    data = FigureData(
        figure="overheads",
        ylabel="offset-load latency",
        functions=[p.name for p in profiles],
        notes="map-load ms and fraction of E2E; paper: ~1-2 ms, <1%")
    load_ms, frac = [], []
    for p in profiles:
        result = cache.get(ScenarioSpec(function=p, approach="snapbpf",
                                        n_instances=1))
        load = result.extra.get("map_load_seconds", 0.0)
        load_ms.append(load * 1e3)
        frac.append(load / result.mean_e2e if result.mean_e2e else 0.0)
    data.series["map_load_ms"] = load_ms
    data.series["fraction_of_e2e"] = frac
    return data


def figure_mem(cache: ResultCache | None = None,
               functions=None) -> FigureData:
    """Memory-pressure elasticity (paper Fig. 3c's dynamic claim): under
    a shrinking frame pool, page-cache-backed approaches deflate their
    file-backed footprint via reclaim, while REAP's per-VM anonymous
    frames cannot be shed at all.

    Each approach gets one series per headroom factor g (pool sized by
    :func:`pressure_ram_bytes`).  For uffd approaches the value is the
    per-VM anonymous footprint (GiB) — flat across g; for page-cache
    approaches it is the shared file-backed footprint — dropping with g.
    """
    cache = cache or ResultCache()
    profiles = _profiles(functions)
    approaches, n_instances = FIGURE_MATRIX["mem"]
    data = FigureData(
        figure="mem", ylabel="End-of-run footprint (GiB)",
        functions=[p.name for p in profiles],
        notes=f"{n_instances} concurrent instances; g = headroom over "
              f"the unreclaimable floor; file series deflate under "
              f"pressure, anon/vm series stay pinned")
    for approach in approaches:
        uffd = approach in UFFD_APPROACHES
        kind = "anon/vm" if uffd else "file"
        for g in MEM_HEADROOMS:
            values = []
            for p in profiles:
                spec = ScenarioSpec(
                    function=p, approach=approach, n_instances=n_instances,
                    ram_bytes=pressure_ram_bytes(p, approach,
                                                 n_instances, g))
                result = cache.get(spec)
                if uffd:
                    values.append(result.end_anon_bytes / n_instances / GIB)
                else:
                    values.append(result.end_file_bytes / GIB)
            data.series[f"{approach} {kind} g={g}"] = values
    return data


def cluster_figure_data(cache: ResultCache, profiles, approaches,
                        policies=CLUSTER_POLICIES,
                        node_counts=CLUSTER_NODE_COUNTS,
                        **cluster_kwargs) -> FigureData:
    """Cold-start ratio per (base function, policy, fleet size) row and
    approach column — shared by :func:`figure_cluster` and the CLI's
    ``cluster --fig`` mode (which narrows the axes)."""
    rows = [(p, policy, n) for p in profiles
            for policy in policies for n in node_counts]
    data = FigureData(
        figure="cluster", ylabel="cold-start ratio",
        functions=[f"{p.name} {policy} n={n}" for p, policy, n in rows],
        notes="snapshot-locality keeps each function's snapshot pages "
              "hot on one node; random pays a cold cache per re-route")
    for approach in approaches:
        data.series[approach] = [
            cache.get(cluster_cell_spec(p, approach, policy, n,
                                        **cluster_kwargs))
            .extra["cluster_cold_ratio"]
            for p, policy, n in rows]
    return data


def traffic_figure_data(cache: ResultCache, profiles, approaches,
                        keepalives=TRAFFIC_KEEPALIVES,
                        traffic: TrafficSpec | None = None,
                        quick: bool = False,
                        **cluster_kwargs) -> FigureData:
    """Keep-alive policy x metric rows, approach columns — shared by
    :func:`figure_traffic` and the CLI's ``traffic`` command (which can
    narrow the axes or shrink the workload)."""
    rows = [(p, keepalive, key, label) for p in profiles
            for keepalive in keepalives
            for key, label in TRAFFIC_METRICS]
    data = FigureData(
        figure="traffic", ylabel="cold-start ratio / p99.9 E2E (s)",
        functions=[f"{p.name} {keepalive} {label}"
                   for p, keepalive, _, label in rows],
        notes="histogram keep-alive learns per-function idle times; "
              "fixed parks every sandbox for the same TTL")
    for approach in approaches:
        data.series[approach] = [
            cache.get(traffic_cell_spec(p, approach, keepalive,
                                        traffic=traffic, quick=quick,
                                        **cluster_kwargs)).extra[key]
            for p, keepalive, key, _ in rows]
    return data


def figure_traffic(cache: ResultCache | None = None,
                   functions=None) -> FigureData:
    """Traffic figure: production-shaped load (Zipf popularity, diurnal
    + burst arrivals, multi-tenant mixes) through the cluster plane,
    comparing the four restore approaches x keep-alive policies on
    cold-start ratio and p99.9 E2E latency."""
    cache = cache or ResultCache()
    approaches, _ = FIGURE_MATRIX["traffic"]
    return traffic_figure_data(cache, _cluster_profiles(functions),
                               approaches)


def storage_figure_data(cache: ResultCache, profiles, approaches,
                        tiers=None, policies=STORAGE_POLICIES,
                        n_nodes: int = STORAGE_NODE_COUNT,
                        **cluster_kwargs) -> FigureData:
    """Tier config x routing policy x metric rows, approach columns —
    shared by :func:`figure_storage` and the CLI's ``storage`` command
    (which can narrow the axes or shrink the workload)."""
    tier_names = list(tiers if tiers is not None else STORAGE_TIERS)
    rows = [(p, tier, policy, key, label, scale)
            for p in profiles for tier in tier_names
            for policy in policies
            for key, label, scale in STORAGE_METRICS]
    data = FigureData(
        figure="storage",
        ylabel="cold-ratio / p99 E2E (s) / dedup / tier bytes (GiB)",
        functions=[f"{p.name} {tier} {policy} {label}"
                   for p, tier, policy, _, label, _ in rows],
        notes="local = identity config (byte-identical to flat); "
              "colder placements stage chunks through the shared remote "
              "object store, so a locality miss costs real fetches")
    for approach in approaches:
        data.series[approach] = [
            cache.get(storage_cell_spec(p, approach, tier, policy,
                                        n_nodes=n_nodes, **cluster_kwargs))
            .extra.get(key, 0.0) * scale
            for p, tier, policy, key, _, scale in rows]
    return data


def figure_storage(cache: ResultCache | None = None,
                   functions=None) -> FigureData:
    """Storage figure: snapshot-tiering sweep through the cluster plane —
    tier configurations x routing policies, reporting cold-start ratio,
    p99 E2E, fleet dedup factor, and bytes per tier, with the flat-file
    baseline alongside."""
    cache = cache or ResultCache()
    approaches, _ = FIGURE_MATRIX["storage"]
    return storage_figure_data(cache, _cluster_profiles(functions),
                               approaches)


def figure_cluster(cache: ResultCache | None = None,
                   functions=None) -> FigureData:
    """Cluster figure: routing policy x fleet size sweep showing
    snapshot-locality routing cutting the cold-start ratio versus
    random spraying for every restore approach."""
    cache = cache or ResultCache()
    approaches, _ = FIGURE_MATRIX["cluster"]
    return cluster_figure_data(cache, _cluster_profiles(functions),
                               approaches)


#: Builder function per figure name (shared by the CLI and benchmarks).
FIGURE_BUILDERS = {
    "3a": figure_3a,
    "3b": figure_3b,
    "3c": figure_3c,
    "4": figure_4,
    "overheads": overheads,
    "mem": figure_mem,
    "cluster": figure_cluster,
    "traffic": figure_traffic,
    "storage": figure_storage,
}


def build_figure(figure: str, cache: ResultCache | None = None,
                 functions=None) -> FigureData:
    """Build one figure by name against a (possibly pre-warmed) cache."""
    return FIGURE_BUILDERS[figure](cache, functions=functions)


def table_1() -> list[dict[str, str]]:
    """Table 1: the mechanism comparison, generated from the approach
    implementations themselves."""
    registry = approach_registry()
    rows = []
    for name in ("reap", "faast", "faasnap", "snapbpf"):
        rows.append(registry[name].table1_row())
    return rows
