"""Perf-trajectory harness: ``python -m repro bench``.

The reproduction's roadmap multiplies simulated-event counts (cluster
fleets, policy sweeps, request trains), so the hot path's raw speed is a
tracked artifact, not folklore.  This module runs a pinned subset of the
figure matrix plus an eBPF-tier microbenchmark and writes the numbers to
``BENCH_<issue>.json`` at the repo root.  The committed file is the
baseline the CI smoke job compares a fresh ``--quick`` run against,
failing on a >30% events/sec regression.

What is measured per cell:

* ``cold_seconds`` — wall time of a fresh scenario run (new kernel, new
  caches; the figure-sweep unit of work),
* ``warm_seconds`` — wall time of a :class:`ResultCache` hit for the
  same spec (the memoized path figure builders take),
* ``events`` / ``events_per_sec`` — DES events processed by the run's
  :class:`~repro.sim.engine.Environment` divided by the cold wall time.
  Event *counts* are deterministic per spec, so events/sec moves only
  when the engine's raw speed does — that makes it comparable across
  commits, unlike pure wall time.

``pre_pr_seconds`` is the wall time of the same cell measured at the
seed commit (813a371, before the compile tier / bitmap page sets /
slim events landed); because event counts are deterministic,
``speedup_vs_pre_pr`` is both a wall-time and an events/sec ratio.

The eBPF microbenchmark runs the capture program (the hottest hook in
snapbpf cells: it fires on every page-cache insertion) through both
execution tiers — compiled closures and the ``REPRO_EBPF_INTERP=1``
interpreter loop — and reports runs/sec for each.  The compiled tier is
the default everywhere; the ratio documents what the tier buys.

Timing cells run serially even when the shared ``--jobs`` flag is set:
parallel workers contend for cores and would poison the wall-clock
numbers the trajectory exists to track.
"""

from __future__ import annotations

import json
import math
import struct
import time
from dataclasses import dataclass

from repro.harness.experiment import ResultCache, make_kernel, run_scenario
from repro.harness.spec import ScenarioSpec
from repro.units import GIB

#: Schema tag for BENCH_*.json; bump on layout changes.
BENCH_SCHEMA = 1

#: The issue number this trajectory file belongs to (file name suffix).
BENCH_ISSUE = 10

#: Default trajectory file at the repo root.
DEFAULT_BENCH_PATH = f"BENCH_{BENCH_ISSUE}.json"

#: CI smoke gate: fail when fresh events/sec drops below
#: ``(1 - threshold)`` of the committed baseline.
DEFAULT_REGRESSION_THRESHOLD = 0.30

#: Microbenchmark program runs per tier (full / --quick).
MICROBENCH_ROUNDS = 20_000
MICROBENCH_ROUNDS_QUICK = 4_000


@dataclass(frozen=True)
class BenchCell:
    """One pinned figure-matrix cell in the trajectory."""

    function: str
    approach: str
    n_instances: int
    #: Frame-pool size in GiB (None = default pool, pressure plane off).
    ram_gib: float | None = None
    #: True for cells whose hot path is dominated by eBPF hook fires
    #: (the cells the compile tier's >=2x acceptance gate applies to).
    ebpf_heavy: bool = False
    #: Included in ``--quick`` (CI smoke) runs.
    quick: bool = False
    #: Wall seconds for this cell measured at the seed commit, before
    #: the raw-speed pass (same machine class as the committed file).
    pre_pr_seconds: float | None = None
    #: Traffic-plane cell: the spec nests the CI-scale TrafficSpec (the
    #: quick traffic-figure cell) and runs through the cluster runner,
    #: so the trajectory tracks the traffic plane's events/sec too.
    traffic: bool = False
    #: Snapstore placement for a tiered-restore cell (e.g. "remote"):
    #: every cold start stages chunks through the content-addressed
    #: store, so the trajectory tracks the staging path's events/sec.
    #: None = flat snapshot files.
    snapstore: str | None = None

    @property
    def key(self) -> str:
        if self.traffic:
            return f"traffic/{self.approach}+histogram"
        suffix = f"+ram{self.ram_gib:g}" if self.ram_gib else ""
        if self.snapstore:
            suffix += f"+snap-{self.snapstore}"
        return f"{self.function}/{self.approach}x{self.n_instances}{suffix}"

    def spec(self) -> ScenarioSpec:
        if self.traffic:
            from repro.harness.figures import traffic_cell_spec
            from repro.workloads.profile import profile_by_name
            return traffic_cell_spec(profile_by_name(self.function),
                                     self.approach, "histogram",
                                     quick=True)
        snapstore = None
        if self.snapstore:
            from repro.snapstore import SnapStoreSpec
            snapstore = SnapStoreSpec(placement=self.snapstore)
        return ScenarioSpec(
            function=self.function, approach=self.approach,
            n_instances=self.n_instances,
            ram_bytes=(int(self.ram_gib * GIB) if self.ram_gib else None),
            snapstore=snapstore)


#: The pinned subset: two eBPF-heavy snapbpf cells (one pressured, one
#: large), one uffd baseline cell, a cheap smoke pair for CI, and a
#: remote-placement snapstore cell tracking the tiered-restore path.
BENCH_CELLS: tuple[BenchCell, ...] = (
    BenchCell("json", "snapbpf", 4, ebpf_heavy=True, quick=True,
              pre_pr_seconds=1.940),
    BenchCell("html", "reap", 4, quick=True, pre_pr_seconds=1.063),
    BenchCell("json", "snapbpf", 10, ram_gib=0.185, ebpf_heavy=True,
              pre_pr_seconds=11.077),
    BenchCell("bert", "snapbpf", 10, ebpf_heavy=True,
              pre_pr_seconds=34.200),
    BenchCell("json", "snapbpf", 1, quick=True, traffic=True),
    BenchCell("json", "snapbpf", 4, ebpf_heavy=True, quick=True,
              snapstore="remote"),
)


def ebpf_microbench(rounds: int = MICROBENCH_ROUNDS) -> dict:
    """Capture-program runs/sec on both execution tiers.

    Fresh interpreter, ring buffer, and program per tier so neither
    tier warms the other; the first (compiling) run is outside the
    timed window for both.
    """
    from repro.core.progs import build_capture_program, make_events_ringbuf
    from repro.ebpf.interp import Interpreter

    ino = 31337
    ctxs = [struct.pack("<QQ", ino, index) for index in range(rounds)]

    def tier_runs_per_sec(use_compiled: bool) -> float:
        interp = Interpreter()
        interp.use_compiled = use_compiled
        events = make_events_ringbuf("bench-events")
        program = build_capture_program(ino, events)
        interp.run(program, ctxs[0])  # warm-up (compile on first run)
        run = interp.run
        # Best of three trials: the shortest wall time is the one with
        # the least host-scheduling interference (containerized CI
        # neighbours make single-trial rates swing by tens of percent).
        best = math.inf
        for _ in range(3):
            start = time.perf_counter()
            for ctx in ctxs:
                run(program, ctx)
            best = min(best, time.perf_counter() - start)
        return rounds / best

    compiled = tier_runs_per_sec(True)
    interpreted = tier_runs_per_sec(False)
    return {
        "rounds": rounds,
        "compiled_runs_per_sec": round(compiled, 1),
        "interp_runs_per_sec": round(interpreted, 1),
        "speedup": round(compiled / interpreted, 2),
    }


def run_cell(cell: BenchCell) -> dict:
    """Time one cell cold (fresh run) and warm (ResultCache hit)."""
    spec = cell.spec()
    if cell.traffic:
        # Cluster runners build their own per-node kernels; the traffic
        # report carries the aggregate event count instead.
        start = time.perf_counter()
        result = run_scenario(spec)
        cold_seconds = time.perf_counter() - start
        events = int(result.extra["traffic_events_processed"])
    else:
        # Build the kernel by hand so the run's Environment (and its
        # events_processed counter) stays visible; mirrors
        # _run_scenario's own construction exactly, pressure plane
        # included.
        kernel = make_kernel(spec.device_kind,
                             ram_bytes=(spec.ram_bytes if spec.ram_bytes
                                        is not None else 256 * GIB))
        if spec.ram_bytes is not None:
            kernel.reclaim.enable_watermarks()
        start = time.perf_counter()
        result = run_scenario(spec, kernel=kernel)
        cold_seconds = time.perf_counter() - start
        events = kernel.env.events_processed

    cache = ResultCache()
    cache.insert(spec, result)
    start = time.perf_counter()
    cache.get(spec)
    warm_seconds = time.perf_counter() - start

    record = {
        "cell": cell.key,
        "function": cell.function,
        "approach": cell.approach,
        "n_instances": cell.n_instances,
        "ebpf_heavy": cell.ebpf_heavy,
        "quick": cell.quick,
        "events": events,
        "cold_seconds": round(cold_seconds, 4),
        "warm_seconds": round(warm_seconds, 6),
        "events_per_sec": round(events / cold_seconds, 1),
    }
    if cell.traffic:
        record["traffic_invocations"] = int(
            result.extra["traffic_invocations"])
        record["traffic_cold_ratio"] = result.extra["traffic_cold_ratio"]
        record["p999_e2e"] = result.extra["traffic_p999_e2e"]
    else:
        record["mean_e2e"] = result.mean_e2e
    if cell.pre_pr_seconds is not None:
        record["pre_pr_seconds"] = cell.pre_pr_seconds
        record["pre_pr_events_per_sec"] = round(
            events / cell.pre_pr_seconds, 1)
        record["speedup_vs_pre_pr"] = round(
            cell.pre_pr_seconds / cold_seconds, 2)
    return record


def run_bench(quick: bool = False, progress=None) -> dict:
    """The full harness: microbench + every (quick-eligible) cell.

    ``progress`` is an optional ``str -> None`` callback for per-cell
    status lines (the CLI points it at stderr).
    """
    started = time.perf_counter()
    rounds = MICROBENCH_ROUNDS_QUICK if quick else MICROBENCH_ROUNDS
    if progress:
        progress(f"ebpf microbench ({rounds} rounds/tier)")
    micro = ebpf_microbench(rounds)
    cells = []
    for cell in BENCH_CELLS:
        if quick and not cell.quick:
            continue
        if progress:
            progress(f"cell {cell.key}")
        cells.append(run_cell(cell))
    return {
        "schema": BENCH_SCHEMA,
        "issue": BENCH_ISSUE,
        "quick": quick,
        "ebpf_microbench": micro,
        # The PR's acceptance gate: the compile tier must execute eBPF
        # programs at >=2x the pre-PR rate (the pre-PR tier *is* the
        # interpreter, still measurable via REPRO_EBPF_INTERP=1).  The
        # gate is on program execution, not whole-cell wall time: eBPF
        # was ~56% of the pre-PR snapbpf-cell profile, so even an
        # infinite tier speedup caps whole-cell gains near 2.3x
        # (observed: 1.1-1.4x, reported per cell above).
        "ebpf_tier_gate": {
            "required_speedup": 2.0,
            "measured_speedup": micro["speedup"],
            "pass": micro["speedup"] >= 2.0,
        },
        "cells": cells,
        "total_wall_seconds": round(time.perf_counter() - started, 2),
    }


def compare(fresh: dict, baseline: dict,
            threshold: float = DEFAULT_REGRESSION_THRESHOLD) -> list[str]:
    """Regressions in ``fresh`` vs the committed ``baseline``.

    Compares events/sec per cell (only cells present in both reports —
    a ``--quick`` run checks against the quick subset of a full
    baseline) and the microbench's compiled-tier runs/sec.  Returns
    human-readable regression lines; empty means the gate passes.
    """
    if not 0 < threshold < 1:
        raise ValueError(f"threshold must be in (0, 1), got {threshold}")
    floor = 1.0 - threshold
    regressions: list[str] = []

    base_micro = baseline.get("ebpf_microbench", {})
    fresh_micro = fresh.get("ebpf_microbench", {})
    base_rate = base_micro.get("compiled_runs_per_sec")
    fresh_rate = fresh_micro.get("compiled_runs_per_sec")
    if base_rate and fresh_rate and fresh_rate < floor * base_rate:
        regressions.append(
            f"ebpf microbench: compiled tier {fresh_rate:,.0f} runs/s "
            f"< {floor:.0%} of baseline {base_rate:,.0f} runs/s")

    base_cells = {c["cell"]: c for c in baseline.get("cells", [])}
    for cell in fresh.get("cells", []):
        base = base_cells.get(cell["cell"])
        if base is None:
            continue
        if cell["events"] != base["events"]:
            regressions.append(
                f"{cell['cell']}: event count changed "
                f"({base['events']} -> {cell['events']}); determinism "
                f"broke or the workload changed — re-baseline explicitly")
            continue
        if cell["events_per_sec"] < floor * base["events_per_sec"]:
            regressions.append(
                f"{cell['cell']}: {cell['events_per_sec']:,.0f} events/s "
                f"< {floor:.0%} of baseline "
                f"{base['events_per_sec']:,.0f} events/s "
                f"({cell['cold_seconds']:.2f}s vs "
                f"{base['cold_seconds']:.2f}s cold)")
    return regressions


def render_bench(report: dict) -> str:
    """The human-readable summary printed after a run."""
    lines = []
    micro = report["ebpf_microbench"]
    gate = report.get("ebpf_tier_gate", {})
    verdict = ""
    if gate:
        verdict = (f" (gate >= {gate['required_speedup']:.0f}x: "
                   f"{'pass' if gate['pass'] else 'FAIL'})")
    lines.append(
        f"ebpf tiers: compiled {micro['compiled_runs_per_sec']:>11,.0f} "
        f"runs/s | interp {micro['interp_runs_per_sec']:>11,.0f} runs/s "
        f"| {micro['speedup']:.2f}x{verdict}")
    header = (f"{'cell':28s} {'events':>10s} {'cold s':>8s} "
              f"{'warm s':>9s} {'events/s':>11s} {'vs pre-PR':>9s}")
    lines.append(header)
    for cell in report["cells"]:
        speedup = cell.get("speedup_vs_pre_pr")
        lines.append(
            f"{cell['cell']:28s} {cell['events']:>10,d} "
            f"{cell['cold_seconds']:>8.3f} {cell['warm_seconds']:>9.6f} "
            f"{cell['events_per_sec']:>11,.0f} "
            f"{(f'{speedup:.2f}x' if speedup else '-'):>9s}")
    lines.append(f"total wall {report['total_wall_seconds']:.1f}s")
    return "\n".join(lines)


def write_bench(report: dict, path: str) -> None:
    with open(path, "w") as fp:
        json.dump(report, fp, indent=1, sort_keys=False)
        fp.write("\n")


def load_bench(path: str) -> dict:
    with open(path) as fp:
        return json.load(fp)
