"""`ScenarioSpec` — the canonical, hashable description of one scenario.

One spec names everything that determines a scenario's outcome: the full
:class:`~repro.workloads.profile.FunctionProfile` (not just its name, so
a re-calibrated profile invalidates cached results), the approach
registry name, the concurrency level, the input seed, the
identical-vs-varying inputs switch, the device kind, and the optional
:class:`~repro.mm.costs.CostModel` override.  Because the simulation is
a pure function of these fields, a spec is also a *cache key*: two equal
specs always produce byte-identical :class:`ScenarioResult`\\ s, whatever
process or job count ran them.

``stable_hash()`` content-addresses the spec: a SHA-256 over the
canonical JSON form plus :data:`SCHEMA_VERSION`.  Bumping the schema
version (any change to spec or result serialization) therefore orphans
every old on-disk entry instead of deserializing it wrongly.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass

from repro.cluster.spec import ClusterSpec
from repro.mm.costs import CostModel
from repro.snapstore.spec import SnapStoreSpec
from repro.workloads.profile import FunctionProfile, profile_by_name

#: Version tag baked into every spec hash and on-disk store entry.  Bump
#: whenever the spec fields, result serialization, or simulation
#: semantics change in a way that invalidates cached results.
#: v2: memory-pressure plane (ram_bytes/evict_policy spec fields,
#: end_anon/end_file result fields).
#: v3: cluster plane (nested ClusterSpec field).
#: v4: traffic plane (ClusterSpec keep-alive policy fields and nested
#: TrafficSpec workload).
#: v5: snapstore plane (nested SnapStoreSpec field; snapshot tiering).
SCHEMA_VERSION = 5

_DEVICE_KINDS = ("ssd", "hdd")


def stable_hash(payload) -> str:
    """SHA-256 hex digest of a JSON-serializable payload, with sorted
    keys and compact separators so the digest is canonical."""
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class ScenarioSpec:
    """Everything that determines one scenario run (and its cache key)."""

    function: FunctionProfile
    approach: str
    n_instances: int = 1
    input_seed: int = 0
    vary_inputs: bool = False
    device_kind: str = "ssd"
    costs: CostModel | None = None
    #: Host RAM for the run.  ``None`` keeps the default 256 GiB pool
    #: with the pressure plane off; setting it sizes the frame pool AND
    #: enables watermarks + kswapd (a memory-pressure scenario).
    ram_bytes: int | None = None
    #: Named eviction-policy BPF program (repro.core.policies) attached
    #: to the reclaim hook before the timed invocations; ``None`` = LRU.
    evict_policy: str | None = None
    #: Fleet-level scenario (repro.cluster): when set, the run composes
    #: ``cluster.n_nodes`` hosts behind a gateway instead of one kernel;
    #: ``function`` becomes the base profile the cluster's function mix
    #: is cloned from, and per-node knobs (device_kind, costs, ram_bytes,
    #: evict_policy) apply to every node.
    cluster: ClusterSpec | None = None
    #: Tiered snapshot store (repro.snapstore): when set, snapshots are
    #: recorded as content-addressed chunks and restores resolve through
    #: the manifest, staging cold chunks from the configured tiers.
    #: ``None`` keeps the flat-file baseline.  In cluster scenarios every
    #: node gets a local store sharing one remote tier.
    snapstore: SnapStoreSpec | None = None

    def __post_init__(self) -> None:
        if isinstance(self.function, str):
            object.__setattr__(self, "function",
                               profile_by_name(self.function))
        if not isinstance(self.function, FunctionProfile):
            raise TypeError(f"function must be a FunctionProfile or name, "
                            f"got {type(self.function).__name__}")
        if not isinstance(self.approach, str):
            raise TypeError("approach must be a registry name (str); "
                            "factories cannot be hashed or serialized")
        if self.device_kind not in _DEVICE_KINDS:
            raise ValueError(f"unknown device kind {self.device_kind!r}")
        if self.n_instances < 1:
            raise ValueError(f"n_instances must be >= 1, "
                             f"got {self.n_instances}")
        if self.costs is not None and not isinstance(self.costs, CostModel):
            raise TypeError("costs must be a CostModel or None")
        if self.ram_bytes is not None:
            if not isinstance(self.ram_bytes, int) or self.ram_bytes <= 0:
                raise ValueError(f"ram_bytes must be a positive int or "
                                 f"None, got {self.ram_bytes!r}")
        if self.evict_policy is not None:
            from repro.core.policies import POLICIES
            if self.evict_policy not in POLICIES:
                raise ValueError(
                    f"unknown eviction policy {self.evict_policy!r}; "
                    f"choose from {', '.join(sorted(POLICIES))}")
        if isinstance(self.cluster, dict):
            object.__setattr__(self, "cluster",
                               ClusterSpec.from_dict(self.cluster))
        if self.cluster is not None:
            if not isinstance(self.cluster, ClusterSpec):
                raise TypeError(f"cluster must be a ClusterSpec or None, "
                                f"got {type(self.cluster).__name__}")
            if self.n_instances != 1:
                raise ValueError(
                    "cluster scenarios drive concurrency through the "
                    "arrival stream; n_instances must stay 1")
        if isinstance(self.snapstore, dict):
            object.__setattr__(self, "snapstore",
                               SnapStoreSpec.from_dict(self.snapstore))
        if self.snapstore is not None and not isinstance(
                self.snapstore, SnapStoreSpec):
            raise TypeError(f"snapstore must be a SnapStoreSpec or None, "
                            f"got {type(self.snapstore).__name__}")

    # -- identity ------------------------------------------------------------
    @property
    def function_name(self) -> str:
        return self.function.name

    def canonical(self) -> dict:
        """JSON-serializable dict with every outcome-determining field."""
        return {
            "function": asdict(self.function),
            "approach": self.approach,
            "n_instances": self.n_instances,
            "input_seed": self.input_seed,
            "vary_inputs": self.vary_inputs,
            "device_kind": self.device_kind,
            "costs": asdict(self.costs) if self.costs is not None else None,
            "ram_bytes": self.ram_bytes,
            "evict_policy": self.evict_policy,
            "cluster": (self.cluster.canonical()
                        if self.cluster is not None else None),
            "snapstore": (self.snapstore.canonical()
                          if self.snapstore is not None else None),
        }

    def stable_hash(self) -> str:
        """Content address: stable across processes and sessions."""
        return stable_hash({"schema": SCHEMA_VERSION,
                            "spec": self.canonical()})

    def seed_material(self) -> int:
        """Deterministic per-spec seed for worker-process RNG hygiene."""
        return int(self.stable_hash()[:16], 16)

    @classmethod
    def from_dict(cls, data: dict) -> "ScenarioSpec":
        costs = data.get("costs")
        return cls(
            function=FunctionProfile(**data["function"]),
            approach=data["approach"],
            n_instances=data["n_instances"],
            input_seed=data["input_seed"],
            vary_inputs=data["vary_inputs"],
            device_kind=data["device_kind"],
            costs=CostModel(**costs) if costs is not None else None,
            ram_bytes=data.get("ram_bytes"),
            evict_policy=data.get("evict_policy"),
            cluster=(ClusterSpec.from_dict(data["cluster"])
                     if data.get("cluster") is not None else None),
            snapstore=(SnapStoreSpec.from_dict(data["snapstore"])
                       if data.get("snapstore") is not None else None),
        )

    def __str__(self) -> str:  # pragma: no cover - display helper
        extras = []
        if self.vary_inputs:
            extras.append("vary-inputs")
        if self.costs is not None:
            extras.append("custom-costs")
        if self.ram_bytes is not None:
            extras.append(f"ram={self.ram_bytes // (1 << 20)}MiB")
        if self.evict_policy is not None:
            extras.append(f"policy={self.evict_policy}")
        if self.cluster is not None:
            extras.append(f"cluster={self.cluster.policy}"
                          f"x{self.cluster.n_nodes}")
        if self.snapstore is not None:
            extras.append(f"snapstore={self.snapstore.placement}")
        suffix = f" ({', '.join(extras)})" if extras else ""
        return (f"{self.function_name}/{self.approach} "
                f"x{self.n_instances} [{self.device_kind}]{suffix}")
