"""Function workload models.

The paper evaluates FunctionBench workloads plus three real-world
functions from FaaSMem (html_serving, graph_bfs, bert).  Neither suite
can run inside this simulator, so each function is modeled as a
:class:`~repro.workloads.profile.FunctionProfile` — snapshot size,
working-set size and spatial structure, ephemeral allocation volume,
compute time, write fraction — calibrated to the footprints those papers
report, from which a deterministic access trace is generated
(:mod:`repro.workloads.trace`).  The evaluation only ever consumes the
trace (ordered page touches, allocations, compute gaps), so matched
shape parameters exercise the same code paths as the real functions.
"""

from repro.workloads.profile import (
    FAASMEM_FUNCTIONS,
    FUNCTIONBENCH_FUNCTIONS,
    FUNCTIONS,
    FunctionProfile,
    profile_by_name,
)
from repro.workloads.trace import Alloc, Compute, Free, TouchRun, generate_trace

__all__ = [
    "Alloc",
    "Compute",
    "FAASMEM_FUNCTIONS",
    "FUNCTIONBENCH_FUNCTIONS",
    "FUNCTIONS",
    "Free",
    "FunctionProfile",
    "TouchRun",
    "generate_trace",
    "profile_by_name",
]
