"""Production-shaped traffic: 10k+ functions, Zipf popularity, tenants.

Production serverless traffic is not a handful of uniform Poisson
streams: it is thousands of functions with heavy-tailed popularity,
grouped under tenants with distinct function mixes, arriving on a
diurnal cycle punctuated by bursts (Ustiugov et al., *Benchmarking,
Analysis, and Optimization of Serverless Function Snapshots*;
Shahrad et al., *Serverless in the Wild*).  This module generates that
shape deterministically from a :class:`TrafficSpec` seed.

Scale without materialization: simulating 10k independent modulated
Poisson processes would need 10k generators and a merge heap.  By the
superposition theorem the union of independent Poisson processes is a
Poisson process at the summed rate, with each point labelled by a draw
proportional to the per-process rate at that instant.  So the generator
samples ONE aggregate :class:`~repro.workloads.trace.ArrivalProcess`
(via the shared thinning sampler) and assigns each accepted point to a
function by weighted choice — O(1) memory, lazily streamed, byte-
identical for a given spec whatever consumes it.

Burst semantics: each seeded burst multiplies the arrival rate of ONE
tenant's functions for a window, so bursts skew the function mix while
they are active (the mixture decomposition in ``_assign`` keeps the
label distribution exactly proportional to per-function instantaneous
rates).
"""

from __future__ import annotations

import bisect
import math
import random
from dataclasses import asdict, dataclass
from typing import Iterator

from repro.workloads.profile import profile_by_name
from repro.workloads.trace import ArrivalProcess

# Sub-seed offsets: independent deterministic streams per concern so
# adding a knob to one never perturbs the others.
_SEED_TENANTS = 0x7E4A17
_SEED_SHAPES = 0x5A43E5
_SEED_BURSTS = 0xB0257
_SEED_ARRIVALS = 0xA221FA

#: Default function shapes: the small/fast profiles, so calibration and
#: CI-scale figure runs stay cheap while still mixing working sets.
DEFAULT_SHAPES = ("json", "html", "pyaes")


@dataclass(frozen=True)
class TrafficSpec:
    """Seeded description of a production-shaped workload.

    Frozen and JSON-round-trippable (``canonical()`` / ``from_dict``)
    so it nests inside :class:`~repro.cluster.spec.ClusterSpec` without
    breaking the content-addressed result store.
    """

    #: Distinct functions, Zipf-ranked by popularity.
    n_functions: int = 10_000
    #: Tenants; each function belongs to exactly one.
    n_tenants: int = 8
    #: Zipf exponent for function popularity (weight ~ 1/rank^s).
    zipf_s: float = 1.1
    #: Aggregate arrival rate across every function, requests/second.
    total_rps: float = 2000.0
    #: Workload horizon, seconds.
    duration: float = 60.0
    #: Sinusoidal diurnal modulation amplitude in [0, 1).
    diurnal_amplitude: float = 0.4
    #: Diurnal period, seconds (compressed from 86400 s for sim scale).
    diurnal_period: float = 40.0
    #: Phase offset in cycles (0.25 puts the peak at t=0).
    diurnal_phase: float = 0.0
    #: Seeded tenant-targeted bursts over the horizon.
    n_bursts: int = 4
    #: Rate multiplier applied to the bursting tenant's functions.
    burst_multiplier: float = 4.0
    #: Burst window length, seconds.
    burst_duration: float = 3.0
    #: Function shapes (profile names); tenants weight these differently.
    shapes: tuple[str, ...] = DEFAULT_SHAPES
    #: Master seed for every derived stream.
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_functions < 1:
            raise ValueError(
                f"n_functions must be >= 1, got {self.n_functions}")
        if not 1 <= self.n_tenants <= self.n_functions:
            raise ValueError(
                f"need 1 <= n_tenants <= n_functions, got "
                f"{self.n_tenants} tenants / {self.n_functions} functions")
        if self.zipf_s < 0:
            raise ValueError(f"zipf_s must be >= 0, got {self.zipf_s}")
        if self.total_rps <= 0:
            raise ValueError("total_rps must be positive")
        if self.duration <= 0:
            raise ValueError("duration must be positive")
        if not 0.0 <= self.diurnal_amplitude < 1.0:
            raise ValueError("diurnal_amplitude must be in [0, 1)")
        if self.diurnal_period <= 0:
            raise ValueError("diurnal_period must be positive")
        if self.n_bursts < 0:
            raise ValueError("n_bursts must be >= 0")
        if self.burst_multiplier < 1.0:
            raise ValueError("burst_multiplier must be >= 1")
        if self.burst_duration <= 0:
            raise ValueError("burst_duration must be positive")
        if not self.shapes:
            raise ValueError("shapes must name at least one profile")
        for shape in self.shapes:
            try:
                profile_by_name(shape)
            except KeyError:
                raise ValueError(
                    f"unknown function shape {shape!r}") from None
        # Tuples survive asdict() as lists; normalize on the way in so
        # from_dict(canonical()) round-trips to an equal spec.
        object.__setattr__(self, "shapes", tuple(self.shapes))

    def canonical(self) -> dict:
        data = asdict(self)
        data["shapes"] = list(self.shapes)
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "TrafficSpec":
        data = dict(data)
        data["shapes"] = tuple(data.get("shapes", DEFAULT_SHAPES))
        return cls(**data)

    def __str__(self) -> str:  # pragma: no cover - display helper
        return (f"{self.n_functions} fns / {self.n_tenants} tenants @ "
                f"{self.total_rps}/s for {self.duration}s "
                f"(zipf {self.zipf_s}, {self.n_bursts} bursts)")


@dataclass(frozen=True)
class TrafficFunction:
    """One generated function: identity, owner, shape, popularity."""

    name: str
    tenant: int
    shape: str
    #: Normalized popularity weight (sums to 1 over the population).
    weight: float


@dataclass(frozen=True)
class TenantBurst:
    """A seeded spike multiplying one tenant's arrival rate."""

    start: float
    duration: float
    multiplier: float
    tenant: int

    def active(self, t: float) -> bool:
        return self.start <= t < self.start + self.duration


def traffic_functions(spec: TrafficSpec) -> list[TrafficFunction]:
    """The seeded function population, Zipf-ranked by index.

    ``fn00000`` is the most popular function.  Tenant membership is a
    seeded uniform draw; shape follows per-tenant preference weights
    (another seeded draw), so each tenant has a distinct function mix —
    the thing per-tenant SLOs are measured over.
    """
    tenant_rng = random.Random(spec.seed ^ _SEED_TENANTS)
    shape_rng = random.Random(spec.seed ^ _SEED_SHAPES)
    # Per-tenant shape preferences: a Dirichlet-ish draw normalized to 1.
    prefs: list[list[float]] = []
    for _ in range(spec.n_tenants):
        raw = [shape_rng.random() + 0.1 for _ in spec.shapes]
        total = sum(raw)
        prefs.append([w / total for w in raw])

    weights = [1.0 / (rank + 1) ** spec.zipf_s
               for rank in range(spec.n_functions)]
    norm = sum(weights)
    width = max(5, len(str(spec.n_functions - 1)))

    functions: list[TrafficFunction] = []
    for rank in range(spec.n_functions):
        # Round-robin the first n_tenants ranks so every tenant owns at
        # least one function, then draw uniformly.
        tenant = (rank if rank < spec.n_tenants
                  else tenant_rng.randrange(spec.n_tenants))
        shape = shape_rng.choices(spec.shapes, weights=prefs[tenant])[0]
        functions.append(TrafficFunction(
            name=f"fn{rank:0{width}d}", tenant=tenant, shape=shape,
            weight=weights[rank] / norm))
    return functions


def burst_schedule(spec: TrafficSpec) -> tuple[TenantBurst, ...]:
    """Seeded tenant-targeted bursts, sorted by start time."""
    rng = random.Random(spec.seed ^ _SEED_BURSTS)
    bursts = []
    for _ in range(spec.n_bursts):
        start = rng.uniform(0.0, max(1e-9, spec.duration
                                     - spec.burst_duration))
        bursts.append(TenantBurst(
            start=start, duration=spec.burst_duration,
            multiplier=spec.burst_multiplier,
            tenant=rng.randrange(spec.n_tenants)))
    return tuple(sorted(bursts, key=lambda b: (b.start, b.tenant)))


@dataclass(frozen=True)
class Invocation:
    """One traffic-plane invocation event (lazily generated)."""

    time: float
    function: str
    tenant: int
    shape: str


class TrafficProcess(ArrivalProcess):
    """The aggregate superposed process behind ``iter_invocations``.

    ``rate(t) = total_rps * diurnal(t) * (1 + sum_t (m_t(t) - 1) * W_t)``
    where ``m_t`` is tenant *t*'s stacked burst multiplier at ``t`` and
    ``W_t`` its share of total popularity weight — exactly the sum of
    every per-function instantaneous rate.
    """

    def __init__(self, spec: TrafficSpec,
                 functions: list[TrafficFunction] | None = None):
        self.spec = spec
        self.functions = (functions if functions is not None
                          else traffic_functions(spec))
        self.bursts = burst_schedule(spec)

        # Tenant weight shares and per-tenant cumulative distributions.
        self.tenant_share = [0.0] * spec.n_tenants
        per_tenant: list[list[TrafficFunction]] = [
            [] for _ in range(spec.n_tenants)]
        for fn in self.functions:
            self.tenant_share[fn.tenant] += fn.weight
            per_tenant[fn.tenant].append(fn)
        self.tenant_functions = per_tenant
        self.tenant_cum: list[list[float]] = []
        for fns in per_tenant:
            cum, total = [], 0.0
            for fn in fns:
                total += fn.weight
                cum.append(total)
            self.tenant_cum.append(cum)
        self.global_cum: list[float] = []
        total = 0.0
        for fn in self.functions:
            total += fn.weight
            self.global_cum.append(total)
        self._peak = self._compute_peak()

    # -- rate envelope -------------------------------------------------------
    def _diurnal(self, t: float) -> float:
        s = self.spec
        return 1.0 + s.diurnal_amplitude * math.sin(
            2.0 * math.pi * (t / s.diurnal_period + s.diurnal_phase))

    def _burst_factor(self, t: float) -> float:
        """``1 + sum_t (m_t - 1) * W_t`` at instant ``t`` (same-tenant
        overlaps stack multiplicatively)."""
        extra = 0.0
        for tenant, mult in self._tenant_multipliers(t):
            extra += (mult - 1.0) * self.tenant_share[tenant]
        return 1.0 + extra

    def _tenant_multipliers(self, t: float) -> list[tuple[int, float]]:
        stacked: dict[int, float] = {}
        for b in self.bursts:
            if b.active(t):
                stacked[b.tenant] = stacked.get(b.tenant, 1.0) * b.multiplier
        return sorted(stacked.items())

    def _compute_peak(self) -> float:
        edges = sorted({0.0}
                       | {b.start for b in self.bursts}
                       | {b.start + b.duration for b in self.bursts})
        factor = max(self._burst_factor(edge) for edge in edges)
        return (self.spec.total_rps * (1.0 + self.spec.diurnal_amplitude)
                * factor)

    def rate(self, t: float) -> float:
        return self.spec.total_rps * self._diurnal(t) * self._burst_factor(t)

    @property
    def peak_rate(self) -> float:
        return self._peak

    # -- labelling -----------------------------------------------------------
    def _assign(self, rng: random.Random, t: float) -> TrafficFunction:
        """Label an accepted point with a function, proportional to each
        function's instantaneous rate ``w_i * m_tenant(i)(t)``.

        Mixture decomposition: with probability ``1/S`` draw from the
        base Zipf distribution; with probability ``(m_t - 1) W_t / S``
        draw from tenant *t*'s internal distribution — summing to the
        exact per-function proportions without per-function work.
        """
        mults = self._tenant_multipliers(t)
        if not mults:
            return self._draw_global(rng)
        total = 1.0 + sum((m - 1.0) * self.tenant_share[tn]
                          for tn, m in mults)
        u = rng.random() * total
        if u < 1.0:
            return self._draw_global(rng)
        u -= 1.0
        for tenant, mult in mults:
            mass = (mult - 1.0) * self.tenant_share[tenant]
            if u < mass:
                return self._draw_tenant(rng, tenant)
            u -= mass
        return self._draw_tenant(rng, mults[-1][0])  # float-edge fallback

    def _draw_global(self, rng: random.Random) -> TrafficFunction:
        u = rng.random() * self.global_cum[-1]
        return self.functions[bisect.bisect_left(self.global_cum, u)]

    def _draw_tenant(self, rng: random.Random,
                     tenant: int) -> TrafficFunction:
        cum = self.tenant_cum[tenant]
        u = rng.random() * cum[-1]
        return self.tenant_functions[tenant][bisect.bisect_left(cum, u)]

    def invocations(self) -> Iterator[Invocation]:
        """Lazily stream the labelled invocation events, ascending in
        time; deterministic per spec and safely restartable (each call
        builds a fresh RNG)."""
        rng = random.Random(self.spec.seed ^ _SEED_ARRIVALS)
        for t in self.sample(rng, self.spec.duration):
            fn = self._assign(rng, t)
            yield Invocation(time=t, function=fn.name,
                             tenant=fn.tenant, shape=fn.shape)


def iter_invocations(spec: TrafficSpec) -> Iterator[Invocation]:
    """Lazy, seeded stream of :class:`Invocation` events for ``spec``."""
    return TrafficProcess(spec).invocations()


def expected_invocations(spec: TrafficSpec) -> float:
    """Analytic mean of the invocation count (sizing aid for CLIs/docs).

    The diurnal sinusoid integrates to ~1 over whole cycles; each burst
    adds ``(m - 1) * W_t * duration * total_rps`` in expectation
    (approximating the diurnal factor as 1 within the window).
    """
    base = spec.total_rps * spec.duration
    if spec.n_bursts == 0:
        return base
    # Expected tenant share is 1/n_tenants for a seeded uniform target.
    extra = (spec.n_bursts * (spec.burst_multiplier - 1.0)
             * spec.burst_duration * spec.total_rps / spec.n_tenants)
    return base + extra
