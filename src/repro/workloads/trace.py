"""Access traces: the unit of work a vCPU replays.

A trace is a list of four op kinds:

* :class:`TouchRun` — access ``count`` contiguous snapshot pages starting
  at ``start`` (guest-physical == snapshot page index), reading or
  writing, spending ``per_page_compute`` seconds of CPU between pages;
* :class:`Compute` — pure CPU time;
* :class:`Alloc` — allocate ``npages`` ephemeral pages from the guest
  buddy allocator and write-touch them;
* :class:`Free` — release a prior allocation (ephemeral memory is freed
  before the invocation ends, per §2.2).

Traces are generated deterministically from a profile + seed; the paper
invokes concurrent instances "with identical inputs", which here means
the same (profile, input_seed) and hence bit-identical traces.

This module also owns the :class:`ArrivalProcess` family — *when*
invocations happen, the temporal half of a trace-driven workload.  One
thinning-based sampler (`Lewis & Shedler`) serves both the constant-rate
process behind ``poisson_arrivals`` and the modulated (diurnal + burst)
processes the traffic plane superposes, so there is exactly one tested
generator code path.
"""

from __future__ import annotations

import bisect
import math
import random
from dataclasses import dataclass
from typing import Iterator



@dataclass(frozen=True)
class TouchRun:
    start: int
    count: int
    write: bool
    per_page_compute: float


@dataclass(frozen=True)
class Compute:
    seconds: float


@dataclass(frozen=True)
class Alloc:
    tag: str
    npages: int
    per_page_compute: float


@dataclass(frozen=True)
class Free:
    tag: str


TraceOp = TouchRun | Compute | Alloc | Free


def working_set_pages(trace: list[TraceOp]) -> list[int]:
    """Snapshot page indices touched by the trace, in first-access order."""
    seen: set[int] = set()
    ordered: list[int] = []
    for op in trace:
        if isinstance(op, TouchRun):
            for page in range(op.start, op.start + op.count):
                if page not in seen:
                    seen.add(page)
                    ordered.append(page)
    return ordered


def trace_alloc_pages(trace: list[TraceOp]) -> int:
    return sum(op.npages for op in trace if isinstance(op, Alloc))


def trace_compute_seconds(trace: list[TraceOp]) -> float:
    total = 0.0
    for op in trace:
        if isinstance(op, Compute):
            total += op.seconds
        elif isinstance(op, TouchRun):
            total += op.count * op.per_page_compute
        elif isinstance(op, Alloc):
            total += op.npages * op.per_page_compute
    return total


def generate_trace(profile, input_seed: int = 0) -> list[TraceOp]:
    """Deterministically generate the invocation trace for a profile.

    The working set is laid out as contiguous runs (lognormal lengths
    around ``profile.run_len_mean``) scattered over the in-use region of
    the snapshot, then accessed in shuffled run order — spatial locality
    within runs, none across them, which is what makes offset *grouping*
    (SnapBPF) and region *coalescing* (FaaSnap) meaningful.
    """
    rng = random.Random((profile.seed << 16) ^ input_seed)
    ws_target = profile.ws_pages

    # -- sample working-set runs over the in-use spans ---------------------------
    # The bulk of a function's working set (code, models, runtime heap)
    # is the same for every input; only ``input_ws_frac`` of it depends
    # on the request.  The stable part is sampled with an input-
    # independent RNG so identical *functions* overlap across inputs.
    used_spans = profile.used_spans
    cum: list[int] = []
    total_used = 0
    for _start, length in used_spans:
        total_used += length
        cum.append(total_used)

    input_target = int(ws_target * profile.input_ws_frac)
    stable_target = ws_target - input_target
    stable_rng = random.Random((profile.seed << 16) ^ 0x57AB1E)

    runs: list[tuple[int, int]] = []
    taken: set[int] = set()
    total = 0
    for sampler, target in ((stable_rng, stable_target),
                            (rng, ws_target)):
        attempts = 0
        while total < target and attempts < 200_000:
            attempts += 1
            length = max(1, min(
                int(sampler.lognormvariate(profile.run_len_mu,
                                           profile.run_len_sigma)),
                256, target - total))
            pick = sampler.randrange(total_used)
            span_idx = bisect.bisect_right(cum, pick)
            span_start, span_len = used_spans[span_idx]
            offset = pick - (cum[span_idx] - span_len)
            start = span_start + offset
            length = min(length, span_len - offset)
            span = range(start, start + length)
            if any(page in taken for page in span):
                continue
            taken.update(span)
            runs.append((start, length))
            total += length
    if total < ws_target:
        raise RuntimeError(
            f"{profile.name}: could only place {total}/{ws_target} "
            f"working-set pages (memory too fragmented)")
    rng.shuffle(runs)

    # -- interleave compute, writes, allocations ---------------------------------
    touch_compute = profile.compute_seconds * profile.compute_overlap_frac
    block_compute = profile.compute_seconds - touch_compute
    alloc_pages = profile.alloc_pages
    # Interleaved compute is spread across every touched page — WS
    # accesses and allocation write-touches alike — so the trace's total
    # compute equals the profile's budget exactly.
    per_page = touch_compute / max(1, total + alloc_pages)
    alloc_chunks: list[int] = []
    remaining = alloc_pages
    while remaining > 0:
        chunk = min(remaining, max(256, alloc_pages // 4))
        alloc_chunks.append(chunk)
        remaining -= chunk

    trace: list[TraceOp] = []
    n_runs = len(runs)
    # Allocations happen once the function is warmed into its working set.
    alloc_positions = sorted(
        rng.randrange(n_runs // 4, max(n_runs // 4 + 1, n_runs))
        for _ in alloc_chunks) if n_runs else [0] * len(alloc_chunks)
    alloc_iter = iter(zip(alloc_positions, alloc_chunks))
    next_alloc = next(alloc_iter, None)
    live_tags: list[str] = []

    n_compute_blocks = max(1, min(4, n_runs))
    block_positions = sorted(rng.randrange(0, max(1, n_runs))
                             for _ in range(n_compute_blocks))

    for run_idx, (start, length) in enumerate(runs):
        while next_alloc is not None and next_alloc[0] <= run_idx:
            tag = f"alloc{len(live_tags)}"
            trace.append(Alloc(tag=tag, npages=next_alloc[1],
                               per_page_compute=per_page))
            live_tags.append(tag)
            next_alloc = next(alloc_iter, None)
        while block_positions and block_positions[0] <= run_idx:
            block_positions.pop(0)
            trace.append(Compute(block_compute / n_compute_blocks))
        trace.append(TouchRun(start=start, count=length,
                              write=rng.random() < profile.write_frac,
                              per_page_compute=per_page))
    while next_alloc is not None:
        tag = f"alloc{len(live_tags)}"
        trace.append(Alloc(tag=tag, npages=next_alloc[1],
                           per_page_compute=per_page))
        live_tags.append(tag)
        next_alloc = next(alloc_iter, None)
    for _ in block_positions:
        trace.append(Compute(block_compute / n_compute_blocks))
    # Ephemeral memory is freed before the invocation returns.
    for tag in live_tags:
        trace.append(Free(tag=tag))
    return trace


# -- arrival processes --------------------------------------------------------
#
# A point process over [0, duration) sampled by thinning: candidate
# points come from a homogeneous Poisson process at ``peak_rate`` and
# survive with probability rate(t) / peak_rate.  When rate(t) equals the
# peak the acceptance draw is skipped entirely, so a constant-rate
# process consumes exactly one expovariate per point — the same RNG
# stream the historic single-rate generator used, which keeps every
# seeded arrival sequence byte-identical across the refactor.

@dataclass(frozen=True)
class Burst:
    """A transient rate spike: the process rate is multiplied by
    ``multiplier`` for ``duration`` seconds starting at ``start``.
    Overlapping bursts stack multiplicatively."""

    start: float
    duration: float
    multiplier: float

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ValueError(f"burst start must be >= 0, got {self.start}")
        if self.duration <= 0:
            raise ValueError(
                f"burst duration must be positive, got {self.duration}")
        if self.multiplier < 1.0:
            raise ValueError(
                f"burst multiplier must be >= 1, got {self.multiplier}")

    def active(self, t: float) -> bool:
        return self.start <= t < self.start + self.duration


def peak_burst_multiplier(bursts: tuple[Burst, ...]) -> float:
    """Largest stacked multiplier over any instant (overlaps multiply).

    Swept over interval endpoints, so the thinning envelope is exact
    even when seeded bursts happen to overlap.
    """
    if not bursts:
        return 1.0
    edges = sorted({b.start for b in bursts}
                   | {b.start + b.duration for b in bursts})
    peak = 1.0
    for edge in edges:
        stacked = 1.0
        for b in bursts:
            if b.active(edge):
                stacked *= b.multiplier
        peak = max(peak, stacked)
    return peak


class ArrivalProcess:
    """Base: an inhomogeneous Poisson process defined by ``rate(t)``.

    Subclasses supply ``rate`` and ``peak_rate`` (an upper bound on the
    rate over the sampled horizon); :meth:`sample` is the one shared
    generator every process uses.
    """

    def rate(self, t: float) -> float:
        raise NotImplementedError

    @property
    def peak_rate(self) -> float:
        raise NotImplementedError

    def sample(self, rng: random.Random,
               duration: float) -> Iterator[float]:
        """Lazily yield arrival times in (0, duration), ascending.

        Deterministic per (rng state, duration); O(1) memory — the
        traffic plane iterates millions of points without a list.
        """
        if duration <= 0:
            raise ValueError("duration must be positive")
        peak = self.peak_rate
        if peak <= 0:
            raise ValueError(f"peak_rate must be positive, got {peak}")
        t = rng.expovariate(peak)
        while t < duration:
            r = self.rate(t)
            # Skip the acceptance draw at the envelope: constant-rate
            # sampling then consumes one expovariate per point, exactly
            # the legacy poisson_arrivals RNG stream.
            if r >= peak or rng.random() < r / peak:
                yield t
            t += rng.expovariate(peak)


class ConstantRate(ArrivalProcess):
    """Homogeneous Poisson arrivals at a fixed requests/second rate."""

    def __init__(self, rate: float):
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        self._rate = rate

    def rate(self, t: float) -> float:
        return self._rate

    @property
    def peak_rate(self) -> float:
        return self._rate


class ModulatedRate(ArrivalProcess):
    """Sinusoidal diurnal cycle plus seeded bursts around a base rate.

    ``rate(t) = base * (1 + amplitude * sin(2 pi (t / period + phase)))
    * stacked burst multipliers`` — the production-traffic shape: a slow
    day/night swing with sharp transient spikes on top.
    """

    def __init__(self, base_rate: float, *, diurnal_amplitude: float = 0.0,
                 diurnal_period: float = 86_400.0, diurnal_phase: float = 0.0,
                 bursts: tuple[Burst, ...] = ()):
        if base_rate <= 0:
            raise ValueError(f"base_rate must be positive, got {base_rate}")
        if not 0.0 <= diurnal_amplitude < 1.0:
            raise ValueError(f"diurnal_amplitude must be in [0, 1), "
                             f"got {diurnal_amplitude}")
        if diurnal_period <= 0:
            raise ValueError("diurnal_period must be positive")
        self.base_rate = base_rate
        self.diurnal_amplitude = diurnal_amplitude
        self.diurnal_period = diurnal_period
        self.diurnal_phase = diurnal_phase
        self.bursts = tuple(sorted(bursts, key=lambda b: b.start))
        self._peak = (base_rate * (1.0 + diurnal_amplitude)
                      * peak_burst_multiplier(self.bursts))

    def rate(self, t: float) -> float:
        r = self.base_rate * (1.0 + self.diurnal_amplitude * math.sin(
            2.0 * math.pi * (t / self.diurnal_period + self.diurnal_phase)))
        for b in self.bursts:
            if b.active(t):
                r *= b.multiplier
        return r

    @property
    def peak_rate(self) -> float:
        return self._peak
