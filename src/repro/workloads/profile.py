"""Function profiles for the thirteen evaluated workloads.

Ten FunctionBench-style functions plus the three FaaSMem real-world
workloads the paper adds (html_serving, graph_bfs, bert).  Footprints
follow the ranges reported by REAP (Table 2), FaaSnap (§5) and FaaSMem:
interpreter-heavy functions touch a few tens of MiB; model-serving
functions (recognition, rnn, bert) fault in large initialized state;
image/video/compression allocate large ephemeral buffers — the workloads
Figure 4 shows benefiting most from PV PTE marking.

Guest memory layout: pages ``[0, used_pages)`` hold snapshotted state
(the working set is sampled from here); pages ``[used_pages, mem_pages)``
were free at snapshot time and seed the guest buddy allocator — the
region ephemeral allocations are served from.
"""

from __future__ import annotations

import functools
import math
import random
from dataclasses import dataclass

from repro.units import MIB, PAGE_SIZE


@dataclass(frozen=True)
class FunctionProfile:
    """Shape parameters for one serverless function."""

    name: str
    #: Guest memory size (snapshot file size).
    mem_bytes: int
    #: Snapshot-resident working set touched per invocation.
    ws_bytes: int
    #: Ephemeral memory allocated (and freed) during the invocation.
    alloc_bytes: int
    #: Pure CPU time of one invocation.
    compute_seconds: float
    #: Fraction of working-set runs written (and hence CoW'd per VM).
    write_frac: float = 0.10
    #: Mean contiguous-run length of the working set, in pages.
    run_len_mean: float = 16.0
    run_len_sigma: float = 1.0
    #: Fraction of compute interleaved page-by-page with WS accesses
    #: (the window prefetchers can hide I/O behind).
    compute_overlap_frac: float = 0.6
    #: Mean length (pages) of free-memory fragments at snapshot time.
    #: Real pre-warmed guests leave free memory scattered through the
    #: address space, which is what makes non-PV allocation faults fetch
    #: *random* snapshot offsets (the Figure 4 PV-PTE effect).
    free_span_pages: float = 24.0
    #: Fraction of the working set that depends on the invocation input
    #: (the rest — code, models, runtime state — is input-invariant).
    #: Exercised by the varying-inputs experiment the paper defers to
    #: future work (§4 Methodology).
    input_ws_frac: float = 0.15
    seed: int = 1

    # -- derived ------------------------------------------------------------------
    @property
    def mem_pages(self) -> int:
        return self.mem_bytes // PAGE_SIZE

    @property
    def ws_pages(self) -> int:
        return self.ws_bytes // PAGE_SIZE

    @property
    def alloc_pages(self) -> int:
        return self.alloc_bytes // PAGE_SIZE

    @property
    def free_pages_at_snapshot(self) -> int:
        """Pages free in the guest at snapshot time (buddy pool)."""
        headroom = max(self.alloc_pages + self.alloc_pages // 4,
                       self.mem_pages // 8)
        return min(headroom, self.mem_pages - self.ws_pages - 1)

    @property
    def used_pages(self) -> int:
        return self.mem_pages - self.free_pages_at_snapshot

    @property
    def run_len_mu(self) -> float:
        """Lognormal mu giving mean ``run_len_mean``."""
        return math.log(self.run_len_mean) - self.run_len_sigma ** 2 / 2

    # -- memory layout ----------------------------------------------------------
    @property
    def used_spans(self) -> tuple[tuple[int, int], ...]:
        """(start, length) spans of in-use (snapshotted-state) guest pages."""
        return _memory_layout(self)[0]

    @property
    def free_spans(self) -> tuple[tuple[int, int], ...]:
        """(start, length) spans of guest pages free at snapshot time."""
        return _memory_layout(self)[1]

    def __post_init__(self) -> None:
        if self.mem_bytes <= 0 or self.ws_bytes <= 0:
            raise ValueError(f"{self.name}: sizes must be positive")
        if self.ws_pages > self.mem_pages:
            raise ValueError(f"{self.name}: working set exceeds memory")
        if self.used_pages < self.ws_pages:
            raise ValueError(f"{self.name}: working set does not fit the "
                             f"in-use region")


@functools.lru_cache(maxsize=128)
def _memory_layout(profile: FunctionProfile) -> tuple[
        tuple[tuple[int, int], ...], tuple[tuple[int, int], ...]]:
    """Deterministic used/free span partition of guest memory.

    Alternates lognormally-sized in-use and free spans until the target
    free-page budget (``free_pages_at_snapshot``) is met, then leaves the
    remainder in use; a shortfall is made up by a trailing free span so
    the totals are exact.
    """
    rng = random.Random(profile.seed * 7919 + 17)
    mem = profile.mem_pages
    target_free = profile.free_pages_at_snapshot
    free_frac = target_free / mem
    sigma = 0.6
    mean_free = max(1.0, profile.free_span_pages)
    mean_used = max(1.0, mean_free * (1.0 - free_frac) / max(free_frac, 1e-9))
    mu_free = math.log(mean_free) - sigma ** 2 / 2
    mu_used = math.log(mean_used) - sigma ** 2 / 2

    used: list[tuple[int, int]] = []
    free: list[tuple[int, int]] = []
    pos = 0
    free_total = 0
    while pos < mem:
        length = min(max(1, int(rng.lognormvariate(mu_used, sigma))),
                     mem - pos)
        used.append((pos, length))
        pos += length
        if pos >= mem or free_total >= target_free:
            if pos < mem:
                # Free budget exhausted: the rest of memory is in use.
                used.append((pos, mem - pos))
                pos = mem
            break
        length = min(max(1, int(rng.lognormvariate(mu_free, sigma))),
                     mem - pos, target_free - free_total)
        free.append((pos, length))
        free_total += length
        pos += length
    if free_total < target_free:
        # Shortfall (high free fractions): carve the tail of used spans,
        # last-first, until the budget is exact.
        shortfall = target_free - free_total
        for i in range(len(used) - 1, -1, -1):
            if shortfall == 0:
                break
            start, length = used[i]
            carve = min(shortfall, length - 1)
            if carve <= 0:
                continue
            used[i] = (start, length - carve)
            free.append((start + length - carve, carve))
            shortfall -= carve
        if shortfall:  # pragma: no cover - defensive
            raise ValueError(f"{profile.name}: cannot satisfy free budget")
        free.sort()
    return tuple(used), tuple(free)


def _mk(name: str, mem_mib: int, ws_mib: int, alloc_mib: int,
        compute_s: float, write_frac: float, run_len: float,
        seed: int, free_span: float = 24.0) -> FunctionProfile:
    return FunctionProfile(
        name=name,
        mem_bytes=mem_mib * MIB,
        ws_bytes=ws_mib * MIB,
        alloc_bytes=alloc_mib * MIB,
        compute_seconds=compute_s,
        write_frac=write_frac,
        run_len_mean=run_len,
        free_span_pages=free_span,
        seed=seed,
    )


#: FunctionBench-representative functions (paper §4 Methodology).
FUNCTIONBENCH_FUNCTIONS: tuple[FunctionProfile, ...] = (
    _mk("json",        mem_mib=256,  ws_mib=34,  alloc_mib=12,  compute_s=0.10,
        write_frac=0.12, run_len=8,  seed=11),
    _mk("chameleon",   mem_mib=256,  ws_mib=46,  alloc_mib=24,  compute_s=0.14,
        write_frac=0.12, run_len=10, seed=12),
    _mk("matmul",      mem_mib=256,  ws_mib=52,  alloc_mib=40,  compute_s=0.38,
        write_frac=0.10, run_len=48, seed=13),
    _mk("pyaes",       mem_mib=256,  ws_mib=24,  alloc_mib=6,   compute_s=0.18,
        write_frac=0.10, run_len=8,  seed=14),
    _mk("image",       mem_mib=768,  ws_mib=58,  alloc_mib=190, compute_s=0.26,
        write_frac=0.10, run_len=24, seed=15, free_span=12),
    _mk("compression", mem_mib=768,  ws_mib=44,  alloc_mib=130, compute_s=0.22,
        write_frac=0.10, run_len=16, seed=16, free_span=12),
    _mk("video",       mem_mib=768,  ws_mib=72,  alloc_mib=150, compute_s=0.48,
        write_frac=0.10, run_len=32, seed=17),
    _mk("recognition", mem_mib=768,  ws_mib=210, alloc_mib=44,  compute_s=0.32,
        write_frac=0.08, run_len=56, seed=18),
    _mk("pagerank",    mem_mib=512,  ws_mib=92,  alloc_mib=64,  compute_s=0.30,
        write_frac=0.14, run_len=12, seed=19),
    _mk("rnn",         mem_mib=512,  ws_mib=150, alloc_mib=16,  compute_s=0.26,
        write_frac=0.08, run_len=56, seed=20),
)

#: FaaSMem real-world workloads (paper §4 Methodology).
FAASMEM_FUNCTIONS: tuple[FunctionProfile, ...] = (
    _mk("html",        mem_mib=256,  ws_mib=30,  alloc_mib=10,  compute_s=0.06,
        write_frac=0.12, run_len=10, seed=21),
    _mk("bfs",         mem_mib=1024, ws_mib=320, alloc_mib=40,  compute_s=0.34,
        write_frac=0.05, run_len=20, seed=22),
    _mk("bert",        mem_mib=1536, ws_mib=500, alloc_mib=20,  compute_s=0.42,
        write_frac=0.04, run_len=64, seed=23),
)

FUNCTIONS: tuple[FunctionProfile, ...] = (
    FUNCTIONBENCH_FUNCTIONS + FAASMEM_FUNCTIONS)

_BY_NAME = {p.name: p for p in FUNCTIONS}


def profile_by_name(name: str) -> FunctionProfile:
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown function {name!r}; choose from "
            f"{sorted(_BY_NAME)}") from None
