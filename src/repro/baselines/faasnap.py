"""FaaSnap (EuroSys '22): mincore capture + coalesced WS-file mmaps.

Record phase: the sandbox's guest memory is a plain private mmap of the
snapshot (readahead disabled); after the invocation, ``mincore()`` over
the mapping reveals which pages were fetched.  Those pages — minus the
zero pages left by FaaSnap's zero-on-free guest patch — form the working
set, which is serialized to a separate file.  To keep the number of
mmap'ed regions manageable, runs separated by small gaps are *coalesced*
into larger regions, inflating the WS file with non-working-set pages
(the I/O amplification the paper verifies with eBPF instrumentation;
ablation A2 sweeps the gap threshold).

Invocation phase: guest memory is a patchwork of mappings — WS regions
from the WS file, snapshot-zero ranges as anonymous memory (allocation
filtering), the remainder from the snapshot.  A userspace thread warms
the page cache by buffered-reading the WS file; because faults then map
the *cache* pages, concurrent sandboxes share them (in-memory dedup =
Yes), but every prefetched byte is also redundantly copied to userspace.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.base import Approach, register_approach
from repro.units import DEFAULT_READAHEAD_PAGES, PAGE_SIZE
from repro.vmm.microvm import GUEST_BASE_VPN, MicroVM
from repro.vmm.snapshot import build_snapshot
from repro.workloads.profile import FunctionProfile
from repro.workloads.trace import working_set_pages

#: Gap (in pages) below which adjacent WS runs are merged into one region.
DEFAULT_GAP_THRESHOLD = 16
#: Buffered-read streaming granularity of the prefetch threads (512 KiB).
PREFETCH_CHUNK_PAGES = 128
#: FaaSnap loads working-set regions with multiple concurrent userspace
#: threads (its concurrent-loading optimization).
PREFETCH_THREADS = 8


@dataclass(frozen=True)
class WsRegion:
    """One coalesced working-set region."""

    guest_start: int   # first guest page of the region
    length: int        # pages, including coalesced gap pages
    ws_offset: int     # page offset inside the WS file


def coalesce(pages: list[int], gap_threshold: int) -> list[tuple[int, int]]:
    """Merge sorted page indices into (start, length) regions, bridging
    gaps of up to ``gap_threshold`` non-WS pages."""
    if gap_threshold < 0:
        raise ValueError("gap threshold must be >= 0")
    regions: list[tuple[int, int]] = []
    for page in sorted(pages):
        if regions:
            start, length = regions[-1]
            if page < start + length:
                continue  # duplicate
            if page - (start + length) <= gap_threshold:
                regions[-1] = (start, page - start + 1)
                continue
        regions.append((page, 1))
    return regions


def _subtract(ranges: list[tuple[int, int]],
              holes: list[tuple[int, int]]) -> list[tuple[int, int]]:
    """Remove ``holes`` intervals from ``ranges`` (both (start, length))."""
    result: list[tuple[int, int]] = []
    holes = sorted(holes)
    for start, length in sorted(ranges):
        end = start + length
        cursor = start
        for h_start, h_length in holes:
            h_end = h_start + h_length
            if h_end <= cursor or h_start >= end:
                continue
            if h_start > cursor:
                result.append((cursor, h_start - cursor))
            cursor = max(cursor, h_end)
            if cursor >= end:
                break
        if cursor < end:
            result.append((cursor, end - cursor))
    return result


@register_approach
class FaaSnap(Approach):
    """mincore/mmap-based snapshot prefetching."""

    name = "faasnap"
    mechanism = "mincore / mmap"
    kernel_space = False
    serializes_ws_on_disk = True
    in_memory_dedup = True
    stateless_alloc_filtering = True
    requires_snapshot_prescan = True

    def __init__(self, kernel, gap_threshold: int = DEFAULT_GAP_THRESHOLD):
        super().__init__(kernel)
        self.gap_threshold = gap_threshold
        self._regions: list[WsRegion] = []
        self._zero_ranges: list[tuple[int, int]] = []
        self._ws_file = None
        self.ws_pages_exact = 0
        #: Fault plane: prefetch chunks abandoned on I/O error (their
        #: pages are demand-paged by the vCPU instead).
        self.prefetch_aborts = 0

    # -- record phase ------------------------------------------------------------------
    def prepare(self, profile: FunctionProfile, record_trace):
        env = self.kernel.env
        costs = self.kernel.costs
        # FaaSnap's guest kernel zeroes pages on free, so free memory is
        # visible in the snapshot contents.
        self.snapshot = build_snapshot(self.kernel, profile,
                                       zero_free_pages=True,
                                       suffix=f".{self.name}")
        vm = MicroVM(self.kernel, self.snapshot,
                     vm_id=f"record-{self.name}-{profile.name}")
        vm.space.mmap(self.snapshot.mem_pages, file=self.snapshot.file,
                      at=GUEST_BASE_VPN, ra_pages=0, name="guest-mem")
        record_vma = vm.space.vmas[0]
        yield from vm.vcpu.run_trace(record_trace)

        # mincore() over the mapping: which pages did we fetch?
        residency = vm.space.mincore(record_vma)
        yield env.timeout(len(residency) * costs.mincore_per_page)
        vm.teardown()

        zero_list = self.snapshot.file.zero_pages()
        zero_map = bytearray(self.snapshot.mem_pages)
        for page in zero_list:
            zero_map[page] = 1
        ws_pages = [idx for idx, resident in enumerate(residency)
                    if resident and not zero_map[idx]]
        self.ws_pages_exact = len(ws_pages)

        # Coalesce into regions and serialize them (gap pages included —
        # this is the WS-file inflation).  FaaSnap also records the fault
        # order during record and loads regions in (approximate) access
        # order — without it, spatially-ordered loading would stall the
        # vCPU behind pages it needs late.
        raw_regions = coalesce(ws_pages, self.gap_threshold)
        first_touch = {page: rank for rank, page
                       in enumerate(working_set_pages(record_trace))}
        raw_regions.sort(key=lambda region: min(
            (first_touch.get(p, 1 << 60)
             for p in range(region[0], region[0] + region[1]))))
        total = sum(length for _s, length in raw_regions)
        self._ws_file = self.kernel.filestore.create(
            f"{profile.name}.{self.name}.ws", max(1, total) * PAGE_SIZE)
        regions: list[WsRegion] = []
        ws_off = 0
        for start, length in raw_regions:
            for i in range(length):
                self._ws_file.set_content(
                    ws_off + i, self.snapshot.file.content(start + i))
            regions.append(WsRegion(guest_start=start, length=length,
                                    ws_offset=ws_off))
            ws_off += length
        self._regions = regions
        if self.kernel.snapstore is not None:
            self.kernel.snapstore.record_derived(self._ws_file)

        # Zero-page scan: contiguous snapshot-zero ranges become
        # anonymous mappings at restore (allocation filtering).  Zero
        # pages swallowed into a coalesced WS region are served from the
        # WS file instead (they are part of the inflation).
        self._zero_ranges = _subtract(
            coalesce(zero_list, 0),
            [(r.guest_start, r.length) for r in regions])
        self.prepared = True

    # -- invocation phase -----------------------------------------------------------------
    def spawn(self, profile: FunctionProfile, vm_id: str | None = None):
        snapshot = self._require_prepared()
        env = self.kernel.env
        costs = self.kernel.costs
        start = env.now
        vm = MicroVM(self.kernel, snapshot, vm_id=vm_id)
        vm._spawn_time = start
        n_vmas = self._build_mappings(vm)
        setup = n_vmas * costs.mmap_region
        vm.setup_seconds = setup
        yield env.timeout(setup)
        for thread in range(PREFETCH_THREADS):
            env.process(self._prefetcher(vm, thread),
                        name=f"{self.name}-prefetch{thread}-{vm.vm_id}")
        return vm

    def _build_mappings(self, vm: MicroVM) -> int:
        """Create the patchwork of guest-memory mappings; returns VMA count."""
        snapshot = self.snapshot
        boundaries: list[tuple[int, int, str, object, int]] = []
        for region in self._regions:
            boundaries.append((region.guest_start, region.length, "ws",
                               self._ws_file, region.ws_offset))
        for start, length in self._zero_ranges:
            boundaries.append((start, length, "anon", None, 0))
        boundaries.sort()

        count = 0
        cursor = 0
        for start, length, kind, file, pgoff in boundaries:
            if start > cursor:
                vm.space.mmap(start - cursor, file=snapshot.file,
                              pgoff=cursor, at=GUEST_BASE_VPN + cursor,
                              ra_pages=DEFAULT_READAHEAD_PAGES,
                              name="snap")
                count += 1
            if kind == "ws":
                vm.space.mmap(length, file=file, pgoff=pgoff,
                              at=GUEST_BASE_VPN + start,
                              ra_pages=DEFAULT_READAHEAD_PAGES, name="ws")
            else:
                vm.space.mmap(length, at=GUEST_BASE_VPN + start, name="zero")
            count += 1
            cursor = start + length
        if cursor < snapshot.mem_pages:
            vm.space.mmap(snapshot.mem_pages - cursor, file=snapshot.file,
                          pgoff=cursor, at=GUEST_BASE_VPN + cursor,
                          ra_pages=DEFAULT_READAHEAD_PAGES, name="snap")
            count += 1
        return count

    def _prefetcher(self, vm: MicroVM, thread: int):
        """One userspace prefetch thread: buffered reads over its share
        of the WS regions (round-robin split across PREFETCH_THREADS).

        The reads warm the shared page cache (that is the prefetch); the
        copy into the thread's buffer is pure overhead, charged per page.
        """
        if self._ws_file is None or not self._regions:
            return
        env = self.kernel.env
        costs = self.kernel.costs
        cache = self.kernel.page_cache
        for region in self._regions[thread::PREFETCH_THREADS]:
            pos = region.ws_offset
            end = region.ws_offset + region.length
            while pos < end:
                if vm.space.dead:
                    return  # sandbox torn down mid-prefetch
                count = min(PREFETCH_CHUNK_PAGES, end - pos)
                try:
                    fill_cost = yield from cache.read_range(self._ws_file,
                                                            pos, count)
                except IOError:
                    # Abandon this chunk; the vCPU demand-pages it.
                    self.prefetch_aborts += 1
                    pos += count
                    continue
                yield env.timeout(fill_cost + costs.syscall
                                  + count * costs.memcpy_page)
                pos += count

    # -- info -------------------------------------------------------------------------------
    @property
    def ws_file_pages(self) -> int:
        return self._ws_file.size_pages if self._ws_file else 0

    @property
    def inflation_ratio(self) -> float:
        """WS-file pages / exact WS pages (the coalescing amplification)."""
        if not self.ws_pages_exact:
            return 1.0
        return self.ws_file_pages / self.ws_pages_exact

    @property
    def region_count(self) -> int:
        return len(self._regions)
