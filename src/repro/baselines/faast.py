"""Faast (HPDC '24): REAP-style uffd prefetching + allocator-metadata
pre-scan.

Faast's addition over REAP (§2.2): before invocations it scans the
snapshot's guest allocator metadata to learn which guest pages were free,
and routes faults for those pages to anonymous memory instead of
fetching soon-to-be-overwritten bytes from the snapshot.  That keeps the
serialized working set lean (allocation faults are not recorded) and
kills the wasted snapshot I/O for ephemeral allocations — at the price of
requiring snapshot pre-processing (Table 1), which SnapBPF's online PV
marking avoids.
"""

from __future__ import annotations

from repro.baselines.base import register_approach
from repro.baselines.reap import REAP


@register_approach
class Faast(REAP):
    """REAP + stateless-allocation filtering via allocator metadata."""

    name = "faast"
    mechanism = "userfaultfd"
    serializes_ws_on_disk = True
    in_memory_dedup = False
    stateless_alloc_filtering = True
    requires_snapshot_prescan = True

    def __init__(self, kernel):
        super().__init__(kernel)
        self.filtered_faults = 0
        #: gfn -> was-free-at-snapshot byte map (the pre-scan result),
        #: built lazily from the snapshot metadata.
        self._free_map: bytearray | None = None

    def _record_fetch(self, gfn: int):
        if self._free_or_scan(gfn):
            return 0, 0.0  # anonymous zero page, no snapshot I/O
        content, cost = yield from super()._record_fetch(gfn)
        return content, cost

    def _record_keep(self, gfn: int) -> bool:
        # Allocation faults never enter the serialized working set.
        return not self._free_or_scan(gfn)

    def _demand_fetch(self, gfn: int):
        if self._free_or_scan(gfn):
            self.filtered_faults += 1
            return 0, 0.0
        content, cost = yield from super()._demand_fetch(gfn)
        return content, cost

    def _free_or_scan(self, gfn: int) -> bool:
        """The pre-scan result: was this guest page free at snapshot time?

        Our snapshot metadata *is* the guest allocator metadata Faast
        parses (see repro.vmm.snapshot.SnapshotMetadata), so the scan is
        a range lookup.
        """
        assert self.snapshot is not None
        free_map = self._free_map
        if free_map is None:
            meta = self.snapshot.meta
            free_map = bytearray(meta.mem_pages)
            for free_gfn in meta.iter_free_gfns():
                free_map[free_gfn] = 1
            self._free_map = free_map
        return gfn < len(free_map) and free_map[gfn] != 0
