"""State-of-the-art prefetching approaches the paper compares against.

Each approach is an :class:`~repro.baselines.base.Approach`: it owns the
record phase (how the working set is captured), the restore path (how a
sandbox's guest memory is mapped), and any prefetch/fault-handling
processes.  Class attributes carry the Table 1 feature matrix.

* :mod:`repro.baselines.linux` — vanilla firecracker restore: demand
  paging with Linux readahead disabled (Linux-NoRA) or default (Linux-RA).
* :mod:`repro.baselines.reap` — REAP: userfaultfd capture, working set
  serialized to a separate file, direct-I/O prefetch, uffd installs.
* :mod:`repro.baselines.faast` — Faast: REAP plus allocator-metadata
  pre-scan routing faults on free guest pages to anonymous memory.
* :mod:`repro.baselines.faasnap` — FaaSnap: mincore capture, coalesced
  per-region working-set file mmaps, userspace buffered-read prefetch,
  zero-page scan for allocation filtering.
"""

from repro.baselines.base import Approach, register_approach, approach_registry
from repro.baselines.faasnap import FaaSnap
from repro.baselines.faast import Faast
from repro.baselines.linux import LinuxNoRA, LinuxRA
from repro.baselines.reap import REAP

__all__ = [
    "Approach",
    "FaaSnap",
    "Faast",
    "LinuxNoRA",
    "LinuxRA",
    "REAP",
    "approach_registry",
    "register_approach",
]
