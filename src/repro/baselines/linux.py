"""Vanilla firecracker restore: mmap the snapshot, demand-page it.

No working-set capture at all — the Figure 3b/3c baselines.  The only
knob is Linux readahead on the snapshot mapping: disabled (Linux-NoRA,
one synchronous 4 KiB read per major fault) or the kernel default 128 KiB
window (Linux-RA).  Because faults resolve through the page cache, these
baselines *do* deduplicate across sandboxes — they are just slow, paying
a blocking fault chain for the whole working set.
"""

from __future__ import annotations

from repro.baselines.base import Approach, register_approach
from repro.units import DEFAULT_READAHEAD_PAGES
from repro.vmm.microvm import GUEST_BASE_VPN, MicroVM
from repro.workloads.profile import FunctionProfile


class _LinuxBase(Approach):
    """Shared restore path; subclasses pick the readahead window."""

    mechanism = "mmap / demand paging"
    serializes_ws_on_disk = False
    in_memory_dedup = True
    stateless_alloc_filtering = False
    requires_snapshot_prescan = False

    ra_pages: int = DEFAULT_READAHEAD_PAGES
    #: PV PTE marking off for the vanilla baselines (overridden by the
    #: SnapBPF breakdown variant in repro.core).
    pv_marking: bool = False

    def spawn(self, profile: FunctionProfile, vm_id: str | None = None):
        snapshot = self._require_prepared()
        start = self.kernel.env.now
        vm = MicroVM(self.kernel, snapshot, pv_marking=self.pv_marking,
                     vm_id=vm_id)
        vm._spawn_time = start
        vm.space.mmap(snapshot.mem_pages, file=snapshot.file,
                      at=GUEST_BASE_VPN, ra_pages=self.ra_pages,
                      name="guest-mem")
        setup = self.kernel.costs.mmap_region
        vm.setup_seconds = setup
        yield self.kernel.env.timeout(setup)
        return vm


@register_approach
class LinuxNoRA(_LinuxBase):
    """Vanilla restore with readahead disabled."""

    name = "linux-nora"
    ra_pages = 0


@register_approach
class LinuxRA(_LinuxBase):
    """Vanilla restore with the default 128 KiB readahead window."""

    name = "linux-ra"
    ra_pages = DEFAULT_READAHEAD_PAGES
