"""Approach interface: prepare (record phase) + spawn (restore path).

An approach instance is bound to one host kernel and one function.  The
experiment harness drives it as::

    approach = REAP(kernel)
    yield from approach.prepare(profile, record_trace)   # offline record
    # ... drop caches, reset stats ...
    vm = yield from approach.spawn(profile)              # timed restore
    stats = yield from vm.invoke(trace)                  # timed invocation
    approach.post_invoke(vm)

Class attributes encode the Table 1 comparison row so the table can be
regenerated from the implementations themselves.
"""

from __future__ import annotations

from repro.mm.kernel import Kernel
from repro.vmm.microvm import MicroVM
from repro.vmm.snapshot import FunctionSnapshot, build_snapshot
from repro.workloads.profile import FunctionProfile


class Approach:
    """Base class; subclasses implement the hooks below."""

    #: Human-readable mechanism (Table 1 column 1).
    mechanism: str = "?"
    #: Runs in user space or kernel space.
    kernel_space: bool = False
    #: Serializes the working set as a separate file on disk.
    serializes_ws_on_disk: bool = False
    #: Deduplicates working sets across sandboxes in memory.
    in_memory_dedup: bool = False
    #: Filters stateless VM allocations away from snapshot I/O.
    stateless_alloc_filtering: bool = False
    #: Needs preemptive snapshot scanning / pre-processing.
    requires_snapshot_prescan: bool = False

    #: Display name (subclass must set).
    name: str = "approach"

    def __init__(self, kernel: Kernel):
        self.kernel = kernel
        self.snapshot: FunctionSnapshot | None = None
        self.prepared = False

    # -- hooks --------------------------------------------------------------------
    def prepare(self, profile: FunctionProfile, record_trace):
        """Generator: record phase.  Default: just build the snapshot."""
        self.snapshot = build_snapshot(self.kernel, profile,
                                       suffix=f".{self.name}")
        self.prepared = True
        return None
        yield  # pragma: no cover - makes this a generator

    def spawn(self, profile: FunctionProfile,
              vm_id: str | None = None):
        """Generator: restore one sandbox; returns a ready MicroVM."""
        raise NotImplementedError

    def post_invoke(self, vm: MicroVM) -> None:
        """Per-invocation cleanup that should NOT count toward E2E."""

    # -- shared helpers -----------------------------------------------------------
    def _require_prepared(self) -> FunctionSnapshot:
        if not self.prepared or self.snapshot is None:
            raise RuntimeError(f"{self.name}: prepare() has not run")
        return self.snapshot

    def _run_record_vm(self, vm: MicroVM, record_trace):
        """Generator: drive the record invocation and tear the VM down."""
        yield from vm.invoke(record_trace)
        vm.teardown()

    @classmethod
    def table1_row(cls) -> dict[str, str]:
        """This approach's row of the paper's Table 1."""
        def mark(flag: bool) -> str:
            return "Yes" if flag else "No"
        return {
            "approach": cls.name,
            "mechanism": cls.mechanism,
            "space": "Kernel-space" if cls.kernel_space else "User-space",
            "on_disk_ws_serialization": mark(cls.serializes_ws_on_disk),
            "in_memory_ws_dedup": mark(cls.in_memory_dedup),
            "stateless_alloc_filtering": mark(cls.stateless_alloc_filtering),
            "snapshot_prescan": mark(cls.requires_snapshot_prescan),
        }


_REGISTRY: dict[str, type[Approach]] = {}


def register_approach(cls: type[Approach]) -> type[Approach]:
    """Class decorator: add to the global approach registry."""
    _REGISTRY[cls.name] = cls
    return cls


def approach_registry() -> dict[str, type[Approach]]:
    return dict(_REGISTRY)
