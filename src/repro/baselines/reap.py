"""REAP (ASPLOS '21): userfaultfd record-and-prefetch.

Record phase: guest memory is an anonymous uffd-registered region; every
fault is delegated to a userspace handler that fetches the page from the
snapshot with direct I/O and installs it via ``UFFDIO_COPY``, recording
the fault order.  The working set is then serialized *contiguously* to a
separate file (Table 1: on-disk WS serialization = Yes).

Invocation phase: a prefetcher streams the WS file with direct I/O
(bypassing the page cache — REAP's way of avoiding the copy overhead of
buffered reads) and preemptively installs the pages through uffd, racing
the vCPU; a demand handler serves the stragglers from the snapshot.

Every installed page is **anonymous and private** to the sandbox, so
nothing is shared across concurrent instances — the deduplication
failure Figures 3b/3c quantify.
"""

from __future__ import annotations

from array import array

from repro.baselines.base import Approach, register_approach
from repro.mm.frames import OutOfMemory
from repro.mm.userfaultfd import Uffd
from repro.units import PAGE_SIZE
from repro.vmm.microvm import GUEST_BASE_VPN, MicroVM
from repro.vmm.snapshot import build_snapshot
from repro.workloads.profile import FunctionProfile

#: Direct-I/O streaming granularity of the WS prefetcher (512 KiB).
PREFETCH_CHUNK_PAGES = 128


@register_approach
class REAP(Approach):
    """Record-and-Prefetch over userfaultfd."""

    name = "reap"
    mechanism = "userfaultfd"
    kernel_space = False
    serializes_ws_on_disk = True
    in_memory_dedup = False
    stateless_alloc_filtering = False
    requires_snapshot_prescan = False

    def __init__(self, kernel):
        super().__init__(kernel)
        self._ws_order: list[int] = []
        self._ws_contents: list[int] = []
        self._ws_file = None
        #: gfn -> WS-file position, as a flat array over guest pages
        #: (-1 = not in the working set); probed per demand fault.
        self._ws_pos = array("q")
        #: Fault plane: transient fetch errors healed by handler retry.
        self.demand_retries = 0
        #: Fault plane: fetches that exhausted the retry budget — the
        #: faulting thread saw EIO through the uffd.
        self.demand_fetch_failures = 0
        #: Fault plane: prefetch chunks abandoned on I/O error (their
        #: pages fall through to the demand handler).
        self.prefetch_aborts = 0

    # -- record phase ---------------------------------------------------------------
    def prepare(self, profile: FunctionProfile, record_trace):
        self.snapshot = build_snapshot(self.kernel, profile,
                                       suffix=f".{self.name}")
        uffd = self.kernel.new_uffd()
        vm = MicroVM(self.kernel, self.snapshot,
                     vm_id=f"record-{self.name}-{profile.name}")
        vm.space.mmap(self.snapshot.mem_pages, uffd=uffd, at=GUEST_BASE_VPN,
                      name="guest-mem")
        order: list[int] = []
        self.kernel.env.process(self._record_handler(vm, uffd, order),
                                name=f"{self.name}-record-handler")
        yield from self._run_record_vm(vm, record_trace)

        # Serialize the recorded working set contiguously (in fault order,
        # so invocation-phase streaming matches demand order).
        self._ws_order = order
        self._ws_contents = [self.snapshot.file.content(g) for g in order]
        self._ws_pos = array("q", [-1]) * self.snapshot.mem_pages
        for i, gfn in enumerate(order):
            self._ws_pos[gfn] = i
        self._ws_file = self.kernel.filestore.create(
            f"{profile.name}.{self.name}.ws",
            max(1, len(order)) * PAGE_SIZE)
        for i, token in enumerate(self._ws_contents):
            self._ws_file.set_content(i, token)
        if self.kernel.snapstore is not None:
            self.kernel.snapstore.record_derived(self._ws_file)
        self.prepared = True

    def _record_handler(self, vm: MicroVM, uffd: Uffd, order: list[int]):
        """Userspace record handler: fetch faulting pages, log the order."""
        costs = self.kernel.costs
        while True:
            msg = yield uffd.read()
            gfn = msg.vpn - vm.guest_base_vpn
            try:
                content, io_cost = yield from self._fetch_retrying(
                    self._record_fetch, gfn)
            except IOError as error:
                self.demand_fetch_failures += 1
                uffd.fail(msg.vpn, error)
                continue
            yield self.kernel.env.timeout(costs.uffd_copy_ioctl + io_cost)
            if not vm.space.pte_present(msg.vpn):
                vm.space.install_anon(msg.vpn, content=content)
            if self._record_keep(gfn):
                order.append(gfn)
            uffd.resolve(msg.vpn)

    def _record_fetch(self, gfn: int):
        """Generator: fetch one page during record; returns (content, cost)."""
        yield self.kernel.filestore.read_pages(self.snapshot.file, gfn, 1)
        return self.snapshot.file.content(gfn), 0.0

    def _record_keep(self, gfn: int) -> bool:
        """Whether a recorded fault belongs in the serialized working set."""
        return True

    # -- invocation phase ------------------------------------------------------------
    def spawn(self, profile: FunctionProfile, vm_id: str | None = None):
        snapshot = self._require_prepared()
        env = self.kernel.env
        costs = self.kernel.costs
        start = env.now
        vm = MicroVM(self.kernel, snapshot, vm_id=vm_id)
        vm._spawn_time = start
        uffd = self.kernel.new_uffd()
        vm.space.mmap(snapshot.mem_pages, uffd=uffd, at=GUEST_BASE_VPN,
                      name="guest-mem")
        setup = costs.mmap_region + 2 * costs.syscall  # uffd + register
        vm.setup_seconds = setup
        yield env.timeout(setup)
        env.process(self._demand_handler(vm, uffd),
                    name=f"{self.name}-demand-{vm.vm_id}")
        env.process(self._prefetcher(vm, uffd),
                    name=f"{self.name}-prefetch-{vm.vm_id}")
        return vm

    def _prefetcher(self, vm: MicroVM, uffd: Uffd):
        """Stream the WS file with direct I/O; install via UFFDIO_COPY."""
        env = self.kernel.env
        costs = self.kernel.costs
        order = self._ws_order
        if not order:
            return
        pos = 0
        while pos < len(order):
            if vm.space.dead:
                return  # sandbox torn down mid-prefetch
            count = min(PREFETCH_CHUNK_PAGES, len(order) - pos)
            try:
                yield self.kernel.filestore.read_pages(self._ws_file, pos,
                                                       count)
            except IOError:
                # Abandon this chunk: its pages fall through to the
                # demand handler (which has its own retry ladder).
                self.prefetch_aborts += 1
                pos += count
                continue
            # Probe the page table directly: ints, no tuple or call churn.
            pt = vm.space.pt
            base = vm.guest_base_vpn
            todo = [i for i in range(pos, pos + count)
                    if (base + order[i]) not in pt]
            if todo:
                # ioctl + copy per page, charged before installation.
                yield env.timeout(len(todo) * (costs.uffd_copy_ioctl
                                               + costs.memcpy_page))
                for i in todo:
                    vpn = vm.guest_vpn(order[i])
                    if not vm.space.pte_present(vpn):
                        try:
                            vm.space.install_anon(
                                vpn, content=self._ws_contents[i])
                        except OutOfMemory:
                            # Speculative fill must not kill the run:
                            # stop streaming and let the remaining pages
                            # fall through to the demand handler, which
                            # allocates under direct-reclaim throttling.
                            self.prefetch_aborts += 1
                            return
                    uffd.resolve(vpn)
            pos += count

    def _demand_handler(self, vm: MicroVM, uffd: Uffd):
        """Serve faults the prefetcher has not covered yet."""
        env = self.kernel.env
        costs = self.kernel.costs
        while True:
            msg = yield uffd.read()
            vpn = msg.vpn
            if vm.space.pte_present(vpn):
                uffd.resolve(vpn)
                continue
            gfn = vpn - vm.guest_base_vpn
            try:
                content, extra = yield from self._fetch_retrying(
                    self._demand_fetch, gfn)
            except IOError as error:
                self.demand_fetch_failures += 1
                uffd.fail(vpn, error)
                continue
            yield env.timeout(costs.uffd_copy_ioctl + costs.memcpy_page
                              + extra)
            if not vm.space.pte_present(vpn):
                vm.space.install_anon(vpn, content=content)
            uffd.resolve(vpn)

    def _fetch_retrying(self, fetch, gfn: int):
        """Generator: drive ``fetch(gfn)`` under the kernel's bounded
        transient-retry ladder (direct I/O bypasses the page cache, so
        the handler retries in userspace); re-raises once exhausted."""
        policy = self.kernel.page_cache.retry_policy
        attempt = 1
        while True:
            try:
                return (yield from fetch(gfn))
            except IOError as error:
                if policy is None or not policy.should_retry(
                        attempt, getattr(error, "transient", False)):
                    raise
                self.demand_retries += 1
                yield self.kernel.env.timeout(policy.backoff(attempt))
                attempt += 1

    def _demand_fetch(self, gfn: int):
        """Generator: fetch one page on demand; returns (content, extra_cost).

        Prefer the WS file (sequential position known) and fall back to
        the snapshot, both with direct I/O.
        """
        pos = self._ws_pos[gfn] if gfn < len(self._ws_pos) else -1
        if pos >= 0:
            yield self.kernel.filestore.read_pages(self._ws_file, pos, 1)
            return self._ws_contents[pos], 0.0
        yield self.kernel.filestore.read_pages(self.snapshot.file, gfn, 1)
        return self.snapshot.file.content(gfn), 0.0

    # -- info ---------------------------------------------------------------------------
    @property
    def working_set_pages(self) -> int:
        return len(self._ws_order)
