"""MicroVM: one restored function sandbox.

The prefetching approach under test constructs the MicroVM (it owns how
guest memory is mapped — snapshot mmap, uffd registration, per-region
working-set mappings) and then calls :meth:`MicroVM.invoke` to replay
the function trace.  End-to-end latency is measured from the moment the
approach starts restoring (spawn) to the moment the trace completes,
matching the paper's instrumented firecracker.
"""

from __future__ import annotations

import itertools
import zlib
from dataclasses import dataclass

from repro.guest.kernel import GuestKernel
from repro.kvm.kvm import KVM
from repro.kvm.vcpu import VCpu
from repro.mm.kernel import Kernel
from repro.vmm.snapshot import FunctionSnapshot

#: Virtual page where every sandbox maps its guest memory.
GUEST_BASE_VPN = 1 << 24


@dataclass
class InvocationStats:
    """Per-sandbox results of one invocation."""

    vm_id: str
    e2e_seconds: float = 0.0
    setup_seconds: float = 0.0
    nested_faults: int = 0
    pv_faults: int = 0
    major_faults: int = 0
    minor_faults: int = 0
    uffd_faults: int = 0
    cow_faults: int = 0
    pages_touched: int = 0
    anon_bytes_at_end: int = 0
    #: E2E latency breakdown: useful compute, fault-handling CPU, and
    #: wall time stalled on I/O or userspace fault handlers.
    compute_seconds: float = 0.0
    overhead_seconds: float = 0.0
    stall_seconds: float = 0.0

    @property
    def breakdown(self) -> dict[str, float]:
        """setup / compute / overhead / stall, summing ~to e2e_seconds."""
        return {
            "setup": self.setup_seconds,
            "compute": self.compute_seconds,
            "fault_overhead": self.overhead_seconds,
            "stall": self.stall_seconds,
        }


class MicroVM:
    """One sandbox: host address space + EPT + guest kernel + vCPU."""

    _ids = itertools.count()

    def __init__(self, kernel: Kernel, snapshot: FunctionSnapshot,
                 pv_marking: bool = False, patched_cow: bool = True,
                 force_write_percent: int = 30,
                 vm_id: str | None = None):
        self.kernel = kernel
        self.snapshot = snapshot
        self.vm_id = vm_id or f"vm{next(self._ids)}"
        self.space = kernel.spawn_space(owner=self.vm_id)
        self.guest = GuestKernel(
            mem_pages=snapshot.mem_pages,
            free_pfns=snapshot.meta.iter_free_gfns(),
            pv_marking=pv_marking,
            zero_on_free=snapshot.meta.guest_zeroed,
        )
        self.kvm = KVM(
            space=self.space,
            guest_base_vpn=GUEST_BASE_VPN,
            mem_pages=snapshot.mem_pages,
            pv_enabled=pv_marking,
            patched_cow=patched_cow,
            force_write_percent=force_write_percent,
            # crc32, not hash(): str hashing is salted per process
            # (PYTHONHASHSEED), and identical runs must stay identical
            # across processes for the fault-plane determinism contract.
            vm_seed=zlib.crc32(self.vm_id.encode()) & 0xFFFF,
        )
        self.vcpu = VCpu(kernel.env, self.kvm, self.guest)
        #: Seconds the restoring approach spent before the vCPU started.
        self.setup_seconds = 0.0
        self._spawn_time = kernel.env.now

    # -- lifecycle --------------------------------------------------------------
    def invoke(self, trace):
        """Generator (DES process body): run the trace; returns stats."""
        start = self._spawn_time
        yield from self.vcpu.run_trace(trace)
        space = self.space
        return InvocationStats(
            vm_id=self.vm_id,
            e2e_seconds=self.kernel.env.now - start,
            setup_seconds=self.setup_seconds,
            nested_faults=self.kvm.stats_nested_faults,
            pv_faults=self.kvm.stats_pv_faults,
            major_faults=space.stats_major_faults,
            minor_faults=space.stats_minor_faults,
            uffd_faults=space.stats_uffd_faults,
            cow_faults=space.stats_cow_faults,
            pages_touched=self.vcpu.stats.pages_touched,
            anon_bytes_at_end=self.kernel.frames.owner_frames(self.vm_id)
            * 4096,
            compute_seconds=self.vcpu.stats.compute_seconds,
            overhead_seconds=self.vcpu.stats.overhead_seconds,
            stall_seconds=self.vcpu.stats.stall_seconds,
        )

    def teardown(self) -> None:
        """Destroy the sandbox, releasing all private memory."""
        self.space.teardown()
        self.kvm.ept.clear()

    # -- conveniences -------------------------------------------------------------
    @property
    def guest_base_vpn(self) -> int:
        return GUEST_BASE_VPN

    def guest_vpn(self, gfn: int) -> int:
        return GUEST_BASE_VPN + gfn
