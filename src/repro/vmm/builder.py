"""Snapshot creation: where the snapshot files come from.

The experiments treat snapshots as pre-existing (they are created once,
offline).  This module models the full firecracker lifecycle for
completeness: boot a fresh sandbox into anonymous memory, run the
pre-warm invocation (function initialization: imports, model loading),
pause the VM, and serialize its guest memory to the file store with real
sequential write I/O — which is why snapshot files are contiguous on
disk, the property the baselines' serialized working-set files inherit.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mm.kernel import Kernel
from repro.vmm.microvm import GUEST_BASE_VPN, MicroVM
from repro.vmm.snapshot import FunctionSnapshot, build_snapshot
from repro.workloads.profile import FunctionProfile
from repro.workloads.trace import generate_trace

#: Serialization chunk: firecracker writes the memory file in large
#: sequential chunks (1 MiB here).
SERIALIZE_CHUNK_PAGES = 256

#: Guest pages touched by booting kernel + language runtime before the
#: pre-warm invocation runs, as a fraction of the in-use region.
BOOT_TOUCH_FRAC = 0.3


@dataclass
class BuildReport:
    """What snapshot creation cost (all offline)."""

    snapshot: FunctionSnapshot
    boot_seconds: float
    prewarm_seconds: float
    serialize_seconds: float

    @property
    def total_seconds(self) -> float:
        return self.boot_seconds + self.prewarm_seconds + self.serialize_seconds


class SnapshotBuilder:
    """Boots, pre-warms, pauses, serializes."""

    def __init__(self, kernel: Kernel):
        self.kernel = kernel

    def build(self, profile: FunctionProfile,
              zero_free_pages: bool = False,
              suffix: str = ".built"):
        """Generator (DES process body): returns a :class:`BuildReport`."""
        env = self.kernel.env

        # A fresh sandbox boots into anonymous memory (no snapshot yet).
        boot_vm = MicroVM(self.kernel, _anon_backing(profile),
                          vm_id=f"build-{profile.name}")
        boot_vm.space.mmap(profile.mem_pages, at=GUEST_BASE_VPN,
                           name="guest-mem")

        start = env.now
        yield from boot_vm.vcpu.run_trace(_boot_trace(profile))
        boot_seconds = env.now - start

        # Pre-warm: one initialization invocation populates the state the
        # snapshot must capture (models loaded, pools warmed).
        start = env.now
        yield from boot_vm.vcpu.run_trace(generate_trace(profile, 0))
        prewarm_seconds = env.now - start

        # Pause + serialize guest memory sequentially.
        snapshot = build_snapshot(self.kernel, profile,
                                  zero_free_pages=zero_free_pages,
                                  suffix=suffix)
        start = env.now
        position = 0
        while position < profile.mem_pages:
            count = min(SERIALIZE_CHUNK_PAGES, profile.mem_pages - position)
            yield self.kernel.filestore.write_pages(snapshot.file,
                                                    position, count)
            position += count
        serialize_seconds = env.now - start

        boot_vm.teardown()
        return BuildReport(snapshot=snapshot, boot_seconds=boot_seconds,
                           prewarm_seconds=prewarm_seconds,
                           serialize_seconds=serialize_seconds)


def _anon_backing(profile: FunctionProfile) -> FunctionSnapshot:
    """A metadata-only stand-in so MicroVM machinery can host the boot
    sandbox before any snapshot file exists."""
    from repro.vmm.snapshot import SnapshotMetadata

    meta = SnapshotMetadata(mem_pages=profile.mem_pages,
                            free_spans=profile.free_spans,
                            guest_zeroed=False)
    return FunctionSnapshot(name=f"{profile.name}-boot", file=None,  # type: ignore[arg-type]
                            meta=meta)


def _boot_trace(profile: FunctionProfile):
    """Kernel + runtime initialization: a sequential sweep over the
    first BOOT_TOUCH_FRAC of the in-use region, write-heavy."""
    from repro.workloads.trace import Compute, TouchRun

    trace = []
    budget = int(profile.used_pages * BOOT_TOUCH_FRAC)
    for start, length in profile.used_spans:
        if budget <= 0:
            break
        take = min(length, budget)
        trace.append(TouchRun(start=start, count=take, write=True,
                              per_page_compute=0.2e-6))
        budget -= take
    trace.append(Compute(0.05))  # init scripts, JIT warmup
    return trace
