"""Function snapshots: serialized guest memory + metadata.

The snapshot file holds the full guest memory of a pre-warmed sandbox
(firecracker's memory snapshot).  Its metadata records which guest PFNs
were free at snapshot time — the information Faast's pre-scan recovers
from the guest allocator metadata — and whether the guest ran a
zero-on-free patched kernel, in which case the free pages' *contents*
are zero and FaaSnap's zero-page scan can find them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.storage.filestore import ZERO_PAGE, File
from repro.workloads.profile import FunctionProfile


@dataclass
class SnapshotMetadata:
    """What a pre-scanner could learn about the snapshot."""

    mem_pages: int
    #: (start, length) spans of guest PFNs free at snapshot time — free
    #: memory in a pre-warmed guest is fragmented across the address
    #: space (buddy allocator seed + Faast's pre-scan input).
    free_spans: tuple[tuple[int, int], ...]
    #: Guest kernel zeroed pages on free (FaaSnap's patch).
    guest_zeroed: bool
    _free_set: frozenset[int] | None = None

    @property
    def free_pages(self) -> int:
        return sum(length for _s, length in self.free_spans)

    def iter_free_gfns(self):
        for start, length in self.free_spans:
            yield from range(start, start + length)

    @property
    def free_gfns(self) -> frozenset[int]:
        """Set view, cached (used per-fault by Faast's filter)."""
        if self._free_set is None:
            self._free_set = frozenset(self.iter_free_gfns())
        return self._free_set


@dataclass(frozen=True)
class FunctionSnapshot:
    """One on-disk snapshot ready to restore from."""

    name: str
    file: File
    meta: SnapshotMetadata

    @property
    def mem_pages(self) -> int:
        return self.meta.mem_pages


def build_snapshot(kernel, profile: FunctionProfile,
                   zero_free_pages: bool = False,
                   suffix: str = "") -> FunctionSnapshot:
    """Write a snapshot for ``profile`` into the kernel's file store.

    Snapshot creation happens offline (before the measured cold starts),
    so no simulated time is charged.  ``zero_free_pages`` builds the
    FaaSnap variant whose guest zeroed freed memory.
    """
    name = f"{profile.name}{suffix}.snap"
    file = kernel.filestore.create(name, profile.mem_bytes)
    meta = SnapshotMetadata(
        mem_pages=profile.mem_pages,
        free_spans=profile.free_spans,
        guest_zeroed=zero_free_pages,
    )
    if zero_free_pages:
        for page in meta.iter_free_gfns():
            file.set_content(page, ZERO_PAGE)
    snapstore = getattr(kernel, "snapstore", None)
    if snapstore is not None:
        # Chunk the snapshot into the tiered store; restores will then
        # resolve reads through the manifest and stage cold chunks.
        snapstore.record(file, profile, guest_zeroed=zero_free_pages)
    return FunctionSnapshot(name=profile.name, file=file, meta=meta)
