"""Firecracker-like VMM layer: snapshot files and microVM lifecycle.

A :class:`~repro.vmm.snapshot.FunctionSnapshot` is the serialized guest
memory of a pre-warmed function sandbox plus the metadata the baselines'
pre-scans consume.  A :class:`~repro.vmm.microvm.MicroVM` is one restored
sandbox: a host address space whose guest-memory mapping each prefetching
approach sets up differently, nested page tables, a guest kernel, and a
vCPU that replays the invocation trace.
"""

from repro.vmm.builder import BuildReport, SnapshotBuilder
from repro.vmm.microvm import InvocationStats, MicroVM
from repro.vmm.snapshot import FunctionSnapshot, SnapshotMetadata, build_snapshot

__all__ = [
    "BuildReport",
    "FunctionSnapshot",
    "InvocationStats",
    "MicroVM",
    "SnapshotBuilder",
    "SnapshotMetadata",
    "build_snapshot",
]
