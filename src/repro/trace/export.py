"""Trace exporters: JSONL (one event per line) and Chrome trace format.

The Chrome format is the ``chrome://tracing`` / Perfetto JSON object
model: ``traceEvents`` with phase-``X`` complete events, timestamps and
durations in *microseconds*, and ``thread_name`` metadata records mapping
each tracer track to a tid so the viewer labels the rows.
"""

from __future__ import annotations

import json
from typing import IO

from repro.trace.tracer import Span, Tracer

#: All simulated spans share one synthetic process.
TRACE_PID = 1


def _span_dict(span: Span) -> dict:
    out = {"name": span.name, "cat": span.cat, "ph": span.ph,
           "ts": span.ts, "dur": span.dur, "track": span.track}
    if span.args:
        out["args"] = span.args
    return out


def to_jsonl(tracer: Tracer) -> str:
    """One JSON object per line; ts/dur in (simulated) seconds."""
    return "".join(json.dumps(_span_dict(span), sort_keys=True) + "\n"
                   for span in tracer.events)


def write_jsonl(tracer: Tracer, fp: IO[str]) -> None:
    fp.write(to_jsonl(tracer))


def chrome_trace(tracer: Tracer) -> dict:
    """The trace as a ``chrome://tracing``-loadable JSON object."""
    tids: dict[str, int] = {}
    events: list[dict] = []
    for span in tracer.events:
        tid = tids.setdefault(span.track, len(tids) + 1)
        event = {
            "name": span.name,
            "cat": span.cat,
            "ph": span.ph,
            "ts": span.ts * 1e6,
            "pid": TRACE_PID,
            "tid": tid,
        }
        if span.ph == "X":
            event["dur"] = span.dur * 1e6
        elif span.ph == "i":
            event["s"] = "t"  # thread-scoped instant
        if span.args:
            event["args"] = span.args
        events.append(event)
    meta = [{"name": "thread_name", "ph": "M", "pid": TRACE_PID, "tid": tid,
             "args": {"name": track}} for track, tid in tids.items()]
    return {"traceEvents": meta + events, "displayTimeUnit": "ms"}


def write_chrome(tracer: Tracer, fp: IO[str]) -> None:
    json.dump(chrome_trace(tracer), fp)
