"""Trace plane: span tracing over the DES + Chrome/JSONL export.

Answers "where did this restore's milliseconds go?" visually: enable
``kernel.tracer``, run a scenario, export with
:func:`repro.trace.export.chrome_trace`, and load the file in
``chrome://tracing`` (or Perfetto).  The ``python -m repro trace``
subcommand packages exactly that flow.

Span sources, by track:

* ``process`` — every DES process lifetime (:mod:`repro.sim.engine`)
* device tracks — per-request queueing + service (:mod:`repro.storage.device`)
* ``cache`` — page-cache fill I/O and readahead (:mod:`repro.mm.page_cache`)
* ``uffd`` — userfaultfd notify-to-resolve round trips
* ``ebpf`` — each BPF program run (:mod:`repro.ebpf.interp`) and kfunc call
* ``node`` — per-request serving spans (:mod:`repro.platform.node`)
* per-VM tracks — restore phases and the E2E breakdown
  (:mod:`repro.core.approach`, :mod:`repro.harness.experiment`)
"""

from repro.trace.export import chrome_trace, to_jsonl, write_chrome, write_jsonl
from repro.trace.tracer import Span, Tracer

__all__ = [
    "Span",
    "Tracer",
    "chrome_trace",
    "to_jsonl",
    "write_chrome",
    "write_jsonl",
]
