"""Low-overhead span tracer for the DES.

The tracer records *complete* spans — (name, category, start, duration)
on a named track — the same shape Chrome's ``chrome://tracing`` renders.
Simulated seconds are the clock: a span's ``ts`` is ``env.now`` when the
phase began, so a trace of one restore lays the prefetch issue, device
queueing, fault handling and BPF program runs on a common timeline.

The tracer starts disabled and every instrumentation site guards with
``tracer.enabled`` before building a span, so the instrumented hot paths
pay one attribute check when tracing is off (the <5 % overhead budget).
Instrumented subsystems reach their tracer through duck-typed attributes
(``env.tracer``, ``interpreter.tracer``), mirroring how the fault plane
hooks in — the bottom layers never import this package.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass


@dataclass(slots=True)
class Span:
    """One trace event.  ``ph`` is the Chrome phase: X=complete, i=instant."""

    name: str
    cat: str
    ts: float
    dur: float
    track: str = "main"
    ph: str = "X"
    args: dict | None = None


class Tracer:
    """Span collector; disabled (and free) until :meth:`enable` is called.

    ``max_events`` bounds memory on long runs: the span store is a ring
    buffer — past capacity each new span overwrites the *oldest* one,
    and every overwrite is counted in :attr:`dropped` (never silently),
    mirroring the BPF ring buffer's drop accounting.  Keeping the most
    recent spans is what a live dashboard attached mid-run needs; the
    default capacity is high enough that batch exports never wrap, so
    existing trace files are byte-identical.
    """

    def __init__(self, max_events: int = 1_000_000):
        self.enabled = False
        self.max_events = max_events
        self.events: deque[Span] = deque(maxlen=max_events)
        self.dropped = 0

    # -- lifecycle ---------------------------------------------------------
    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def clear(self) -> None:
        self.events.clear()
        self.dropped = 0

    # -- emission ----------------------------------------------------------
    def complete(self, name: str, cat: str, ts: float, end: float | None = None,
                 dur: float | None = None, track: str = "main",
                 **args) -> None:
        """Record a complete span; pass either ``end`` or ``dur``."""
        if not self.enabled:
            return
        if dur is None:
            dur = 0.0 if end is None else end - ts
        self._emit(Span(name, cat, ts, dur, track, "X", args or None))

    def instant(self, name: str, cat: str, ts: float, track: str = "main",
                **args) -> None:
        """Record a zero-duration marker event."""
        if not self.enabled:
            return
        self._emit(Span(name, cat, ts, 0.0, track, "i", args or None))

    def _emit(self, span: Span) -> None:
        if len(self.events) >= self.max_events:
            self.dropped += 1  # the deque evicts the oldest span
        self.events.append(span)

    # -- queries -----------------------------------------------------------
    def spans(self, cat: str | None = None, name: str | None = None
              ) -> list[Span]:
        return [s for s in self.events
                if (cat is None or s.cat == cat)
                and (name is None or s.name == name)]

    def recent(self, n: int) -> list[Span]:
        """The last ``n`` spans, oldest first (the dashboard's span
        ring)."""
        if n <= 0:
            return []
        events = self.events
        start = max(0, len(events) - n)
        return [events[i] for i in range(start, len(events))]

    def category_totals(self) -> dict[str, float]:
        """Summed span durations per category (the CLI summary line)."""
        totals: dict[str, float] = {}
        for span in self.events:
            totals[span.cat] = totals.get(span.cat, 0.0) + span.dur
        return totals

    def __len__(self) -> int:
        return len(self.events)
