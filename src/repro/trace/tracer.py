"""Low-overhead span tracer for the DES.

The tracer records *complete* spans — (name, category, start, duration)
on a named track — the same shape Chrome's ``chrome://tracing`` renders.
Simulated seconds are the clock: a span's ``ts`` is ``env.now`` when the
phase began, so a trace of one restore lays the prefetch issue, device
queueing, fault handling and BPF program runs on a common timeline.

The tracer starts disabled and every instrumentation site guards with
``tracer.enabled`` before building a span, so the instrumented hot paths
pay one attribute check when tracing is off (the <5 % overhead budget).
Instrumented subsystems reach their tracer through duck-typed attributes
(``env.tracer``, ``interpreter.tracer``), mirroring how the fault plane
hooks in — the bottom layers never import this package.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class Span:
    """One trace event.  ``ph`` is the Chrome phase: X=complete, i=instant."""

    name: str
    cat: str
    ts: float
    dur: float
    track: str = "main"
    ph: str = "X"
    args: dict | None = None


class Tracer:
    """Span collector; disabled (and free) until :meth:`enable` is called.

    ``max_events`` bounds memory on long runs: past it, new spans are
    counted in :attr:`dropped` instead of stored — never silently.
    """

    def __init__(self, max_events: int = 1_000_000):
        self.enabled = False
        self.max_events = max_events
        self.events: list[Span] = []
        self.dropped = 0

    # -- lifecycle ---------------------------------------------------------
    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def clear(self) -> None:
        self.events.clear()
        self.dropped = 0

    # -- emission ----------------------------------------------------------
    def complete(self, name: str, cat: str, ts: float, end: float | None = None,
                 dur: float | None = None, track: str = "main",
                 **args) -> None:
        """Record a complete span; pass either ``end`` or ``dur``."""
        if not self.enabled:
            return
        if dur is None:
            dur = 0.0 if end is None else end - ts
        self._emit(Span(name, cat, ts, dur, track, "X", args or None))

    def instant(self, name: str, cat: str, ts: float, track: str = "main",
                **args) -> None:
        """Record a zero-duration marker event."""
        if not self.enabled:
            return
        self._emit(Span(name, cat, ts, 0.0, track, "i", args or None))

    def _emit(self, span: Span) -> None:
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self.events.append(span)

    # -- queries -----------------------------------------------------------
    def spans(self, cat: str | None = None, name: str | None = None
              ) -> list[Span]:
        return [s for s in self.events
                if (cat is None or s.cat == cat)
                and (name is None or s.name == name)]

    def category_totals(self) -> dict[str, float]:
        """Summed span durations per category (the CLI summary line)."""
        totals: dict[str, float] = {}
        for span in self.events:
            totals[span.cat] = totals.get(span.cat, 0.0) + span.dur
        return totals

    def __len__(self) -> int:
        return len(self.events)
