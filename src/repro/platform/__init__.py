"""FaaS platform layer: a multi-function serverless node.

The paper evaluates one function at a time; a provider host runs many.
This package composes the reproduction into a node-level simulation:
per-function snapshots and prefetching state, Poisson request arrivals
across a function mix, optional warm-sandbox pooling (cold starts only
happen when the pool is empty — the industry keep-alive policy), and a
memory-timeline sampler.  It exists to answer the adoption question the
paper motivates: what do SnapBPF's latency and dedup wins do to
*tail* cold-start latency and node memory under realistic traffic?
"""

from repro.platform.node import FaaSNode, RequestResult
from repro.platform.workload import Arrival, MemorySample, poisson_arrivals

__all__ = [
    "Arrival",
    "FaaSNode",
    "MemorySample",
    "RequestResult",
    "poisson_arrivals",
]
