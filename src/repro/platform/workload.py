"""Request workloads for the node simulation."""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.workloads.profile import FunctionProfile
from repro.workloads.trace import ConstantRate


@dataclass(frozen=True)
class Arrival:
    """One incoming invocation request."""

    time: float
    function: str
    input_seed: int


@dataclass(frozen=True)
class MemorySample:
    time: float
    bytes_in_use: int


def poisson_arrivals(mix: list[tuple[FunctionProfile, float]],
                     duration: float, seed: int = 0,
                     vary_inputs: bool = False) -> list[Arrival]:
    """Poisson arrivals for a function mix.

    ``mix`` maps each function to its arrival rate (requests/second).
    With ``vary_inputs`` each request carries a distinct input seed
    (exercising the input-dependent working-set fraction); otherwise all
    requests use input 0, the paper's identical-inputs setup.

    Sampling goes through the shared :class:`~repro.workloads.trace.
    ArrivalProcess` path (a :class:`ConstantRate` per mix entry over one
    seeded RNG), which for a constant rate consumes exactly one
    expovariate per point — seeded sequences are byte-identical to the
    historic single-rate generator.
    """
    if duration <= 0:
        raise ValueError("duration must be positive")
    if not mix:
        raise ValueError("mix must name at least one function")
    rng = random.Random(seed)
    arrivals: list[Arrival] = []
    for profile, rate in mix:
        if rate <= 0:
            raise ValueError(f"{profile.name}: rate must be positive")
        process = ConstantRate(rate)
        for index, t in enumerate(process.sample(rng, duration)):
            arrivals.append(Arrival(
                time=t, function=profile.name,
                input_seed=index if vary_inputs else 0))
    arrivals.sort(key=lambda a: (a.time, a.function))
    return arrivals
