"""A serverless node: many functions, one host kernel, shared page cache.

The node owns one prefetching approach *instance per function* (each
instance holds that function's snapshot and record-phase artifacts) on a
single shared kernel, so concurrent sandboxes of different functions
compete for the same page cache and device — the cross-function
interference a single-scenario run cannot show.

Warm pooling: after an invocation the sandbox is parked for however
long the node's :class:`~repro.cluster.keepalive.KeepAlivePolicy` says
(the default fixed policy parks for ``warm_pool_ttl`` seconds); a
request finding a parked sandbox gets a *warm start* (no restore, EPT
already populated) and only pool misses pay the cold-start path under
test.  Histogram policies can also *pre-warm*: spawn a sandbox ahead of
the predicted next arrival after a pool entry expires, charging the
cold start to the node instead of a request.
"""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass
from typing import Callable

from repro.baselines.base import Approach, approach_registry
from repro.cluster.keepalive import FixedTTLPolicy, KeepAlivePolicy
from repro.mm.kernel import Kernel
from repro.platform.workload import Arrival, MemorySample
from repro.units import USEC
from repro.vmm.microvm import MicroVM
from repro.workloads.profile import FunctionProfile
from repro.workloads.trace import generate_trace

#: Unpausing a parked sandbox (firecracker resume).
WARM_RESUME_SECONDS = 400 * USEC


@dataclass
class RequestResult:
    """Outcome of one request against the node."""

    function: str
    arrival_time: float
    latency: float
    cold: bool
    input_seed: int
    #: "ok", "timeout" (request deadline expired), or "failed" (EIO
    #: survived the cold-start retry).
    status: str = "ok"
    #: Cold-start retries this request needed (0 or 1).
    retries: int = 0


@dataclass
class NodeReport:
    """Aggregate outcome of a workload run."""

    results: list[RequestResult]
    memory_timeline: list[MemorySample]
    peak_memory_bytes: int

    def latencies(self, cold: bool | None = None) -> list[float]:
        return [r.latency for r in self.results
                if cold is None or r.cold == cold]

    @property
    def cold_starts(self) -> int:
        return sum(1 for r in self.results if r.cold)

    @property
    def warm_starts(self) -> int:
        return len(self.results) - self.cold_starts

    def percentile(self, p: float, cold: bool | None = None) -> float:
        """Nearest-rank percentile: the smallest value with at least
        ``p`` percent of the sample at or below it (so p=50 on 10 sorted
        samples is the 5th value, index 4 — not index 5)."""
        values = sorted(self.latencies(cold))
        if not values:
            raise ValueError("no matching requests")
        index = min(len(values) - 1,
                    max(0, math.ceil(p / 100 * len(values)) - 1))
        return values[index]

    def mean_latency(self, cold: bool | None = None) -> float:
        return statistics.fmean(self.latencies(cold))

    # -- fault plane --------------------------------------------------------
    @property
    def completed(self) -> int:
        return sum(1 for r in self.results if r.status == "ok")

    @property
    def timeouts(self) -> int:
        return sum(1 for r in self.results if r.status == "timeout")

    @property
    def failures(self) -> int:
        return sum(1 for r in self.results if r.status == "failed")

    @property
    def request_retries(self) -> int:
        return sum(r.retries for r in self.results)

    def fault_summary(self) -> dict[str, int]:
        """Degradation counters for the harness report."""
        return {
            "completed": self.completed,
            "request_retries": self.request_retries,
            "timeouts": self.timeouts,
            "failures": self.failures,
        }


class FaaSNode:
    """One host serving a mix of functions with one restore approach."""

    def __init__(self, kernel: Kernel,
                 approach_factory: Callable[[Kernel], Approach] | str,
                 profiles: list[FunctionProfile],
                 warm_pool_ttl: float | None = None,
                 request_deadline: float | None = None,
                 keepalive: KeepAlivePolicy | None = None):
        if isinstance(approach_factory, str):
            approach_factory = approach_registry()[approach_factory]
        self.kernel = kernel
        self.profiles = {p.name: p for p in profiles}
        self.approaches: dict[str, Approach] = {
            p.name: approach_factory(kernel) for p in profiles}
        self.warm_pool_ttl = warm_pool_ttl
        #: Keep-alive policy deciding park TTLs and pre-warm windows.
        #: Default reproduces the historic fixed-TTL path exactly.
        self.keepalive = (keepalive if keepalive is not None
                          else FixedTTLPolicy(warm_pool_ttl))
        self._in_service = True
        #: Wall-clock budget per request.  Past it the request reports a
        #: "timeout" result; the in-flight attempt is abandoned (it still
        #: finishes in the background and cleans up its sandbox).
        self.request_deadline = request_deadline
        self._pool: dict[str, list[MicroVM]] = {p.name: [] for p in profiles}
        self._vm_seq = 0
        self.prepared = False
        # Degradation counters, published on the machine's registry so
        # node-level health shows up in the same Prometheus exposition
        # as reclaim_* / sweep_* (names mirror NodeReport.fault_summary).
        metrics = kernel.metrics
        self._m_requests = metrics.counter(
            "node_requests_total", "requests handled by this host")
        self._m_completed = metrics.counter(
            "node_requests_completed_total", "requests finishing ok")
        self._m_retries = metrics.counter(
            "node_request_retries_total", "cold-start retries after EIO")
        self._m_timeouts = metrics.counter(
            "node_request_timeouts_total", "requests past their deadline")
        self._m_failures = metrics.counter(
            "node_request_failures_total", "requests failed after retry")
        self._m_cold = metrics.counter(
            "node_cold_starts_total", "requests served by a cold start")
        self._m_warm = metrics.counter(
            "node_warm_starts_total", "requests served from the warm pool")
        self._m_prewarms = metrics.counter(
            "node_prewarms_total", "sandboxes spawned ahead of arrivals")

    # -- lifecycle ----------------------------------------------------------------
    def prepare(self):
        """Generator: record phase for every function (offline)."""
        for name, approach in self.approaches.items():
            profile = self.profiles[name]
            yield from approach.prepare(profile, generate_trace(profile, 0))
        if self.kernel.snapstore is not None:
            # Node-boot pre-placement: apply the spec's tier placement
            # (e.g. base-local keeps only the deduplicated base-image
            # chunks warm; everything else stages on first restore).
            self.kernel.snapstore.apply_placement()
        self.kernel.drop_caches()
        self.kernel.device.reset_stats()
        self.kernel.frames.reset_peak()
        self.prepared = True

    # -- request path -----------------------------------------------------------------
    def handle(self, arrival: Arrival):
        """Generator: serve one request; returns a RequestResult.

        Degradation ladder: an attempt that dies with EIO (a media error
        that survived every lower-layer retry) gets exactly one fresh
        cold-start retry; the optional ``request_deadline`` bounds the
        whole request, abandoning the in-flight attempt past it.  Either
        way a result is always returned — faults never crash the node.
        """
        if not self.prepared:
            raise RuntimeError("node.prepare() has not run")
        env = self.kernel.env
        self.keepalive.observe(arrival.function, env.now)
        profile = self.profiles[arrival.function]
        approach = self.approaches[arrival.function]
        trace = generate_trace(profile, arrival.input_seed)
        start = env.now

        retries = 0
        status = "ok"
        cold = False
        while True:
            info = {"cold": False}
            self._vm_seq += 1
            vm_id = f"{arrival.function}-{self._vm_seq}"
            attempt = env.process(
                self._attempt(arrival, profile, approach, trace, info,
                              vm_id, force_cold=retries > 0),
                name=f"attempt-{vm_id}")
            try:
                if self.request_deadline is not None:
                    remaining = max(0.0,
                                    start + self.request_deadline - env.now)
                    yield env.any_of([attempt, env.timeout(remaining)])
                    if not attempt.triggered:
                        # Deadline expired mid-attempt: report the
                        # timeout now; the attempt finishes (or fails,
                        # already defused) in the background.
                        status = "timeout"
                        cold = info["cold"]
                        break
                else:
                    yield attempt
                cold = info["cold"]
                break
            except IOError:
                cold = info["cold"]
                if retries >= 1:
                    status = "failed"
                    break
                retries += 1

        latency = env.now - start
        self._m_requests.inc()
        self._m_retries.inc(retries)
        (self._m_cold if cold else self._m_warm).inc()
        if status == "ok":
            self._m_completed.inc()
        elif status == "timeout":
            self._m_timeouts.inc()
        else:
            self._m_failures.inc()
        tracer = env.tracer
        if tracer is not None and tracer.enabled:
            tracer.complete(f"req {arrival.function}", "node", start,
                            end=env.now, track="node", cold=cold,
                            status=status, retries=retries)
        return RequestResult(function=arrival.function,
                             arrival_time=arrival.time, latency=latency,
                             cold=cold, input_seed=arrival.input_seed,
                             status=status, retries=retries)

    def _attempt(self, arrival: Arrival, profile: FunctionProfile,
                 approach: Approach, trace, info: dict, vm_id: str,
                 force_cold: bool = False):
        """Generator: one serving attempt, sandbox cleanup included (so
        an attempt abandoned at the deadline still parks or tears down
        its sandbox when it eventually finishes)."""
        env = self.kernel.env
        pool = self._pool[arrival.function]
        vm = None
        try:
            if pool and not force_cold:
                info["cold"] = False
                start = env.now
                vm = pool.pop()
                vm._parked = False
                yield env.timeout(WARM_RESUME_SECONDS)
                vm._spawn_time = start
                yield from vm.invoke(trace)
            else:
                info["cold"] = True
                vm = yield from approach.spawn(profile, vm_id=vm_id)
                yield from vm.invoke(trace)
                approach.post_invoke(vm)
        except IOError:
            if vm is not None and not vm.space.dead:
                vm.teardown()
            raise
        ttl = self.keepalive.ttl(arrival.function)
        if ttl is not None:
            self._park(vm, arrival.function, ttl)
        else:
            vm.teardown()

    def _park(self, vm: MicroVM, function: str, ttl: float) -> None:
        env = self.kernel.env
        vm._parked = True
        # Each park gets a fresh token so a stale reaper (from a park
        # whose sandbox was popped and re-parked before the TTL fired)
        # cannot tear down the *new* park's sandbox.
        token = object()
        vm._park_token = token
        self._pool[function].append(vm)

        def reaper():
            yield env.timeout(ttl)
            if (getattr(vm, "_parked", False)
                    and getattr(vm, "_park_token", None) is token):
                vm._parked = False
                try:
                    self._pool[function].remove(vm)
                except ValueError:
                    pass
                vm.teardown()
                self._maybe_prewarm(function)

        env.process(reaper(), name=f"reaper-{vm.vm_id}")

    def _maybe_prewarm(self, function: str) -> None:
        """Pool entry expired: ask the policy whether (and when) to spawn
        a sandbox ahead of the predicted next arrival."""
        env = self.kernel.env
        when = self.keepalive.prewarm_at(function, env.now)
        if when is None or not self._in_service:
            return
        self.keepalive.pending_prewarms += 1

        def prewarm():
            try:
                yield env.timeout(max(0.0, when - env.now))
                if not self._in_service or self._pool[function]:
                    return  # shut down, or an arrival already re-parked
                profile = self.profiles[function]
                approach = self.approaches[function]
                self._vm_seq += 1
                vm_id = f"{function}-prewarm-{self._vm_seq}"
                try:
                    vm = yield from approach.spawn(profile, vm_id=vm_id)
                except IOError:
                    return  # media error: abandon the speculative spawn
                self._m_prewarms.inc()
                ttl = self.keepalive.ttl(function)
                if ttl is not None and self._in_service:
                    self._park(vm, function, ttl)
                else:
                    vm.teardown()
            finally:
                self.keepalive.pending_prewarms -= 1

        env.process(prewarm(), name=f"prewarm-{function}")

    # -- workload driver ----------------------------------------------------------------
    def run(self, arrivals: list[Arrival],
            sample_interval: float = 0.05) -> NodeReport:
        """Drive a full workload to completion; returns the report."""
        env = self.kernel.env
        if not self.prepared:
            env.run(env.process(self.prepare(), name="node-prepare"))

        timeline: list[MemorySample] = []
        done = {"flag": False}

        def sampler():
            while not done["flag"]:
                timeline.append(MemorySample(env.now,
                                             self.kernel.frames.in_use
                                             * 4096))
                yield env.timeout(sample_interval)

        env.process(sampler(), name="memory-sampler")
        base = env.now

        def request(arrival: Arrival):
            yield env.timeout(max(0.0, base + arrival.time - env.now))
            result = yield from self.handle(arrival)
            return result

        processes = [env.process(request(a), name=f"req-{i}")
                     for i, a in enumerate(arrivals)]
        gate = env.all_of(processes)
        env.run(gate)
        done["flag"] = True
        env.run()  # drain reapers and the sampler

        return NodeReport(
            results=[p.value for p in processes],
            memory_timeline=timeline,
            peak_memory_bytes=self.kernel.frames.peak_bytes)

    def shutdown(self) -> int:
        """Take the host out of service: tear down every parked sandbox
        (warm pools expire immediately) and drop the page cache.

        Returns the number of resident pages discarded — the locality
        the fleet loses when this node goes away (the cluster plane
        counts it as rebalance evictions).  In-flight attempts finish in
        the background against the empty cache.
        """
        self._in_service = False
        for pool in self._pool.values():
            for vm in list(pool):
                vm._parked = False
                vm.teardown()
            pool.clear()
        if self.kernel.snapstore is not None:
            # Decommission the local tier and release this node's
            # snapshot references; chunks still referenced by other
            # nodes' manifests survive in the shared tiers (refcounted
            # GC reclaims only the last owner's bytes).
            self.kernel.snapstore.drop_local()
            self.kernel.snapstore.release_all()
        return self.kernel.drop_caches()

    # -- introspection ---------------------------------------------------------------------
    def pooled_sandboxes(self, function: str) -> int:
        return len(self._pool[function])
