"""The SnapBPF restore approach (and the Figure 4 PV-only variant).

Record phase: attach the capture program to the ``add_to_page_cache_lru``
kprobe, restore a sandbox with readahead disabled and PV marking on, run
the function once, drain the offsets map, group + sort (§3.1), and store
the tiny metadata file — *no* working-set pages are serialized.

Invocation phase (Figure 1): read the grouped offsets from disk, load
them into an eBPF array map (the 1-2 ms overhead of §4), attach the
prefetch program, and trigger it by touching the first snapshot page.
The program drives ``page_cache_ra_unbounded`` through the kfunc, so the
working set lands in the shared page cache; PV PTE marking routes guest
allocations to anonymous memory with zero snapshot I/O; the patched KVM
keeps read faults from CoWing shared pages.
"""

from __future__ import annotations

from repro.baselines.base import Approach, register_approach
from repro.baselines.linux import LinuxRA
from repro.core.grouping import Group, group_offsets, groups_metadata_bytes
from repro.core.kfuncs import register_snapbpf_kfunc
from repro.core.progs import (
    build_capture_program,
    build_prefetch_program,
    load_groups,
    make_events_ringbuf,
    make_groups_map,
    make_state_map,
)
from repro.ebpf.kprobe import AttachError
from repro.mm.page_cache import HOOK_ADD_TO_PAGE_CACHE
from repro.mm.readahead import ReadaheadState
from repro.units import DEFAULT_READAHEAD_PAGES
from repro.vmm.microvm import GUEST_BASE_VPN, MicroVM
from repro.vmm.snapshot import build_snapshot
from repro.workloads.profile import FunctionProfile


@register_approach
class SnapBPF(Approach):
    """eBPF kernel-space capture and prefetch + PV PTE marking."""

    name = "snapbpf"
    mechanism = "eBPF"
    kernel_space = True
    serializes_ws_on_disk = False
    in_memory_dedup = True
    stateless_alloc_filtering = True
    requires_snapshot_prescan = False

    #: Readahead on the snapshot mapping during invocations.  SnapBPF
    #: drives its own prefetching, so speculative kernel readahead would
    #: only re-inflate the fetched set; keeping it off preserves the
    #: "leaner working sets, similar to REAP" behaviour of §4.
    ra_pages = 0

    def __init__(self, kernel, pv_marking: bool = True,
                 patched_cow: bool = True):
        super().__init__(kernel)
        self.pv_marking = pv_marking
        self.patched_cow = patched_cow
        register_snapbpf_kfunc(kernel)
        self.groups: list[Group] = []
        self._meta_file = None
        #: Per-sandbox offset-load (bpf map update) seconds — the §4
        #: "SnapBPF Overheads" measurement.
        self.map_load_seconds: dict[str, float] = {}
        self.captured_pages = 0
        #: Capture events lost to a full ring buffer (e.g. after a
        #: fault-plane capacity squeeze): those pages simply are not
        #: prefetched, the restore demand-pages them instead.
        self.capture_events_dropped = 0
        #: Fault plane: capture program attaches that failed during
        #: prepare (recording proceeds without eBPF capture).
        self.capture_attach_failures = 0
        #: Fault plane: spawns that degraded to plain demand paging with
        #: kernel readahead (Linux-baseline behaviour) because prefetch
        #: setup failed — metadata unreadable, groups map overflowed
        #: after a capacity squeeze, or the program would not attach.
        self.prefetch_fallbacks = 0
        # Degradation counters are plain attributes (the chaos harness
        # reads them directly); the registry sees them via a collector.
        # Multiple instances on one kernel sum, by collector semantics.
        kernel.metrics.register_collector(lambda: {
            "approach_captured_pages": self.captured_pages,
            "approach_capture_events_dropped": self.capture_events_dropped,
            "approach_capture_attach_failures": self.capture_attach_failures,
            "approach_prefetch_fallbacks": self.prefetch_fallbacks,
        })

    # -- record phase -------------------------------------------------------------
    def prepare(self, profile: FunctionProfile, record_trace):
        env = self.kernel.env
        costs = self.kernel.costs
        self.snapshot = build_snapshot(self.kernel, profile,
                                       suffix=f".{self.name}")
        events = make_events_ringbuf(
            f"events_{profile.name}",
            max_entries=self.kernel.kprobes.map_capacity(1 << 21))
        capture = build_capture_program(self.snapshot.file.ino, events)
        try:
            self.kernel.kprobes.attach(HOOK_ADD_TO_PAGE_CACHE, capture)
        except AttachError:
            # Degrade: record without eBPF capture.  The working set
            # comes out empty and every later spawn demand-pages.
            self.capture_attach_failures += 1
            capture = None
        yield env.timeout(costs.bpf_prog_attach)
        try:
            vm = MicroVM(self.kernel, self.snapshot,
                         pv_marking=self.pv_marking,
                         patched_cow=self.patched_cow,
                         vm_id=f"record-{self.name}-{profile.name}")
            vm.space.mmap(self.snapshot.mem_pages, file=self.snapshot.file,
                          at=GUEST_BASE_VPN, ra_pages=0, name="guest-mem")
            yield from self._run_record_vm(vm, record_trace)
        finally:
            if capture is not None:
                self.kernel.kprobes.detach(HOOK_ADD_TO_PAGE_CACHE, capture)

        # VMM consumes the event ring — records arrive in page-cache
        # insertion order — dedups to first access per offset, groups +
        # sorts, and stores the metadata.
        records = events.consume_u64s()
        yield env.timeout(len(records) * costs.bpf_ringbuf_consume)
        tracer = env.tracer
        if tracer is not None and tracer.enabled:
            tracer.instant(f"{self.name}:ring-drain", "record", env.now,
                           track="record", records=len(records),
                           dropped=events.dropped)
        first_access: dict[int, int] = {}
        for offset, access_ns in records:
            if offset not in first_access:
                first_access[offset] = access_ns
        self.captured_pages = len(first_access)
        self.capture_events_dropped += events.dropped
        self.groups = group_offsets(first_access.items())
        meta_bytes = groups_metadata_bytes(self.groups)
        self._meta_file = (self.kernel.filestore.create(
            f"{profile.name}.{self.name}.groups", meta_bytes)
            if meta_bytes > 0 else None)
        if self._meta_file is not None and self.kernel.snapstore is not None:
            self.kernel.snapstore.record_derived(self._meta_file)
        self.prepared = True

    # -- invocation phase ----------------------------------------------------------
    def spawn(self, profile: FunctionProfile, vm_id: str | None = None):
        snapshot = self._require_prepared()
        env = self.kernel.env
        costs = self.kernel.costs
        start = env.now
        vm = MicroVM(self.kernel, snapshot, pv_marking=self.pv_marking,
                     patched_cow=self.patched_cow, vm_id=vm_id)
        vm._spawn_time = start
        tracer = env.tracer
        tracing = tracer is not None and tracer.enabled
        vma = vm.space.mmap(snapshot.mem_pages, file=snapshot.file,
                            at=GUEST_BASE_VPN, ra_pages=self.ra_pages,
                            name="guest-mem")
        yield env.timeout(costs.mmap_region)
        if tracing:
            tracer.complete(f"{self.name}:mmap", "restore", start,
                            end=env.now, track=vm.vm_id)
        setup_start = env.now

        vm._snapbpf_prog = None  # for cleanup in post_invoke
        try:
            # (1) Read the grouped offsets from disk and load them into
            # the eBPF array map.
            if self._meta_file is not None:
                yield self.kernel.filestore.read_pages(
                    self._meta_file, 0, self._meta_file.size_pages)
            granted = self.kernel.kprobes.map_capacity(len(self.groups))
            groups_map = make_groups_map(f"groups_{vm.vm_id}", granted)
            state_map = make_state_map(f"state_{vm.vm_id}")
            load_groups(groups_map, self.groups)
            map_load = len(self.groups) * costs.bpf_map_update
            yield env.timeout(map_load)

            # (2) Attach the prefetch program (verified on attach).
            prog = build_prefetch_program(snapshot.file.ino, groups_map,
                                          state_map)
            self.kernel.kprobes.attach(HOOK_ADD_TO_PAGE_CACHE, prog)
            yield env.timeout(costs.bpf_prog_attach)
            vm._snapbpf_prog = prog
            self.map_load_seconds[vm.vm_id] = map_load
        except (ValueError, OSError):
            # Metadata unreadable, groups map squeezed below the group
            # count, or the prefetch program refused to attach: fall
            # back to plain demand paging with default kernel readahead
            # — the Linux-baseline ladder rung.  The sandbox still
            # completes; it just cold-starts the slow way.
            self.prefetch_fallbacks += 1
            vma.ra = ReadaheadState(DEFAULT_READAHEAD_PAGES)

        vm.setup_seconds = env.now - start
        if tracing:
            tracer.complete(f"{self.name}:prefetch-setup", "restore",
                            setup_start, end=env.now, track=vm.vm_id,
                            groups=len(self.groups),
                            fallback=vm._snapbpf_prog is None)

        # (3) Trigger prefetching by touching the first snapshot page.
        trigger_start = env.now
        trigger_cost = yield from vm.space.handle_fault(vm.guest_vpn(0),
                                                        False)
        yield env.timeout(trigger_cost)
        if tracing:
            tracer.complete(f"{self.name}:trigger", "restore",
                            trigger_start, end=env.now, track=vm.vm_id)
        return vm

    def post_invoke(self, vm: MicroVM) -> None:
        prog = getattr(vm, "_snapbpf_prog", None)
        if prog is not None and prog in self.kernel.kprobes.attached(
                HOOK_ADD_TO_PAGE_CACHE):
            self.kernel.kprobes.detach(HOOK_ADD_TO_PAGE_CACHE, prog)

    # -- info ---------------------------------------------------------------------------
    @property
    def metadata_bytes(self) -> int:
        """On-disk footprint of the prefetch metadata (vs. a WS *file*)."""
        return groups_metadata_bytes(self.groups)


@register_approach
class PVPTEsOnly(LinuxRA):
    """Figure 4's middle bar: default Linux readahead + PV PTE marking,
    without the eBPF prefetching mechanism."""

    name = "pv-ptes"
    mechanism = "mmap / demand paging + PV PTE marking"
    stateless_alloc_filtering = True
    pv_marking = True
