"""SnapBPF: the paper's contribution.

* :mod:`repro.core.grouping` — offset grouping: contiguous working-set
  page ranges, sorted by earliest access time (§3.1 "Loading the working
  set"),
* :mod:`repro.core.progs` — the capture and prefetch eBPF programs,
  written in the :mod:`repro.ebpf` assembly and verified at attach time,
* :mod:`repro.core.kfuncs` — the ``snapbpf_prefetch`` kfunc wrapping
  ``page_cache_ra_unbounded()``,
* :mod:`repro.core.approach` — the SnapBPF restore approach (eBPF
  capture/prefetch + PV PTE marking + patched KVM), plus the PV-PTEs-only
  variant used by the Figure 4 breakdown.
"""

from repro.core.approach import PVPTEsOnly, SnapBPF
from repro.core.grouping import Group, group_offsets, groups_metadata_bytes
from repro.core.kfuncs import SNAPBPF_PREFETCH, register_snapbpf_kfunc
from repro.core.progs import (
    build_capture_program,
    build_prefetch_program,
    make_events_ringbuf,
)

__all__ = [
    "Group",
    "PVPTEsOnly",
    "SNAPBPF_PREFETCH",
    "SnapBPF",
    "build_capture_program",
    "build_prefetch_program",
    "make_events_ringbuf",
    "group_offsets",
    "groups_metadata_bytes",
    "register_snapbpf_kfunc",
]
