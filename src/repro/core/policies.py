"""Eviction-policy eBPF programs for the reclaim attach point.

The reclaim scan fires :data:`~repro.mm.reclaim.HOOK_MM_EVICT` once per
eviction candidate with context ``(u64 ino, u64 index, u64 free_frames,
u64 need)`` and interprets the program's r0 as a verdict:
:data:`~repro.mm.reclaim.VERDICT_VETO` rotates the page back onto the
LRU, any value >= 2 is a score, and candidates are evicted in ascending
``(score, scan order)``.  With no program attached the kernel LRU order
applies unchanged — the "policy is a plug-in, LRU is the default"
contract of the eBPF-eviction line of work (Cache is King, LearnedCache;
see PAPERS.md).

Two built-in policies double as CLI-selectable examples and as the
determinism fixtures for the acceptance criterion that an attached
policy yields a *different but still deterministic* eviction sequence:

* ``protect-head`` — vetoes eviction of the first 64 pages of every
  file (the snapshot header region a restore always touches first).
* ``evict-high-first`` — scores candidates so the highest file offsets
  are reclaimed first, inverting LRU's arrival order for streamed
  snapshots.
"""

from __future__ import annotations

from repro.ebpf.asm import Label, Program, alu, assemble, exit_, jcond, load, movi
from repro.ebpf.insn import R0, R1, R2
from repro.mm.reclaim import HOOK_MM_EVICT, VERDICT_DEFAULT, VERDICT_VETO

#: Pages below this file offset are vetoed by ``protect-head``.
PROTECTED_HEAD_PAGES = 64

#: Score bias for ``evict-high-first``: score = BIAS - index, so larger
#: offsets sort first while every score stays >= 2 (above the verdict
#: range) for any realistic file size.
HIGH_FIRST_BIAS = 1 << 31


def protect_head_program() -> Program:
    """Veto eviction of every page with index < PROTECTED_HEAD_PAGES."""
    return assemble("evict_protect_head", [
        load(R2, R1, 8),                     # r2 = page index
        jcond("jge", R2, "default", imm=PROTECTED_HEAD_PAGES),
        movi(R0, VERDICT_VETO),
        exit_(),
        Label("default"),
        movi(R0, VERDICT_DEFAULT),
        exit_(),
    ])


def evict_high_first_program() -> Program:
    """Score candidates so the highest file offsets evict first."""
    return assemble("evict_high_first", [
        load(R2, R1, 8),                     # r2 = page index
        movi(R0, HIGH_FIRST_BIAS),
        alu("sub", R0, R2),                  # r0 = BIAS - index
        exit_(),
    ])


POLICIES: dict[str, object] = {
    "protect-head": protect_head_program,
    "evict-high-first": evict_high_first_program,
}


def policy_names() -> tuple[str, ...]:
    return tuple(sorted(POLICIES))


def attach_evict_policy(kernel, name: str) -> Program:
    """Assemble the named policy and attach it to the eviction hook."""
    try:
        factory = POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown eviction policy {name!r}; "
            f"choose from {', '.join(policy_names())}") from None
    program = factory()
    kernel.kprobes.attach(HOOK_MM_EVICT, program)
    return program
