"""Working-set offset grouping (§3.1, "Loading the working set").

    "Once the file offsets for the pages comprising the working set have
    been captured, we first group them into contiguous ranges of offsets
    and sort them based on the earliest access time of any of the pages
    in each group."

Grouping minimizes the number of block requests the kernel issues
(software overhead), and the earliest-access sort makes the prefetcher
fetch what the function needs first — the two properties the property
tests in ``tests/core/test_grouping.py`` pin down.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

#: On-disk metadata record size per group: u64 start + u64 count.
GROUP_RECORD_BYTES = 16


@dataclass(frozen=True)
class Group:
    """A contiguous range of working-set page offsets."""

    start: int
    count: int
    #: Earliest capture timestamp (ns) of any page in the group.
    first_access_ns: int

    @property
    def end(self) -> int:
        return self.start + self.count

    def __post_init__(self) -> None:
        if self.count <= 0:
            raise ValueError("group must contain at least one page")
        if self.start < 0:
            raise ValueError("group start must be >= 0")


def group_offsets(entries: Iterable[tuple[int, int]]) -> list[Group]:
    """Group captured (page_offset, access_ns) pairs.

    Returns contiguous, disjoint groups covering exactly the input
    offsets, ordered by each group's earliest access time (ties broken by
    start offset for determinism).
    """
    items = sorted(dict(entries).items())  # dedup offsets, keep a ts each
    groups: list[Group] = []
    run_start: int | None = None
    run_len = 0
    run_ts = 0
    for offset, ts in items:
        if run_start is not None and offset == run_start + run_len:
            run_len += 1
            run_ts = min(run_ts, ts)
        else:
            if run_start is not None:
                groups.append(Group(run_start, run_len, run_ts))
            run_start, run_len, run_ts = offset, 1, ts
    if run_start is not None:
        groups.append(Group(run_start, run_len, run_ts))
    groups.sort(key=lambda g: (g.first_access_ns, g.start))
    return groups


def groups_metadata_bytes(groups: list[Group]) -> int:
    """Size of the on-disk metadata SnapBPF stores instead of page data.

    This is the paper's headline storage saving: offsets, not pages."""
    return max(1, len(groups) * GROUP_RECORD_BYTES)


def total_pages(groups: list[Group]) -> int:
    return sum(g.count for g in groups)
