"""The ``snapbpf_prefetch`` kfunc (§3.1).

    "As the Linux kernel sandboxes eBPF programs, which prevents them
    from, for example, issuing block requests to storage or manipulating
    the OS page cache, we implement an eBPF helper function, more
    specifically a kfunc (snapbpf_prefetch()), which wraps around the
    Linux page cache readahead routine that prefetches pages from storage
    (page_cache_ra_unbounded())."

Registering the kfunc against a kernel's :class:`KfuncRegistry` is what
allows the prefetch program to pass verification; the CPU cost of the
readahead work it triggers is charged back to the kprobe fire that ran
the program (via ``kprobes.side_cost``).
"""

from __future__ import annotations

from repro.mm.kernel import Kernel

SNAPBPF_PREFETCH = "snapbpf_prefetch"


def register_snapbpf_kfunc(kernel: Kernel) -> None:
    """Expose snapbpf_prefetch(ino, start_page, npages) to BPF programs.

    Idempotent per kernel.  Returns the number of pages whose fetch was
    initiated (0 for unknown inodes or fully-resident ranges).
    """
    if SNAPBPF_PREFETCH in kernel.kfuncs:
        return

    def snapbpf_prefetch(ino: int, start_page: int, npages: int) -> int:
        try:
            file = kernel.filestore.by_ino(ino)
        except FileNotFoundError:
            return 0
        cost = kernel.page_cache.page_cache_ra_unbounded(
            file, start_page, npages)
        kernel.kprobes.side_cost += cost
        tracer = kernel.tracer
        if tracer is not None and tracer.enabled:
            tracer.instant(SNAPBPF_PREFETCH, "ebpf", kernel.env.now,
                           track="ebpf", ino=ino, start=start_page,
                           npages=npages)
        return min(npages, max(0, file.size_pages - start_page))

    kernel.kfuncs.register(SNAPBPF_PREFETCH, snapbpf_prefetch, n_args=3)
