"""The SnapBPF eBPF programs, in :mod:`repro.ebpf` assembly.

Both attach to the kprobe on ``add_to_page_cache_lru`` whose context is
``(u64 ino, u64 page_index)``.

Capture program (§3.1 "Capturing the working set"): filters insertions to
the function's snapshot inode and streams one ``(offset, access ns)``
event per insertion into a BPF ring buffer the VMM consumes after the
record invocation (deduplicating to first access in userspace — the ring
has no random access).  Only offsets are shipped — never the pages.

Prefetch program (§3.1 "Loading the working set"): on the first
insertion for the snapshot inode (the VMM's trigger touch), it walks the
array map of grouped offsets — already sorted by earliest access — and
calls the ``snapbpf_prefetch`` kfunc for each contiguous range, then
disables itself (returns ``RET_DETACH_SELF``).  A done-flag map makes
nested fires (the kfunc's own cache insertions re-enter the hook) exit
immediately.
"""

from __future__ import annotations

import struct

from repro.core.kfuncs import SNAPBPF_PREFETCH
from repro.ebpf.asm import (
    Label,
    Program,
    alui,
    assemble,
    call,
    call_kfunc,
    exit_,
    jcond,
    jmp,
    ldmap,
    load,
    mov,
    movi,
    store,
    storei,
)
from repro.ebpf.helpers import (
    BPF_FUNC_KTIME_GET_NS,
    BPF_FUNC_MAP_LOOKUP_ELEM,
    BPF_FUNC_RINGBUF_OUTPUT,
)
from repro.ebpf.insn import R0, R1, R2, R3, R6, R7, R8, R10
from repro.ebpf.kprobe import RET_DETACH_SELF
from repro.ebpf.maps import ArrayMap, RingBufMap

#: Capture event layout: ``(u64 page_offset, u64 access_ns)``.
CAPTURE_EVENT_SIZE = 16


def make_events_ringbuf(name: str, max_entries: int = 1 << 21) -> RingBufMap:
    """Ring buffer the capture program streams access events into."""
    return RingBufMap(name, value_size=CAPTURE_EVENT_SIZE,
                      max_entries=max_entries)


def make_groups_map(name: str, n_groups: int) -> ArrayMap:
    """Array of (u64 start, u64 count) records, zero-terminated."""
    return ArrayMap(name, value_size=16, max_entries=n_groups + 1)


def make_state_map(name: str) -> ArrayMap:
    """Single-slot state: slot 0 holds the prefetch done flag."""
    return ArrayMap(name, value_size=8, max_entries=1)


def load_groups(groups_map: ArrayMap, groups) -> None:
    """Userspace side: write grouped offsets into the array map.

    The harness charges ``costs.bpf_map_update`` per entry for this — the
    1-2 ms offset-load overhead the paper reports (§4 "SnapBPF
    Overheads")."""
    if len(groups) >= groups_map.max_entries:
        raise ValueError(
            f"{len(groups)} groups do not fit map of "
            f"{groups_map.max_entries} (need a zero sentinel slot)")
    for i, group in enumerate(groups):
        groups_map.update(struct.pack("<I", i),
                          struct.pack("<QQ", group.start, group.count))


def build_capture_program(snapshot_ino: int, events: RingBufMap,
                          name: str = "snapbpf_capture") -> Program:
    """Stream one (offset, access ns) event per snapshot-inode insertion.

    The in-kernel side does no deduplication — the ring buffer has no
    lookup, by design — so the VMM keeps the first-access timestamp per
    offset when it consumes the ring.  A full ring drops the event
    (``bpf_ringbuf_output`` returns -ENOSPC) rather than stalling the
    page-cache insertion path.
    """
    source = [
        load(R6, R1, 0),                       # r6 = ctx->ino
        jcond("jne", R6, "out", imm=snapshot_ino),
        load(R7, R1, 8),                       # r7 = ctx->index
        call(BPF_FUNC_KTIME_GET_NS),
        mov(R8, R0),                           # r8 = now_ns
        store(R10, -16, R7),                   # event.offset
        store(R10, -8, R8),                    # event.access_ns
        ldmap(R1, "events"),
        mov(R2, R10), alui("add", R2, -16),
        call(BPF_FUNC_RINGBUF_OUTPUT),
        Label("out"),
        movi(R0, 0),
        exit_(),
    ]
    return assemble(name, source, maps={"events": events})


def build_prefetch_program(snapshot_ino: int, groups_map: ArrayMap,
                           state_map: ArrayMap,
                           name: str = "snapbpf_prefetch_prog") -> Program:
    """Walk the grouped offsets, kfunc-prefetch each range, self-detach."""
    max_iter = groups_map.max_entries
    source = [
        load(R6, R1, 0),                       # r6 = ctx->ino
        jcond("jne", R6, "idle", imm=snapshot_ino),
        # done-flag check: nested fires (our own prefetch insertions) and
        # stray later insertions must not re-trigger.
        storei(R10, -4, 0, width=4),
        ldmap(R1, "state"),
        mov(R2, R10), alui("add", R2, -4),
        call(BPF_FUNC_MAP_LOOKUP_ELEM),
        jcond("jeq", R0, "idle", imm=0),
        load(R7, R0, 0),
        jcond("jne", R7, "idle", imm=0),
        storei(R0, 0, 1),                      # done = 1 (before issuing)
        movi(R8, 0),                           # r8 = group index
        Label("loop"),
        jcond("jge", R8, "done", imm=max_iter),
        store(R10, -4, R8, width=4),
        ldmap(R1, "groups"),
        mov(R2, R10), alui("add", R2, -4),
        call(BPF_FUNC_MAP_LOOKUP_ELEM),
        jcond("jeq", R0, "done", imm=0),
        load(R3, R0, 8),                       # r3 = count
        jcond("jeq", R3, "done", imm=0),       # zero sentinel: finished
        load(R2, R0, 0),                       # r2 = start
        movi(R1, snapshot_ino),
        call_kfunc(SNAPBPF_PREFETCH),
        alui("add", R8, 1),
        jmp("loop"),
        Label("done"),
        movi(R0, RET_DETACH_SELF),             # issued last group: disable
        exit_(),
        Label("idle"),
        movi(R0, 0),
        exit_(),
    ]
    return assemble(name, source,
                    maps={"groups": groups_map, "state": state_map})
