"""KVM model: nested page tables and the host side of PV PTE marking.

Implements the host hypervisor pieces §3.2 and the §4 CoW anecdote rely
on: EPT-style nested page tables, nested fault handling that resolves
through the VMM's host address space, detection of mirrored (PV-marked)
guest PFNs served from anonymous memory, and the forced-write-mapping
misbehaviour that the paper's KVM patch replaces with opportunistic
write mapping.
"""

from repro.kvm.kvm import KVM, EptEntry
from repro.kvm.vcpu import VCpu

__all__ = ["EptEntry", "KVM", "VCpu"]
