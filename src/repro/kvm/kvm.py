"""Nested paging and nested fault handling.

The guest-physical address space is a linear window into the VMM's host
virtual address space (firecracker mmaps guest memory as one region, at
``guest_base_vpn``).  An EPT miss vm-exits into :meth:`KVM.nested_fault`,
which either:

* detects a PV-mirrored gPFN (paper §3.2) and installs fresh anonymous
  memory — mapping it under **both** the mirrored and the original gPFN,
  so later reuse of the freed-then-reallocated memory hits; or
* resolves the fault through the host page tables (mmap'd snapshot,
  uffd region, ...), then maps the EPT entry with the host page's
  effective permissions.

``patched_cow`` selects between the paper's patched KVM (write-map a
read fault only when the host page is already present and writable) and
the stock behaviour they debugged, where some read faults are forcibly
handled as writes — triggering CoW of shared page-cache pages and
destroying deduplication (§4, "Memory" paragraph; ablation A3).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.guest.kernel import is_mirrored, unmirror_gfn
from repro.mm.address_space import AddressSpace


@dataclass
class EptEntry:
    writable: bool


def _force_write_hash(vm_seed: int, gfn: int) -> int:
    """Deterministic per-(vm, gfn) hash in [0, 100) for the CoW bug model."""
    x = (gfn * 0x9E3779B97F4A7C15 + vm_seed * 0xBF58476D1CE4E5B9) & ((1 << 64) - 1)
    x ^= x >> 31
    return x % 100


class KVM:
    """Per-VM hypervisor state (in-kernel part of one sandbox)."""

    def __init__(self, space: AddressSpace, guest_base_vpn: int,
                 mem_pages: int, pv_enabled: bool = False,
                 patched_cow: bool = True,
                 force_write_percent: int = 30,
                 vm_seed: int = 0):
        self.space = space
        self.kernel = space.kernel
        self.guest_base_vpn = guest_base_vpn
        self.mem_pages = mem_pages
        self.pv_enabled = pv_enabled
        self.patched_cow = patched_cow
        self.force_write_percent = force_write_percent
        self.vm_seed = vm_seed
        self.ept: dict[int, EptEntry] = {}
        self.stats_nested_faults = 0
        self.stats_pv_faults = 0
        self.stats_forced_writes = 0

    # -- address translation ------------------------------------------------------
    def host_vpn(self, gfn: int) -> int:
        real = unmirror_gfn(gfn)
        if real >= self.mem_pages:
            raise ValueError(f"gfn {gfn:#x} beyond guest memory "
                             f"({self.mem_pages} pages)")
        return self.guest_base_vpn + real

    # -- the access path (called per guest memory access) ---------------------------
    def access(self, gfn: int, is_write: bool):
        """Generator: one guest access; returns CPU seconds of overhead.

        EPT hits return immediately (and yield nothing); misses take the
        nested-fault slow path.
        """
        entry = self.ept.get(gfn)
        if entry is not None and (not is_write or entry.writable):
            return 0.0
        cost = yield from self.nested_fault(gfn, is_write)
        return cost

    def nested_fault(self, gfn: int, is_write: bool):
        """Generator: handle one EPT violation; returns CPU seconds."""
        costs = self.kernel.costs
        self.stats_nested_faults += 1
        cost = costs.ept_fault

        if is_mirrored(gfn):
            if not self.pv_enabled:
                raise RuntimeError(
                    "guest used a mirrored gPFN but host PV support is off")
            cost += self._pv_fault(gfn)
            return cost

        vpn = self.host_vpn(gfn)
        effective_write = is_write
        if (not is_write and not self.patched_cow
                and _force_write_hash(self.vm_seed, gfn)
                < self.force_write_percent):
            # Stock-KVM misbehaviour: forcibly handle the read fault as a
            # write, CoWing shared page-cache pages into private memory.
            effective_write = True
            self.stats_forced_writes += 1

        cost += yield from self.space.handle_fault(vpn, effective_write)
        pte = self.space.pte(vpn)
        if pte is None:
            # uffd race: handler resolved a different page / VM teardown.
            cost += yield from self.space.handle_fault(vpn, effective_write)
            pte = self.space.pte(vpn)
            if pte is None:
                raise RuntimeError(f"host fault did not map vpn {vpn:#x}")
        if is_write and not pte.writable:
            cost += yield from self.space.handle_fault(vpn, True)
            pte = self.space.pte(vpn)

        # Patched KVM: opportunistically write-map read faults only when
        # the host page is already writable; stock KVM write-maps
        # whenever it (forcibly) write-faulted.
        writable = pte.writable
        self.ept[gfn] = EptEntry(writable=writable)
        return cost

    def _pv_fault(self, gfn: int) -> float:
        """PV PTE marking (§3.2): serve a mirrored-gPFN fault with
        anonymous memory and map both aliases."""
        self.stats_pv_faults += 1
        real = unmirror_gfn(gfn)
        vpn = self.host_vpn(real)
        cost = 0.0
        pte = self.space.pte(vpn)
        if pte is None or pte.frame.kind != "anon" or not pte.writable:
            # Replace whatever backs this guest page (possibly a shared
            # snapshot mapping) with fresh anonymous memory -- crucially
            # *without* any snapshot I/O.
            if pte is not None:
                # Unmap the old backing first (install_anon asserts empty).
                old = self.space.pt.pop(vpn)
                old.frame.mapcount -= 1
                if old.frame.kind == "anon" and old.frame.mapcount == 0:
                    self.kernel.frames.free(old.frame)
            cost += self.space.install_anon(vpn, content=0, writable=True)
        # Map the anonymous page under both gPFNs (paper Fig. 2, step 6).
        self.ept[gfn] = EptEntry(writable=True)
        self.ept[real] = EptEntry(writable=True)
        return cost
