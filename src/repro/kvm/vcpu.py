"""vCPU: replays a function invocation trace against the KVM layer.

The vCPU is a DES process.  It accumulates CPU time (compute gaps, fault
handling costs) and flushes it as simulated timeouts at a fine grain so
that asynchronous prefetchers race realistically with execution; actual
waiting (disk I/O, uffd round trips) happens through the fault-path
events yielded from within :meth:`repro.kvm.kvm.KVM.access`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.guest.kernel import GuestKernel
from repro.kvm.kvm import KVM
from repro.sim import Environment
from repro.units import USEC
from repro.workloads.trace import Alloc, Compute, Free, TouchRun

#: Accumulated CPU time is flushed once it exceeds this, keeping the
#: interleaving with background I/O honest without one event per page.
FLUSH_THRESHOLD = 100 * USEC


@dataclass
class VCpuStats:
    pages_touched: int = 0
    pages_allocated: int = 0
    #: Useful work: the function's own CPU time.
    compute_seconds: float = 0.0
    #: CPU consumed by fault handling (EPT + host fault path costs).
    overhead_seconds: float = 0.0
    #: Wall time blocked inside fault paths (disk I/O, uffd round
    #: trips) — the quantity prefetching exists to hide.
    stall_seconds: float = 0.0


class VCpu:
    """Single vCPU bound to one microVM."""

    def __init__(self, env: Environment, kvm: KVM, guest: GuestKernel):
        self.env = env
        self.kvm = kvm
        self.guest = guest
        self.stats = VCpuStats()

    def run_trace(self, trace):
        """Generator (DES process body): execute the trace to completion."""
        acc = 0.0
        stats = self.stats
        for op in trace:
            if isinstance(op, TouchRun):
                acc = yield from self._touch_range(
                    range(op.start, op.start + op.count), op.write,
                    op.per_page_compute, acc)
                stats.pages_touched += op.count
            elif isinstance(op, Compute):
                stats.compute_seconds += op.seconds
                yield self.env.timeout(acc + op.seconds)
                acc = 0.0
            elif isinstance(op, Alloc):
                gfns = self.guest.alloc_pages(op.tag, op.npages)
                acc = yield from self._touch_range(
                    gfns, True, op.per_page_compute, acc)
                stats.pages_allocated += op.npages
            elif isinstance(op, Free):
                self.guest.free_pages(op.tag)
            else:
                raise TypeError(f"unknown trace op {op!r}")
        if acc > 0:
            yield self.env.timeout(acc)

    def _touch_range(self, gfns, write: bool, per_page: float, acc: float):
        """Generator: access each gfn; returns the new CPU accumulator."""
        kvm = self.kvm
        ept = kvm.ept
        env = self.env
        stats = self.stats
        for gfn in gfns:
            acc += per_page
            stats.compute_seconds += per_page
            entry = ept.get(gfn)
            if entry is not None and (not write or entry.writable):
                continue  # EPT hit: no overhead, stay on the fast path
            if acc > FLUSH_THRESHOLD:
                yield env.timeout(acc)
                acc = 0.0
            before = env.now
            cost = yield from kvm.nested_fault(gfn, write)
            stats.stall_seconds += env.now - before
            acc += cost
            stats.overhead_seconds += cost
        return acc
