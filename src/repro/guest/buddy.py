"""Binary buddy allocator over guest page frame numbers.

A faithful power-of-two buddy system: free blocks are kept per order,
allocation splits larger blocks, freeing coalesces with the buddy when
both halves are free.  Initialized from the set of guest PFNs that were
free at snapshot time — the same information Faast's pre-scan extracts
from the snapshot's allocator metadata (which is why the snapshot
metadata exposes it; see :mod:`repro.vmm.snapshot`).
"""

from __future__ import annotations

MAX_ORDER = 10  # 4 MiB blocks, like Linux


class GuestOOM(MemoryError):
    """Guest allocator exhausted."""


class BuddyAllocator:
    """Buddy system over an arbitrary initial set of free PFNs.

    Free blocks per order are kept in a membership set (for buddy
    coalescing checks) plus a LIFO stack with lazy deletion (for O(1)
    deterministic allocation even with many thousands of fragments).
    """

    def __init__(self, free_pfns):
        self._free_sets: list[set[int]] = [set() for _ in range(MAX_ORDER + 1)]
        self._free_stacks: list[list[int]] = [[] for _ in range(MAX_ORDER + 1)]
        self._free_count = 0
        self._seed_from(sorted(set(free_pfns)))

    def _seed_from(self, pfns: list[int]) -> None:
        """Greedily build maximal aligned blocks from a sorted PFN list."""
        i = 0
        n = len(pfns)
        while i < n:
            start = pfns[i]
            # Longest contiguous run from i.
            j = i
            while j + 1 < n and pfns[j + 1] == pfns[j] + 1:
                j += 1
            run_len = j - i + 1
            # Carve the run into maximal aligned power-of-two blocks.
            pos = start
            remaining = run_len
            while remaining > 0:
                order = MAX_ORDER
                while order > 0 and ((pos & ((1 << order) - 1)) != 0
                                     or (1 << order) > remaining):
                    order -= 1
                self._push(order, pos)
                self._free_count += 1 << order
                pos += 1 << order
                remaining -= 1 << order
            i = j + 1

    def _push(self, order: int, pfn: int) -> None:
        self._free_sets[order].add(pfn)
        self._free_stacks[order].append(pfn)

    def _pop(self, order: int) -> int | None:
        """Pop a live block of exactly this order, skipping stale stack
        entries left behind by coalescing (lazy deletion)."""
        live = self._free_sets[order]
        stack = self._free_stacks[order]
        while stack:
            pfn = stack.pop()
            if pfn in live:
                live.remove(pfn)
                return pfn
        return None

    # -- interface ---------------------------------------------------------------
    @property
    def free_pages(self) -> int:
        return self._free_count

    def alloc_block(self, order: int) -> int:
        """Allocate one 2**order block; returns its first PFN."""
        if not 0 <= order <= MAX_ORDER:
            raise ValueError(f"order {order} out of range")
        for current in range(order, MAX_ORDER + 1):
            pfn = self._pop(current)
            if pfn is not None:
                # Split down to the requested order, freeing upper halves.
                while current > order:
                    current -= 1
                    self._push(current, pfn + (1 << current))
                self._free_count -= 1 << order
                return pfn
        raise GuestOOM(f"no free block of order {order}")

    def alloc_pages(self, npages: int) -> list[int]:
        """Allocate ``npages`` pages as a list of PFNs (greedy by order)."""
        if npages <= 0:
            raise ValueError("npages must be positive")
        if npages > self._free_count:
            raise GuestOOM(
                f"requested {npages} pages, {self._free_count} free")
        pfns: list[int] = []
        remaining = npages
        while remaining > 0:
            order = min(MAX_ORDER, remaining.bit_length() - 1)
            # Fall back to smaller orders under fragmentation.
            while order >= 0:
                try:
                    block = self.alloc_block(order)
                    break
                except GuestOOM:
                    order -= 1
            else:
                raise GuestOOM("fragmentation prevented allocation")
            pfns.extend(range(block, block + (1 << order)))
            remaining -= 1 << order
        return pfns

    def free_block(self, pfn: int, order: int) -> None:
        """Free one block, coalescing with free buddies."""
        if pfn & ((1 << order) - 1):
            raise ValueError(f"pfn {pfn} misaligned for order {order}")
        self._free_count += 1 << order
        while order < MAX_ORDER:
            buddy = pfn ^ (1 << order)
            if buddy not in self._free_sets[order]:
                break
            # Coalesce: remove the buddy from the live set (its stack
            # entry goes stale and is skipped lazily).
            self._free_sets[order].remove(buddy)
            pfn = min(pfn, buddy)
            order += 1
        self._push(order, pfn)

    def free_pages_list(self, pfns: list[int]) -> None:
        """Free individual pages (coalescing happens via free_block)."""
        for pfn in pfns:
            self.free_block(pfn, 0)

    def is_free(self, pfn: int) -> bool:
        """Whether ``pfn`` currently lies inside any free block."""
        for order, blocks in enumerate(self._free_sets):
            size = 1 << order
            base = pfn & ~(size - 1)
            if base in blocks:
                return True
        return False
