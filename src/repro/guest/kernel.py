"""Guest kernel: allocation entry points and the PV PTE-marking patch.

``alloc_pages`` is what the function's runtime calls for ephemeral memory
during an invocation.  With ``pv_marking`` enabled (the SnapBPF guest
patch, paper §3.2) the guest maps freshly allocated frames at a
*mirrored* guest PFN — the real PFN with a high bit set — so the host's
nested-fault handler can recognize "this is a new allocation, don't fetch
it from the snapshot".

``zero_on_free`` models FaaSnap's guest patch instead: pages are zeroed
when freed, so that free memory is detectable in the snapshot *content*
by a zero-page scan.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.guest.buddy import BuddyAllocator

#: Bit 40 of the guest PFN: far above any realistic microVM memory size
#: (2^40 pages = 4 PiB), mirroring the paper's MSB trick.
MIRROR_BIT = 1 << 40


def mirror_gfn(gfn: int) -> int:
    """The mirrored (PV-marked) alias of a guest PFN."""
    return gfn | MIRROR_BIT


def unmirror_gfn(gfn: int) -> int:
    return gfn & ~MIRROR_BIT


def is_mirrored(gfn: int) -> bool:
    return bool(gfn & MIRROR_BIT)


@dataclass
class GuestAllocation:
    """A live ephemeral allocation inside the guest."""

    tag: str
    pfns: list[int] = field(default_factory=list)


class GuestKernel:
    """Guest memory manager restored from a snapshot."""

    def __init__(self, mem_pages: int, free_pfns,
                 pv_marking: bool = False, zero_on_free: bool = False):
        self.mem_pages = mem_pages
        self.pv_marking = pv_marking
        self.zero_on_free = zero_on_free
        self.buddy = BuddyAllocator(free_pfns)
        self._live: dict[str, GuestAllocation] = {}
        self.pages_allocated = 0
        self.pages_freed = 0

    def alloc_pages(self, tag: str, npages: int) -> list[int]:
        """Allocate ephemeral guest memory; returns the gPFNs the guest
        will access — mirrored if the PV-marking patch is active."""
        if tag in self._live:
            raise ValueError(f"allocation tag {tag!r} already live")
        pfns = self.buddy.alloc_pages(npages)
        self._live[tag] = GuestAllocation(tag=tag, pfns=pfns)
        self.pages_allocated += npages
        if self.pv_marking:
            return [mirror_gfn(p) for p in pfns]
        return list(pfns)

    def free_pages(self, tag: str) -> int:
        """Free an allocation by tag; returns how many pages were freed."""
        alloc = self._live.pop(tag, None)
        if alloc is None:
            raise KeyError(f"no live allocation {tag!r}")
        self.buddy.free_pages_list(alloc.pfns)
        self.pages_freed += len(alloc.pfns)
        return len(alloc.pfns)

    @property
    def live_allocations(self) -> dict[str, GuestAllocation]:
        return dict(self._live)
