"""Guest (VM) kernel model: buddy allocator and PV PTE marking.

The semantic gap the paper's §2.2 describes lives here: the guest kernel
allocates ephemeral memory from its buddy allocator during an invocation,
and without help the host cannot tell those allocations apart from
accesses to snapshotted state — so it wastefully fetches soon-to-be-
overwritten pages from the snapshot file.

With SnapBPF's paravirtualized marking enabled, the guest sets a high
"mirror" bit in the PFN when mapping freshly allocated pages, which the
host KVM detects on the nested fault and serves with anonymous memory
(see :mod:`repro.kvm`).
"""

from repro.guest.buddy import BuddyAllocator, GuestOOM
from repro.guest.kernel import MIRROR_BIT, GuestKernel, is_mirrored, mirror_gfn, unmirror_gfn

__all__ = [
    "BuddyAllocator",
    "GuestKernel",
    "GuestOOM",
    "MIRROR_BIT",
    "is_mirrored",
    "mirror_gfn",
    "unmirror_gfn",
]
