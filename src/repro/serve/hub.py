"""TelemetryHub: the serve plane's versioned snapshot bus.

The hub sits between the simulation/sweep thread (the *publisher*) and
the HTTP server threads (the *consumers*).  Publishers push cheap
section updates — sweep progress, fleet topology, the current sim time —
and the hub assembles them, together with a locked copy of the metrics
registry and a bounded ring of recent trace spans, into an immutable
versioned state snapshot.  Consumers only ever read a fully-built
snapshot under the hub lock, so a scrape can never observe a
half-updated histogram or a torn topology list.

Observation-only, same standard as the tracer: nothing in the simulation
reads the hub, a run with no hub attached pays one ``is None`` check per
event, and enabling it changes no figure output, chaos fingerprint, or
store key (identity-tested).

Two throttles bound the publish cost:

* ``sim_interval`` — the DES engine calls :meth:`on_sim_event` on every
  event; snapshots are only rebuilt every so many *simulated* seconds.
* ``wall_interval`` — section updates (e.g. one per finished sweep cell)
  are coalesced: a rebuild happens at most every so many *wall* seconds,
  except for forced flushes (run start/end).

``state_path`` additionally persists each published snapshot as an
atomically-replaced JSON file — the attach surface: a separate
``repro serve --attach`` process watches that file and serves the same
dashboard without touching the running sweep.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time
from pathlib import Path
from typing import Callable

from repro.metrics.registry import Histogram, MetricsRegistry

#: Version tag of the state-snapshot JSON schema (bump on breaking
#: changes; ``repro serve --attach`` refuses newer files).
SERVE_SCHEMA = 1

#: Histogram percentiles surfaced in the ``histograms`` section.
PERCENTILES = (50, 95, 99)


def span_to_dict(span) -> dict:
    """One trace span as the JSON shape the dashboard renders."""
    out = {"name": span.name, "cat": span.cat, "ph": span.ph,
           "ts": span.ts, "dur": span.dur, "track": span.track}
    if span.args:
        out["args"] = span.args
    return out


class TelemetryHub:
    """Thread-safe, versioned state bus between one run and its servers.

    Every mutation happens under one condition variable; consumers block
    in :meth:`wait_for_newer` and are woken on each published version.
    Snapshots are immutable once built — :meth:`state` hands out the
    current dict by reference and the next rebuild replaces, never
    mutates, it.
    """

    def __init__(self, registry: MetricsRegistry | None = None,
                 tracer=None, *, span_ring: int = 64,
                 sim_interval: float = 0.25, wall_interval: float = 0.5,
                 state_path: str | Path | None = None):
        if span_ring < 0:
            raise ValueError(f"span_ring must be >= 0, got {span_ring}")
        if sim_interval <= 0 or wall_interval < 0:
            raise ValueError("intervals must be positive")
        self._lock = threading.RLock()
        self._cond = threading.Condition(self._lock)
        self._registry = registry
        self._tracer = tracer
        self._fleet_provider: Callable[[], dict] | None = None
        self._snapstore_provider: Callable[[], dict] | None = None
        self._engine = None
        self._tenant_counts: dict[int, int] | None = None
        #: (wall monotonic, events_processed, invocations) at the last
        #: snapshot build — the deltas behind the live rates.
        self._last_throughput: tuple[float, int, float] | None = None
        self.span_ring = span_ring
        self.sim_interval = sim_interval
        self.wall_interval = wall_interval
        self.state_path = Path(state_path) if state_path else None
        self._version = 0
        self._state: dict | None = None
        self._phase = ""
        self._sim_time = 0.0
        self._sweep: dict = {}
        self._next_sim = 0.0    # only the sim thread reads/writes this
        self._next_wall = 0.0

    # -- wiring (publisher side) --------------------------------------------
    def attach_registry(self, registry: MetricsRegistry) -> None:
        with self._lock:
            self._registry = registry

    def attach_tracer(self, tracer) -> None:
        with self._lock:
            self._tracer = tracer

    def attach_fleet_provider(self, provider: Callable[[], dict]) -> None:
        """``provider()`` is called at snapshot-build time on the
        publisher's thread; it must return a fresh dict each call."""
        with self._lock:
            self._fleet_provider = provider

    def attach_snapstore_provider(self, provider: Callable[[], dict]) -> None:
        """``provider()`` is called at snapshot-build time on the
        publisher's thread; it returns the snapshot store's tier
        occupancy (dedup factor, per-tier bytes, per-node stores) for
        the dashboard's tiering tiles."""
        with self._lock:
            self._snapstore_provider = provider

    def attach_engine(self, engine) -> None:
        """Expose a DES :class:`~repro.sim.Environment`'s progress: its
        ``events_processed`` counter and a wall-delta events/sec rate
        appear in the snapshot's ``throughput`` section."""
        with self._lock:
            self._engine = engine
            self._last_throughput = None

    def attach_tenant_counts(self, counts: dict[int, int]) -> None:
        """Live per-tenant request counters (the traffic runner mutates
        the dict in place; the hub reads it at snapshot-build time)."""
        with self._lock:
            self._tenant_counts = counts

    # -- publication (publisher side) ---------------------------------------
    def on_sim_event(self, now: float) -> None:
        """DES engine hook: called after every processed event.  Cheap
        until ``sim_interval`` simulated seconds have passed."""
        if now < self._next_sim:
            return
        self._next_sim = now + self.sim_interval
        self.publish(sim_time=now)

    def update_sweep(self, **fields) -> None:
        """Merge sweep-progress fields and publish (wall-throttled)."""
        with self._cond:
            self._sweep.update(fields)
            self._publish_locked(force=False)

    def publish(self, *, phase: str | None = None,
                sim_time: float | None = None, force: bool = False) -> None:
        with self._cond:
            if phase is not None:
                self._phase = phase
            if sim_time is not None:
                self._sim_time = sim_time
            self._publish_locked(force=force)

    def flush(self, phase: str | None = None) -> None:
        """Force a publish past the wall throttle (run start/end)."""
        self.publish(phase=phase, force=True)

    def feed_state(self, state: dict) -> None:
        """Attach mode: adopt a whole snapshot read from a state file.

        The local version stays monotonic even if the file regresses
        (e.g. the watched run restarted from scratch).
        """
        with self._cond:
            self._version = max(self._version + 1,
                                int(state.get("version", 0)))
            state = dict(state)
            state["version"] = self._version
            self._state = state
            self._sweep = dict(state.get("sweep", {}))
            self._cond.notify_all()

    def kick(self) -> None:
        """Wake every waiting consumer without publishing (shutdown)."""
        with self._cond:
            self._cond.notify_all()

    def _publish_locked(self, force: bool) -> None:
        now = time.monotonic()
        if not force and now < self._next_wall:
            return
        self._next_wall = now + self.wall_interval
        self._version += 1
        self._state = self._build_state_locked()
        self._cond.notify_all()
        if self.state_path is not None:
            self._write_state_locked()

    def _build_state_locked(self) -> dict:
        state = {
            "schema": SERVE_SCHEMA,
            "version": self._version,
            "wall_time": time.time(),
            "sim_time": self._sim_time,
            "phase": self._phase,
            "metrics": {},
            "histograms": {},
            "sweep": dict(self._sweep),
            "fleet": {},
            "snapstore": {},
            "throughput": {},
            "spans": [],
            "spans_dropped": 0,
        }
        engine = self._engine
        if engine is not None:
            now = time.monotonic()
            events = engine.events_processed
            invocations = 0.0
            per_tenant: dict[str, float] = {}
            counts = self._tenant_counts
            if counts is not None:
                for tenant in sorted(counts):
                    per_tenant[str(tenant)] = float(counts[tenant])
                invocations = float(sum(counts.values()))
            events_rate = 0.0
            inv_rate = 0.0
            last = self._last_throughput
            if last is not None and now > last[0]:
                dt = now - last[0]
                events_rate = max(0.0, (events - last[1]) / dt)
                inv_rate = max(0.0, (invocations - last[2]) / dt)
            self._last_throughput = (now, events, invocations)
            state["throughput"] = {
                "events_processed": events,
                "events_per_sec": events_rate,
                "invocations": invocations,
                "invocations_per_sec": inv_rate,
                "tenants": per_tenant,
            }
        registry = self._registry
        if registry is not None:
            with registry.lock:
                state["metrics"] = registry.snapshot()
                for name in registry.names():
                    metric = registry.get(name)
                    if isinstance(metric, Histogram):
                        state["histograms"][name] = {
                            "count": metric.count,
                            "sum": metric.sum,
                            "mean": metric.mean,
                            "max": metric.max,
                            **{f"p{p}": metric.percentile(p)
                               for p in PERCENTILES},
                        }
        provider = self._fleet_provider
        if provider is not None:
            state["fleet"] = provider()
        provider = self._snapstore_provider
        if provider is not None:
            state["snapstore"] = provider()
        tracer = self._tracer
        if tracer is not None:
            state["spans"] = [span_to_dict(s)
                              for s in tracer.recent(self.span_ring)]
            state["spans_dropped"] = tracer.dropped
        return state

    def _write_state_locked(self) -> None:
        """Atomic write (temp + replace), same discipline as the result
        store: an attached reader can never see a torn snapshot."""
        path = self.state_path
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fp:
                json.dump(self._state, fp, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # -- consumption (server side) ------------------------------------------
    @property
    def version(self) -> int:
        with self._lock:
            return self._version

    def state(self) -> dict:
        """The latest published snapshot (never mutated after build);
        an empty pre-first-publish hub returns a minimal stub."""
        with self._lock:
            if self._state is None:
                return {"schema": SERVE_SCHEMA, "version": 0,
                        "phase": self._phase, "metrics": {},
                        "histograms": {}, "sweep": {}, "fleet": {},
                        "snapstore": {}, "throughput": {}, "spans": [],
                        "spans_dropped": 0,
                        "sim_time": 0.0, "wall_time": time.time()}
            return self._state

    def wait_for_newer(self, version: int,
                       timeout: float | None = None) -> dict | None:
        """Block until a snapshot newer than ``version`` is published;
        returns it, or None on timeout / bare wakeup (shutdown kick)."""
        with self._cond:
            if self._version > version and self._state is not None:
                return self._state
            self._cond.wait(timeout)
            if self._version > version and self._state is not None:
                return self._state
            return None

    def scrape(self) -> str:
        """The Prometheus text exposition for ``GET /metrics``.

        Live mode renders the attached registry (typed, locked); attach
        mode re-renders the last snapshot's flat metrics as untyped
        samples — still spec-valid for scrapers.
        """
        registry = self._registry
        if registry is not None:
            return registry.text_exposition()
        metrics = self.state().get("metrics", {})
        lines = []
        for name in sorted(metrics):
            lines.append(f"# TYPE {name} untyped")
            lines.append(f"{name} {metrics[name]:g}")
        return "\n".join(lines) + ("\n" if lines else "")


class StateFileWatcher:
    """Attach-mode feeder: polls a state file published by a running
    sweep (``--serve-state``) and feeds each new snapshot into a hub.

    Tolerant by design — a missing file (the run has not started yet),
    a torn read raced with the atomic replace, or a newer schema just
    skip the poll; the watcher keeps serving the last good snapshot.
    """

    def __init__(self, path: str | Path, hub: TelemetryHub,
                 interval: float = 0.5):
        self.path = Path(path)
        self.hub = hub
        self.interval = interval
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._last_stamp: tuple | None = None

    def poll_once(self) -> bool:
        """Read the file if it changed; returns True when fed."""
        try:
            stat = self.path.stat()
        except OSError:
            return False
        stamp = (stat.st_mtime_ns, stat.st_size)
        if stamp == self._last_stamp:
            return False
        try:
            state = json.loads(self.path.read_text())
        except (OSError, ValueError):
            return False
        if not isinstance(state, dict):
            return False
        if state.get("schema", 0) > SERVE_SCHEMA:
            return False
        self._last_stamp = stamp
        self.hub.feed_state(state)
        return True

    def _run(self) -> None:
        while not self._stop.is_set():
            self.poll_once()
            self._stop.wait(self.interval)

    def start(self) -> None:
        self._thread = threading.Thread(target=self._run,
                                        name="repro-serve-attach",
                                        daemon=True)
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
