/* repro control room — no-dependency dashboard client.
 *
 * Primary transport is the SSE stream (/api/events); if it drops we fall
 * back to polling /api/state every 2 s and keep retrying SSE. All text
 * lands via textContent, never innerHTML, so payloads need no escaping.
 */
"use strict";

const $ = (id) => document.getElementById(id);

let lastVersion = -1;
let pollTimer = null;
let source = null;

function setConn(state, label) {
  const el = $("conn");
  el.dataset.state = state;
  el.textContent = label;
}

function fmt(x, digits = 3) {
  if (x === null || x === undefined || Number.isNaN(x)) return "–";
  if (Number.isInteger(x) && Math.abs(x) < 1e15) return String(x);
  return Number(x).toFixed(digits);
}

function ms(seconds) {
  return (seconds * 1e3).toFixed(seconds * 1e3 >= 100 ? 0 : 2);
}

function tile(key, value, sub) {
  const div = document.createElement("div");
  div.className = "tile";
  const k = document.createElement("div");
  k.className = "k";
  k.textContent = key;
  const v = document.createElement("div");
  v.className = "v";
  v.textContent = value;
  div.append(k, v);
  if (sub) {
    const s = document.createElement("div");
    s.className = "sub";
    s.textContent = sub;
    div.append(s);
  }
  return div;
}

function renderSweep(sweep) {
  const tiles = $("sweep-tiles");
  tiles.replaceChildren();
  const unique = sweep.unique || 0;
  const done = (sweep.executed || 0) + (sweep.memory_hits || 0) +
               (sweep.disk_hits || 0);
  const pct = unique ? Math.min(100, (100 * done) / unique) : 0;
  $("progress-fill").style.width = pct + "%";
  $("progress").setAttribute("aria-valuenow", pct.toFixed(0));
  $("progress-label").textContent = unique
    ? `${done} / ${unique} cells (${pct.toFixed(0)}%)` +
      (sweep.done ? " — done" : "")
    : "no sweep yet";
  const order = ["executed", "memory_hits", "disk_hits", "remaining",
                 "retries", "worker_crashes", "timeouts", "quarantined"];
  for (const key of order) {
    if (key in sweep) tiles.append(tile(key.replaceAll("_", " "),
                                        fmt(sweep[key])));
  }
}

function renderThroughput(throughput) {
  const row = $("throughput-tiles");
  row.replaceChildren();
  if (!throughput || !("events_processed" in throughput)) {
    const p = document.createElement("p");
    p.className = "empty";
    p.textContent = "no engine attached (traffic/cluster runs only)";
    row.append(p);
    return;
  }
  row.append(tile("engine events", fmt(throughput.events_processed),
                  `${fmt(throughput.events_per_sec, 0)} /s`));
  row.append(tile("invocations", fmt(throughput.invocations),
                  `${fmt(throughput.invocations_per_sec, 0)} /s`));
  const tenants = throughput.tenants || {};
  for (const id of Object.keys(tenants).sort(
      (a, b) => Number(a) - Number(b))) {
    row.append(tile(`tenant ${id}`, fmt(tenants[id]), "requests"));
  }
}

function renderLatency(histograms) {
  const row = $("latency-tiles");
  row.replaceChildren();
  const names = Object.keys(histograms).sort();
  let shown = 0;
  for (const name of names) {
    const h = histograms[name];
    if (!h.count) continue;
    row.append(tile(
      name,
      `${ms(h.p50)} / ${ms(h.p95)} / ${ms(h.p99)} ms`,
      `n=${h.count} · mean ${ms(h.mean)} ms · max ${ms(h.max)} ms`));
    shown += 1;
  }
  if (!shown) {
    const p = document.createElement("p");
    p.className = "empty";
    p.textContent = "no histogram observations yet";
    row.append(p);
  }
}

function renderFleet(fleet) {
  const grid = $("fleet");
  grid.replaceChildren();
  const nodes = (fleet && fleet.nodes) || [];
  if (!nodes.length) {
    const p = document.createElement("p");
    p.className = "empty";
    p.textContent = "single-host run (no cluster attached)";
    grid.append(p);
    return;
  }
  for (const node of nodes) {
    const card = document.createElement("div");
    card.className = "node-card";
    card.dataset.state = node.state || "up";
    const name = document.createElement("div");
    name.className = "name";
    name.textContent = node.name || `node${node.id}`;
    const state = document.createElement("div");
    state.className = "state";
    state.textContent = node.state || "?";
    const load = document.createElement("div");
    load.className = "load";
    load.textContent =
      `inflight ${fmt(node.inflight || 0)} · served ${fmt(node.served || 0)}`;
    card.append(name, state, load);
    grid.append(card);
  }
}

function gib(bytes) {
  return (bytes / (1024 * 1024 * 1024)).toFixed(2) + " GiB";
}

function renderSnapstore(store) {
  const row = $("snapstore-tiles");
  const grid = $("snapstore-nodes");
  row.replaceChildren();
  grid.replaceChildren();
  if (!store || !("dedup_factor" in store)) {
    const p = document.createElement("p");
    p.className = "empty";
    p.textContent = "no snapshot store attached (flat-file run)";
    row.append(p);
    return;
  }
  row.append(tile("placement", store.placement || "local",
                  `${fmt(store.chunk_pages)} pages/chunk`));
  row.append(tile("dedup", `${fmt(store.dedup_factor, 2)}×`,
                  `${gib(store.logical_bytes || 0)} logical`));
  row.append(tile("local tier", gib(store.local_bytes || 0), "SSD-resident"));
  if (store.hdd_bytes) {
    row.append(tile("hdd tier", gib(store.hdd_bytes), "demoted"));
  }
  row.append(tile("remote tier", gib(store.remote_bytes || 0),
                  "unique chunks (durable)"));
  if (store.gc_reclaimed_bytes) {
    row.append(tile("gc reclaimed", gib(store.gc_reclaimed_bytes),
                    "freed by refcounted GC"));
  }
  for (const [i, node] of (store.nodes || []).entries()) {
    const card = document.createElement("div");
    card.className = "node-card";
    card.dataset.state = "up";
    const name = document.createElement("div");
    name.className = "name";
    name.textContent = `store ${i}`;
    const load = document.createElement("div");
    load.className = "load";
    load.textContent = `local ${gib(node.local_bytes || 0)} · ` +
      `${fmt(node.local_chunks)} chunks · ` +
      `${fmt(node.manifests)} manifests`;
    card.append(name, load);
    grid.append(card);
  }
}

function renderSpans(spans, dropped) {
  const body = $("spans").querySelector("tbody");
  body.replaceChildren();
  $("spans-empty").style.display = spans.length ? "none" : "block";
  $("spans-dropped").textContent =
    dropped ? `(${dropped} dropped by the ring)` : "";
  for (const span of spans.slice(-40).reverse()) {
    const tr = document.createElement("tr");
    for (const [cls, text] of [
      ["num", fmt(span.ts, 6)],
      ["", span.track],
      ["", span.cat],
      ["name-cell", span.name],
      ["num", span.ph === "i" ? "·" : ms(span.dur)],
    ]) {
      const td = document.createElement("td");
      if (cls) td.className = cls;
      td.textContent = text;
      tr.append(td);
    }
    body.append(tr);
  }
}

function renderMetrics(metrics) {
  const body = $("metrics").querySelector("tbody");
  body.replaceChildren();
  for (const name of Object.keys(metrics).sort()) {
    const tr = document.createElement("tr");
    const k = document.createElement("td");
    k.className = "name-cell";
    k.textContent = name;
    const v = document.createElement("td");
    v.className = "num";
    v.textContent = fmt(metrics[name], 6);
    tr.append(k, v);
    body.append(tr);
  }
}

function render(state) {
  if (state.version <= lastVersion) return;
  lastVersion = state.version;
  $("version").textContent = String(state.version);
  $("sim-time").textContent = fmt(state.sim_time || 0, 3);
  $("phase").textContent = state.phase || "idle";
  renderSweep(state.sweep || {});
  renderThroughput(state.throughput || {});
  renderLatency(state.histograms || {});
  renderFleet(state.fleet || {});
  renderSnapstore(state.snapstore || {});
  renderSpans(state.spans || [], state.spans_dropped || 0);
  renderMetrics(state.metrics || {});
}

async function pollOnce() {
  try {
    const res = await fetch("/api/state", { cache: "no-store" });
    if (res.ok) render(await res.json());
  } catch (err) {
    setConn("lost", "disconnected");
  }
}

function startPolling() {
  if (pollTimer) return;
  setConn("poll", "polling /api/state");
  pollOnce();
  pollTimer = setInterval(pollOnce, 2000);
}

function stopPolling() {
  if (pollTimer) {
    clearInterval(pollTimer);
    pollTimer = null;
  }
}

function connect() {
  source = new EventSource("/api/events");
  source.addEventListener("state", (event) => {
    stopPolling();
    setConn("live", "live (SSE)");
    render(JSON.parse(event.data));
  });
  source.onerror = () => {
    // EventSource auto-reconnects; poll while it does.
    startPolling();
  };
}

connect();
pollOnce();
