"""Serve plane: live HTTP/SSE dashboard over a running simulation.

``python -m repro serve`` hosts it standalone (or attaches to a running
sweep's state file); ``--serve`` on ``run``/``fig``/``chaos``/
``cluster`` self-hosts it for the duration of a run.  See
:mod:`repro.serve.hub` for the publication model and DESIGN.md §13 for
the architecture.
"""

from repro.serve.hub import (
    SERVE_SCHEMA,
    StateFileWatcher,
    TelemetryHub,
    span_to_dict,
)
from repro.serve.server import TelemetryServer

__all__ = [
    "SERVE_SCHEMA",
    "StateFileWatcher",
    "TelemetryHub",
    "TelemetryServer",
    "span_to_dict",
]
