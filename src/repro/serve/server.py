"""The control-room backend: stdlib HTTP server over a TelemetryHub.

Endpoints:

* ``GET /metrics`` — the metrics registry in real Prometheus
  text-exposition format (``text/plain; version=0.0.4``), so an actual
  Prometheus scraper can point at a running sweep.
* ``GET /api/state`` — the hub's latest versioned JSON snapshot.
* ``GET /api/events`` — Server-Sent Events: one ``state`` event per
  published version (id = version), with ``: keepalive`` comments while
  idle.  The dashboard and tests consume this.
* ``GET /`` (+ ``/app.js``, ``/style.css``) — the static vanilla-JS
  dashboard, served from the packaged ``web/`` directory.

Built on :class:`http.server.ThreadingHTTPServer` (daemon handler
threads) — no third-party dependencies.  :meth:`TelemetryServer.stop`
sets a stopping flag and kicks the hub so blocked SSE handlers exit
promptly; nothing leaks across a clean stop.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from urllib.parse import urlsplit

from repro.metrics.registry import TEXT_CONTENT_TYPE
from repro.serve.hub import TelemetryHub

#: Packaged dashboard assets, whitelisted path -> (file, content type).
WEB_ROOT = Path(__file__).resolve().parent / "web"
STATIC_ROUTES = {
    "/": ("index.html", "text/html; charset=utf-8"),
    "/index.html": ("index.html", "text/html; charset=utf-8"),
    "/app.js": ("app.js", "application/javascript; charset=utf-8"),
    "/style.css": ("style.css", "text/css; charset=utf-8"),
}


class _ServeHandler(BaseHTTPRequestHandler):
    server_version = "repro-serve/1.0"
    protocol_version = "HTTP/1.1"

    # The access log is noise next to the CLI's own output.
    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass

    @property
    def hub(self) -> TelemetryHub:
        return self.server.hub

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        path = urlsplit(self.path).path
        try:
            if path == "/metrics":
                self._send(200, TEXT_CONTENT_TYPE,
                           self.hub.scrape().encode("utf-8"))
            elif path == "/api/state":
                body = json.dumps(self.hub.state(),
                                  sort_keys=True).encode("utf-8")
                self._send(200, "application/json; charset=utf-8", body)
            elif path == "/api/events":
                self._stream_events()
            elif path in STATIC_ROUTES:
                self._static(path)
            else:
                self._send(404, "text/plain; charset=utf-8",
                           b"not found\n")
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away mid-response; nothing to clean up

    # -- plain responses ----------------------------------------------------
    def _send(self, status: int, content_type: str, body: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.send_header("Cache-Control", "no-cache")
        self.end_headers()
        self.wfile.write(body)

    def _static(self, path: str) -> None:
        filename, content_type = STATIC_ROUTES[path]
        try:
            body = (WEB_ROOT / filename).read_bytes()
        except OSError:
            self._send(404, "text/plain; charset=utf-8",
                       b"dashboard asset missing\n")
            return
        self._send(200, content_type, body)

    # -- SSE ----------------------------------------------------------------
    def _stream_events(self) -> None:
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-cache")
        self.send_header("Connection", "close")
        self.end_headers()
        last = -1
        while not self.server.stopping:
            state = self.hub.wait_for_newer(last,
                                            timeout=self.server.sse_timeout)
            if self.server.stopping:
                break
            if state is None:
                # Idle: keep the connection demonstrably alive.
                self.wfile.write(b": keepalive\n\n")
                self.wfile.flush()
                continue
            last = state["version"]
            payload = json.dumps(state, sort_keys=True)
            self.wfile.write(
                f"id: {last}\nevent: state\ndata: {payload}\n\n"
                .encode("utf-8"))
            self.wfile.flush()


class TelemetryServer:
    """Owns the ThreadingHTTPServer and its serve_forever thread."""

    def __init__(self, hub: TelemetryHub, host: str = "127.0.0.1",
                 port: int = 0, sse_timeout: float = 1.0):
        self.hub = hub
        self._httpd = ThreadingHTTPServer((host, port), _ServeHandler)
        self._httpd.daemon_threads = True
        self._httpd.hub = hub
        self._httpd.stopping = False
        self._httpd.sse_timeout = sse_timeout
        self.host, self.port = self._httpd.server_address[:2]
        self._thread: threading.Thread | None = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "TelemetryServer":
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="repro-serve-http", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        """Clean stop: unblock SSE handlers, stop accepting, join."""
        self._httpd.stopping = True
        self.hub.kick()
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
