"""`SnapStoreSpec` — the hashable configuration of the snapshot store.

Nested inside :class:`~repro.harness.spec.ScenarioSpec` exactly like the
cluster spec: a frozen dataclass whose ``canonical()`` dict participates
in the spec hash, so two runs with different tier configurations can
never collide in the result store.

The default spec is the *identity configuration*: every chunk is placed
in the local tier after the record phase, the local tier is unbounded,
and no remote fetch is ever staged — a run with this spec produces the
exact same restore timings as one with no snapstore at all (the
flat-file baseline), which the identity test pins.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

from repro.units import MIB, USEC

#: Placement policies applied once, after the record phase:
#:
#: * ``local`` — every chunk of every manifest starts in the local tier
#:   (identity configuration; nothing is ever staged).
#: * ``remote`` — nothing is local; every first access stages its chunk
#:   from the remote object store (worst-case cold tier).
#: * ``base-local`` — only chunks referenced by two or more distinct
#:   snapshots (the deduplicated base-image chunks, hot everywhere)
#:   start local; per-snapshot private chunks stay remote.  This is what
#:   a freshly booted node pre-places.
PLACEMENTS = ("local", "remote", "base-local")


@dataclass(frozen=True)
class SnapStoreSpec:
    """Everything that determines the snapstore's behavior in a run."""

    #: Pages per content-addressed chunk (default 64 pages = 256 KiB,
    #: two readahead windows).
    chunk_pages: int = 64
    #: Initial chunk placement after the record phase (see PLACEMENTS).
    placement: str = "local"
    #: Insert a local spindle-HDD tier between the local (SSD) tier and
    #: the remote store: chunks demoted from the local tier land there
    #: and are re-staged from it instead of the network.
    hdd_tier: bool = False
    #: Local-tier capacity; ``None`` is unbounded.  When set, staging a
    #: chunk past the cap demotes the least-recently-used single-owner
    #: chunks first (shared base chunks are evicted last).
    local_capacity_bytes: int | None = None
    #: Remote object store round-trip time (network + request handling).
    remote_latency: float = 600 * USEC
    #: Remote fetch bandwidth (the node NIC, ~10 GbE).
    remote_bandwidth: float = 1250 * MIB

    def __post_init__(self) -> None:
        if not isinstance(self.chunk_pages, int) or self.chunk_pages < 1:
            raise ValueError(
                f"chunk_pages must be a positive int, got {self.chunk_pages!r}")
        if self.placement not in PLACEMENTS:
            raise ValueError(
                f"unknown placement {self.placement!r}; choose from "
                f"{', '.join(PLACEMENTS)}")
        if self.local_capacity_bytes is not None:
            if (not isinstance(self.local_capacity_bytes, int)
                    or self.local_capacity_bytes <= 0):
                raise ValueError(
                    f"local_capacity_bytes must be a positive int or None, "
                    f"got {self.local_capacity_bytes!r}")
        if self.remote_latency < 0:
            raise ValueError("remote_latency must be >= 0")
        if self.remote_bandwidth <= 0:
            raise ValueError("remote_bandwidth must be positive")

    def canonical(self) -> dict:
        """JSON-serializable dict with every outcome-determining field."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "SnapStoreSpec":
        return cls(**data)
