"""Tiered, content-addressed snapshot storage (`repro.snapstore`).

Snapshots stop being flat per-function files and become chunked,
content-addressed objects: a per-snapshot :class:`Manifest` maps chunk
index -> SHA-256 chunk id, a refcounted :class:`ChunkRegistry`
deduplicates identical chunks across snapshots of the same runtime, and
a per-host :class:`SnapStore` tracks chunk residency across a tier
hierarchy (local SSD cache, optional local HDD, shared remote object
store) with LRU demotion, remote staging charged against the DES device
models, and refcounted GC on snapshot deletion.

The restore path is tier-aware but identity-preserving: with the default
:class:`SnapStoreSpec` (everything local, unbounded) a read takes the
exact flat-file code path and byte-identical timings; only colder
placements or capacity bounds introduce staging traffic.
"""

from repro.snapstore.chunks import (ChunkInfo, ChunkRegistry, Manifest,
                                    build_derived_manifest, build_manifest,
                                    private_extent, runtime_id)
from repro.snapstore.spec import PLACEMENTS, SnapStoreSpec
from repro.snapstore.store import SnapStore, install_snapstore

__all__ = [
    "ChunkInfo",
    "ChunkRegistry",
    "Manifest",
    "PLACEMENTS",
    "SnapStore",
    "SnapStoreSpec",
    "build_derived_manifest",
    "build_manifest",
    "install_snapstore",
    "private_extent",
    "runtime_id",
]
