"""The tiered snapshot store: placement, staging, promotion, GC.

One :class:`SnapStore` serves one host.  It overlays the host's flat
snapshot files with per-snapshot :class:`~repro.snapstore.chunks.
Manifest` objects and tracks which chunks are resident in the host's
*local* tier (the kernel's own block device).  A read of a snapshot
range whose chunks are all local takes the exact flat-file path — zero
extra DES events, the identity contract.  A read touching cold chunks
first *stages* them: fetched from the warmest tier holding a copy (the
optional local HDD tier, else the remote object store), charged against
that tier's device model, then marked local.

Tier hierarchy and durability:

* **remote** — the shared object store; durably holds every chunk from
  the moment it is first recorded.  In cluster runs one remote device
  (and one :class:`~repro.snapstore.chunks.ChunkRegistry`) is shared by
  every node, so fetches contend on its queue like real disaggregated
  storage.
* **hdd** (optional) — a per-host spindle tier; chunks demoted from the
  local tier land here (a clean drop — the bytes already streamed down)
  and are re-staged from it instead of the network.
* **local** — the host device the snapshot files live on; bounded by
  ``local_capacity_bytes`` with least-recently-used demotion that spares
  shared (base-image) chunks as long as any single-owner chunk remains.

Concurrency: staging deduplicates in-flight fetches per chunk id (two
sandboxes faulting the same cold chunk issue one fetch), and adjacent
chunks fetched from the same tier coalesce into one device request —
the readahead batch the block layer would have merged anyway.
"""

from __future__ import annotations

import itertools

from repro.faults.retry import RetryPolicy
from repro.sim import Environment, Event
from repro.snapstore.chunks import (ChunkRegistry, Manifest,
                                    build_derived_manifest, build_manifest)
from repro.snapstore.spec import SnapStoreSpec
from repro.storage.device import READ, BlockIOError, IORequest
from repro.storage.hdd import HDDevice
from repro.storage.remote import RemoteObjectStore
from repro.units import PAGE_SIZE
from repro.workloads.profile import FunctionProfile


class SnapStore:
    """Tiered, content-addressed snapshot storage for one host."""

    def __init__(self, env: Environment, spec: SnapStoreSpec, *,
                 chunks: ChunkRegistry | None = None,
                 remote: RemoteObjectStore | None = None,
                 metrics=None,
                 retry_policy: RetryPolicy | None = None):
        self.env = env
        self.spec = spec
        # NB: `is not None`, not truthiness — a shared registry arrives
        # empty (len 0 == falsy) and must not be silently replaced.
        self.chunks = chunks if chunks is not None else ChunkRegistry()
        #: Remote tier device.  Standalone stores build a private one;
        #: the cluster runner passes one shared instance per fleet.  Its
        #: registry stays private so its ``device_*`` metric names never
        #: collide with the host device's on the kernel registry.
        self.remote = remote if remote is not None else RemoteObjectStore(
            env, rtt=spec.remote_latency, bandwidth=spec.remote_bandwidth)
        self.hdd = (HDDevice(env, name="snap-hdd") if spec.hdd_tier
                    else None)
        self._manifests: dict[int, Manifest] = {}
        #: cid -> nbytes for chunks resident in each tier (insertion
        #: ordered; all bookkeeping is RNG-free for determinism).
        self._local: dict[str, int] = {}
        self._on_hdd: dict[str, int] = {}
        self.local_bytes = 0
        self.hdd_bytes = 0
        #: cid -> access stamp for LRU demotion.
        self._stamp: dict[str, int] = {}
        self._tick = itertools.count(1)
        #: cid -> completion event for fetches currently in flight.
        self._inflight: dict[str, Event] = {}
        #: Fault plane hook (duck-typed; see repro.faults).  When set,
        #: every remote fetch consults ``fault_injector.on_fetch`` and
        #: may stall or fail (feeding the retry ladder below).
        self.fault_injector = None
        self.retry_policy = (retry_policy if retry_policy is not None
                             else RetryPolicy())
        self._init_metrics(metrics)

    def _init_metrics(self, registry) -> None:
        """Publish ``snapstore_*`` on the host registry.  Created only
        when a store is installed, so storeless runs keep their exact
        historical metric key sets (identity contract)."""
        self.metrics = registry
        if registry is None:
            self._m_local_hits = self._m_hdd_hits = None
            self._m_remote_fetches = self._m_remote_bytes = None
            self._m_staged = self._m_demotions = None
            self._m_retries = self._m_degraded = None
            self._h_remote_latency = None
            return
        c = registry.counter
        self._m_local_hits = c(
            "snapstore_chunk_hits_local_total",
            "chunk lookups served by the local tier")
        self._m_hdd_hits = c(
            "snapstore_chunk_hits_hdd_total",
            "cold chunks staged from the HDD tier")
        self._m_remote_fetches = c(
            "snapstore_remote_fetches_total",
            "fetch requests issued to the remote object store")
        self._m_remote_bytes = c(
            "snapstore_remote_fetch_bytes_total",
            "bytes fetched from the remote object store")
        self._m_staged = c(
            "snapstore_staged_chunks_total",
            "cold chunks promoted into the local tier")
        self._m_demotions = c(
            "snapstore_demotions_total",
            "chunks demoted from the local tier by capacity pressure")
        self._m_retries = c(
            "snapstore_fetch_retries_total",
            "remote fetches retried after an injected failure")
        self._m_degraded = c(
            "snapstore_degraded_fetches_total",
            "fetches served by a surviving tier after remote errors")
        self._h_remote_latency = registry.histogram(
            "snapstore_remote_fetch_latency_seconds",
            help="per-fetch wall latency against the remote tier")
        registry.register_collector(self._occupancy)

    def _occupancy(self) -> dict[str, float]:
        out = {
            "snapstore_local_bytes": float(self.local_bytes),
            "snapstore_remote_bytes": float(self.chunks.unique_bytes),
            "snapstore_manifests": float(len(self._manifests)),
            "snapstore_unique_chunks": float(len(self.chunks)),
            "snapstore_dedup_factor": float(self.chunks.dedup_factor),
            "snapstore_gc_reclaimed_bytes_total":
                float(self.chunks.gc_reclaimed_bytes),
        }
        if self.hdd is not None:
            out["snapstore_hdd_bytes"] = float(self.hdd_bytes)
        return out

    # -- record / delete ----------------------------------------------------
    def record(self, file, profile: FunctionProfile,
               guest_zeroed: bool = False) -> Manifest:
        """Chunk a freshly written snapshot file into the store.

        Offline like snapshot creation itself: no simulated time is
        charged.  Every chunk is durably present in the remote tier from
        here on; :meth:`apply_placement` decides what else starts local.
        """
        manifest = build_manifest(file.ino, file.name, profile,
                                  self.spec.chunk_pages,
                                  guest_zeroed=guest_zeroed)
        return self._register(manifest)

    def record_derived(self, file) -> Manifest:
        """Record a derived restore artifact (ws file, group metadata):
        tiered like a snapshot, but with nothing to deduplicate."""
        manifest = build_derived_manifest(file.ino, file.name,
                                          file.size_bytes,
                                          self.spec.chunk_pages)
        return self._register(manifest)

    def _register(self, manifest: Manifest) -> Manifest:
        if manifest.ino in self._manifests:
            raise FileExistsError(
                f"snapshot ino {manifest.ino} already recorded")
        for index, cid in enumerate(manifest.cids):
            self.chunks.add_ref(cid, manifest.chunk_nbytes(index),
                                owner=manifest.name)
            # A freshly written object is local by construction — its
            # bytes just landed on this host's device.  The cold-start
            # reset (apply_placement) then re-places per the spec.
            self._place_local(cid, manifest.chunk_nbytes(index))
        self._manifests[manifest.ino] = manifest
        self._evict_to_capacity()
        return manifest

    def manifest(self, ino: int) -> Manifest | None:
        return self._manifests.get(ino)

    def release(self, ino: int) -> int:
        """Delete one snapshot: decref its chunks, GC the unreferenced.

        Returns the number of bytes reclaimed store-wide.  A chunk still
        referenced by any live manifest is never freed; a freed chunk is
        dropped from every tier of *this* store (other stores sharing
        the registry drop theirs on their own release calls).
        """
        manifest = self._manifests.pop(ino, None)
        if manifest is None:
            raise FileNotFoundError(f"no manifest for ino {ino}")
        reclaimed = 0
        for index, cid in enumerate(manifest.cids):
            if self.chunks.release(cid, owner=manifest.name):
                reclaimed += manifest.chunk_nbytes(index)
                self._drop_resident(cid)
        return reclaimed

    def release_all(self) -> int:
        """Delete every snapshot this store recorded (node shutdown)."""
        reclaimed = 0
        for ino in list(self._manifests):
            reclaimed += self.release(ino)
        return reclaimed

    def _drop_resident(self, cid: str) -> None:
        nbytes = self._local.pop(cid, None)
        if nbytes is not None:
            self.local_bytes -= nbytes
        nbytes = self._on_hdd.pop(cid, None)
        if nbytes is not None:
            self.hdd_bytes -= nbytes
        self._stamp.pop(cid, None)

    # -- placement / tier state machine -------------------------------------
    def apply_placement(self) -> None:
        """Reset tier residency to the spec's placement — the snapstore
        half of the cold-start reset (``drop_caches`` for tiers).

        Authoritative and idempotent: whatever staging or record traffic
        came before, afterwards exactly the spec-selected chunks are
        local — all of them (``local``), none (``remote``), or the
        deduplicated base-image chunks (``base-local``) — trimmed to the
        capacity bound.
        """
        placement = self.spec.placement
        self._local.clear()
        self.local_bytes = 0
        if placement != "remote":
            for manifest in self._manifests.values():
                for index, cid in enumerate(manifest.cids):
                    if placement == "base-local" and not self.chunks.get(
                            cid).shared:
                        continue
                    self._place_local(cid, manifest.chunk_nbytes(index))
        self._evict_to_capacity()

    def _place_local(self, cid: str, nbytes: int) -> None:
        """Mark a chunk local without capacity enforcement (bulk paths
        call :meth:`_evict_to_capacity` once at the end)."""
        if cid in self._local:
            return
        self._local[cid] = nbytes
        self.local_bytes += nbytes
        self._stamp.setdefault(cid, next(self._tick))

    def _make_local(self, cid: str, nbytes: int) -> None:
        self._place_local(cid, nbytes)
        self._evict_to_capacity()

    def _evict_to_capacity(self) -> None:
        cap = self.spec.local_capacity_bytes
        if cap is None:
            return
        while self.local_bytes > cap and len(self._local) > 1:
            # LRU among single-owner chunks first; shared base-image
            # chunks (hot everywhere under dedup) are spared until no
            # private chunk remains.
            victim = min(
                self._local,
                key=lambda c: (self.chunks.get(c).shared, self._stamp[c]))
            self._demote(victim)

    def _demote(self, cid: str) -> None:
        nbytes = self._local.pop(cid)
        self.local_bytes -= nbytes
        if self.hdd is not None and cid not in self._on_hdd:
            # A clean drop into the spindle tier: the bytes are already
            # durable remotely, so demotion charges no device time.
            self._on_hdd[cid] = nbytes
            self.hdd_bytes += nbytes
        if self._m_demotions is not None:
            self._m_demotions.inc()

    def drop_local(self) -> int:
        """Drop the whole local tier (node decommission); returns the
        number of chunks dropped."""
        dropped = len(self._local)
        self._local.clear()
        self.local_bytes = 0
        return dropped

    # -- restore path -------------------------------------------------------
    def plan_read(self, file, start_page: int,
                  npages: int) -> list[tuple[str, int]] | None:
        """Resolve a snapshot-file read to the cold chunks it needs.

        Returns ``None`` when the file has no manifest (not a recorded
        snapshot) or every covered chunk is already local — the caller
        then takes the unmodified flat-file path.  Otherwise a list of
        unique ``(cid, nbytes)`` pairs, in manifest order, to stage.
        """
        manifest = self._manifests.get(file.ino)
        if manifest is None:
            return None
        cold: list[tuple[str, int]] = []
        seen: set[str] = set()
        hits = 0
        for index in manifest.covering_chunks(start_page, npages):
            cid = manifest.cids[index]
            self._stamp[cid] = next(self._tick)
            if cid in self._local:
                hits += 1
            elif cid not in seen:
                seen.add(cid)
                cold.append((cid, manifest.chunk_nbytes(index)))
        if hits and self._m_local_hits is not None:
            self._m_local_hits.inc(hits)
        return cold or None

    def stage(self, plan: list[tuple[str, int]], prio: int = 0):
        """Generator: fetch every cold chunk in ``plan`` into the local
        tier, charging the source tier's device model.

        Chunks already being fetched by another sandbox are awaited, not
        re-fetched; the rest are grouped per source tier, coalesced by
        remote-offset adjacency, and fetched concurrently.  Fetch errors
        propagate to the caller (and every waiter) after the retry and
        degradation ladder below is exhausted.
        """
        waits: list[Event] = []
        fetches: list[tuple[int, int, str, Event]] = []
        for cid, nbytes in plan:
            if cid in self._local:
                continue  # raced: staged since the plan was made
            pending = self._inflight.get(cid)
            if pending is not None:
                waits.append(pending)
                continue
            event = Event(self.env)
            event._defused = True  # waiters may be zero
            self._inflight[cid] = event
            fetches.append((self.chunks.get(cid).remote_offset, nbytes,
                            cid, event))
        pending = list(waits)
        for source, run in self._coalesce(fetches):
            pending.append(self.env.process(
                self._fetch(source, run, prio),
                name=f"snapstore-fetch-{run[0][2][:8]}"))
        if pending:
            yield self.env.all_of(pending)

    def _coalesce(self, fetches):
        """Group fetches by source tier, then merge offset-adjacent
        chunks into single runs (one device request per run)."""
        by_source: dict[str, list] = {"hdd": [], "remote": []}
        for entry in fetches:
            cid = entry[2]
            source = ("hdd" if self.hdd is not None and cid in self._on_hdd
                      else "remote")
            by_source[source].append(entry)
        for source in ("hdd", "remote"):
            entries = sorted(by_source[source])
            run: list = []
            run_end = None
            for entry in entries:
                offset, nbytes = entry[0], entry[1]
                aligned = -(-nbytes // PAGE_SIZE) * PAGE_SIZE
                if run and offset != run_end:
                    yield source, run
                    run = []
                run.append(entry)
                run_end = offset + aligned
            if run:
                yield source, run

    def _fetch(self, source: str, run, prio: int):
        """Generator: one coalesced fetch against one tier, with the
        retry/backoff + surviving-tier degradation ladder."""
        env = self.env
        device = self.hdd if source == "hdd" else self.remote
        offset = run[0][0]
        last_offset, last_nbytes = run[-1][0], run[-1][1]
        nbytes = (last_offset + last_nbytes) - offset
        start = env.now
        attempt = 0
        while True:
            error = None
            decision = None
            if source == "remote" and self.fault_injector is not None:
                decision = self.fault_injector.on_fetch()
                if decision.stall_seconds > 0.0:
                    yield env.timeout(decision.stall_seconds)
            request = IORequest(offset, nbytes, READ, prio=prio)
            try:
                yield device.submit(request)
            except BlockIOError as exc:
                error = exc
            if (error is None and decision is not None
                    and decision.error):
                # The transfer completed but the response was an EIO
                # (object-store 5xx); transient by nature.
                error = BlockIOError(request, transient=True)
            if error is None:
                break
            attempt += 1
            policy = self.retry_policy
            if policy is not None and policy.should_retry(
                    attempt, getattr(error, "transient", True)):
                if self._m_retries is not None:
                    self._m_retries.inc()
                yield env.timeout(policy.backoff(attempt))
                continue
            if source == "remote" and self.hdd is not None and all(
                    cid in self._on_hdd for _o, _n, cid, _e in run):
                # Remote unreachable but a surviving local tier holds
                # every chunk: degrade to it instead of failing.
                if self._m_degraded is not None:
                    self._m_degraded.inc(len(run))
                yield from self._fetch("hdd", run, prio)
                return
            for _offset, _nbytes, cid, event in run:
                self._inflight.pop(cid, None)
                event.fail(BlockIOError(request, transient=getattr(
                    error, "transient", True)))
            raise error
        if source == "remote":
            if self._m_remote_fetches is not None:
                self._m_remote_fetches.inc()
                self._m_remote_bytes.inc(nbytes)
                self._h_remote_latency.observe(env.now - start)
        elif self._m_hdd_hits is not None:
            self._m_hdd_hits.inc(len(run))
        for _offset, chunk_nbytes, cid, event in run:
            self._inflight.pop(cid, None)
            self._make_local(cid, chunk_nbytes)
            if self._m_staged is not None:
                self._m_staged.inc()
            event.succeed()

    # -- reporting ----------------------------------------------------------
    def result_extras(self) -> dict[str, float]:
        """Per-run floats for ``ScenarioResult.extra`` (exact-JSON
        round-trip safe: ints-as-floats and plain ratios only)."""
        extras = {
            "snapstore_dedup_factor": float(self.chunks.dedup_factor),
            "snapstore_logical_bytes": float(self.chunks.logical_bytes),
            "snapstore_unique_bytes": float(self.chunks.unique_bytes),
            "snapstore_local_bytes": float(self.local_bytes),
            "snapstore_remote_bytes": float(self.chunks.unique_bytes),
            "snapstore_gc_reclaimed_bytes":
                float(self.chunks.gc_reclaimed_bytes),
        }
        if self.hdd is not None:
            extras["snapstore_hdd_bytes"] = float(self.hdd_bytes)
        if self.metrics is not None:
            for key in ("snapstore_remote_fetches_total",
                        "snapstore_remote_fetch_bytes_total",
                        "snapstore_staged_chunks_total",
                        "snapstore_demotions_total",
                        "snapstore_fetch_retries_total",
                        "snapstore_degraded_fetches_total"):
                value = self.metrics.get(key).value
                if value:
                    extras[key.removesuffix("_total")] = float(value)
        return extras

    def occupancy(self) -> dict[str, float]:
        """Tier-occupancy snapshot (consumed by the serve dashboard)."""
        return {
            "local_bytes": float(self.local_bytes),
            "hdd_bytes": float(self.hdd_bytes),
            "remote_bytes": float(self.chunks.unique_bytes),
            "local_chunks": float(len(self._local)),
            "manifests": float(len(self._manifests)),
            "dedup_factor": float(self.chunks.dedup_factor),
        }


def install_snapstore(kernel, spec: SnapStoreSpec | None, *,
                      chunks: ChunkRegistry | None = None,
                      remote: RemoteObjectStore | None = None
                      ) -> SnapStore | None:
    """Build a store for one host kernel and wire every hook.

    No-op when ``spec`` is None (the flat-file baseline).  The cluster
    runner passes a shared registry + remote device so all nodes see one
    chunk namespace and contend on one network-attached store.
    """
    if spec is None:
        return None
    store = SnapStore(kernel.env, spec, chunks=chunks, remote=remote,
                      metrics=kernel.metrics)
    kernel.snapstore = store
    kernel.filestore.snapstore = store
    faults = getattr(kernel, "faults", None)
    if faults is not None and getattr(faults, "remote", None) is not None:
        store.fault_injector = faults.remote
    return store
