"""Content-addressed chunking: manifests, chunk ids, refcounted registry.

A snapshot's guest memory is cut into fixed-size chunks; each chunk is
named by a SHA-256 over the *logical content identities* of its pages,
and a per-snapshot :class:`Manifest` maps chunk index -> chunk id.  Two
snapshots that contain identical chunks share them — the registry keeps
one copy and a refcount.

Content model
-------------
Real snapshots of functions cloned from the same base runtime image are
mostly identical: the interpreter, libraries, and warmed heap layout are
the *runtime's*, and only the instance's private state (its working set)
differs.  The model mirrors that without materializing page bytes:

* **base pages** carry a token derived from :func:`runtime_id` — a hash
  of the profile's *shape* fields excluding its name and seed, so the
  cluster plane's clones (``json-0`` .. ``json-3``) share every base
  page identity;
* **private pages** — one contiguous extent of ``ws_pages`` pages at a
  per-snapshot deterministic position (instance heaps are contiguous) —
  carry a per-name token, so each clone taints the chunks its extent
  covers and only those;
* **guest-zeroed free pages** (FaaSnap's patched kernel) carry the zero
  token, deduplicating maximally across everything.

Chunk ids are therefore a pure function of ``(profile shape, name,
guest_zeroed, chunk size)``: re-recording an identical snapshot
reproduces the exact same manifest and allocates zero new chunks.
"""

from __future__ import annotations

import bisect
import functools
import hashlib
import random
from dataclasses import dataclass, field

from repro.units import PAGE_SIZE
from repro.workloads.profile import FunctionProfile

#: Profile fields that define the shared runtime image.  ``name`` and
#: ``seed`` are deliberately excluded: clones differing only in those
#: share a runtime (and hence base-page identities).
_RUNTIME_FIELDS = ("mem_bytes", "ws_bytes", "alloc_bytes",
                   "compute_seconds", "write_frac", "run_len_mean",
                   "run_len_sigma", "compute_overlap_frac",
                   "free_span_pages", "input_ws_frac")


def runtime_id(profile: FunctionProfile) -> str:
    """Identity of the base runtime image a profile was cloned from."""
    material = ",".join(f"{name}={getattr(profile, name)!r}"
                        for name in _RUNTIME_FIELDS)
    return hashlib.sha256(material.encode("utf-8")).hexdigest()[:16]


def private_extent(profile: FunctionProfile) -> tuple[int, int]:
    """[start, end) of the snapshot's instance-private pages.

    One contiguous ``ws_pages``-long extent at a deterministic,
    per-snapshot position inside guest memory — the instance's heap.
    """
    span = min(profile.ws_pages, profile.mem_pages)
    rng = random.Random(f"snapstore:{profile.name}:{profile.seed}")
    start = rng.randrange(max(1, profile.mem_pages - span + 1))
    return start, start + span


@dataclass(frozen=True)
class Manifest:
    """One snapshot as a sequence of content-addressed chunks."""

    ino: int
    name: str
    chunk_pages: int
    size_bytes: int
    cids: tuple[str, ...]

    @property
    def size_pages(self) -> int:
        return -(-self.size_bytes // PAGE_SIZE)

    @property
    def logical_bytes(self) -> int:
        return self.size_pages * PAGE_SIZE

    def chunk_nbytes(self, index: int) -> int:
        """Byte size of one chunk (the last chunk may be partial)."""
        if not 0 <= index < len(self.cids):
            raise IndexError(f"chunk {index} out of range for {self.name!r}")
        full = self.chunk_pages * PAGE_SIZE
        if index < len(self.cids) - 1:
            return full
        return self.logical_bytes - index * full

    def covering_chunks(self, start_page: int, npages: int) -> range:
        """Chunk indices covering the page range [start, start+npages)."""
        if npages <= 0:
            raise ValueError("page count must be positive")
        if start_page < 0 or start_page + npages > self.size_pages:
            raise IndexError(
                f"pages [{start_page}, {start_page + npages}) out of range "
                f"for {self.name!r} ({self.size_pages} pages)")
        return range(start_page // self.chunk_pages,
                     (start_page + npages - 1) // self.chunk_pages + 1)


def build_manifest(ino: int, name: str, profile: FunctionProfile,
                   chunk_pages: int, guest_zeroed: bool = False) -> Manifest:
    """Chunk one snapshot's logical content and hash the chunk ids.

    The chunk ids are a pure function of ``(profile, chunk size,
    guest_zeroed)`` — not of the inode — so re-recording the same
    snapshot (on this node or another) reproduces them exactly.
    """
    cids = _chunk_ids(profile, chunk_pages, guest_zeroed)
    return Manifest(ino=ino, name=name, chunk_pages=chunk_pages,
                    size_bytes=profile.mem_bytes, cids=cids)


@functools.lru_cache(maxsize=256)
def _chunk_ids(profile: FunctionProfile, chunk_pages: int,
               guest_zeroed: bool) -> tuple[str, ...]:
    name = profile.name
    rt = runtime_id(profile)
    priv_start, priv_end = private_extent(profile)
    free_starts: list[int] = []
    free_ends: list[int] = []
    if guest_zeroed:
        for start, length in profile.free_spans:
            free_starts.append(start)
            free_ends.append(start + length)
    mem_pages = profile.mem_pages

    def token(page: int) -> str:
        if free_starts:
            i = bisect.bisect_right(free_starts, page) - 1
            if i >= 0 and page < free_ends[i]:
                return "z"
        if priv_start <= page < priv_end:
            return f"w:{name}:{page}"
        return f"r:{rt}:{page}"

    cids: list[str] = []
    for chunk_start in range(0, mem_pages, chunk_pages):
        chunk_end = min(chunk_start + chunk_pages, mem_pages)
        digest = hashlib.sha256()
        digest.update(f"{chunk_pages}|".encode("ascii"))
        for page in range(chunk_start, chunk_end):
            digest.update(token(page).encode("utf-8"))
            digest.update(b"|")
        cids.append(digest.hexdigest())
    return tuple(cids)


def build_derived_manifest(ino: int, name: str, size_bytes: int,
                           chunk_pages: int) -> Manifest:
    """Manifest for a derived restore artifact (serialized working-set
    file, prefetch-group metadata).

    Such files are instance-specific serializations — there is nothing
    to deduplicate across snapshots — but they still live in the tiered
    store: a restore from a cold tier pays to fetch them like any other
    chunk.  Tokens are per-(file name, page), so re-recording the same
    artifact reproduces its chunk ids exactly.
    """
    size_pages = -(-size_bytes // PAGE_SIZE)
    cids = _derived_chunk_ids(name, size_pages, chunk_pages)
    return Manifest(ino=ino, name=name, chunk_pages=chunk_pages,
                    size_bytes=size_bytes, cids=cids)


@functools.lru_cache(maxsize=1024)
def _derived_chunk_ids(name: str, size_pages: int,
                       chunk_pages: int) -> tuple[str, ...]:
    cids: list[str] = []
    for chunk_start in range(0, size_pages, chunk_pages):
        chunk_end = min(chunk_start + chunk_pages, size_pages)
        digest = hashlib.sha256()
        digest.update(f"{chunk_pages}|".encode("ascii"))
        for page in range(chunk_start, chunk_end):
            digest.update(f"d:{name}:{page}|".encode("utf-8"))
        cids.append(digest.hexdigest())
    return tuple(cids)


@dataclass
class ChunkInfo:
    """Registry entry for one unique chunk."""

    nbytes: int
    #: Byte offset of the chunk in the remote object store's flat
    #: address space (assigned once, at first reference).
    remote_offset: int
    #: Per-snapshot-name refcounts; total refs = sum of the values.
    owners: dict[str, int] = field(default_factory=dict)

    @property
    def refs(self) -> int:
        return sum(self.owners.values())

    @property
    def shared(self) -> bool:
        """Referenced by two or more distinct snapshots — a base-image
        chunk (what ``base-local`` placement pre-places on boot)."""
        return len(self.owners) >= 2


class ChunkRegistry:
    """Cluster-wide chunk namespace: refcounts, dedup accounting, GC.

    One registry can back many per-node :class:`~repro.snapstore.store.
    SnapStore` instances (they share the remote tier); all bookkeeping
    is insertion-ordered and RNG-free, so runs are byte-deterministic
    under any job count.
    """

    def __init__(self) -> None:
        self._chunks: dict[str, ChunkInfo] = {}
        self._cursor = 0
        #: Live bytes as the manifests see them (with duplication).
        self.logical_bytes = 0
        #: Live bytes actually stored (each unique chunk once).
        self.unique_bytes = 0
        #: Bytes of chunks whose last reference was released.
        self.gc_reclaimed_bytes = 0
        #: References that found their chunk already present.
        self.dedup_hits = 0

    def __len__(self) -> int:
        return len(self._chunks)

    def __contains__(self, cid: str) -> bool:
        return cid in self._chunks

    def get(self, cid: str) -> ChunkInfo:
        return self._chunks[cid]

    @property
    def dedup_factor(self) -> float:
        """Manifest bytes per stored byte (1.0 = no dedup)."""
        if not self.unique_bytes:
            return 1.0
        return self.logical_bytes / self.unique_bytes

    def add_ref(self, cid: str, nbytes: int, owner: str) -> ChunkInfo:
        """Reference ``cid`` from snapshot ``owner``; allocate if new."""
        self.logical_bytes += nbytes
        info = self._chunks.get(cid)
        if info is None:
            aligned = -(-nbytes // PAGE_SIZE) * PAGE_SIZE
            info = ChunkInfo(nbytes=nbytes, remote_offset=self._cursor)
            self._cursor += aligned
            self._chunks[cid] = info
            self.unique_bytes += nbytes
        else:
            self.dedup_hits += 1
        info.owners[owner] = info.owners.get(owner, 0) + 1
        return info

    def release(self, cid: str, owner: str) -> bool:
        """Drop one reference; returns True if the chunk was freed."""
        info = self._chunks[cid]
        count = info.owners.get(owner, 0)
        if count <= 0:
            raise KeyError(f"{owner!r} holds no reference to {cid[:12]}")
        if count == 1:
            del info.owners[owner]
        else:
            info.owners[owner] = count - 1
        self.logical_bytes -= info.nbytes
        if not info.owners:
            del self._chunks[cid]
            self.unique_bytes -= info.nbytes
            self.gc_reclaimed_bytes += info.nbytes
            return True
        return False
