"""repro — a full-system reproduction of *SnapBPF: Exploiting eBPF for
Serverless Snapshot Prefetching* (HotStorage '25) on a simulated
Linux/KVM/firecracker stack.

Public API tour
---------------

Run a paper experiment in three lines::

    from repro import ScenarioSpec, run_scenario
    result = run_scenario(ScenarioSpec("bert", "snapbpf", n_instances=10))
    print(result.mean_e2e, result.peak_memory_gib)

Layers (bottom-up):

* :mod:`repro.sim` — discrete-event simulation engine
* :mod:`repro.storage` — SSD/HDD models + file store
* :mod:`repro.ebpf` — miniature eBPF (ISA, verifier, interpreter, maps,
  kprobes, kfuncs)
* :mod:`repro.mm` — page cache, readahead, VMAs, faults, userfaultfd
* :mod:`repro.kvm`, :mod:`repro.guest` — nested paging + guest kernel
* :mod:`repro.vmm` — snapshots and microVMs
* :mod:`repro.core` — **SnapBPF itself**
* :mod:`repro.baselines` — REAP, Faast, FaaSnap, Linux-RA/NoRA
* :mod:`repro.workloads` — the 13 evaluated function models
* :mod:`repro.harness` — scenario runner + figure/table regeneration
* :mod:`repro.cluster` — multi-node fleet: gateway routing, autoscaling,
  node-crash chaos
"""

from repro.baselines import FaaSnap, Faast, LinuxNoRA, LinuxRA, REAP
from repro.baselines.base import Approach, approach_registry
from repro.cluster import ClusterSpec
from repro.core import PVPTEsOnly, SnapBPF
from repro.faults import FaultConfig, FaultSchedule, RetryPolicy
from repro.harness.chaos import run_chaos_scenario, run_chaos_suite
from repro.harness.experiment import ResultCache, make_kernel, run_scenario
from repro.harness.spec import ScenarioSpec
from repro.harness.sweep import ResultStore, SweepRunner
from repro.metrics.results import ScenarioResult
from repro.mm.kernel import Kernel
from repro.platform import FaaSNode, poisson_arrivals
from repro.units import GIB, KIB, MIB, PAGE_SIZE
from repro.vmm import FunctionSnapshot, MicroVM, build_snapshot
from repro.workloads import (
    FUNCTIONS,
    FunctionProfile,
    generate_trace,
    profile_by_name,
)

__version__ = "1.0.0"

__all__ = [
    "Approach",
    "ClusterSpec",
    "FaaSNode",
    "FaaSnap",
    "Faast",
    "FaultConfig",
    "FaultSchedule",
    "FunctionProfile",
    "FunctionSnapshot",
    "FUNCTIONS",
    "GIB",
    "KIB",
    "Kernel",
    "LinuxNoRA",
    "LinuxRA",
    "MIB",
    "MicroVM",
    "PAGE_SIZE",
    "PVPTEsOnly",
    "REAP",
    "ResultCache",
    "ResultStore",
    "RetryPolicy",
    "ScenarioResult",
    "ScenarioSpec",
    "SnapBPF",
    "SweepRunner",
    "approach_registry",
    "build_snapshot",
    "generate_trace",
    "make_kernel",
    "poisson_arrivals",
    "profile_by_name",
    "run_chaos_scenario",
    "run_chaos_suite",
    "run_scenario",
    "__version__",
]
