"""Shared-resource primitives for the DES engine.

:class:`Resource` models a fixed number of service slots (e.g. an SSD's
NCQ depth, a core count); processes yield a :class:`Request` to acquire a
slot and call :meth:`Resource.release` when done.  :class:`Store` is an
unbounded FIFO of items with blocking ``get`` — used for request queues
between producer and consumer processes (e.g. the userfaultfd message
queue between the faulting vCPU and the userspace handler).
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any

from repro.sim.engine import URGENT, Environment, Event, SimulationError


class Request(Event):
    """Pending acquisition of one slot of a :class:`Resource`."""

    __slots__ = ("resource", "priority")

    def __init__(self, resource: "Resource", priority: int = 0):
        super().__init__(resource.env)
        self.resource = resource
        self.priority = priority

    def cancel(self) -> None:
        """Withdraw an un-granted request from the wait queue."""
        if not self._triggered:
            self.resource._remove_waiter(self)


class Resource:
    """A counted resource with priority + FIFO granting.

    Lower ``priority`` values are granted first; ties go in request
    order.  The default priority 0 with no other levels degenerates to
    plain FIFO.  Usage from a process::

        req = resource.request()
        yield req
        try:
            ...  # hold the slot
        finally:
            resource.release(req)

    The block-device layer uses two levels: synchronous (fault-path)
    reads overtake queued readahead/prefetch I/O, as the Linux block
    layer deprioritizes REQ_RAHEAD requests.
    """

    def __init__(self, env: Environment, capacity: int = 1):
        if capacity < 1:
            raise SimulationError(f"resource capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self._heap: list[tuple[int, int, Request]] = []
        self._seq = 0
        self._users: set[Request] = set()

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self._users)

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._heap)

    def request(self, priority: int = 0) -> Request:
        req = Request(self, priority)
        if len(self._users) < self.capacity:
            self._users.add(req)
            req.succeed(priority=URGENT)
        else:
            self._seq += 1
            heapq.heappush(self._heap, (priority, self._seq, req))
        return req

    def release(self, request: Request) -> None:
        if request not in self._users:
            raise SimulationError("releasing a request that does not hold a slot")
        self._users.remove(request)
        while self._heap and len(self._users) < self.capacity:
            _prio, _seq, nxt = heapq.heappop(self._heap)
            if nxt._triggered:
                continue  # cancelled
            self._users.add(nxt)
            nxt.succeed(priority=URGENT)

    def _remove_waiter(self, request: Request) -> None:
        # Lazy removal: mark by triggering; release() skips it.
        for i, (_p, _s, req) in enumerate(self._heap):
            if req is request:
                del self._heap[i]
                heapq.heapify(self._heap)
                return


class Store:
    """Unbounded FIFO store with blocking ``get``.

    ``put`` never blocks; ``get`` returns an event that fires with the next
    item (immediately if one is buffered).
    """

    def __init__(self, env: Environment):
        self.env = env
        self._items: deque[Any] = deque()
        self._getters: deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        if self._getters:
            self._getters.popleft().succeed(item, priority=URGENT)
        else:
            self._items.append(item)

    def get(self) -> Event:
        event = Event(self.env)
        if self._items:
            event.succeed(self._items.popleft(), priority=URGENT)
        else:
            self._getters.append(event)
        return event
