"""Core discrete-event simulation kernel.

The engine follows the classic event-heap design: :class:`Environment`
keeps a priority queue of ``(time, priority, seq, event)`` tuples and pops
them in order, advancing the simulated clock.  Processes are Python
generators driven by :class:`Process`; each ``yield`` hands back an
:class:`Event` whose firing resumes the generator.
"""

from __future__ import annotations

import heapq
from collections.abc import Generator, Iterable
from typing import Any, Callable

#: Event priorities.  URGENT events scheduled at the same timestamp fire
#: before NORMAL ones; used so that e.g. process resumption after a
#: resource release happens before same-time timeouts.
URGENT = 0
NORMAL = 1


class SimulationError(RuntimeError):
    """Raised for illegal engine operations (double trigger, bad yield)."""


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    The ``cause`` attribute carries the value given to ``interrupt()``.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A condition that fires exactly once at some simulated time.

    Processes wait on events by yielding them.  An event carries a
    ``value`` (delivered as the result of the yield) and may instead fail
    with an exception, which is re-raised inside every waiting process.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_triggered",
                 "_processed", "_defused")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: list[Callable[[Event], None]] | None = []
        self._value: Any = None
        self._ok = True
        self._triggered = False
        self._processed = False
        # A failed event whose failure someone will observe (a waiting
        # process or condition) is "defused": the engine must not treat
        # it as an unhandled error.
        self._defused = False

    # -- state ------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to fire."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """True once callbacks have run (the event is in the past)."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True if the event succeeded (vs. failed with an exception)."""
        return self._ok

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimulationError("event value read before trigger")
        return self._value

    # -- triggering -------------------------------------------------------
    def succeed(self, value: Any = None, priority: int = NORMAL) -> "Event":
        """Schedule this event to fire successfully with ``value``."""
        if self._triggered:
            raise SimulationError("event already triggered")
        self._triggered = True
        self._ok = True
        self._value = value
        self.env._schedule(self, priority)
        return self

    def fail(self, exc: BaseException, priority: int = NORMAL) -> "Event":
        """Schedule this event to fire by raising ``exc`` in waiters."""
        if self._triggered:
            raise SimulationError("event already triggered")
        if not isinstance(exc, BaseException):
            raise TypeError(f"fail() needs an exception, got {exc!r}")
        self._triggered = True
        self._ok = False
        self._value = exc
        self.env._schedule(self, priority)
        return self

    def _run_callbacks(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        self._processed = True
        for callback in callbacks or ():
            callback(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "processed" if self._processed else (
            "triggered" if self._triggered else "pending")
        return f"<{type(self).__name__} {state}>"


class Timeout(Event):
    """An event that fires ``delay`` time units after creation."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay!r}")
        super().__init__(env)
        self.delay = delay
        self._triggered = True
        self._value = value
        env._schedule(self, NORMAL, delay)


class Process(Event):
    """Wraps a generator and drives it by subscribing to yielded events.

    A ``Process`` is itself an :class:`Event` that fires when the generator
    returns (with the return value) or raises (failing the event), so
    processes can wait on each other by yielding them.
    """

    __slots__ = ("generator", "_target", "name", "_started_at")

    def __init__(self, env: "Environment", generator: Generator,
                 name: str | None = None):
        if not hasattr(generator, "send"):
            raise SimulationError(f"process needs a generator, got {generator!r}")
        super().__init__(env)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._target: Event | None = None
        self._started_at = env._now
        # Kick off at current time.
        init = Event(env)
        init.callbacks.append(self._resume)
        init.succeed(priority=URGENT)

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self._triggered:
            raise SimulationError("cannot interrupt a finished process")
        event = Event(self.env)
        event._defused = True
        event.callbacks.append(self._resume_interrupt)
        event.succeed(Interrupt(cause), priority=URGENT)

    # -- internal ---------------------------------------------------------
    def _resume_interrupt(self, event: Event) -> None:
        if self._triggered:
            return  # process finished before the interrupt was delivered
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._target = None
        self._step(event.value, throw=True)

    def _resume(self, event: Event) -> None:
        self._target = None
        if event._ok:
            self._step(event._value, throw=False)
        else:
            self._step(event._value, throw=True)

    def _step(self, value: Any, throw: bool) -> None:
        env = self.env
        env._active_process = self
        try:
            if throw:
                target = self.generator.throw(value)
            else:
                target = self.generator.send(value)
        except StopIteration as stop:
            env._active_process = None
            self._trace_lifetime(env, ok=True)
            self.succeed(stop.value, priority=URGENT)
            return
        except BaseException as exc:
            env._active_process = None
            self._trace_lifetime(env, ok=False)
            self.fail(exc, priority=URGENT)
            return
        env._active_process = None

        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded non-event {target!r}")
        self._finish_yield(target, env)

    def _trace_lifetime(self, env: "Environment", ok: bool) -> None:
        tracer = env.tracer
        if tracer is not None and tracer.enabled:
            tracer.complete(self.name, "process", self._started_at,
                            end=env._now, track="process", ok=ok)

    def _finish_yield(self, target: Event, env: "Environment") -> None:
        if target.callbacks is None:
            # Already processed: resume immediately at the current time.
            immediate = Event(env)
            immediate._defused = True  # this process observes the outcome
            immediate.callbacks.append(self._resume)
            if target._ok:
                immediate.succeed(target._value, priority=URGENT)
            else:
                immediate.fail(target._value, priority=URGENT)
        else:
            self._target = target
            target._defused = True  # this process will observe a failure
            target.callbacks.append(self._resume)


class _Condition(Event):
    """Base for AllOf/AnyOf composite events."""

    __slots__ = ("events", "_count")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self.events = list(events)
        self._count = 0
        if not self.events:
            self.succeed({})
            return
        for event in self.events:
            if event.callbacks is None:
                self._check(event)
            else:
                event._defused = True  # failures surface via the condition
                event.callbacks.append(self._check)

    def _collect(self) -> dict[Event, Any]:
        return {e: e._value for e in self.events if e._processed or e._triggered}

    def _check(self, event: Event) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class AllOf(_Condition):
    """Fires once every constituent event has fired; value maps event->value."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self._triggered:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self._count += 1
        if self._count == len(self.events):
            self.succeed({e: e._value for e in self.events})


class AnyOf(_Condition):
    """Fires as soon as any constituent event fires."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self._triggered:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self.succeed({event: event._value})


class Environment:
    """Simulation environment: clock, event heap, process factory."""

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._heap: list[tuple[float, int, int, Event]] = []
        self._seq = 0
        self._active_process: Process | None = None
        #: Trace plane hook (duck-typed; see repro.trace).  When set and
        #: enabled, every completed process emits a lifetime span.  The
        #: engine never imports the trace package — same layering as the
        #: fault plane's injector attributes.
        self.tracer = None
        #: Serve plane hook (duck-typed; see repro.serve.hub).  When set,
        #: every processed event offers the hub a chance to publish a
        #: snapshot (self-throttled by sim time).  Observation-only: the
        #: default None costs one attribute check per event and the
        #: engine never imports the serve package.
        self.telemetry = None
        #: Total events processed since construction.  Observation-only
        #: (never consulted by the engine); the bench harness divides it
        #: by wall time for its events/sec figure of merit.
        self.events_processed = 0

    @property
    def now(self) -> float:
        """Current simulated time (seconds by convention in repro)."""
        return self._now

    @property
    def active_process(self) -> Process | None:
        return self._active_process

    # -- event factories ----------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str | None = None) -> Process:
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling -----------------------------------------------------------
    def _schedule(self, event: Event, priority: int, delay: float = 0.0) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (self._now + delay, priority, self._seq, event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._heap[0][0] if self._heap else float("inf")

    def step(self) -> None:
        """Process the single next event."""
        if not self._heap:
            raise SimulationError("no scheduled events")
        when, _prio, _seq, event = heapq.heappop(self._heap)
        self._now = when
        self.events_processed += 1
        event._run_callbacks()
        if not event._ok and not event._defused:
            # An unhandled failure (nothing waited on the event) is an
            # error: errors should never pass silently.
            raise event._value
        if self.telemetry is not None:
            self.telemetry.on_sim_event(self._now)

    def run(self, until: float | Event | None = None) -> Any:
        """Run until the heap drains, ``until`` time passes, or event fires."""
        if isinstance(until, Event):
            stop = until
            while not stop._processed:
                if not self._heap:
                    raise SimulationError(
                        "simulation starved before awaited event fired")
                self.step()
            if not stop._ok:
                raise stop._value
            return stop._value
        limit = float("inf") if until is None else float(until)
        while self._heap and self._heap[0][0] <= limit:
            self.step()
        if until is not None:
            self._now = max(self._now, limit)
        return None
