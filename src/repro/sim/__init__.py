"""Discrete-event simulation engine.

A small, self-contained process-based DES kernel in the style of SimPy:
:class:`Environment` owns a simulated clock and an event heap, and
*processes* are Python generators that ``yield`` events (timeouts, other
processes, resource requests) to suspend until those events fire.

Every other subsystem in :mod:`repro` (storage devices, page cache, vCPUs,
userspace handler threads) is written as processes over this engine, which
is what lets us measure end-to-end function invocation latency and
system-wide memory over simulated time.
"""

from repro.sim.engine import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Timeout,
)
from repro.sim.resources import Request, Resource, Store

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "Request",
    "Resource",
    "SimulationError",
    "Store",
    "Timeout",
]
