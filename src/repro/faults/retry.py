"""Bounded exponential backoff — the shared degradation knob.

Used by the page cache for transient I/O errors (re-issue the failed
read after a backoff instead of SIGBUSing every waiter) and available to
any other layer that wants the same ladder.  Attempts are counted from
1, so ``max_attempts=3`` means one initial try plus two retries.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to retry a transient failure, and how patiently."""

    #: Total attempts, the first try included.
    max_attempts: int = 3
    #: Backoff before the first retry (seconds).
    backoff_base: float = 500e-6
    #: Geometric growth factor between consecutive retries.
    backoff_multiplier: float = 4.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_base < 0:
            raise ValueError("backoff_base must be >= 0")
        if self.backoff_multiplier < 1.0:
            raise ValueError("backoff_multiplier must be >= 1")

    def should_retry(self, attempt: int, transient: bool) -> bool:
        """Whether attempt number ``attempt`` (1-based) may be retried."""
        return transient and attempt < self.max_attempts

    def backoff(self, attempt: int) -> float:
        """Delay before the retry that follows attempt ``attempt``."""
        return self.backoff_base * self.backoff_multiplier ** (attempt - 1)
