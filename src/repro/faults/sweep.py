"""Runner-level chaos: faults for the sweep supervisor itself.

The other injectors in this package live *inside* the simulation; this
one attacks the harness that runs it — the worker processes of
:class:`~repro.harness.sweep.SweepRunner` and the on-disk
:class:`~repro.harness.sweep.ResultStore`.  Three fault kinds:

* **worker kills** — the worker executing a cell SIGKILLs itself before
  running the scenario, so the parent sees ``BrokenProcessPool`` exactly
  as it would for a real OOM-killed worker (in serial mode the
  supervisor raises :class:`WorkerCrashError` instead, since killing the
  only process would end the sweep rather than exercise it);
* **hangs** — the worker sleeps past the supervisor's deadline before
  executing, driving the timeout/teardown/retry path;
* **store tears** — a completed cell's store file is truncated mid-JSON
  right after the atomic write, modeling a torn write that the next
  load must quarantine rather than trust.

Every decision is a pure function of ``(seed, key, attempt)`` — the
injector holds no RNG stream state — so a chaos sweep is reproducible
regardless of worker scheduling, completion order, or job count.  By
default rate-based faults fire on a cell's *first* attempt only
(``first_attempt_only=True``): retries run clean, so a faulted sweep
always terminates and its results stay byte-identical to an unfaulted
run.  The ``*_next`` forcing hooks bypass that guard, letting tests
stage poison cells that fail every attempt.
"""

from __future__ import annotations

import hashlib
import os
import random
import signal
import time
from dataclasses import dataclass


class WorkerCrashError(RuntimeError):
    """Serial-mode stand-in for a SIGKILLed worker process."""


@dataclass(frozen=True)
class WorkerFault:
    """What should happen to the worker before it runs one cell.

    Shipped to the worker inside the task payload (it must pickle), and
    applied by :func:`apply_worker_fault` before the cell body runs.
    """

    #: SIGKILL the worker process (parent sees ``BrokenProcessPool``).
    kill: bool = False
    #: Sleep this long before executing (drives the deadline path).
    hang_seconds: float = 0.0


def apply_worker_fault(fault: WorkerFault | None) -> None:
    """Worker-side: enact a planned fault before running the cell."""
    if fault is None:
        return
    if fault.kill:
        os.kill(os.getpid(), signal.SIGKILL)
    if fault.hang_seconds > 0:
        time.sleep(fault.hang_seconds)


class SweepFaultInjector:
    """Plans worker kills, hangs, and store tears for one sweep.

    The supervisor consults :meth:`plan` parent-side before submitting
    each attempt, and :class:`~repro.harness.sweep.ResultStore` consults
    :meth:`on_store_write` after each save.  Counters (``worker_kills``,
    ``hangs``, ``store_tears``) record what was *planned*; the
    supervisor's own metrics record what actually happened.
    """

    def __init__(self, seed: int = 0, kill_rate: float = 0.0,
                 hang_rate: float = 0.0, hang_seconds: float = 30.0,
                 tear_rate: float = 0.0,
                 first_attempt_only: bool = True) -> None:
        for name, rate in (("kill_rate", kill_rate),
                           ("hang_rate", hang_rate),
                           ("tear_rate", tear_rate)):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if hang_seconds < 0:
            raise ValueError("hang_seconds must be >= 0")
        self.seed = seed
        self.kill_rate = kill_rate
        self.hang_rate = hang_rate
        self.hang_seconds = hang_seconds
        self.tear_rate = tear_rate
        self.first_attempt_only = first_attempt_only
        #: Planned-fault counts (parent-side).
        self.worker_kills = 0
        self.hangs = 0
        self.store_tears = 0
        self._forced_kills = 0
        self._forced_hangs = 0
        self._forced_tears = 0
        self._torn_keys: set[str] = set()

    # -- forcing hooks (tests) ----------------------------------------------
    def kill_next(self, n: int = 1) -> None:
        """Force the next ``n`` planned attempts to kill their worker."""
        self._forced_kills += n

    def hang_next(self, n: int = 1) -> None:
        """Force the next ``n`` planned attempts to hang."""
        self._forced_hangs += n

    def tear_next(self, n: int = 1) -> None:
        """Force the next ``n`` store writes to be torn."""
        self._forced_tears += n

    # -- deterministic draws ------------------------------------------------
    def _draw(self, kind: str, key: str, attempt: int) -> float:
        material = f"{self.seed}:{kind}:{key}:{attempt}".encode()
        digest = hashlib.sha256(material).digest()
        return random.Random(int.from_bytes(digest[:8], "big")).random()

    def _rate_applies(self, attempt: int) -> bool:
        return attempt == 1 or not self.first_attempt_only

    def plan(self, key: str, attempt: int) -> WorkerFault | None:
        """Decide one attempt's fate (``attempt`` is 1-based)."""
        kill = hang = False
        if self._forced_kills > 0:
            self._forced_kills -= 1
            kill = True
        elif (self.kill_rate and self._rate_applies(attempt)
                and self._draw("kill", key, attempt) < self.kill_rate):
            kill = True
        if not kill:
            if self._forced_hangs > 0:
                self._forced_hangs -= 1
                hang = True
            elif (self.hang_rate and self._rate_applies(attempt)
                    and self._draw("hang", key, attempt) < self.hang_rate):
                hang = True
        if kill:
            self.worker_kills += 1
            return WorkerFault(kill=True)
        if hang:
            self.hangs += 1
            return WorkerFault(hang_seconds=self.hang_seconds)
        return None

    def on_store_write(self, key: str) -> bool:
        """Whether the store file just written for ``key`` gets torn.

        With ``first_attempt_only`` each key is torn at most once, so a
        re-executed cell's second write survives and reruns converge.
        """
        if self._forced_tears > 0:
            self._forced_tears -= 1
            self.store_tears += 1
            return True
        if not self.tear_rate:
            return False
        if self.first_attempt_only and key in self._torn_keys:
            return False
        if self._draw("tear", key, 1) < self.tear_rate:
            self._torn_keys.add(key)
            self.store_tears += 1
            return True
        return False
