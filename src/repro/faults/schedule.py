"""Seeded fault schedules.

A :class:`FaultSchedule` owns one sub-seeded RNG stream per layer
(device, filestore, ebpf) plus a shared :class:`FaultStats` counter
block.  Because the simulation is a deterministic discrete-event system,
per-request draws happen in a reproducible order, so a whole chaos run
is a pure function of ``(workload seed, fault seed, config)``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, fields


@dataclass(frozen=True)
class FaultConfig:
    """Fault rates and severities for one schedule.

    Rates are per-opportunity probabilities (per device request, per
    snapshot-file read, per program attach); multipliers scale service
    times.  The default config injects nothing.
    """

    #: Probability that a device request fails with a media error.
    media_error_rate: float = 0.0
    #: Fraction of injected media errors that are persistent (the
    #: extent stays bad; retries see the same error).
    persistent_fraction: float = 0.0
    #: Probability that a request hits a latency spike.
    latency_spike_rate: float = 0.0
    #: Service-time multiplier applied to spiked requests.
    latency_spike_multiplier: float = 8.0
    #: Service-time multiplier applied to *every* request (degraded
    #: mode, e.g. a device doing background media scans).
    degraded_multiplier: float = 1.0
    #: Probability that a snapshot-file read surfaces a torn page.
    torn_page_rate: float = 0.0
    #: Probability that a BPF program attach fails.
    attach_failure_rate: float = 0.0
    #: If set, clamp requested BPF map capacities to this many entries.
    map_capacity_cap: int | None = None
    #: Probability that a kswapd wakeup stalls before scanning (the mm
    #: analogue of a latency spike: reclaim CPU stolen by other work).
    reclaim_stall_rate: float = 0.0
    #: Duration of one injected reclaim stall, in seconds.
    reclaim_stall_seconds: float = 500e-6
    #: Probability that a node is killed at one crash opportunity (the
    #: cluster plane rolls this per routable node per check interval;
    #: single-node runs never draw from the stream, so rate 0 keeps
    #: fingerprints byte-identical to earlier releases).
    node_crash_rate: float = 0.0
    #: Probability that one remote-object-store fetch returns an EIO
    #: (object-store 5xx).  Transient: the snapstore's retry/backoff
    #: ladder re-fetches, then degrades to a surviving tier if one holds
    #: the chunks.  Draws happen only in runs with a snapstore staging
    #: from the remote tier, so rate 0 keeps fingerprints byte-identical.
    remote_fetch_error_rate: float = 0.0
    #: Probability that one remote fetch stalls before being served
    #: (congested network path / slow storage frontend).
    remote_fetch_stall_rate: float = 0.0
    #: Duration of one injected remote-fetch stall, in seconds.
    remote_fetch_stall_seconds: float = 2e-3

    def __post_init__(self) -> None:
        for name in ("media_error_rate", "persistent_fraction",
                     "latency_spike_rate", "torn_page_rate",
                     "attach_failure_rate", "reclaim_stall_rate",
                     "node_crash_rate", "remote_fetch_error_rate",
                     "remote_fetch_stall_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if self.latency_spike_multiplier < 1.0:
            raise ValueError("latency_spike_multiplier must be >= 1")
        if self.degraded_multiplier < 1.0:
            raise ValueError("degraded_multiplier must be >= 1")
        if self.map_capacity_cap is not None and self.map_capacity_cap < 1:
            raise ValueError("map_capacity_cap must be >= 1")
        if self.reclaim_stall_seconds < 0.0:
            raise ValueError("reclaim_stall_seconds must be >= 0")
        if self.remote_fetch_stall_seconds < 0.0:
            raise ValueError("remote_fetch_stall_seconds must be >= 0")


@dataclass
class FaultStats:
    """Counters for everything the schedule injected."""

    media_errors: int = 0
    persistent_errors: int = 0
    latency_spikes: int = 0
    torn_pages: int = 0
    attach_failures: int = 0
    map_squeezes: int = 0

    def snapshot(self) -> dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(self)}


@dataclass
class FaultSchedule:
    """One seeded schedule with per-layer injectors.

    ``install(kernel)`` plugs the injectors into a kernel's device,
    file store, and kprobe manager; layers that were never installed
    simply run fault-free.
    """

    seed: int = 0
    config: FaultConfig = field(default_factory=FaultConfig)

    def __post_init__(self) -> None:
        # Deferred import: injectors pull in storage/ebpf error types.
        from repro.faults.injectors import (
            DeviceFaultInjector,
            EbpfFaultInjector,
            FileStoreFaultInjector,
            MemFaultInjector,
            NodeFaultInjector,
            RemoteFetchInjector,
        )

        self.stats = FaultStats()
        self.device = DeviceFaultInjector(
            self._stream("device"), self.config, self.stats)
        self.filestore = FileStoreFaultInjector(
            self._stream("filestore"), self.config, self.stats)
        self.ebpf = EbpfFaultInjector(
            self._stream("ebpf"), self.config, self.stats)
        self.mm = MemFaultInjector(
            self._stream("mm"), self.config, self.stats)
        self.node = NodeFaultInjector(
            self._stream("node"), self.config, self.stats)
        self.remote = RemoteFetchInjector(
            self._stream("remote"), self.config, self.stats)

    def _stream(self, layer: str) -> random.Random:
        """An independent, layer-local RNG derived from the seed."""
        return random.Random(f"faults:{self.seed}:{layer}")

    def install(self, kernel) -> "FaultSchedule":
        """Attach this schedule's injectors to a kernel's layers."""
        kernel.faults = self
        kernel.device.fault_injector = self.device
        kernel.filestore.fault_injector = self.filestore
        kernel.kprobes.fault_injector = self.ebpf
        reclaim = getattr(kernel, "reclaim", None)
        if reclaim is not None:
            reclaim.fault_injector = self.mm
        snapstore = getattr(kernel, "snapstore", None)
        if snapstore is not None:
            snapstore.fault_injector = self.remote
        # Publish the injection counters through the machine's registry
        # (``fault_*`` keys) so one snapshot covers the whole stack.  The
        # injectors keep owning the plain attributes; a collector is the
        # registry's view onto them.
        kernel.metrics.register_collector(
            lambda: {f"fault_{key}": value
                     for key, value in self.stats.snapshot().items()})
        return self
