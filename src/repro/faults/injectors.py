"""Per-layer fault injectors.

Each injector owns a layer-local RNG stream from the parent
:class:`~repro.faults.schedule.FaultSchedule` and a shared
:class:`~repro.faults.schedule.FaultStats` counter block.  Layers query
their injector at each fault opportunity (device request, snapshot-file
read, program attach, map creation); injectors also expose ``*_next``
forcing hooks so tests can stage exact fault sequences without relying
on rates.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.faults.schedule import FaultConfig, FaultStats

#: Media-error kinds: a transient error clears on retry, a persistent
#: one marks the extent bad so every later overlapping request fails too.
TRANSIENT = "transient"
PERSISTENT = "persistent"


@dataclass(frozen=True)
class DeviceFaultDecision:
    """What the device should do with one request."""

    #: ``None`` for success, else :data:`TRANSIENT` or :data:`PERSISTENT`.
    error: str | None = None
    #: Service-time multiplier (degraded mode and/or latency spike).
    multiplier: float = 1.0
    #: Whether a latency spike was drawn (for stats attribution).
    spiked: bool = False


class DeviceFaultInjector:
    """Media errors and service-time degradation for a block device."""

    def __init__(self, rng: random.Random, config: FaultConfig,
                 stats: FaultStats):
        self.rng = rng
        self.config = config
        self.stats = stats
        #: Forced error kinds consumed before any rate draws (tests).
        self._forced: list[str] = []
        #: Byte extents that failed persistently: (offset, end) pairs.
        self.bad_extents: list[tuple[int, int]] = []

    def fail_next(self, n: int = 1, persistent: bool = False) -> None:
        """Force the next ``n`` requests to fail (FIFO with prior calls)."""
        self._forced.extend([PERSISTENT if persistent else TRANSIENT] * n)

    def _extent_bad(self, offset: int, end: int) -> bool:
        return any(offset < bad_end and bad_start < end
                   for bad_start, bad_end in self.bad_extents)

    def on_request(self, request) -> DeviceFaultDecision:
        """Decide one request's fate.  Exactly one RNG draw sequence per
        request regardless of outcome keeps the stream aligned across
        runs with the same seed."""
        cfg = self.config
        error: str | None = None
        if self._forced:
            error = self._forced.pop(0)
        elif self._extent_bad(request.offset, request.end):
            error = PERSISTENT
        elif cfg.media_error_rate and self.rng.random() < cfg.media_error_rate:
            error = PERSISTENT if (
                cfg.persistent_fraction
                and self.rng.random() < cfg.persistent_fraction
            ) else TRANSIENT
        multiplier = cfg.degraded_multiplier
        spiked = False
        if cfg.latency_spike_rate and self.rng.random() < cfg.latency_spike_rate:
            multiplier *= cfg.latency_spike_multiplier
            spiked = True
            self.stats.latency_spikes += 1
        if error == PERSISTENT:
            if not self._extent_bad(request.offset, request.end):
                self.bad_extents.append((request.offset, request.end))
            self.stats.persistent_errors += 1
        elif error == TRANSIENT:
            self.stats.media_errors += 1
        return DeviceFaultDecision(error=error, multiplier=multiplier,
                                   spiked=spiked)


class FileStoreFaultInjector:
    """Torn/corrupt snapshot pages: the device read succeeds but the
    payload fails integrity checking at the file-store layer."""

    def __init__(self, rng: random.Random, config: FaultConfig,
                 stats: FaultStats):
        self.rng = rng
        self.config = config
        self.stats = stats
        self._forced_tears = 0

    def tear_next(self, n: int = 1) -> None:
        """Force the next ``n`` reads to surface torn pages (tests)."""
        self._forced_tears += n

    def on_read(self, file, start_page: int, npages: int):
        """Return a ``TornPageError`` to inject, or ``None``."""
        torn = False
        if self._forced_tears > 0:
            self._forced_tears -= 1
            torn = True
        elif (self.config.torn_page_rate
                and self.rng.random() < self.config.torn_page_rate):
            torn = True
        if not torn:
            return None
        from repro.storage.filestore import TornPageError

        page = start_page + (self.rng.randrange(npages) if npages > 1 else 0)
        self.stats.torn_pages += 1
        return TornPageError(file.name, page)


class MemFaultInjector:
    """Reclaim stalls: kswapd wakes but loses the CPU before scanning.

    The injector keeps its own ``reclaim_stalls`` counter rather than a
    :class:`FaultStats` field so chaos fingerprints of configs that never
    enable the pressure plane stay byte-identical to earlier releases.
    """

    def __init__(self, rng: random.Random, config: FaultConfig,
                 stats: FaultStats):
        self.rng = rng
        self.config = config
        self.stats = stats
        self._forced_stalls = 0
        #: Stalls injected so far (surfaced via chaos approach counters).
        self.reclaim_stalls = 0

    def stall_next(self, n: int = 1) -> None:
        """Force the next ``n`` kswapd wakeups to stall (tests)."""
        self._forced_stalls += n

    def on_wakeup(self) -> float:
        """Seconds kswapd must stall before this wakeup's scan (0 = none).

        One RNG draw per wakeup whenever a rate is configured, so the
        stream stays aligned across runs regardless of outcomes."""
        stall = False
        if self._forced_stalls > 0:
            self._forced_stalls -= 1
            stall = True
        elif (self.config.reclaim_stall_rate
                and self.rng.random() < self.config.reclaim_stall_rate):
            stall = True
        if not stall:
            return 0.0
        self.reclaim_stalls += 1
        return self.config.reclaim_stall_seconds


class NodeFaultInjector:
    """Whole-node crashes for the cluster plane.

    Like :class:`MemFaultInjector`, the crash count lives here as a
    plain attribute rather than a :class:`FaultStats` field, so chaos
    fingerprints of single-node configs (which embed the FaultStats key
    set) stay byte-identical when the crash kind is inactive.
    """

    def __init__(self, rng: random.Random, config: FaultConfig,
                 stats: FaultStats):
        self.rng = rng
        self.config = config
        self.stats = stats
        self._forced_crashes = 0
        #: Crashes injected so far (surfaced via cluster_* metrics).
        self.node_crashes = 0

    def crash_next(self, n: int = 1) -> None:
        """Force the next ``n`` crash draws to fire (tests)."""
        self._forced_crashes += n

    def draw_crash(self) -> bool:
        """One crash opportunity (per node per crash-check tick).

        One RNG draw per opportunity whenever a rate is configured, so
        the stream stays aligned across runs regardless of outcomes."""
        crash = False
        if self._forced_crashes > 0:
            self._forced_crashes -= 1
            crash = True
        elif (self.config.node_crash_rate
                and self.rng.random() < self.config.node_crash_rate):
            crash = True
        if crash:
            self.node_crashes += 1
        return crash


@dataclass(frozen=True)
class RemoteFetchDecision:
    """What one remote-object-store fetch should suffer."""

    #: Inject an EIO after the transfer (object-store 5xx); transient,
    #: so the snapstore's retry ladder re-fetches.
    error: bool = False
    #: Seconds the fetch stalls before being served (0 = none).
    stall_seconds: float = 0.0


class RemoteFetchInjector:
    """Remote-fetch EIOs and latency stalls for the snapstore.

    Like :class:`MemFaultInjector`, the counters live here as plain
    attributes rather than :class:`FaultStats` fields, so chaos
    fingerprints of configs without a snapstore (which embed the
    FaultStats key set) stay byte-identical to earlier releases.
    """

    def __init__(self, rng: random.Random, config: FaultConfig,
                 stats: FaultStats):
        self.rng = rng
        self.config = config
        self.stats = stats
        self._forced_errors = 0
        self._forced_stalls = 0
        #: Faults injected so far (surfaced via snapstore counters).
        self.remote_fetch_errors = 0
        self.remote_fetch_stalls = 0

    def fail_next(self, n: int = 1) -> None:
        """Force the next ``n`` fetches to return an EIO (tests)."""
        self._forced_errors += n

    def stall_next(self, n: int = 1) -> None:
        """Force the next ``n`` fetches to stall (tests)."""
        self._forced_stalls += n

    def on_fetch(self) -> RemoteFetchDecision:
        """Decide one fetch's fate.  One RNG draw per configured rate
        per fetch, so the stream stays aligned across runs regardless
        of outcomes."""
        cfg = self.config
        error = False
        if self._forced_errors > 0:
            self._forced_errors -= 1
            error = True
        elif (cfg.remote_fetch_error_rate
                and self.rng.random() < cfg.remote_fetch_error_rate):
            error = True
        stall_seconds = 0.0
        stall = False
        if self._forced_stalls > 0:
            self._forced_stalls -= 1
            stall = True
        elif (cfg.remote_fetch_stall_rate
                and self.rng.random() < cfg.remote_fetch_stall_rate):
            stall = True
        if stall:
            stall_seconds = cfg.remote_fetch_stall_seconds
            self.remote_fetch_stalls += 1
        if error:
            self.remote_fetch_errors += 1
        return RemoteFetchDecision(error=error, stall_seconds=stall_seconds)


class EbpfFaultInjector:
    """BPF runtime failures: attach rejections and map-capacity caps."""

    def __init__(self, rng: random.Random, config: FaultConfig,
                 stats: FaultStats):
        self.rng = rng
        self.config = config
        self.stats = stats
        self._forced_attach_failures = 0

    def fail_next_attach(self, n: int = 1) -> None:
        """Force the next ``n`` attach attempts to fail (tests)."""
        self._forced_attach_failures += n

    def on_attach(self, hook_name: str, program) -> None:
        """Raise ``AttachError`` if this attach should fail."""
        fail = False
        if self._forced_attach_failures > 0:
            self._forced_attach_failures -= 1
            fail = True
        elif (self.config.attach_failure_rate
                and self.rng.random() < self.config.attach_failure_rate):
            fail = True
        if fail:
            from repro.ebpf.kprobe import AttachError

            self.stats.attach_failures += 1
            raise AttachError(
                f"injected attach failure on {hook_name!r} "
                f"for {getattr(program, 'name', program)!r}")

    def map_capacity(self, requested: int) -> int:
        """Clamp a requested map capacity to the configured cap."""
        cap = self.config.map_capacity_cap
        if cap is not None and requested > cap:
            self.stats.map_squeezes += 1
            return cap
        return requested
