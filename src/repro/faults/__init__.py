"""The fault plane: deterministic fault injection for every layer.

A serverless platform restoring thousands of snapshots lives on its
error paths — media errors, tail-latency device degradation, torn
snapshot pages, BPF attach failures, map exhaustion.  This package
provides one seeded :class:`FaultSchedule` whose per-layer injectors
plug into the storage device, the file store, and the eBPF runtime, so
that a whole chaos run is reproducible from a single RNG seed:

* :class:`DeviceFaultInjector` — transient vs. persistent media errors
  and latency-spike / degraded-mode service-time multipliers on
  :class:`~repro.storage.device.BlockDevice`;
* :class:`FileStoreFaultInjector` — torn/corrupt snapshot pages
  surfacing as :class:`~repro.storage.filestore.TornPageError`;
* :class:`EbpfFaultInjector` — program attach/verify failures and map
  capacity exhaustion;
* :class:`MemFaultInjector` — reclaim stalls delaying kswapd wakeups
  on the :mod:`repro.mm.reclaim` memory-pressure plane;
* :class:`NodeFaultInjector` — whole-node crashes consumed by the
  cluster plane (:mod:`repro.cluster`), which fails the node's
  in-flight requests and re-routes their retries to survivors;
* :class:`RemoteFetchInjector` — remote-object-store fetch EIOs and
  latency stalls consumed by the snapstore (:mod:`repro.snapstore`),
  which retries with backoff and degrades to a surviving tier;
* :class:`SweepFaultInjector` — faults for the *harness itself*:
  SIGKILLed sweep workers, cells hanging past their deadline, and torn
  result-store writes, consumed by the supervising executor in
  :mod:`repro.harness.sweep`.

The degradation machinery that *consumes* faults lives with each layer
(page-cache retry/backoff, SnapBPF's demand-paging fallback, node-level
deadlines and cold-start retries); :class:`RetryPolicy` here is the
shared knob for bounded exponential backoff.
"""

from repro.faults.retry import RetryPolicy
from repro.faults.schedule import (
    FaultConfig,
    FaultSchedule,
    FaultStats,
)
from repro.faults.injectors import (
    PERSISTENT,
    TRANSIENT,
    DeviceFaultDecision,
    DeviceFaultInjector,
    EbpfFaultInjector,
    FileStoreFaultInjector,
    MemFaultInjector,
    NodeFaultInjector,
    RemoteFetchDecision,
    RemoteFetchInjector,
)
from repro.faults.sweep import (
    SweepFaultInjector,
    WorkerCrashError,
    WorkerFault,
    apply_worker_fault,
)

__all__ = [
    "DeviceFaultDecision",
    "DeviceFaultInjector",
    "EbpfFaultInjector",
    "FaultConfig",
    "FaultSchedule",
    "FaultStats",
    "FileStoreFaultInjector",
    "MemFaultInjector",
    "NodeFaultInjector",
    "PERSISTENT",
    "RemoteFetchDecision",
    "RemoteFetchInjector",
    "RetryPolicy",
    "SweepFaultInjector",
    "TRANSIENT",
    "WorkerCrashError",
    "WorkerFault",
    "apply_worker_fault",
]
