"""The aggregate simulated host kernel.

One :class:`Kernel` is one machine: a DES environment, a block device
with a file store on it, a physical frame pool, the page cache wired to
the eBPF kprobe runtime, and factories for address spaces and
userfaultfds.  Approaches (SnapBPF and the baselines) and the VMM layer
are all built against this object.
"""

from __future__ import annotations

from repro.ebpf.interp import Interpreter
from repro.ebpf.kfunc import KfuncRegistry
from repro.ebpf.kprobe import KprobeManager
from repro.faults.retry import RetryPolicy
from repro.metrics.registry import MetricsRegistry
from repro.mm.address_space import AddressSpace
from repro.mm.costs import CostModel
from repro.mm.frames import FrameAllocator
from repro.mm.page_cache import PageCache
from repro.mm.reclaim import register_evict_hint
from repro.mm.userfaultfd import Uffd
from repro.sim import Environment
from repro.storage.device import BlockDevice
from repro.storage.filestore import FileStore
from repro.storage.ssd import SSDevice
from repro.trace import Tracer
from repro.units import GIB, PAGE_SIZE


class Kernel:
    """A simulated Linux host (paper testbed: 2-socket EPYC, 256 GiB)."""

    def __init__(self, env: Environment | None = None,
                 device: BlockDevice | None = None,
                 ram_bytes: int = 256 * GIB,
                 costs: CostModel | None = None,
                 retry_policy: RetryPolicy | None = RetryPolicy(),
                 tracer: Tracer | None = None):
        self.env = env or Environment()
        #: Trace plane: one tracer per machine, shared by every subsystem
        #: through the duck-typed ``env.tracer`` / ``interpreter.tracer``
        #: hooks.  Disabled until ``kernel.tracer.enable()``.
        self.tracer = tracer or Tracer()
        self.env.tracer = self.tracer
        self.costs = costs or CostModel()
        self.device = device or SSDevice(self.env)
        #: Metrics plane: one registry per machine.  The device constructs
        #: its registry first (standalone devices need one too), so the
        #: kernel adopts it and hands the same instance to every other
        #: layer — the single source of truth the harness snapshots.
        self.metrics: MetricsRegistry = self.device.registry
        self.filestore = FileStore(self.env, self.device)
        self.frames = FrameAllocator(total_frames=ram_bytes // PAGE_SIZE)
        self.kfuncs = KfuncRegistry()
        self.interpreter = Interpreter(
            kfuncs=self.kfuncs,
            time_ns=lambda: int(self.env.now * 1e9))
        self.interpreter.tracer = self.tracer
        self.kprobes = KprobeManager(kfuncs=self.kfuncs,
                                     interpreter=self.interpreter)
        self.page_cache = PageCache(self.env, self.frames, self.filestore,
                                    self.kprobes,
                                    insert_cost=self.costs.cache_insert,
                                    retry_policy=retry_policy,
                                    registry=self.metrics,
                                    reclaim_page_cost=self.costs.reclaim_page)
        #: The memory-pressure plane (same object the page cache owns).
        #: Watermarks/kswapd stay off until ``reclaim.enable_watermarks()``.
        self.reclaim = self.page_cache.reclaim
        # The bpf_cached_pages() helper reads residency through this hook.
        self.interpreter.page_stats = self.page_cache
        register_evict_hint(self)
        #: The installed FaultSchedule, if any (see FaultSchedule.install).
        self.faults = None
        #: The installed SnapStore, if any (see install_snapstore).
        self.snapstore = None
        # Ring-buffer drop accounting for the span tracer, published
        # only once a span has actually been dropped so fault-free
        # snapshots keep their exact historical keys (identity contract).
        self.metrics.register_collector(self._trace_drop_counters)

    def _trace_drop_counters(self) -> dict[str, float]:
        dropped = self.tracer.dropped
        if not dropped:
            return {}
        return {"trace_spans_dropped_total": float(dropped)}

    # -- factories ---------------------------------------------------------------
    def spawn_space(self, owner: str | None = None) -> AddressSpace:
        return AddressSpace(self, owner=owner)

    def new_uffd(self) -> Uffd:
        return Uffd(self.env)

    # -- administration -------------------------------------------------------------
    def drop_caches(self) -> int:
        """Drop clean page cache between experiment rounds (cold starts)."""
        return self.page_cache.drop_caches()

    def memory_in_use_bytes(self) -> int:
        return self.frames.in_use * PAGE_SIZE

    def run(self, until=None):
        """Convenience passthrough to the DES engine."""
        return self.env.run(until)
