"""On-demand readahead state machine (per mapping/file descriptor).

Models the Linux mmap-fault readahead behaviour the paper's Linux-RA
baseline uses, including:

* the default 128 KiB (32-page) window (paper §4 Methodology),
* an async-marker ("PG_readahead") a quarter-window before the end of the
  current window: touching the marked page triggers the next window
  asynchronously, pipelining sequential streams,
* the ``mmap_miss`` heuristic: after many cache-missing random faults the
  kernel stops issuing speculative windows and falls back to single-page
  reads — which is why plain readahead neither keeps up with, nor
  entirely drowns, the scattered working sets the paper targets.

Setting ``ra_pages = 0`` disables readahead (the Linux-NoRA baseline and
all capture phases, §3.1 "we disable readahead in order to only fetch and
capture the working set pages").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.units import DEFAULT_READAHEAD_PAGES

#: Linux's MMAP_LOTSAMISS: after this many consecutive cache-missing
#: faults, sync mmap readahead is suppressed.
MMAP_LOTSAMISS = 100


@dataclass(slots=True)
class ReadaheadPlan:
    """What the fault path should read for one miss."""

    start: int
    count: int
    #: Page index to flag as the async-readahead marker, or None.
    marker: int | None


class ReadaheadState:
    """Per-mapping readahead bookkeeping."""

    __slots__ = ("ra_pages", "mmap_miss", "prev_index",
                 "windows_issued", "pages_requested")

    def __init__(self, ra_pages: int = DEFAULT_READAHEAD_PAGES):
        if ra_pages < 0:
            raise ValueError("ra_pages must be >= 0")
        self.ra_pages = ra_pages
        self.mmap_miss = 0
        self.prev_index = -2
        #: Stats for the I/O-amplification analyses.
        self.windows_issued = 0
        self.pages_requested = 0

    # -- fault-path hooks -----------------------------------------------------
    def on_cache_miss(self, index: int, file_pages: int) -> ReadaheadPlan:
        """Plan the synchronous read for a faulting, non-resident page."""
        sequential = index == self.prev_index + 1
        self.prev_index = index
        if self.ra_pages == 0:
            return self._plan(index, 1, file_pages, marker=False)
        if not sequential:
            self.mmap_miss = min(self.mmap_miss + 1, MMAP_LOTSAMISS + 1)
            if self.mmap_miss > MMAP_LOTSAMISS:
                # Random access: stop speculating, read just the page.
                return self._plan(index, 1, file_pages, marker=False)
        return self._plan(index, self.ra_pages, file_pages, marker=True)

    def on_cache_hit(self, index: int) -> None:
        """A minor fault found the page resident: decay the miss counter."""
        self.prev_index = index
        if self.mmap_miss > 0:
            self.mmap_miss -= 1

    def on_marker_hit(self, index: int, file_pages: int) -> ReadaheadPlan:
        """Async readahead: the PG_readahead-marked page was touched."""
        return self._plan(index + 1, self.ra_pages, file_pages, marker=True)

    # -- internals --------------------------------------------------------------
    def _plan(self, start: int, count: int, file_pages: int,
              marker: bool) -> ReadaheadPlan:
        start = max(0, start)
        count = max(0, min(count, file_pages - start))
        marker_index = None
        if marker and count >= 4:
            marker_index = start + count - max(1, count // 4)
        if count:
            self.windows_issued += 1
            self.pages_requested += count
        return ReadaheadPlan(start=start, count=count, marker=marker_index)
