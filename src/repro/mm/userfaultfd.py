"""userfaultfd: userspace page-fault delegation.

The REAP/Faast baselines register the sandbox's guest-memory VMA with a
uffd; missing-page faults are queued as messages to a userspace handler
thread, which resolves them with ``UFFDIO_COPY`` — installing a freshly
allocated **anonymous** page whose contents it copied from the snapshot.

The paper's Table 1 limitation falls straight out of this design: the
installed pages are anonymous and private to the faulting address space,
so concurrent sandboxes of the same function can never share them
(no in-memory working-set deduplication).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim import Environment, Event, Store


@dataclass
class UffdMsg:
    """One fault notification delivered to the userspace handler."""

    vpn: int
    write: bool
    #: Fires when the handler resolves the fault (UFFDIO_COPY wakeup).
    wake: Event = None  # type: ignore[assignment]


class Uffd:
    """One userfaultfd instance (per-VMM in the baselines)."""

    def __init__(self, env: Environment):
        self.env = env
        self._queue: Store = Store(env)
        #: In-flight faults: vpn -> wake event (dedups concurrent faulters).
        self._pending: dict[int, Event] = {}
        #: Trace plane: notify time per in-flight vpn, so resolve/fail
        #: can emit the notify-to-wakeup round-trip span.
        self._notified_at: dict[int, float] = {}
        self.faults_delivered = 0

    # -- kernel side ------------------------------------------------------------
    def notify(self, vpn: int, write: bool) -> Event:
        """Queue a fault for ``vpn`` (or join an in-flight one); returns
        the event the faulting thread must wait on."""
        wake = self._pending.get(vpn)
        if wake is not None:
            return wake
        wake = self.env.event()
        self._pending[vpn] = wake
        self._notified_at[vpn] = self.env.now
        self._queue.put(UffdMsg(vpn=vpn, write=write, wake=wake))
        self.faults_delivered += 1
        return wake

    @property
    def pending_vpns(self) -> list[int]:
        return sorted(self._pending)

    # -- userspace side -----------------------------------------------------------
    def read(self) -> Event:
        """Next fault message (blocking read on the uffd fd)."""
        return self._queue.get()

    def resolve(self, vpn: int) -> None:
        """Wake everyone waiting on ``vpn`` (the UFFDIO_COPY wakeup step).

        The caller must have installed the page mapping first.  Unknown
        vpns are fine — handlers may preemptively install pages that no
        one has faulted on yet.
        """
        wake = self._pending.pop(vpn, None)
        if wake is not None:
            self._trace_roundtrip(vpn, ok=True)
            wake.succeed()

    def fail(self, vpn: int, error: BaseException) -> None:
        """Fail everyone waiting on ``vpn``: the handler could not fetch
        the page, so the faulting thread sees EIO (SIGBUS-style), just
        like a failed page-cache read on the mmap paths."""
        wake = self._pending.pop(vpn, None)
        if wake is not None:
            self._trace_roundtrip(vpn, ok=False)
            wake._defused = True
            wake.fail(error)

    def _trace_roundtrip(self, vpn: int, ok: bool) -> None:
        notified = self._notified_at.pop(vpn, None)
        tracer = self.env.tracer
        if (tracer is not None and tracer.enabled
                and notified is not None):
            tracer.complete(f"uffd vpn={vpn:#x}", "uffd", notified,
                            end=self.env.now, track="uffd", vpn=vpn, ok=ok)

    def is_pending(self, vpn: int) -> bool:
        return vpn in self._pending
