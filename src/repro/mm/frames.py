"""Physical memory frames and their accounting.

Figure 3c of the paper is a statement about frames: userfaultfd installs
*anonymous* frames that every sandbox owns privately, while page-cache
mappings share one *file* frame across all sandboxes of a function.  The
allocator therefore tracks the two kinds separately, attributes anonymous
frames to owners (VM ids), and keeps a high-water mark that the memory
experiments report.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.units import PAGE_SIZE

ANON = "anon"
FILE = "file"


class OutOfMemory(MemoryError):
    """Frame pool exhausted and reclaim could not free enough."""


@dataclass(slots=True)
class Frame:
    """One physical 4 KiB frame."""

    pfn: int
    kind: str
    content: int = 0
    #: Identity of the cached file page, for FILE frames.
    ino: int | None = None
    index: int | None = None
    #: Number of PTEs (host or nested) referencing this frame.
    mapcount: int = 0
    #: Owner tag for ANON frames (VM / process id) — memory attribution.
    owner: str | None = None


@dataclass(slots=True)
class MemoryCounters:
    """Point-in-time usage, in frames."""

    anon: int = 0
    file: int = 0

    @property
    def total(self) -> int:
        return self.anon + self.file

    @property
    def total_bytes(self) -> int:
        return self.total * PAGE_SIZE


class FrameAllocator:
    """Fixed-size pool of frames with kind/owner accounting.

    ``peak`` tracks the maximum total frames in use since the last
    :meth:`reset_peak`; the concurrent-invocation experiments reset it
    before spawning sandboxes and read it afterwards.
    """

    def __init__(self, total_frames: int):
        if total_frames <= 0:
            raise ValueError("frame pool must be positive")
        self.total_frames = total_frames
        self.counters = MemoryCounters()
        self.peak_frames = 0
        self._next_pfn = itertools.count()
        self._per_owner: dict[str, int] = {}
        #: Memory-pressure plane (a :class:`repro.mm.reclaim.\
        #: ReclaimController`); when set, every allocation goes through
        #: watermark throttling and may wake kswapd.  ``None`` keeps the
        #: bare fail-on-exhaustion allocator for standalone use.
        self.reclaimer = None

    # -- allocation -----------------------------------------------------------
    @property
    def in_use(self) -> int:
        return self.counters.total

    @property
    def free_frames(self) -> int:
        return self.total_frames - self.in_use

    def alloc(self, kind: str, content: int = 0, ino: int | None = None,
              index: int | None = None, owner: str | None = None) -> Frame:
        if kind not in (ANON, FILE):
            raise ValueError(f"unknown frame kind {kind!r}")
        if self.reclaimer is not None:
            self.reclaimer.throttle_alloc()
        if self.free_frames <= 0:
            raise OutOfMemory(
                f"no free frames ({self.total_frames} total in use)")
        frame = Frame(pfn=next(self._next_pfn), kind=kind, content=content,
                      ino=ino, index=index, owner=owner)
        if kind == ANON:
            self.counters.anon += 1
            if owner is not None:
                self._per_owner[owner] = self._per_owner.get(owner, 0) + 1
        else:
            self.counters.file += 1
        self.peak_frames = max(self.peak_frames, self.in_use)
        if self.reclaimer is not None:
            self.reclaimer.note_allocation()
        return frame

    def free(self, frame: Frame) -> None:
        if frame.mapcount != 0:
            raise ValueError(
                f"freeing frame pfn={frame.pfn} with mapcount "
                f"{frame.mapcount}")
        if frame.kind == ANON:
            self.counters.anon -= 1
            if frame.owner is not None:
                remaining = self._per_owner.get(frame.owner, 0) - 1
                if remaining > 0:
                    self._per_owner[frame.owner] = remaining
                else:
                    self._per_owner.pop(frame.owner, None)
        else:
            self.counters.file -= 1
        if self.counters.anon < 0 or self.counters.file < 0:
            raise ValueError("double free detected")

    # -- reporting ------------------------------------------------------------
    def owner_frames(self, owner: str) -> int:
        """Anonymous frames currently attributed to ``owner``."""
        return self._per_owner.get(owner, 0)

    def reset_peak(self) -> None:
        self.peak_frames = self.in_use

    @property
    def peak_bytes(self) -> int:
        return self.peak_frames * PAGE_SIZE

    def usage(self) -> MemoryCounters:
        return MemoryCounters(anon=self.counters.anon,
                              file=self.counters.file)
