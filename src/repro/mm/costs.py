"""CPU-side cost model for kernel and userspace operations.

All values are seconds and represent *CPU time consumed*; block-device
time lives in the device models.  Values are commodity-server ballpark
figures (AMD EPYC 7402 at 2.5 GHz, the paper's testbed): a page fault
costs on the order of a microsecond, a 4 KiB memcpy a few hundred
nanoseconds, a syscall just under a microsecond.

The model is a dataclass so ablations can build variants (e.g. "what if
uffd round trips were free") without touching the mechanisms.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.units import USEC


@dataclass(frozen=True)
class CostModel:
    """Per-operation CPU costs, in seconds."""

    #: Hardware fault + kernel entry/exit for a host page fault.
    fault_base: float = 1.0 * USEC
    #: Installing/updating one PTE (incl. TLB shootdown amortization).
    pte_install: float = 0.15 * USEC
    #: Copying one 4 KiB page (~12 GiB/s effective memcpy).
    memcpy_page: float = 0.33 * USEC
    #: Zero-filling one 4 KiB page.
    zero_page: float = 0.25 * USEC
    #: Generic syscall entry/exit.
    syscall: float = 0.8 * USEC
    #: Extra round-trip latency of delegating a fault to userspace via
    #: userfaultfd (wakeup + context switches), on top of handler work.
    uffd_roundtrip: float = 4.0 * USEC
    #: UFFDIO_COPY ioctl overhead per call (excl. the page memcpy).
    uffd_copy_ioctl: float = 1.2 * USEC
    #: mmap() of one region.
    mmap_region: float = 1.5 * USEC
    #: One nested (EPT) page fault: VM exit + KVM handling + resume.
    ept_fault: float = 1.3 * USEC
    #: bpf() syscall updating one map element from userspace.
    bpf_map_update: float = 0.6 * USEC
    #: bpf() syscall reading one map element from userspace.
    bpf_map_lookup: float = 0.5 * USEC
    #: Consuming one record from a BPF ring buffer.  The consumer reads
    #: the mmap'd producer pages directly — no syscall per record — so
    #: this is an order of magnitude cheaper than a map lookup.
    bpf_ringbuf_consume: float = 0.05 * USEC
    #: Loading + verifying + attaching a BPF program.
    bpf_prog_attach: float = 250.0 * USEC
    #: mincore() per page inspected.
    mincore_per_page: float = 0.02 * USEC
    #: Page-cache hit lookup served without IO (radix walk etc.).
    cache_lookup: float = 0.08 * USEC
    #: Inserting one page into the page cache (frame alloc + radix
    #: insert + LRU link) — the CPU side of add_to_page_cache_lru().
    cache_insert: float = 0.15 * USEC
    #: Reclaiming one page (LRU scan amortization + radix delete +
    #: frame free) — charged per page kswapd frees.
    reclaim_page: float = 0.4 * USEC

    def scaled(self, factor: float) -> "CostModel":
        """Uniformly scaled copy (sensitivity analyses)."""
        return replace(self, **{
            name: getattr(self, name) * factor
            for name in self.__dataclass_fields__
        })
