"""The OS page cache.

Two functions here are the paper's whole attack surface:

* :meth:`PageCache.add_to_page_cache_lru` — every page entering the cache
  passes through it, and it fires the kprobe hook of the same name with
  ``(ino, page index)`` as the BPF context.  SnapBPF's capture program
  records working sets from exactly this vantage point.
* :meth:`PageCache.page_cache_ra_unbounded` — the batch read routine that
  readahead uses; SnapBPF's ``snapbpf_prefetch`` kfunc wraps it so a BPF
  program can prefetch snapshot ranges *into the page cache*, where they
  are shared by every sandbox of the function (in-memory deduplication).

Pages under I/O are "locked": they are present in the cache with
``uptodate == False`` and an event that concurrent faulters wait on — the
mechanism by which ten concurrent sandboxes end up doing one disk read.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.ebpf.kprobe import KprobeManager
from repro.faults.retry import RetryPolicy
from repro.metrics.registry import MetricsRegistry
from repro.mm.frames import FILE, FrameAllocator, OutOfMemory
from repro.mm.pageset import PageSet
from repro.mm.reclaim import ReclaimController
from repro.sim import Environment, Event
from repro.storage.device import PRIO_READAHEAD
from repro.storage.filestore import File, FileStore

HOOK_ADD_TO_PAGE_CACHE = "add_to_page_cache_lru"
HOOK_CTX_SIZE = 16  # (u64 ino, u64 index)


@dataclass(slots=True)
class CacheEntry:
    """One cached file page."""

    ino: int
    index: int
    frame: object
    uptodate: bool = False
    #: Fires when the filling I/O completes; None once uptodate.
    io_event: Event | None = None
    #: PG_readahead: touching this page triggers the next async window.
    ra_marker: bool = False
    #: PG_referenced: second-chance bit — a touch on the inactive list
    #: sets it; the reclaim scan clears it and rotates instead of
    #: evicting; a touch while set promotes to the active list.
    referenced: bool = False
    #: Which LRU list the page sits on (maintained by the reclaim plane).
    active: bool = False

    @property
    def locked(self) -> bool:
        return not self.uptodate


class CacheStats:
    """Page-cache counters, registry-backed (read-compatible facade).

    The attribute names the old dataclass exposed are preserved as
    properties; values live in the machine's
    :class:`~repro.metrics.registry.MetricsRegistry` under ``cache_*``.
    """

    def __init__(self, registry: MetricsRegistry | None = None):
        self.registry = registry or MetricsRegistry()
        c = self.registry.counter
        self._adds = c("cache_adds_total")
        self._hits = c("cache_hits_total")
        self._misses = c("cache_misses_total")
        self._evictions = c("cache_evictions_total")
        self._bpf_hook_seconds = c("cache_bpf_hook_seconds_total")
        #: Transient I/O errors healed by re-issuing the read (fault plane).
        self._io_retries = c("cache_io_retries_total")
        #: Reads that exhausted the retry budget (or were not retryable):
        #: pages dropped, waiters saw EIO.
        self._io_failures = c("cache_io_failures_total")
        #: Speculative (readahead/prefetch) fills aborted because the
        #: frame pool was exhausted — graceful degradation, not an error.
        self._ra_oom_aborts = c("cache_ra_oom_aborts_total")

    @property
    def adds(self) -> int:
        return self._adds.value

    @property
    def hits(self) -> int:
        return self._hits.value

    @property
    def misses(self) -> int:
        return self._misses.value

    @property
    def evictions(self) -> int:
        return self._evictions.value

    @property
    def bpf_hook_seconds(self) -> float:
        return self._bpf_hook_seconds.value

    @property
    def io_retries(self) -> int:
        return self._io_retries.value

    @property
    def io_failures(self) -> int:
        return self._io_failures.value

    @property
    def ra_oom_aborts(self) -> int:
        return self._ra_oom_aborts.value

    def reset(self) -> None:
        for metric in (self._adds, self._hits, self._misses,
                       self._evictions, self._bpf_hook_seconds,
                       self._io_retries, self._io_failures,
                       self._ra_oom_aborts):
            metric.reset()


class PageCache:
    """Radix-tree-like map of (ino, index) -> CacheEntry with LRU reclaim."""

    def __init__(self, env: Environment, frames: FrameAllocator,
                 filestore: FileStore, kprobes: KprobeManager,
                 insert_cost: float = 0.15e-6,
                 retry_policy: RetryPolicy | None = None,
                 registry: MetricsRegistry | None = None,
                 reclaim_page_cost: float = 0.0):
        self.env = env
        self.frames = frames
        self.filestore = filestore
        self.kprobes = kprobes
        self.insert_cost = insert_cost
        #: Bounded backoff-retry for transient read errors; ``None``
        #: fails waiters on the first error (the pre-fault-plane rule).
        self.retry_policy = retry_policy
        self.stats = CacheStats(registry)
        self._entries: dict[tuple[int, int], CacheEntry] = {}
        #: Per-ino presence arrays mirroring ``_entries`` keys: byte-per-
        #: page membership with the O(1) per-ino counts cached_pages()
        #: promises (see repro.mm.pageset).
        self._present = PageSet()
        #: Subset of ``_present`` whose I/O has completed — resident()
        #: (mincore's view) is a byte test, bulk-queried by mincore().
        self._uptodate = PageSet()
        if HOOK_ADD_TO_PAGE_CACHE not in getattr(kprobes, "_hooks", {}):
            kprobes.declare_hook(HOOK_ADD_TO_PAGE_CACHE, HOOK_CTX_SIZE)
        #: The memory-pressure plane: split LRU lists, watermarks/kswapd
        #: (off until enabled), and the eviction-policy attach point.
        self.reclaim = ReclaimController(env, frames, self, kprobes,
                                         registry=registry,
                                         reclaim_page_cost=reclaim_page_cost)
        frames.reclaimer = self.reclaim

    # -- lookup ---------------------------------------------------------------
    def lookup(self, ino: int, index: int) -> CacheEntry | None:
        entry = self._entries.get((ino, index))
        if entry is not None:
            self.reclaim.page_touched((ino, index))
        return entry

    def resident(self, ino: int, index: int) -> bool:
        """mincore()'s view: present and uptodate."""
        return self._uptodate.test(ino, index)

    def residency_bytes(self, ino: int, start: int, count: int) -> bytearray:
        """Bulk resident() over [start, start + count), one byte per page
        (the page-cache side of mincore(2))."""
        return self._uptodate.residency_bytes(ino, start, count)

    def cached_pages(self, ino: int | None = None) -> int:
        if ino is None:
            return len(self._entries)
        return self._present.count(ino)

    # -- insertion (the kprobe hook point) -------------------------------------
    def add_to_page_cache_lru(self, file: File, index: int) -> tuple[CacheEntry, float]:
        """Insert a locked page for (file, index); fires the kprobe.

        Returns the new entry and the CPU seconds consumed (BPF programs
        attached to the hook run synchronously on this path).
        """
        key = (file.ino, index)
        if self._present.test(file.ino, index):
            raise ValueError(f"page {key} already in cache")
        # The allocator consults the reclaim plane itself (watermark
        # throttling, direct reclaim); OutOfMemory here means reclaim
        # already tried and failed.  The presence bit is set only after
        # the allocation: eviction-policy programs running inside that
        # reclaim must not see the page counted yet.
        frame = self.frames.alloc(FILE, ino=file.ino, index=index)
        entry = CacheEntry(ino=file.ino, index=index, frame=frame,
                           io_event=self.env.event())
        self._entries[key] = entry
        self._present.add(file.ino, index)
        self.reclaim.page_added(key, entry)
        self.stats._adds.inc()
        cost = self.kprobes.fire(HOOK_ADD_TO_PAGE_CACHE,
                                 struct.pack("<QQ", file.ino, index))
        self.stats._bpf_hook_seconds.inc(cost)
        return entry, cost + self.insert_cost

    # -- population -------------------------------------------------------------
    def populate(self, file: File, start: int, count: int,
                 marker: int | None = None, prio: int = 0,
                 speculative: bool = False,
                 required: int | None = None) -> tuple[float, list[CacheEntry]]:
        """Insert all absent pages of [start, start+count) and start their I/O.

        Non-blocking: device reads are issued per contiguous absent run
        and completion callbacks mark the entries uptodate.  Returns the
        CPU cost (allocations + hook executions) and the new entries.
        Waiters use each entry's ``io_event``.

        ``speculative`` marks readahead-class fills: if the frame pool is
        exhausted mid-fill, the remaining speculative pages are skipped
        (the fill degrades instead of killing the caller) — except
        ``required``, the demand page the caller is actually faulting on,
        which is still attempted and whose failure still raises
        :class:`OutOfMemory`.  Reads already built are issued either way.
        """
        if count <= 0:
            return 0.0, []
        if start < 0 or start + count > file.size_pages:
            raise IndexError(
                f"populate [{start}, {start + count}) outside {file.name!r}")
        cost = 0.0
        new_entries: list[CacheEntry] = []
        run: list[CacheEntry] = []
        run_start = None
        oom = False
        # One presence array probe per page instead of a tuple hash; the
        # bytearray mutates in place under adds and reclaim evictions, so
        # holding it across the loop is safe.
        pmap = self._present.ensure(file.ino, file.size_pages)
        for index in range(start, start + count):
            present = pmap[index] != 0
            if not present and oom and index != required:
                continue
            if not present:
                try:
                    entry, add_cost = self.add_to_page_cache_lru(file, index)
                except OutOfMemory:
                    if run:
                        self._issue(file, run_start, run, prio)
                        run, run_start = [], None
                    if not speculative or index == required:
                        raise
                    if not oom:
                        oom = True
                        self.stats._ra_oom_aborts.inc()
                    continue
                cost += add_cost
                new_entries.append(entry)
                if marker is not None and index == marker:
                    entry.ra_marker = True
                if run_start is None:
                    run_start = index
                run.append(entry)
            elif run:
                self._issue(file, run_start, run, prio)
                run, run_start = [], None
        if run:
            self._issue(file, run_start, run, prio)
        return cost, new_entries

    def _issue(self, file: File, run_start: int, entries: list[CacheEntry],
               prio: int = 0, attempt: int = 1) -> None:
        issued = self.env.now
        completion = self.filestore.read_pages(file, run_start, len(entries),
                                               prio=prio)
        # A failed read is handled here (pages dropped, waiters told), so
        # the engine must not treat it as an unobserved error.
        completion._defused = True
        completion.callbacks.append(
            lambda ev, file=file, entries=tuple(entries): self._io_done(
                file, run_start, entries, ev, prio, attempt, issued))

    def _io_done(self, file: File, run_start: int,
                 entries: tuple[CacheEntry, ...], completion: Event,
                 prio: int, attempt: int, issued: float = 0.0) -> None:
        self._trace_fill(file, run_start, len(entries), prio, attempt,
                         issued, ok=completion.ok)
        if not completion.ok:
            error = completion.value
            policy = self.retry_policy
            if policy is not None and policy.should_retry(
                    attempt, getattr(error, "transient", False)):
                self.stats._io_retries.inc()
                self.env.process(
                    self._retry(file, run_start, entries, prio, attempt),
                    name=f"pgcache-retry-{file.ino}-{run_start}-{attempt}")
                return
            self._io_failed(entries, error)
            return
        uptodate = self._uptodate
        for entry in entries:
            entry.frame.content = file.content(entry.index)
            entry.uptodate = True
            uptodate.add(entry.ino, entry.index)
            event = entry.io_event
            entry.io_event = None
            if event is not None:
                event.succeed(entry)

    def _trace_fill(self, file: File, run_start: int, count: int,
                    prio: int, attempt: int, issued: float,
                    ok: bool) -> None:
        """Span per fill read, issue to completion; readahead-class fills
        (prefetch, async RA windows) get their own category so the viewer
        separates demand misses from background I/O."""
        tracer = self.env.tracer
        if tracer is not None and tracer.enabled:
            cat = "readahead" if prio == PRIO_READAHEAD else "cache"
            tracer.complete(
                f"fill {file.name}[{run_start}+{count}]", cat, issued,
                end=self.env.now, track="cache", ino=file.ino,
                start=run_start, count=count, attempt=attempt, ok=ok)

    def _retry(self, file: File, run_start: int,
               entries: tuple[CacheEntry, ...], prio: int, attempt: int):
        """Back off, then re-issue the failed read for the same (still
        locked) entries — concurrent waiters keep waiting on the same
        ``io_event`` and never observe the transient error."""
        yield self.env.timeout(self.retry_policy.backoff(attempt))
        self._issue(file, run_start, list(entries), prio, attempt + 1)

    def _io_failed(self, entries: tuple[CacheEntry, ...],
                   error: BaseException) -> None:
        """Media error: drop the never-uptodate pages so later faults
        retry, and surface EIO (SIGBUS-style) to current waiters."""
        self.stats._io_failures.inc()
        for entry in entries:
            self._remove_entry(entry)
            event = entry.io_event
            entry.io_event = None
            if event is not None:
                # Like a failed readahead in Linux, an error nobody is
                # waiting on is dropped silently; waiters see EIO.
                event._defused = True
                event.fail(error)

    # -- readahead core (what snapbpf_prefetch wraps) ----------------------------
    def page_cache_ra_unbounded(self, file: File, start: int,
                                count: int) -> float:
        """Asynchronously fetch [start, start+count) into the cache.

        This is the routine the paper's kfunc wraps: it inserts absent
        pages and issues their block reads without waiting for them.
        Clips to the file size (callers pass raw offsets from BPF maps).
        """
        start = max(0, start)
        count = min(count, file.size_pages - start)
        if count <= 0:
            return 0.0
        # Readahead-class I/O: demand (fault) reads overtake it in the
        # device queue, exactly so that a sync fault is not stuck behind
        # a long prefetch stream.
        cost, _entries = self.populate(file, start, count,
                                       prio=PRIO_READAHEAD,
                                       speculative=True)
        return cost

    # -- blocking reads (buffered read() path) -----------------------------------
    def read_range(self, file: File, start: int, count: int):
        """Generator: ensure [start, start+count) uptodate; returns CPU cost.

        Models the page-cache side of a buffered ``read()`` — the caller
        separately charges its copy-to-userspace cost.
        """
        cost, _new = self.populate(file, start, count)
        for index in range(start, start + count):
            entry = self._entries.get((file.ino, index))
            if entry is None:
                raise RuntimeError(f"page ({file.ino}, {index}) evicted "
                                   f"while reading")
            if not entry.uptodate:
                yield entry.io_event
        return cost

    # -- reclaim -----------------------------------------------------------------
    def _remove_entry(self, entry: CacheEntry) -> None:
        """Drop one entry from the radix tree, LRU lists, and per-ino
        accounting, and free its frame (no eviction counter — callers
        that reclaim use :meth:`evict_entry`)."""
        key = (entry.ino, entry.index)
        if self._entries.pop(key, None) is None:
            return
        self.reclaim.page_removed(key)
        self._present.discard(entry.ino, entry.index)
        self._uptodate.discard(entry.ino, entry.index)
        self.frames.free(entry.frame)

    def evict_entry(self, entry: CacheEntry) -> None:
        """Reclaim-plane eviction of one clean unmapped page."""
        self._remove_entry(entry)
        self.stats._evictions.inc()

    def _reclaim(self, need: int) -> None:
        """Synchronous direct reclaim (kept for callers of the old API)."""
        self.reclaim.direct_reclaim(need)

    def drop_caches(self) -> int:
        """Drop every clean unmapped page (echo 1 > drop_caches); returns count."""
        dropped = 0
        for key in list(self._entries):
            entry = self._entries[key]
            if entry.uptodate and entry.frame.mapcount == 0:
                self._remove_entry(entry)
                dropped += 1
        return dropped

    def forget(self, entry: CacheEntry) -> None:
        """Remove one entry (truncate path); must be unmapped and uptodate."""
        if entry.frame.mapcount != 0 or not entry.uptodate:
            raise ValueError("cannot forget a mapped or in-flight page")
        self._remove_entry(entry)
