"""Array-backed page sets keyed by ``(ino, pgoff)``.

The page cache, reclaim hints, and the baseline prefetchers all used to
track per-page state in dicts and sets keyed by ``(ino, index)`` tuples.
On the fault path that means a tuple allocation plus a tuple hash per
page probed — the dominant churn in a profiled ``fig --all`` sweep once
the eBPF tier is compiled.  This module replaces those with per-ino byte
arrays: one byte per page, probed with two small-int dict lookups and a
C-level index, with bulk range queries (``residency_bytes``) for
mincore-style scans.

Invariants the rest of mm relies on:

* Per-ino membership counts are maintained incrementally — the O(1)
  ``cached_pages(ino)`` contract behind ``bpf_cached_pages()`` and the
  snapshot-locality router.
* A map, once created for an ino, is never replaced by another object
  (it only grows in place), so hot loops may hold the bytearray across
  mutations — including evictions triggered mid-loop by direct reclaim.
"""

from __future__ import annotations

__all__ = ["PageSet", "PageValueMap"]

#: Smallest per-ino map; avoids re-extending tiny files page by page.
_MIN_MAP_PAGES = 64


class PageSet:
    """Per-ino presence bitmaps (one byte per page) with O(1) counts."""

    __slots__ = ("_maps", "_counts", "_total")

    def __init__(self) -> None:
        self._maps: dict[int, bytearray] = {}
        self._counts: dict[int, int] = {}
        self._total = 0

    def __len__(self) -> int:
        return self._total

    def ensure(self, ino: int, size: int) -> bytearray:
        """The ino's map, grown in place to at least ``size`` pages.

        Hot loops call this once and index the returned bytearray
        directly; identity is stable for the lifetime of the set.
        """
        pages = self._maps.get(ino)
        if pages is None:
            pages = bytearray(max(size, _MIN_MAP_PAGES))
            self._maps[ino] = pages
            self._counts[ino] = 0
        elif len(pages) < size:
            pages.extend(bytes(size - len(pages)))
        return pages

    def add(self, ino: int, index: int) -> bool:
        """Mark (ino, index) present; returns True if newly added."""
        pages = self.ensure(ino, index + 1)
        if pages[index]:
            return False
        pages[index] = 1
        self._counts[ino] += 1
        self._total += 1
        return True

    def discard(self, ino: int, index: int) -> bool:
        """Clear (ino, index); returns True if it was present."""
        pages = self._maps.get(ino)
        if pages is None or index >= len(pages) or not pages[index]:
            return False
        pages[index] = 0
        self._counts[ino] -= 1
        self._total -= 1
        return True

    def test(self, ino: int, index: int) -> bool:
        pages = self._maps.get(ino)
        return (pages is not None and index < len(pages)
                and pages[index] != 0)

    def count(self, ino: int | None = None) -> int:
        if ino is None:
            return self._total
        return self._counts.get(ino, 0)

    def residency_bytes(self, ino: int, start: int, count: int) -> bytearray:
        """Presence of ``[start, start + count)`` as one byte per page —
        the bulk query behind mincore()."""
        pages = self._maps.get(ino)
        if pages is None:
            return bytearray(count)
        segment = pages[start:start + count]
        if len(segment) < count:
            segment.extend(bytes(count - len(segment)))
        return segment


class PageValueMap:
    """Per-ino byte-valued page maps (value 0 means absent).

    Backs the reclaim hint table: HINT_KEEP/HINT_COLD are small nonzero
    bytes, probed per reclaim candidate without tuple churn.
    """

    __slots__ = ("_maps", "_n")

    def __init__(self) -> None:
        self._maps: dict[int, bytearray] = {}
        self._n = 0

    def __len__(self) -> int:
        return self._n

    def set(self, ino: int, index: int, value: int) -> None:
        if not 0 < value < 256:
            raise ValueError(f"value {value} outside 1..255")
        pages = self._maps.get(ino)
        if pages is None:
            pages = bytearray(max(index + 1, _MIN_MAP_PAGES))
            self._maps[ino] = pages
        elif index >= len(pages):
            pages.extend(bytes(index + 1 - len(pages)))
        if not pages[index]:
            self._n += 1
        pages[index] = value

    def discard(self, ino: int, index: int) -> None:
        pages = self._maps.get(ino)
        if pages is not None and index < len(pages) and pages[index]:
            pages[index] = 0
            self._n -= 1

    def get(self, ino: int, index: int, default: int = 0) -> int:
        pages = self._maps.get(ino)
        if pages is None or index >= len(pages):
            return default
        value = pages[index]
        return value if value else default

    def as_dict(self) -> dict[tuple[int, int], int]:
        """Sparse view, for assertions and debugging."""
        return {(ino, index): value
                for ino, pages in self._maps.items()
                for index, value in enumerate(pages) if value}
