"""Host memory management: the Linux-like substrate SnapBPF hooks into.

The pieces mirror the kernel subsystems the paper manipulates:

* :mod:`repro.mm.frames` — physical frame allocator with anonymous /
  page-cache accounting (the source of the Figure 3c memory numbers),
* :mod:`repro.mm.page_cache` — the OS page cache, whose
  ``add_to_page_cache_lru()`` insertion path fires the kprobe SnapBPF
  attaches to, and whose ``page_cache_ra_unbounded()`` batch-read routine
  is what the ``snapbpf_prefetch`` kfunc wraps,
* :mod:`repro.mm.readahead` — Linux-style on-demand readahead state
  machine (default 128 KiB window, paper §4),
* :mod:`repro.mm.address_space` — VMAs, page tables, mmap, mincore,
* :mod:`repro.mm.fault` — the page fault paths (file-backed, anonymous,
  CoW, userfaultfd) written as DES generators,
* :mod:`repro.mm.userfaultfd` — userspace fault delegation used by the
  REAP/Faast baselines,
* :mod:`repro.mm.reclaim` — the memory-pressure plane: split
  active/inactive LRU lists, zone watermarks + kswapd, and the
  eBPF-pluggable eviction-policy attach point,
* :mod:`repro.mm.kernel` — the aggregate "host kernel" object that wires
  the above to a block device and the eBPF runtime.
"""

from repro.mm.address_space import VMA, AddressSpace, PTE
from repro.mm.costs import CostModel
from repro.mm.frames import Frame, FrameAllocator, OutOfMemory
from repro.mm.kernel import Kernel
from repro.mm.page_cache import CacheEntry, PageCache
from repro.mm.readahead import ReadaheadState
from repro.mm.reclaim import (
    HOOK_MM_EVICT,
    LruLists,
    ReclaimController,
    Watermarks,
    register_evict_hint,
)
from repro.mm.userfaultfd import Uffd, UffdMsg

__all__ = [
    "AddressSpace",
    "CacheEntry",
    "CostModel",
    "Frame",
    "FrameAllocator",
    "HOOK_MM_EVICT",
    "Kernel",
    "LruLists",
    "OutOfMemory",
    "PTE",
    "PageCache",
    "ReadaheadState",
    "ReclaimController",
    "Uffd",
    "UffdMsg",
    "VMA",
    "Watermarks",
    "register_evict_hint",
]
