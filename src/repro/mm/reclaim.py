"""Memory-pressure plane: split-LRU reclaim, kswapd, and eviction policy.

This module is the repro's ``mm/vmscan.c``.  It replaces the original
15-line direct-reclaim loop with the three mechanisms the paper's
elasticity argument (Fig. 3c) rests on:

* **Split active/inactive LRU lists** with a second-chance
  ``referenced`` bit: a page enters the inactive list, a first touch
  marks it referenced, a second touch promotes it to the active list,
  and reclaim scans only demote/rotate — so one streaming pass cannot
  flush the hot working set.
* **Zone watermarks and kswapd**: when free frames drop below the low
  watermark, a background DES process reclaims in
  :data:`SWAP_CLUSTER_MAX` batches until the high watermark is restored;
  synchronous *direct* reclaim is left for allocations at/below min.
  Watermarks are **off by default** — an unpressured kernel behaves
  byte-identically to one without this plane.
* **eBPF-pluggable eviction policy**: every reclaim candidate is offered
  to programs attached to the :data:`HOOK_MM_EVICT` attach point
  (context ``(u64 ino, u64 index, u64 free_frames, u64 need)``).  A
  program may veto the eviction (r0 == :data:`VERDICT_VETO`) or return a
  score; candidates are evicted in ascending ``(score, scan order)``.
  Programs can also pin pages ahead of time through the
  ``snapbpf_evict_hint()`` kfunc.  With nothing attached the kernel LRU
  order applies unchanged — the default-off contract of "Cache is King"
  style pluggable eviction.

Eviction never takes mapped (``mapcount > 0``) or not-uptodate
(under-I/O) pages, in any mode.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.ebpf.interp import pack_u64
from repro.metrics.registry import MetricsRegistry
from repro.mm.frames import OutOfMemory
from repro.mm.pageset import PageValueMap

#: The eviction-policy attach point: fired once per reclaim candidate.
HOOK_MM_EVICT = "mm_evict_candidate"
#: (u64 ino, u64 index, u64 free_frames, u64 need)
EVICT_CTX_SIZE = 32

#: The hint kfunc: ``snapbpf_evict_hint(ino, index, hint)``.
SNAPBPF_EVICT_HINT = "snapbpf_evict_hint"

#: Hint values accepted by the kfunc.
HINT_CLEAR = 0
HINT_KEEP = 1
HINT_COLD = 2

#: Policy verdicts (program r0).  Anything >= 2 is a score; candidates
#: are evicted in ascending (score, scan order), with score 0 (the
#: default) sorting before explicit scores.
VERDICT_DEFAULT = 0
VERDICT_VETO = 1

#: Pages reclaimed per kswapd batch (mm/vmscan.c's SWAP_CLUSTER_MAX).
SWAP_CLUSTER_MAX = 32


@dataclass(frozen=True)
class Watermarks:
    """Zone watermarks, in frames (min <= low <= high)."""

    min_frames: int
    low_frames: int
    high_frames: int

    def __post_init__(self) -> None:
        if not 0 < self.min_frames <= self.low_frames <= self.high_frames:
            raise ValueError(
                f"watermarks must satisfy 0 < min <= low <= high, got "
                f"({self.min_frames}, {self.low_frames}, {self.high_frames})")

    @classmethod
    def for_pool(cls, total_frames: int) -> "Watermarks":
        """Linux-like defaults: min ~ pool/128, low/high a quarter and a
        half above it (``watermark_scale_factor`` flattened)."""
        min_frames = max(4, total_frames // 128)
        return cls(min_frames=min_frames,
                   low_frames=min_frames + max(1, min_frames // 4),
                   high_frames=min_frames + max(2, min_frames // 2))


class LruLists:
    """Split active/inactive LRU of cache entries keyed by (ino, index).

    Head of each ordered dict is the coldest end (scan side); insertions
    and rotations go to the tail.
    """

    def __init__(self) -> None:
        self.inactive: OrderedDict[tuple[int, int], object] = OrderedDict()
        self.active: OrderedDict[tuple[int, int], object] = OrderedDict()

    def __len__(self) -> int:
        return len(self.inactive) + len(self.active)

    def __contains__(self, key) -> bool:
        return key in self.inactive or key in self.active

    def insert(self, key, entry) -> None:
        """New page: inactive tail, unreferenced."""
        entry.active = False
        entry.referenced = False
        self.inactive[key] = entry

    def touch(self, key) -> str | None:
        """Mark an access.  Returns what happened: ``"active"`` (rotated
        within active), ``"referenced"`` (first touch on inactive),
        ``"promoted"`` (second touch; moved to active), or ``None``."""
        entry = self.active.get(key)
        if entry is not None:
            self.active.move_to_end(key)
            return "active"
        entry = self.inactive.get(key)
        if entry is None:
            return None
        if entry.referenced:
            del self.inactive[key]
            entry.referenced = False
            entry.active = True
            self.active[key] = entry
            return "promoted"
        entry.referenced = True
        return "referenced"

    def activate(self, key) -> None:
        """Move an inactive page straight to the active tail (mapped
        pages found by the reclaim scan)."""
        entry = self.inactive.pop(key)
        entry.referenced = False
        entry.active = True
        self.active[key] = entry

    def demote(self, key) -> None:
        """Move an active page to the inactive tail, second chance spent."""
        entry = self.active.pop(key)
        entry.referenced = False
        entry.active = False
        self.inactive[key] = entry

    def rotate(self, key) -> None:
        """Give an inactive page another lap (locked, referenced, vetoed)."""
        self.inactive.move_to_end(key)

    def remove(self, key) -> None:
        if self.inactive.pop(key, None) is None:
            self.active.pop(key, None)


class ReclaimStats:
    """Registry-backed ``reclaim_*`` counters (CacheStats-style facade)."""

    def __init__(self, registry: MetricsRegistry | None = None):
        self.registry = registry or MetricsRegistry()
        c = self.registry.counter
        self._scanned = c("reclaim_scanned_total")
        self._reclaimed = c("reclaim_reclaimed_total")
        self._kswapd_wakeups = c("reclaim_kswapd_wakeups_total")
        self._direct = c("reclaim_direct_total")
        self._rotations = c("reclaim_rotations_total")
        self._activations = c("reclaim_activations_total")
        self._promotions = c("reclaim_promotions_total")
        self._demotions = c("reclaim_demotions_total")
        self._policy_runs = c("reclaim_policy_runs_total")
        self._policy_vetoes = c("reclaim_policy_vetoes_total")
        self._hints = c("reclaim_hints_total")
        self._hint_keeps = c("reclaim_hint_keeps_total")
        self._stalls = c("reclaim_stalls_total")
        self._stall_seconds = c("reclaim_stall_seconds_total")
        self._cpu_seconds = c("reclaim_cpu_seconds_total")

    @property
    def scanned(self) -> int:
        return int(self._scanned.value)

    @property
    def reclaimed(self) -> int:
        return int(self._reclaimed.value)

    @property
    def kswapd_wakeups(self) -> int:
        return int(self._kswapd_wakeups.value)

    @property
    def direct(self) -> int:
        return int(self._direct.value)

    @property
    def rotations(self) -> int:
        return int(self._rotations.value)

    @property
    def activations(self) -> int:
        return int(self._activations.value)

    @property
    def promotions(self) -> int:
        return int(self._promotions.value)

    @property
    def demotions(self) -> int:
        return int(self._demotions.value)

    @property
    def policy_runs(self) -> int:
        return int(self._policy_runs.value)

    @property
    def policy_vetoes(self) -> int:
        return int(self._policy_vetoes.value)

    @property
    def hints(self) -> int:
        return int(self._hints.value)

    @property
    def hint_keeps(self) -> int:
        return int(self._hint_keeps.value)

    @property
    def stalls(self) -> int:
        return int(self._stalls.value)

    @property
    def stall_seconds(self) -> float:
        return self._stall_seconds.value

    @property
    def cpu_seconds(self) -> float:
        return self._cpu_seconds.value


class ReclaimController:
    """One machine's reclaim state: LRU lists, watermarks, kswapd, and
    the eviction-policy attach point.

    Constructed by the page cache (which owns the entries) and installed
    onto the frame allocator as its ``reclaimer`` so *every* allocation
    — file pages and anonymous uffd/CoW installs alike — goes through
    watermark checks and direct reclaim.
    """

    def __init__(self, env, frames, page_cache, kprobes,
                 registry: MetricsRegistry | None = None,
                 reclaim_page_cost: float = 0.0):
        self.env = env
        self.frames = frames
        self.page_cache = page_cache
        self.kprobes = kprobes
        self.reclaim_page_cost = reclaim_page_cost
        self.lru = LruLists()
        self.stats = ReclaimStats(registry)
        #: Off until :meth:`enable_watermarks`; ``None`` keeps seed
        #: semantics (direct reclaim on exhaustion only, no kswapd).
        self.watermarks: Watermarks | None = None
        #: Per-ino HINT_* byte maps set via the snapbpf_evict_hint kfunc
        #: (probed per reclaim candidate; see repro.mm.pageset).
        self.hints = PageValueMap()
        #: Eviction order of the whole run, for determinism digests.
        self.eviction_log: list[tuple[int, int]] = []
        #: Fault plane (duck-typed MemFaultInjector): kswapd wakeups ask
        #: it for an injected stall before scanning.
        self.fault_injector = None
        #: CPU seconds accrued by scans/policy runs since last drained
        #: by kswapd (synchronous direct reclaim cannot sleep).
        self.pending_cost = 0.0
        self._wake = None
        self._kswapd = None
        if HOOK_MM_EVICT not in getattr(kprobes, "_hooks", {}):
            kprobes.declare_hook(HOOK_MM_EVICT, EVICT_CTX_SIZE)

    # -- LRU bookkeeping (called by the page cache) ---------------------------
    def page_added(self, key, entry) -> None:
        self.lru.insert(key, entry)

    def page_touched(self, key) -> None:
        if self.lru.touch(key) == "promoted":
            self.stats._promotions.inc()

    def page_removed(self, key) -> None:
        self.lru.remove(key)
        self.hints.discard(key[0], key[1])

    def set_hint(self, ino: int, index: int, hint: int) -> None:
        if hint == HINT_CLEAR:
            self.hints.discard(ino, index)
        else:
            self.hints.set(ino, index, hint)
        self.stats._hints.inc()

    # -- allocator integration ------------------------------------------------
    def throttle_alloc(self) -> None:
        """Called by the frame allocator before every allocation.

        Below the min watermark (or on plain exhaustion with watermarks
        off) the allocating path does synchronous direct reclaim.  An
        :class:`OutOfMemory` from reclaim is fatal only if no frame is
        actually available."""
        free = self.frames.free_frames
        wm = self.watermarks
        if wm is not None:
            if free <= wm.min_frames:
                try:
                    self.direct_reclaim(wm.low_frames - free + 1)
                except OutOfMemory:
                    if self.frames.free_frames <= 0:
                        raise
        elif free <= 0:
            self.direct_reclaim(1)

    def note_allocation(self) -> None:
        """Called by the frame allocator after every allocation: wake
        kswapd once free frames sink below the low watermark."""
        wm = self.watermarks
        if (wm is not None and self._wake is not None
                and not self._wake.triggered
                and self.frames.free_frames < wm.low_frames):
            self._wake.succeed()

    # -- watermarks / kswapd --------------------------------------------------
    def enable_watermarks(self,
                          watermarks: Watermarks | None = None) -> Watermarks:
        """Turn the pressure plane on: set watermarks and start kswapd."""
        if self._kswapd is None:
            self.watermarks = watermarks or Watermarks.for_pool(
                self.frames.total_frames)
            self._kswapd = self.env.process(self._kswapd_loop(),
                                            name="kswapd")
        return self.watermarks

    def _kswapd_loop(self):
        while True:
            self._wake = self.env.event()
            yield self._wake
            self.stats._kswapd_wakeups.inc()
            if self.fault_injector is not None:
                stall = self.fault_injector.on_wakeup()
                if stall > 0.0:
                    self.stats._stalls.inc()
                    self.stats._stall_seconds.inc(stall)
                    tracer = self.env.tracer
                    if tracer is not None and tracer.enabled:
                        tracer.instant("reclaim stall", "reclaim",
                                       self.env.now, track="kswapd",
                                       seconds=stall)
                    yield self.env.timeout(stall)
            wm = self.watermarks
            while self.frames.free_frames < wm.high_frames:
                start = self.env.now
                want = max(1, min(SWAP_CLUSTER_MAX,
                                  wm.high_frames - self.frames.free_frames))
                freed = self.shrink(want)
                if freed == 0:
                    break  # nothing reclaimable; direct reclaim decides
                cost = freed * self.reclaim_page_cost + self.pending_cost
                self.pending_cost = 0.0
                self.stats._cpu_seconds.inc(freed * self.reclaim_page_cost)
                yield self.env.timeout(cost)
                tracer = self.env.tracer
                if tracer is not None and tracer.enabled:
                    tracer.complete("kswapd shrink", "reclaim", start,
                                    end=self.env.now, track="kswapd",
                                    freed=freed,
                                    free=self.frames.free_frames)

    # -- reclaim proper -------------------------------------------------------
    def direct_reclaim(self, need: int) -> int:
        """Synchronously free ``need`` frames or raise :class:`OutOfMemory`.

        First a policy-respecting pass, then a desperate pass that
        ignores referenced bits, hints, and policy verdicts — but never
        touches mapped or under-I/O pages."""
        self.stats._direct.inc()
        freed = self.shrink(need)
        if freed < need:
            freed += self.shrink(need - freed, desperate=True)
        if freed < need:
            raise OutOfMemory(
                "page reclaim could not free enough frames "
                "(all pages mapped or under I/O)")
        tracer = self.env.tracer
        if tracer is not None and tracer.enabled:
            tracer.instant("direct reclaim", "reclaim", self.env.now,
                           track="reclaim", need=need, freed=freed)
        return freed

    def shrink(self, nr_to_reclaim: int, desperate: bool = False) -> int:
        """One shrink pass over the inactive list, refilling it from the
        active list's cold end when it runs dry.  Returns frames freed."""
        if nr_to_reclaim <= 0:
            return 0
        freed = self._scan_inactive(nr_to_reclaim, desperate)
        if freed < nr_to_reclaim and self.lru.active:
            limit = (len(self.lru.active) if desperate
                     else max(SWAP_CLUSTER_MAX, 2 * (nr_to_reclaim - freed)))
            self._refill_inactive(limit)
            freed += self._scan_inactive(nr_to_reclaim - freed, desperate)
        return freed

    def _refill_inactive(self, limit: int) -> None:
        """shrink_active_list: demote up to ``limit`` cold active pages."""
        for key in list(self.lru.active)[:limit]:
            self.lru.demote(key)
            self.stats._demotions.inc()

    def _scan_inactive(self, nr_to_reclaim: int, desperate: bool) -> int:
        """shrink_inactive_list over a snapshot of the current inactive
        order; rotations within the pass are not revisited."""
        hook = self.kprobes.hook(HOOK_MM_EVICT)
        policy = bool(hook.programs) and not desperate
        batch_cap = max(nr_to_reclaim, SWAP_CLUSTER_MAX)
        candidates: list[tuple[tuple, tuple[int, int], object]] = []
        freed = 0
        for seq, key in enumerate(list(self.lru.inactive)):
            if policy:
                if len(candidates) >= batch_cap:
                    break
            elif freed >= nr_to_reclaim:
                break
            entry = self.lru.inactive.get(key)
            if entry is None:
                continue
            self.stats._scanned.inc()
            if entry.locked:
                self.lru.rotate(key)
                self.stats._rotations.inc()
                continue
            if entry.frame.mapcount > 0:
                self.lru.activate(key)
                self.stats._activations.inc()
                continue
            hint = self.hints.get(key[0], key[1], HINT_CLEAR)
            if not desperate:
                if hint == HINT_KEEP:
                    self.lru.rotate(key)
                    self.stats._hint_keeps.inc()
                    continue
                if entry.referenced and hint != HINT_COLD:
                    entry.referenced = False
                    self.lru.rotate(key)
                    self.stats._rotations.inc()
                    continue
            if policy:
                verdict = self._policy_verdict(key, nr_to_reclaim - freed)
                if verdict == VERDICT_VETO:
                    self.lru.rotate(key)
                    self.stats._policy_vetoes.inc()
                    continue
                sort_key = ((0, seq) if hint == HINT_COLD
                            else (1, verdict, seq))
                candidates.append((sort_key, key, entry))
            else:
                self._evict(key, entry)
                freed += 1
        if policy:
            candidates.sort(key=lambda item: item[0])
            for _sort_key, key, entry in candidates:
                if freed >= nr_to_reclaim:
                    break
                self._evict(key, entry)
                freed += 1
        return freed

    def _policy_verdict(self, key: tuple[int, int], need: int) -> int:
        ino, index = key
        ctx = pack_u64(ino, index, self.frames.free_frames, need)
        verdict, cost = self.kprobes.fire_verdict(HOOK_MM_EVICT, ctx)
        self.stats._policy_runs.inc()
        if cost:
            self.pending_cost += cost
            self.stats._cpu_seconds.inc(cost)
        return VERDICT_DEFAULT if verdict is None else verdict

    def _evict(self, key: tuple[int, int], entry) -> None:
        self.page_cache.evict_entry(entry)
        self.stats._reclaimed.inc()
        self.eviction_log.append(key)


def register_evict_hint(kernel) -> None:
    """Expose ``snapbpf_evict_hint(ino, index, hint)`` to BPF programs.

    Idempotent per kernel.  Returns 0, or -EINVAL for unknown hints;
    hints on pages not (yet) cached are kept and apply when the page
    shows up — matching a policy program annotating offsets it has only
    seen in its maps."""
    if SNAPBPF_EVICT_HINT in kernel.kfuncs:
        return

    controller = kernel.reclaim

    def snapbpf_evict_hint(ino: int, index: int, hint: int) -> int:
        if hint not in (HINT_CLEAR, HINT_KEEP, HINT_COLD):
            return -22  # -EINVAL
        controller.set_hint(ino, index, hint)
        return 0

    kernel.kfuncs.register(SNAPBPF_EVICT_HINT, snapbpf_evict_hint, n_args=3)
