"""Virtual address spaces: VMAs, page tables, and the fault paths.

Each VMM process owns an :class:`AddressSpace`.  A restored sandbox's
guest memory is one VMA here: a ``MAP_PRIVATE`` mapping of the snapshot
file (the page-cache approaches), an anonymous VMA registered with a
userfaultfd (REAP/Faast), or per-region mappings of a working-set file
(FaaSnap).

Fault handling is written as DES generators: they yield only when real
waiting happens (disk I/O, uffd round trips), return the CPU seconds
consumed, and are composed into the vCPU loop with ``yield from`` so the
common all-cached case costs no simulation events at all.

The semantics that matter for the paper:

* a read fault on a private file mapping maps the page-cache frame
  read-only and **shared** (this is the deduplication SnapBPF exploits);
* a write fault (or a write to a read-only mapped page) copies the frame
  into per-space anonymous memory (CoW) — which is also how the KVM
  forced-write-mapping bug of §4 destroys deduplication;
* faults in uffd-registered VMAs always resolve to private anonymous
  frames installed by userspace.
"""

from __future__ import annotations

import bisect
import itertools
from dataclasses import dataclass, field

from repro.mm.frames import ANON, Frame
from repro.mm.readahead import ReadaheadState
from repro.storage.device import PRIO_READAHEAD
from repro.mm.userfaultfd import Uffd
from repro.storage.filestore import File
from repro.units import DEFAULT_READAHEAD_PAGES


class SegfaultError(RuntimeError):
    """Access outside any VMA."""


@dataclass(slots=True)
class PTE:
    """One page-table entry."""

    frame: Frame
    writable: bool
    #: True when this maps a page-cache frame of a private mapping, i.e.
    #: a write must CoW.
    cow: bool


@dataclass(slots=True)
class VMA:
    """One mapped region of ``npages`` pages starting at page ``start``."""

    start: int
    npages: int
    file: File | None = None
    pgoff: int = 0
    private: bool = True
    uffd: Uffd | None = None
    ra: ReadaheadState = field(
        default_factory=lambda: ReadaheadState(DEFAULT_READAHEAD_PAGES))
    name: str = ""

    @property
    def end(self) -> int:
        return self.start + self.npages

    @property
    def is_anon(self) -> bool:
        return self.file is None

    def file_index(self, vpn: int) -> int:
        """File page index backing virtual page ``vpn``."""
        return self.pgoff + (vpn - self.start)

    def contains(self, vpn: int) -> bool:
        return self.start <= vpn < self.end


class AddressSpace:
    """Page table + VMA list for one process (VMM)."""

    _ids = itertools.count()

    def __init__(self, kernel, owner: str | None = None):
        self.kernel = kernel
        self.owner = owner or f"proc{next(self._ids)}"
        self.pt: dict[int, PTE] = {}
        self._vmas: list[VMA] = []       # sorted by start
        self._starts: list[int] = []
        self._next_va = 1 << 20          # bump allocator for mmap placement
        #: Set by teardown(): late installs from still-running prefetcher
        #: threads become no-ops instead of leaking frames.
        self.dead = False
        self.stats_minor_faults = 0
        self.stats_major_faults = 0
        self.stats_cow_faults = 0
        self.stats_uffd_faults = 0

    # -- VMA management ---------------------------------------------------------
    def mmap(self, npages: int, file: File | None = None, pgoff: int = 0,
             private: bool = True, uffd: Uffd | None = None,
             at: int | None = None, ra_pages: int = DEFAULT_READAHEAD_PAGES,
             name: str = "") -> VMA:
        """Create a mapping; returns the VMA.  CPU cost is the caller's to
        charge (``kernel.costs.mmap_region``)."""
        if npages <= 0:
            raise ValueError("mmap of zero pages")
        if file is not None and pgoff + npages > file.size_pages:
            raise ValueError(
                f"mapping [{pgoff}, {pgoff + npages}) beyond {file.name!r}")
        if at is None:
            at = self._next_va
            self._next_va += npages + 16  # guard gap
        else:
            self._next_va = max(self._next_va, at + npages + 16)
        vma = VMA(start=at, npages=npages, file=file, pgoff=pgoff,
                  private=private, uffd=uffd,
                  ra=ReadaheadState(ra_pages), name=name)
        pos = bisect.bisect_left(self._starts, at)
        if pos < len(self._vmas) and self._vmas[pos].start < vma.end:
            raise ValueError("overlapping mapping")
        if pos > 0 and self._vmas[pos - 1].end > at:
            raise ValueError("overlapping mapping")
        self._vmas.insert(pos, vma)
        self._starts.insert(pos, at)
        return vma

    def vma_at(self, vpn: int) -> VMA:
        pos = bisect.bisect_right(self._starts, vpn) - 1
        if pos >= 0 and self._vmas[pos].contains(vpn):
            return self._vmas[pos]
        raise SegfaultError(f"{self.owner}: no VMA maps page {vpn:#x}")

    @property
    def vmas(self) -> list[VMA]:
        return list(self._vmas)

    def teardown(self) -> None:
        """Process exit: drop all mappings, free private anonymous memory."""
        self.dead = True
        for pte in self.pt.values():
            pte.frame.mapcount -= 1
            if pte.frame.kind == ANON and pte.frame.mapcount == 0:
                self.kernel.frames.free(pte.frame)
        self.pt.clear()
        self._vmas.clear()
        self._starts.clear()

    # -- direct installs (uffd copy, KVM PV path) -------------------------------
    def install_anon(self, vpn: int, content: int = 0,
                     writable: bool = True) -> float:
        """Map a fresh anonymous frame at ``vpn``; returns CPU cost.

        No-op on a dead space: a userfaultfd prefetcher racing with
        sandbox teardown must not resurrect mappings (and leak frames)."""
        costs = self.kernel.costs
        if self.dead:
            return 0.0
        if vpn in self.pt:
            raise ValueError(f"{self.owner}: page {vpn:#x} already mapped")
        frame = self.kernel.frames.alloc(ANON, content=content,
                                         owner=self.owner)
        self._map(vpn, frame, writable=writable, cow=False)
        fill = (costs.zero_page if content == 0 else costs.memcpy_page)
        return fill + costs.pte_install

    def pte_present(self, vpn: int) -> bool:
        return vpn in self.pt

    def pte(self, vpn: int) -> PTE | None:
        return self.pt.get(vpn)

    # -- the fault paths -----------------------------------------------------------
    def handle_fault(self, vpn: int, is_write: bool):
        """Generator: resolve a fault at ``vpn``; returns CPU seconds."""
        costs = self.kernel.costs
        cost = costs.fault_base

        pte = self.pt.get(vpn)
        if pte is not None:
            if is_write and not pte.writable:
                if pte.cow:
                    cost += self._cow(vpn, pte)
                else:
                    pte.writable = True
                    cost += costs.pte_install
            self.stats_minor_faults += 1
            return cost

        vma = self.vma_at(vpn)
        if vma.uffd is not None:
            self.stats_uffd_faults += 1
            cost += costs.uffd_roundtrip
            wake = vma.uffd.notify(vpn, is_write)
            yield wake
            # The handler installed the mapping (or the VM is being torn
            # down).  A write fault on a read-only installed page falls
            # through to a follow-up fault; callers re-drive.
            return cost

        if vma.is_anon:
            cost += self.install_anon(vpn, content=0, writable=True)
            self.stats_minor_faults += 1
            return cost

        # File-backed fault through the page cache.
        entry, filemap_cost, major = yield from self._filemap_fault(vma, vpn)
        cost += filemap_cost
        if major:
            self.stats_major_faults += 1
        else:
            self.stats_minor_faults += 1
        if is_write and vma.private:
            # Write to a private file mapping: CoW immediately at fault.
            frame = self.kernel.frames.alloc(ANON, content=entry.frame.content,
                                             owner=self.owner)
            self._map(vpn, frame, writable=True, cow=False)
            cost += costs.memcpy_page + costs.pte_install
        else:
            self._map(vpn, entry.frame, writable=not vma.private, cow=vma.private)
            cost += costs.pte_install
        return cost

    def _filemap_fault(self, vma: VMA, vpn: int):
        """Generator: page-cache side of a file fault.

        Returns (entry, cost, was_major).  Implements sync readahead on
        miss, async readahead on PG_readahead marker hit, and waiting on
        pages locked under somebody else's I/O.
        """
        cache = self.kernel.page_cache
        costs = self.kernel.costs
        file = vma.file
        index = vma.file_index(vpn)
        cost = costs.cache_lookup

        entry = cache.lookup(file.ino, index)
        if entry is not None and entry.uptodate:
            vma.ra.on_cache_hit(index)
            if entry.ra_marker:
                entry.ra_marker = False
                plan = vma.ra.on_marker_hit(index, file.size_pages)
                ra_cost, _ = cache.populate(file, plan.start, plan.count,
                                            marker=plan.marker,
                                            prio=PRIO_READAHEAD)
                cost += ra_cost
            return entry, cost, False

        if entry is not None:
            # Locked under I/O issued by another faulter/prefetcher.
            yield entry.io_event
            return entry, cost, True

        plan = vma.ra.on_cache_miss(index, file.size_pages)
        populate_cost, _ = cache.populate(file, plan.start, plan.count,
                                          marker=plan.marker)
        cost += populate_cost
        entry = cache.lookup(file.ino, index)
        if entry is None:  # pragma: no cover - populate guarantees presence
            raise RuntimeError("faulting page vanished after populate")
        if not entry.uptodate:
            yield entry.io_event
        return entry, cost, True

    # -- internals --------------------------------------------------------------------
    def _map(self, vpn: int, frame: Frame, writable: bool, cow: bool) -> None:
        existing = self.pt.get(vpn)
        if existing is not None:
            existing.frame.mapcount -= 1
            if existing.frame.kind == ANON and existing.frame.mapcount == 0:
                self.kernel.frames.free(existing.frame)
        frame.mapcount += 1
        self.pt[vpn] = PTE(frame=frame, writable=writable, cow=cow)

    def _cow(self, vpn: int, pte: PTE) -> float:
        """Copy-on-write: replace a shared file frame with a private copy."""
        costs = self.kernel.costs
        frame = self.kernel.frames.alloc(ANON, content=pte.frame.content,
                                         owner=self.owner)
        pte.frame.mapcount -= 1
        frame.mapcount += 1
        self.pt[vpn] = PTE(frame=frame, writable=True, cow=False)
        self.stats_cow_faults += 1
        return costs.memcpy_page + costs.pte_install

    # -- mincore ------------------------------------------------------------------------
    def mincore(self, vma: VMA) -> list[bool]:
        """Per-page residency of a mapping, as mincore(2) reports it.

        For file-backed private mappings a page counts as resident if it
        is mapped here or resident in the page cache — the semantics
        FaaSnap's capture phase relies on.
        """
        pt = self.pt
        if vma.file is None:
            return [vpn in pt for vpn in range(vma.start, vma.end)]
        # One bulk page-cache residency query for the whole mapping, then
        # overlay the page-table presence.
        cached = self.kernel.page_cache.residency_bytes(
            vma.file.ino, vma.file_index(vma.start), vma.npages)
        return [byte != 0 or (vma.start + i) in pt
                for i, byte in enumerate(cached)]
