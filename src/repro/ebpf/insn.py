"""Instruction set for the miniature eBPF machine.

Eleven 64-bit registers (R0..R10) with the classic eBPF calling
convention: R0 return value, R1-R5 helper arguments (clobbered by calls),
R6-R9 callee-saved, R10 read-only frame pointer to a 512-byte stack.

Instructions are plain dataclasses rather than packed 8-byte words; the
opcode vocabulary and operand semantics mirror eBPF so that the verifier
and interpreter face the same problems the real ones do.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

NUM_REGS = 11
R0, R1, R2, R3, R4, R5, R6, R7, R8, R9, R10 = range(NUM_REGS)
FP = R10

STACK_SIZE = 512

#: ALU operation mnemonics.
ALU_OPS = frozenset({
    "mov", "add", "sub", "mul", "div", "mod", "and", "or", "xor",
    "lsh", "rsh", "arsh", "neg",
})

#: Conditional jump mnemonics (plus unconditional "ja").
JMP_OPS = frozenset({
    "ja", "jeq", "jne", "jgt", "jge", "jlt", "jle", "jsgt", "jsge",
    "jslt", "jsle", "jset",
})

#: Memory access widths in bytes.
WIDTHS = frozenset({1, 2, 4, 8})

U64_MASK = (1 << 64) - 1


def _check_reg(reg: int, name: str) -> None:
    if not isinstance(reg, int) or not 0 <= reg < NUM_REGS:
        raise ValueError(f"{name} must be a register index 0..10, got {reg!r}")


@dataclass(frozen=True)
class Insn:
    """Base class so isinstance checks cover the whole ISA."""


@dataclass(frozen=True)
class Alu(Insn):
    """``dst = dst <op> (src register | imm)``; exactly one source set."""

    op: str
    dst: int
    src: int | None = None
    imm: int | None = None

    def __post_init__(self) -> None:
        if self.op not in ALU_OPS:
            raise ValueError(f"unknown ALU op {self.op!r}")
        _check_reg(self.dst, "dst")
        if self.op == "neg":
            if self.src is not None or self.imm is not None:
                raise ValueError("neg takes no source operand")
        elif (self.src is None) == (self.imm is None):
            raise ValueError("ALU needs exactly one of src/imm")
        if self.src is not None:
            _check_reg(self.src, "src")


@dataclass(frozen=True)
class Jmp(Insn):
    """Conditional/unconditional jump.  ``target`` is a label name until
    assembly resolves it into an absolute instruction index."""

    op: str
    target: Any
    dst: int | None = None
    src: int | None = None
    imm: int | None = None

    def __post_init__(self) -> None:
        if self.op not in JMP_OPS:
            raise ValueError(f"unknown jump op {self.op!r}")
        if self.op == "ja":
            if self.dst is not None or self.src is not None or self.imm is not None:
                raise ValueError("ja takes only a target")
            return
        if self.dst is None:
            raise ValueError(f"{self.op} needs a dst register")
        _check_reg(self.dst, "dst")
        if (self.src is None) == (self.imm is None):
            raise ValueError("conditional jump needs exactly one of src/imm")
        if self.src is not None:
            _check_reg(self.src, "src")


@dataclass(frozen=True)
class Load(Insn):
    """``dst = *(u<width*8> *)(src + off)``."""

    dst: int
    src: int
    off: int
    width: int = 8

    def __post_init__(self) -> None:
        _check_reg(self.dst, "dst")
        _check_reg(self.src, "src")
        if self.width not in WIDTHS:
            raise ValueError(f"bad load width {self.width}")


@dataclass(frozen=True)
class Store(Insn):
    """``*(u<width*8> *)(dst + off) = (src register | imm)``."""

    dst: int
    off: int
    src: int | None = None
    imm: int | None = None
    width: int = 8

    def __post_init__(self) -> None:
        _check_reg(self.dst, "dst")
        if (self.src is None) == (self.imm is None):
            raise ValueError("store needs exactly one of src/imm")
        if self.src is not None:
            _check_reg(self.src, "src")
        if self.width not in WIDTHS:
            raise ValueError(f"bad store width {self.width}")


@dataclass(frozen=True)
class LoadMapFd(Insn):
    """``dst = &map`` — the BPF_LD_IMM64/BPF_PSEUDO_MAP_FD idiom.

    ``map_name`` is resolved against the program's map table at attach
    time; the verifier types ``dst`` as CONST_PTR_TO_MAP.
    """

    dst: int
    map_name: str

    def __post_init__(self) -> None:
        _check_reg(self.dst, "dst")


@dataclass(frozen=True)
class Call(Insn):
    """Call a BPF helper by well-known id (see :mod:`repro.ebpf.helpers`)."""

    helper_id: int


@dataclass(frozen=True)
class CallKfunc(Insn):
    """Call a kernel function exposed to BPF (kfunc) by name.

    Verification fails unless the name is registered in the attaching
    runtime's :class:`~repro.ebpf.kfunc.KfuncRegistry` — this is the exact
    mechanism that lets SnapBPF reach ``page_cache_ra_unbounded()`` while
    ordinary programs cannot touch the page cache at all.
    """

    name: str


@dataclass(frozen=True)
class Exit(Insn):
    """Return R0 to the kernel."""
