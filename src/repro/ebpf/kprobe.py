"""Kprobe attach points: dynamic hooks on simulated kernel functions.

The simulated kernel declares hookable functions (for SnapBPF the one
that matters is ``add_to_page_cache_lru``); userspace attaches verified
programs to them, and the kernel fires the hook inline on every call,
passing the hooked function's arguments as the BPF context — exactly the
kprobe contract the paper uses to observe snapshot pages entering the
page cache.

``fire`` returns the simulated seconds the attached programs consumed
(executed instructions x per-instruction cost) so the calling kernel path
can charge eBPF overhead to whoever triggered it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ebpf.asm import Program
from repro.ebpf.interp import INSN_COST_SECONDS, Interpreter
from repro.ebpf.kfunc import KfuncRegistry
from repro.ebpf.verifier import Verifier

__all__ = ["INSN_COST_SECONDS", "RET_DETACH_SELF", "KprobeError",
           "AttachError", "HookPoint", "KprobeManager"]

#: A program returning this value from a fire asks to be detached — the
#: "disable itself" semantics SnapBPF's prefetch program uses once it has
#: issued the read request for the last offset group (paper §3.1).
RET_DETACH_SELF = 1


class KprobeError(ValueError):
    """Unknown hook point, double attach, or detach of missing program."""


class AttachError(KprobeError):
    """A structurally valid attach failed at runtime (resource
    exhaustion, injected fault) — the failure mode the host must handle
    by degrading, not the programmer error :class:`KprobeError` models."""


@dataclass
class HookPoint:
    """One hookable kernel function."""

    name: str
    ctx_size: int
    programs: list[Program] = field(default_factory=list)
    fire_count: int = 0


class KprobeManager:
    """Registry of hook points + attach/detach/fire dispatch."""

    def __init__(self, kfuncs: KfuncRegistry | None = None,
                 interpreter: Interpreter | None = None):
        self.kfuncs = kfuncs or KfuncRegistry()
        self.interpreter = interpreter or Interpreter(kfuncs=self.kfuncs)
        self._hooks: dict[str, HookPoint] = {}
        #: Fault plane hook (duck-typed; see repro.faults).  When set,
        #: ``fault_injector.on_attach`` may veto an attach by raising
        #: :class:`AttachError`, and ``fault_injector.map_capacity``
        #: clamps requested BPF map sizes.
        self.fault_injector = None
        #: CPU seconds accumulated by kfunc side effects during a fire
        #: (e.g. snapbpf_prefetch allocating cache pages); drained into
        #: the fire() return value so the triggering kernel path pays.
        self.side_cost = 0.0

    # -- hook point administration (the simulated kernel's side) -------------
    def declare_hook(self, name: str, ctx_size: int) -> None:
        if name in self._hooks:
            raise KprobeError(f"hook {name!r} already declared")
        self._hooks[name] = HookPoint(name=name, ctx_size=ctx_size)

    def hook(self, name: str) -> HookPoint:
        try:
            return self._hooks[name]
        except KeyError:
            raise KprobeError(f"no such kernel function {name!r}") from None

    # -- userspace side -----------------------------------------------------
    def attach(self, name: str, program: Program) -> None:
        """Verify ``program`` against the hook's context, then attach it."""
        hook = self.hook(name)
        if any(p is program for p in hook.programs):
            raise KprobeError(
                f"program {program.name!r} already attached to {name!r}")
        Verifier(ctx_size=hook.ctx_size, kfuncs=self.kfuncs).verify(program)
        if self.fault_injector is not None:
            self.fault_injector.on_attach(name, program)
        # Compile the now-verified program (and resolve its kfunc table)
        # once at attach time so the first fire already runs native code.
        self.interpreter.prepare(program)
        hook.programs.append(program)

    def map_capacity(self, requested: int) -> int:
        """Grantable capacity for a new BPF map (fault plane may clamp)."""
        if self.fault_injector is not None:
            return self.fault_injector.map_capacity(requested)
        return requested

    def detach(self, name: str, program: Program) -> None:
        hook = self.hook(name)
        for idx, attached in enumerate(hook.programs):
            if attached is program:
                del hook.programs[idx]
                return
        raise KprobeError(
            f"program {program.name!r} not attached to {name!r}")

    def attached(self, name: str) -> list[Program]:
        return list(self.hook(name).programs)

    # -- kernel dispatch ------------------------------------------------------
    def fire(self, name: str, ctx: bytes) -> float:
        """Run all programs attached to ``name``; returns seconds consumed."""
        hook = self.hook(name)
        hook.fire_count += 1
        if not hook.programs:
            return 0.0
        if len(ctx) != hook.ctx_size:
            raise KprobeError(
                f"hook {name!r}: ctx size {len(ctx)} != {hook.ctx_size}")
        total_insns = 0
        # Iterate over a copy: a program may detach itself (SnapBPF's
        # prefetch program disables itself after the last group) by
        # returning RET_DETACH_SELF.
        for program in list(hook.programs):
            result = self.interpreter.run(program, ctx)
            total_insns += result.insn_count
            if result.r0 == RET_DETACH_SELF:
                try:
                    self.detach(name, program)
                except KprobeError:
                    pass  # already detached by a nested fire
        side, self.side_cost = self.side_cost, 0.0
        return total_insns * INSN_COST_SECONDS + side

    def fire_verdict(self, name: str, ctx: bytes) -> tuple[int | None, float]:
        """Run all programs attached to ``name`` and report a verdict.

        Unlike :meth:`fire`, r0 is *data* returned to the kernel caller
        (score/veto for eviction-policy hooks), so no value carries the
        RET_DETACH_SELF side effect.  Returns ``(verdict, seconds)``
        where the verdict is the last program's r0, or ``None`` when
        nothing is attached — the caller falls back to its built-in
        policy (kernel LRU for reclaim).
        """
        hook = self.hook(name)
        hook.fire_count += 1
        if not hook.programs:
            return None, 0.0
        if len(ctx) != hook.ctx_size:
            raise KprobeError(
                f"hook {name!r}: ctx size {len(ctx)} != {hook.ctx_size}")
        total_insns = 0
        verdict = 0
        for program in list(hook.programs):
            result = self.interpreter.run(program, ctx)
            total_insns += result.insn_count
            verdict = result.r0
        side, self.side_cost = self.side_cost, 0.0
        return verdict, total_insns * INSN_COST_SECONDS + side
