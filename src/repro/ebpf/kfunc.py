"""Kernel-function (kfunc) registry.

kfuncs are the escape hatch the kernel deliberately opens to BPF: a
kernel module registers a named function with a fixed scalar signature,
and only then will the verifier accept ``CallKfunc`` instructions naming
it.  SnapBPF registers exactly one — ``snapbpf_prefetch(ino, start_page,
npages)``, a thin wrapper around ``page_cache_ra_unbounded()`` — because
sandboxed BPF programs cannot issue block requests or manipulate the OS
page cache themselves (paper §3.1).

Kfunc implementations here are plain Python callables taking ``n_args``
integers and returning an integer; side effects (issuing readahead into
the simulated page cache) happen through closures over the mm layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable


class KfuncError(KeyError):
    """Unknown kfunc name or signature mismatch at registration."""


@dataclass(frozen=True)
class KfuncSpec:
    name: str
    n_args: int
    func: Callable[..., int]


class KfuncRegistry:
    """Named kfuncs available to programs verified against this runtime."""

    def __init__(self) -> None:
        self._kfuncs: dict[str, KfuncSpec] = {}

    def register(self, name: str, func: Callable[..., int],
                 n_args: int) -> None:
        if not 0 <= n_args <= 5:
            raise KfuncError(f"kfunc {name!r}: 0..5 scalar args supported")
        if name in self._kfuncs:
            raise KfuncError(f"kfunc {name!r} already registered")
        self._kfuncs[name] = KfuncSpec(name, n_args, func)

    def unregister(self, name: str) -> None:
        if name not in self._kfuncs:
            raise KfuncError(f"kfunc {name!r} not registered")
        del self._kfuncs[name]

    def get(self, name: str) -> KfuncSpec:
        try:
            return self._kfuncs[name]
        except KeyError:
            raise KfuncError(f"kfunc {name!r} not registered") from None

    def __contains__(self, name: str) -> bool:
        return name in self._kfuncs

    def names(self) -> list[str]:
        return sorted(self._kfuncs)
