"""Static verifier: abstract interpretation over register types.

Like the kernel verifier, this explores every control-flow path of a
program with an abstract machine whose register values are *types*:
scalars, typed pointers with statically-known offsets, and
possibly-NULL map-value pointers that must be null-checked before
dereference.  A program attaches only if every path:

* never reads an uninitialized register or stack slot,
* keeps every memory access within its region (512-byte stack, map value
  size, attach-point context size),
* null-checks every ``bpf_map_lookup_elem`` result before dereference,
* passes correctly-typed arguments to helpers,
* only calls kfuncs registered with the runtime it attaches to,
* terminates verification within a state budget (the runtime interpreter
  additionally enforces an executed-instruction budget).

The abstract domain is finite (types + bounded offsets), so the worklist
fixpoint terminates even for programs with loops — which SnapBPF's
prefetch program has (it walks the grouped-offset array map).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable

from repro.ebpf import helpers as H
from repro.ebpf.asm import Program
from repro.ebpf.insn import (
    FP,
    NUM_REGS,
    R0,
    R1,
    STACK_SIZE,
    Alu,
    Call,
    CallKfunc,
    Exit,
    Jmp,
    Load,
    LoadMapFd,
    Store,
)
from repro.ebpf.kfunc import KfuncRegistry

MAX_INSNS = 4096
MAX_STATES = 200_000


class VerificationError(ValueError):
    """Program rejected; message says which insn and why."""

    def __init__(self, pc: int, reason: str):
        super().__init__(f"insn {pc}: {reason}")
        self.pc = pc
        self.reason = reason


# -- abstract values ----------------------------------------------------------
@dataclass(frozen=True)
class AbstractValue:
    pass


@dataclass(frozen=True)
class Uninit(AbstractValue):
    pass


@dataclass(frozen=True)
class Scalar(AbstractValue):
    pass


@dataclass(frozen=True)
class ConstPtrToMap(AbstractValue):
    map_name: str


@dataclass(frozen=True)
class PtrToMapValue(AbstractValue):
    map_name: str
    off: int | None  # None = statically unknown (deref rejected)


@dataclass(frozen=True)
class PtrToMapValueOrNull(AbstractValue):
    map_name: str


@dataclass(frozen=True)
class PtrToStack(AbstractValue):
    off: int | None  # byte offset from stack base; FP starts at STACK_SIZE


@dataclass(frozen=True)
class PtrToCtx(AbstractValue):
    off: int | None


_UNINIT = Uninit()
_SCALAR = Scalar()

_POINTER_TYPES = (ConstPtrToMap, PtrToMapValue, PtrToMapValueOrNull,
                  PtrToStack, PtrToCtx)


@dataclass(frozen=True)
class AbstractState:
    """Registers + set of initialized stack bytes, at one program point."""

    regs: tuple[AbstractValue, ...]
    stack_init: frozenset[int]

    def with_reg(self, reg: int, value: AbstractValue) -> "AbstractState":
        regs = list(self.regs)
        regs[reg] = value
        return AbstractState(tuple(regs), self.stack_init)

    def with_stack_init(self, offsets: Iterable[int]) -> "AbstractState":
        return AbstractState(self.regs, self.stack_init | frozenset(offsets))


def _initial_state(ctx_size: int) -> AbstractState:
    regs: list[AbstractValue] = [_UNINIT] * NUM_REGS
    regs[R1] = PtrToCtx(0) if ctx_size > 0 else _SCALAR
    regs[FP] = PtrToStack(STACK_SIZE)
    return AbstractState(tuple(regs), frozenset())


class Verifier:
    """Verifies a :class:`Program` against an attach context and runtime.

    Parameters
    ----------
    ctx_size:
        Size in bytes of the context struct the attach point provides
        (e.g. a kprobe exposes the hooked function's arguments).
    kfuncs:
        The runtime's kfunc registry; ``CallKfunc`` to unregistered names
        is rejected, which is the sandbox boundary the paper describes.
    """

    def __init__(self, ctx_size: int = 0,
                 kfuncs: KfuncRegistry | None = None):
        self.ctx_size = ctx_size
        self.kfuncs = kfuncs or KfuncRegistry()

    # -- public API --------------------------------------------------------
    def verify(self, program: Program) -> None:
        # The program is needed during load/store bounds checks (map value
        # sizes); keep it for the duration of this verification run.
        self._program = program
        insns = program.insns
        if len(insns) > MAX_INSNS:
            raise VerificationError(0, f"program too large ({len(insns)} insns)")
        if not isinstance(insns[-1], (Exit, Jmp)):
            raise VerificationError(len(insns) - 1,
                                    "program does not end with exit or jump")

        seen: dict[int, set[AbstractState]] = {}
        worklist: list[tuple[int, AbstractState]] = [
            (0, _initial_state(self.ctx_size))]
        explored = 0
        while worklist:
            pc, state = worklist.pop()
            if pc >= len(insns):
                raise VerificationError(pc, "control flow falls off the program")
            if state in seen.setdefault(pc, set()):
                continue
            seen[pc].add(state)
            explored += 1
            if explored > MAX_STATES:
                raise VerificationError(pc, "state budget exhausted "
                                            "(program too complex)")
            for nxt_pc, nxt_state in self._step(program, pc, state):
                worklist.append((nxt_pc, nxt_state))

    # -- transfer function ---------------------------------------------------
    def _step(self, program: Program, pc: int,
              state: AbstractState) -> list[tuple[int, AbstractState]]:
        insn = program.insns[pc]
        if isinstance(insn, Exit):
            if isinstance(state.regs[R0], Uninit):
                raise VerificationError(pc, "R0 not initialized at exit")
            if not isinstance(state.regs[R0], Scalar):
                raise VerificationError(
                    pc, f"R0 must be a scalar at exit, "
                        f"got {state.regs[R0]!r} (pointer leak)")
            return []
        if isinstance(insn, Alu):
            return [(pc + 1, self._alu(pc, state, insn))]
        if isinstance(insn, Jmp):
            return self._jump(program, pc, state, insn)
        if isinstance(insn, Load):
            return [(pc + 1, self._load(pc, state, insn))]
        if isinstance(insn, Store):
            return [(pc + 1, self._store(pc, state, insn))]
        if isinstance(insn, LoadMapFd):
            return [(pc + 1, state.with_reg(insn.dst,
                                            ConstPtrToMap(insn.map_name)))]
        if isinstance(insn, Call):
            return [(pc + 1, self._call(program, pc, state, insn))]
        if isinstance(insn, CallKfunc):
            return [(pc + 1, self._call_kfunc(pc, state, insn))]
        raise VerificationError(pc, f"unknown instruction {insn!r}")

    def _read_reg(self, pc: int, state: AbstractState, reg: int,
                  what: str) -> AbstractValue:
        value = state.regs[reg]
        if isinstance(value, Uninit):
            raise VerificationError(pc, f"{what} R{reg} is uninitialized")
        return value

    # .. ALU ..................................................................
    def _alu(self, pc: int, state: AbstractState, insn: Alu) -> AbstractState:
        if insn.dst == FP:
            raise VerificationError(pc, "frame pointer is read-only")
        op = insn.op
        if op == "mov":
            if insn.imm is not None:
                return state.with_reg(insn.dst, _SCALAR)
            src_val = self._read_reg(pc, state, insn.src, "mov source")
            return state.with_reg(insn.dst, src_val)
        if op == "neg":
            dst_val = self._read_reg(pc, state, insn.dst, "neg operand")
            if isinstance(dst_val, _POINTER_TYPES):
                raise VerificationError(pc, "arithmetic on pointer")
            return state

        dst_val = self._read_reg(pc, state, insn.dst, "ALU dst")
        src_is_ptr = False
        if insn.src is not None:
            src_val = self._read_reg(pc, state, insn.src, "ALU src")
            src_is_ptr = isinstance(src_val, _POINTER_TYPES)

        if isinstance(dst_val, _POINTER_TYPES):
            if op not in ("add", "sub"):
                raise VerificationError(pc, f"{op} on pointer prohibited")
            if isinstance(dst_val, (ConstPtrToMap, PtrToMapValueOrNull)):
                raise VerificationError(
                    pc, "arithmetic on map pointer / unchecked map value")
            if src_is_ptr:
                raise VerificationError(pc, "pointer +/- pointer prohibited")
            if insn.imm is not None and dst_val.off is not None:
                delta = insn.imm if op == "add" else -insn.imm
                return state.with_reg(insn.dst,
                                      replace(dst_val, off=dst_val.off + delta))
            # Variable adjustment: offset becomes unknown, deref will be
            # rejected (we do not track scalar ranges).
            return state.with_reg(insn.dst, replace(dst_val, off=None))
        if src_is_ptr:
            raise VerificationError(pc, "pointer used as scalar ALU source")
        return state.with_reg(insn.dst, _SCALAR)

    # .. jumps ................................................................
    def _jump(self, program: Program, pc: int, state: AbstractState,
              insn: Jmp) -> list[tuple[int, AbstractState]]:
        target = insn.target
        if not 0 <= target < len(program.insns):
            raise VerificationError(pc, f"jump target {target} out of range")
        if insn.op == "ja":
            return [(target, state)]

        dst_val = self._read_reg(pc, state, insn.dst, "jump operand")
        src_val = None
        if insn.src is not None:
            src_val = self._read_reg(pc, state, insn.src, "jump operand")

        # NULL-check refinement: `if (ptr ==/!= 0)` on a maybe-null map value.
        if (isinstance(dst_val, PtrToMapValueOrNull) and insn.src is None
                and insn.imm == 0 and insn.op in ("jeq", "jne")):
            non_null = state.with_reg(insn.dst,
                                      PtrToMapValue(dst_val.map_name, 0))
            null = state.with_reg(insn.dst, _SCALAR)
            if insn.op == "jeq":
                return [(target, null), (pc + 1, non_null)]
            return [(target, non_null), (pc + 1, null)]

        for operand, val in (("dst", dst_val), ("src", src_val)):
            if isinstance(val, (PtrToMapValueOrNull, ConstPtrToMap)):
                raise VerificationError(
                    pc, f"comparison on unchecked/const map pointer ({operand})")
        # Pointers admit only the exact NULL-check shape the runtime
        # accepts, `jeq/jne ptr, 0`.  Anything else — nonzero immediate,
        # relational op, or a pointer in the src operand — faults in the
        # interpreter, so reject it here.
        if src_val is not None and not isinstance(src_val, Scalar):
            raise VerificationError(pc, "pointer in jump src operand")
        if not isinstance(dst_val, Scalar) and not (
                insn.op in ("jeq", "jne") and insn.src is None
                and insn.imm == 0):
            raise VerificationError(pc, "pointer comparison beyond NULL check")
        return [(target, state), (pc + 1, state)]

    # .. memory ...............................................................
    def _mem_region(self, pc: int, program: Program, value: AbstractValue,
                    off: int, width: int, is_store: bool) -> tuple[str, int]:
        """Validate access and return (region kind, absolute offset)."""
        if isinstance(value, PtrToMapValueOrNull):
            raise VerificationError(pc, "map value dereferenced without "
                                        "NULL check")
        if isinstance(value, ConstPtrToMap):
            raise VerificationError(pc, "const map pointer is not "
                                        "dereferenceable")
        if isinstance(value, Scalar):
            raise VerificationError(pc, "dereference of scalar")
        if not isinstance(value, (PtrToStack, PtrToMapValue, PtrToCtx)):
            raise VerificationError(pc, f"dereference of {value!r}")
        if value.off is None:
            raise VerificationError(pc, "dereference at statically unknown "
                                        "offset")
        absolute = value.off + off
        if isinstance(value, PtrToStack):
            limit = STACK_SIZE
            kind = "stack"
        elif isinstance(value, PtrToCtx):
            if is_store:
                raise VerificationError(pc, "context is read-only")
            limit = self.ctx_size
            kind = "ctx"
        else:
            limit = program.map_named(value.map_name).value_size
            kind = "map_value"
        if absolute < 0 or absolute + width > limit:
            raise VerificationError(
                pc, f"{kind} access [{absolute}, {absolute + width}) out of "
                    f"bounds [0, {limit})")
        return kind, absolute

    def _load(self, pc: int, state: AbstractState, insn: Load) -> AbstractState:
        src_val = self._read_reg(pc, state, insn.src, "load base")
        # Reconstruct the Program via closure-free path: region bounds need
        # the map table, threaded through self._current_program.
        kind, absolute = self._mem_region(pc, self._program, src_val,
                                          insn.off, insn.width, is_store=False)
        if kind == "stack":
            missing = [b for b in range(absolute, absolute + insn.width)
                       if b not in state.stack_init]
            if missing:
                raise VerificationError(
                    pc, f"read of uninitialized stack byte {missing[0]}")
        if insn.dst == FP:
            raise VerificationError(pc, "frame pointer is read-only")
        return state.with_reg(insn.dst, _SCALAR)

    def _store(self, pc: int, state: AbstractState, insn: Store) -> AbstractState:
        dst_val = self._read_reg(pc, state, insn.dst, "store base")
        if insn.src is not None:
            src_val = self._read_reg(pc, state, insn.src, "store source")
            if isinstance(src_val, _POINTER_TYPES):
                raise VerificationError(
                    pc, "pointer spill to memory not supported")
        kind, absolute = self._mem_region(pc, self._program, dst_val,
                                          insn.off, insn.width, is_store=True)
        if kind == "stack":
            return state.with_stack_init(range(absolute, absolute + insn.width))
        return state

    # .. calls ................................................................
    def _call(self, program: Program, pc: int, state: AbstractState,
              insn: Call) -> AbstractState:
        try:
            spec = H.spec_for(insn.helper_id)
        except KeyError as exc:
            raise VerificationError(pc, str(exc)) from None

        map_name: str | None = None
        for arg_idx, arg_type in enumerate(spec.args):
            reg = R1 + arg_idx
            value = self._read_reg(pc, state, reg,
                                   f"{spec.name} arg{arg_idx + 1}")
            if arg_type == H.ARG_CONST_MAP_PTR:
                if not isinstance(value, ConstPtrToMap):
                    raise VerificationError(
                        pc, f"{spec.name} arg{arg_idx + 1} must be a map "
                            f"pointer, got {value!r}")
                map_name = value.map_name
                kind = program.map_named(map_name).KIND
                if spec.map_kinds is not None and kind not in spec.map_kinds:
                    raise VerificationError(
                        pc, f"{spec.name} is incompatible with {kind} map "
                            f"{map_name!r} (allowed: "
                            f"{', '.join(spec.map_kinds)})")
            elif arg_type in (H.ARG_PTR_TO_MAP_KEY, H.ARG_PTR_TO_MAP_VALUE):
                if map_name is None:
                    raise VerificationError(pc, f"{spec.name}: no map argument "
                                                f"precedes pointer argument")
                bpf_map = program.map_named(map_name)
                size = (bpf_map.key_size if arg_type == H.ARG_PTR_TO_MAP_KEY
                        else bpf_map.value_size)
                self._check_sized_buffer(pc, state, value, size, spec.name)
            elif arg_type == H.ARG_SCALAR:
                if isinstance(value, _POINTER_TYPES):
                    raise VerificationError(
                        pc, f"{spec.name} arg{arg_idx + 1} must be scalar")
            else:  # pragma: no cover - spec table is static
                raise VerificationError(pc, f"bad arg archetype {arg_type!r}")

        state = self._clobber_caller_saved(state)
        if spec.ret == H.RET_MAP_VALUE_OR_NULL:
            assert map_name is not None
            return state.with_reg(R0, PtrToMapValueOrNull(map_name))
        return state.with_reg(R0, _SCALAR)

    def _check_sized_buffer(self, pc: int, state: AbstractState,
                            value: AbstractValue, size: int,
                            helper: str) -> None:
        """Helper buffer args must be fully-initialized stack memory."""
        if not isinstance(value, PtrToStack) or value.off is None:
            raise VerificationError(
                pc, f"{helper}: buffer argument must be a stack pointer with "
                    f"known offset, got {value!r}")
        if value.off < 0 or value.off + size > STACK_SIZE:
            raise VerificationError(
                pc, f"{helper}: buffer [{value.off}, {value.off + size}) "
                    f"outside stack")
        missing = [b for b in range(value.off, value.off + size)
                   if b not in state.stack_init]
        if missing:
            raise VerificationError(
                pc, f"{helper}: buffer byte {missing[0]} uninitialized")

    def _call_kfunc(self, pc: int, state: AbstractState,
                    insn: CallKfunc) -> AbstractState:
        if insn.name not in self.kfuncs:
            raise VerificationError(
                pc, f"call to unregistered kfunc {insn.name!r} "
                    f"(available: {self.kfuncs.names()})")
        spec = self.kfuncs.get(insn.name)
        for arg_idx in range(spec.n_args):
            value = self._read_reg(pc, state, R1 + arg_idx,
                                   f"kfunc {insn.name} arg{arg_idx + 1}")
            if isinstance(value, _POINTER_TYPES):
                raise VerificationError(
                    pc, f"kfunc {insn.name} arg{arg_idx + 1} must be scalar")
        state = self._clobber_caller_saved(state)
        return state.with_reg(R0, _SCALAR)

    @staticmethod
    def _clobber_caller_saved(state: AbstractState) -> AbstractState:
        regs = list(state.regs)
        for reg in range(R1, R1 + 5):
            regs[reg] = _UNINIT
        return AbstractState(tuple(regs), state.stack_init)

    # Set by verify() for the duration of one verification run.
    _program: Program
