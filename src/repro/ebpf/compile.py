"""Compile tier: translate verified programs into Python closures.

The interpreter in :mod:`repro.ebpf.interp` re-dispatches on instruction
dataclasses for every executed instruction; at figure-sweep scale that
dispatch is one of the hottest frames in the whole simulation.  The
kernel solves the same problem by JIT-compiling verified programs once
and running native code afterwards.  This module is the analogous tier
for the miniature machine: a program's instruction list is translated
*once* into Python source (basic blocks inside a dispatch loop), compiled
to CPython bytecode, and the resulting closure is what
:meth:`~repro.ebpf.interp.Interpreter.run` executes from then on.

Semantics are identical to the interpreter by construction:

* registers hold the same value domain (masked u64 ints, ``_Ptr``,
  ``None``), every ALU/jump/load/store replicates the interpreter's type
  checks, masking, and ``RuntimeFault`` messages;
* helpers and kfuncs are resolved at compile (program-load) time — the
  per-invocation table lookups the interpreter used to do are hoisted
  here, and the interpreter tier shares the same load-time resolution;
* ``insn_count`` is accounted per basic block, so every terminating run
  reports exactly the interpreter's executed-instruction count (the
  quantity the kprobe path converts into simulated seconds — figure
  outputs stay byte-identical).

The one deliberate divergence: the instruction budget is enforced at
basic-block granularity, so a run that *exhausts* the budget faults at
the same reported pc and count but without replaying the faulting
block's partial side effects.  Verified programs never reach the budget
(the verifier bounds their loops); the fallback interpreter
(``REPRO_EBPF_INTERP=1``) keeps the per-instruction behaviour.

Compiled code objects are cached by program *structure* (instruction
tuple, map table names, kfunc signatures), so the many per-VM clones of
the same builder-produced program pay ``compile()`` once; per-program
constants (map pointers, resolved kfunc specs) live in each closure's
globals.
"""

from __future__ import annotations

from repro.ebpf import helpers as H
from repro.ebpf.asm import Program
from repro.ebpf.insn import (
    STACK_SIZE,
    U64_MASK,
    Alu,
    Call,
    CallKfunc,
    Exit,
    Insn,
    Jmp,
    Load,
    LoadMapFd,
    Store,
)
from repro.ebpf.interp import (
    INSN_COST_SECONDS,
    ExecutionResult,
    RuntimeFault,
    _Ptr,
    _Region,
    _to_signed,
)
from repro.ebpf.kfunc import KfuncRegistry

__all__ = ["CompiledProgram", "CompileError", "compile_program"]

#: Structure-keyed cache of compiled code objects (see module docstring).
_CODE_CACHE: dict[tuple, object] = {}

_MASK = "0x%X" % U64_MASK


class CompileError(ValueError):
    """The program cannot be compiled (unresolved labels, unknown insn);
    the caller falls back to the interpreter."""


class CompiledProgram:
    """One program's compiled form, bound to the runtime that loaded it."""

    __slots__ = ("owner", "fn", "source")

    def __init__(self, owner, fn, source: str):
        #: The Interpreter whose kfunc registry the closure was resolved
        #: against; a different runtime must recompile.
        self.owner = owner
        self.fn = fn
        self.source = source


# -- runtime support shared by every closure ---------------------------------

def _budget_fault(budget: int, executed: int, pcs: tuple) -> None:
    """Raise the interpreter's budget fault at the exact faulting pc.

    ``executed`` already includes the whole block (``len(pcs)`` charged
    up front); the interpreter would have stopped after ``budget`` total
    instructions, i.e. ``executed - budget`` from the end of this block.
    """
    idx = len(pcs) - (executed - budget)
    raise RuntimeFault(
        f"instruction budget {budget} exhausted at pc {pcs[idx]}")


def _alu_slow(op: str, dst: object, src: object) -> object:
    """Non-scalar ALU cases: pointer arithmetic and type errors."""
    if isinstance(dst, _Ptr):
        if op == "add" and isinstance(src, int):
            return dst.moved(_to_signed(src & U64_MASK))
        if op == "sub" and isinstance(src, int):
            return dst.moved(-_to_signed(src & U64_MASK))
        raise RuntimeFault(f"{op} on pointer")
    raise RuntimeFault(f"{op} with non-scalar operand")


def _jmp_slow(op: str, dst: object, src: object) -> bool:
    """Non-scalar jump cases: the pointer NULL check and type errors."""
    if isinstance(dst, _Ptr):
        if op in ("jeq", "jne") and isinstance(src, int) and src == 0:
            return op == "jne"
        raise RuntimeFault("pointer comparison beyond NULL check")
    raise RuntimeFault("jump on non-scalar operands")


def _map_arg(value: object):
    if not isinstance(value, _Ptr) or value.bpf_map is None:
        raise RuntimeFault("helper expected a map pointer")
    return value.bpf_map


def _buffer_arg(value: object, size: int) -> bytes:
    if not isinstance(value, _Ptr) or value.region is None:
        raise RuntimeFault("helper expected a buffer pointer")
    return value.region.read_bytes(value.off, size)


#: Globals every generated closure runs against (plus its per-program
#: constants).  ``exec`` copies this into each closure's namespace.
_BASE_NAMESPACE = {
    "_Ptr": _Ptr,
    "_Region": _Region,
    "ExecutionResult": ExecutionResult,
    "RuntimeFault": RuntimeFault,
    "_sg": _to_signed,
    "_fb": int.from_bytes,
    "_cost": INSN_COST_SECONDS,
    "_budget_fault": _budget_fault,
    "_alu_slow": _alu_slow,
    "_jmp_slow": _jmp_slow,
    "_map_arg": _map_arg,
    "_buffer_arg": _buffer_arg,
    "_spec_for": H.spec_for,
}

_CMP = {
    "jeq": "==", "jne": "!=", "jgt": ">", "jge": ">=",
    "jlt": "<", "jle": "<=",
}
_SCMP = {"jsgt": ">", "jsge": ">=", "jslt": "<", "jsle": "<="}


class _Codegen:
    """Walks one program's instruction list and emits Python source."""

    def __init__(self, program: Program, kfuncs: KfuncRegistry):
        self.program = program
        self.kfuncs = kfuncs
        self.lines: list[str] = []
        #: Per-program runtime constants referenced by the source.
        self.consts: dict[str, object] = {}
        self._maps: dict[str, str] = {}      # map name -> const name
        self._nconst = 0

    # -- small utilities ----------------------------------------------------
    def emit(self, indent: int, line: str) -> None:
        self.lines.append("    " * indent + line)

    def const(self, prefix: str, value: object) -> str:
        name = f"_{prefix}{self._nconst}"
        self._nconst += 1
        self.consts[name] = value
        return name

    def map_const(self, map_name: str) -> str:
        """A shared ``_Ptr(None, 0, bpf_map=...)`` per referenced map."""
        if map_name not in self._maps:
            ptr = _Ptr(None, 0, bpf_map=self.program.map_named(map_name))
            self._maps[map_name] = self.const("map", ptr)
        return self._maps[map_name]

    # -- program structure --------------------------------------------------
    def block_starts(self) -> list[int]:
        insns = self.program.insns
        leaders = {0}
        for pc, insn in enumerate(insns):
            if isinstance(insn, Jmp):
                if not isinstance(insn.target, int):
                    raise CompileError(
                        f"unresolved jump target {insn.target!r}")
                if 0 <= insn.target < len(insns):
                    leaders.add(insn.target)
                leaders.add(pc + 1)
            elif isinstance(insn, Exit):
                leaders.add(pc + 1)
        return sorted(pc for pc in leaders if pc < len(insns))

    def generate(self) -> str:
        starts = self.block_starts()
        block_of = {pc: i for i, pc in enumerate(starts)}
        insns = self.program.insns
        # Straight-line programs skip the dispatch loop entirely.  Any
        # jump needs it (even a single-block self-loop uses ``continue``).
        single = (len(starts) == 1
                  and not any(isinstance(i, Jmp) for i in insns))

        self.consts["_span"] = f"bpf:{self.program.name}"
        self.emit(0, "def _bpf_run(rt, ctx, budget):")
        self.emit(1, f'_stk = _Region(bytearray({STACK_SIZE}), True, "stack")')
        self.emit(1, f"r10 = _Ptr(_stk, {STACK_SIZE})")
        self.emit(1, 'r1 = _Ptr(_Region(bytes(ctx), False, "ctx"), 0)')
        self.emit(1, "r0 = r2 = r3 = r4 = r5 = r6 = r7 = r8 = r9 = None")
        self.emit(1, "executed = 0")
        if single:
            body = 1
        else:
            self.emit(1, "_b = 0")
            self.emit(1, "while True:")
            body = 3

        for bi, start in enumerate(starts):
            end = starts[bi + 1] if bi + 1 < len(starts) else len(insns)
            if not single:
                self.emit(2, f"{'if' if bi == 0 else 'elif'} _b == {bi}:")
            pcs = self.const("pcs", tuple(range(start, end)))
            self.emit(body, f"executed += {end - start}")
            self.emit(body, "if executed > budget:")
            self.emit(body + 1, f"_budget_fault(budget, executed, {pcs})")
            terminated = False
            for pc in range(start, end):
                terminated = self.emit_insn(insns[pc], body, block_of)
            if not terminated:
                if end in block_of:
                    self.emit(body, f"_b = {block_of[end]}")
                    self.emit(body, "continue")
                else:
                    self.emit(body, "raise RuntimeFault("
                                    f'"pc {end} out of program")')
        return "\n".join(self.lines) + "\n"

    # -- per-instruction emission -------------------------------------------
    def emit_insn(self, insn: Insn, ind: int, block_of: dict) -> bool:
        """Emit one instruction; returns True when it ends the block."""
        if isinstance(insn, Alu):
            self.emit_alu(insn, ind)
        elif isinstance(insn, Jmp):
            # Only an unconditional jump terminates the block; conditional
            # jumps fall through to the next block when not taken.
            self.emit_jmp(insn, ind, block_of)
            return insn.op == "ja"
        elif isinstance(insn, Load):
            self.emit_load(insn, ind)
        elif isinstance(insn, Store):
            self.emit_store(insn, ind)
        elif isinstance(insn, LoadMapFd):
            self.emit(ind, f"r{insn.dst} = {self.map_const(insn.map_name)}")
        elif isinstance(insn, Call):
            self.emit_call(insn, ind)
        elif isinstance(insn, CallKfunc):
            self.emit_kfunc(insn, ind)
        elif isinstance(insn, Exit):
            self.emit_exit(ind)
            return True
        else:
            raise CompileError(f"unknown instruction {insn!r}")
        return False

    def emit_alu(self, insn: Alu, ind: int) -> None:
        d = f"r{insn.dst}"
        op = insn.op
        if op == "mov":
            if insn.imm is not None:
                self.emit(ind, f"{d} = {insn.imm & U64_MASK}")
            else:
                self.emit(ind, f"{d} = r{insn.src}")
            return
        if op == "neg":
            self.emit(ind, f"if isinstance({d}, int):")
            self.emit(ind + 1, f"{d} = (-{d}) & {_MASK}")
            self.emit(ind, "else:")
            self.emit(ind + 1, 'raise RuntimeFault("neg on pointer")')
            return
        if insn.imm is not None:
            im = insn.imm & U64_MASK
            expr = self._alu_expr(op, d, str(im), imm=im)
            self.emit(ind, f"if isinstance({d}, int):")
            self.emit(ind + 1, f"{d} = {expr}")
            self.emit(ind, "else:")
            self.emit(ind + 1, f'{d} = _alu_slow("{op}", {d}, {im})')
        else:
            s = f"r{insn.src}"
            expr = self._alu_expr(op, d, "_s")
            self.emit(ind, f"_s = {s}")
            self.emit(ind, f"if isinstance({d}, int) and isinstance(_s, int):")
            self.emit(ind + 1, f"{d} = {expr}")
            self.emit(ind, "else:")
            self.emit(ind + 1, f'{d} = _alu_slow("{op}", {d}, _s)')

    @staticmethod
    def _alu_expr(op: str, d: str, s: str, imm: int | None = None) -> str:
        """Expression for ``d <op> s`` on pre-masked u64 scalars."""
        if op == "add":
            return f"({d} + {s}) & {_MASK}"
        if op == "sub":
            return f"({d} - {s}) & {_MASK}"
        if op == "mul":
            return f"({d} * {s}) & {_MASK}"
        if op == "div":
            if imm is not None:
                return "0" if imm == 0 else f"{d} // {s}"
            return f"({d} // {s}) if {s} else 0"
        if op == "mod":
            if imm is not None:
                return d if imm == 0 else f"{d} % {s}"
            return f"({d} % {s}) if {s} else {d}"
        if op == "and":
            return f"{d} & {s}"
        if op == "or":
            return f"{d} | {s}"
        if op == "xor":
            return f"{d} ^ {s}"
        if op == "lsh":
            shift = str(imm & 63) if imm is not None else f"({s} & 63)"
            return f"({d} << {shift}) & {_MASK}"
        if op == "rsh":
            shift = str(imm & 63) if imm is not None else f"({s} & 63)"
            return f"{d} >> {shift}"
        if op == "arsh":
            shift = str(imm & 63) if imm is not None else f"({s} & 63)"
            return f"(_sg({d}) >> {shift}) & {_MASK}"
        raise CompileError(f"unknown ALU op {op!r}")

    def emit_jmp(self, insn: Jmp, ind: int, block_of: dict) -> None:
        def goto(target: int, level: int) -> None:
            if target in block_of:
                self.emit(level, f"_b = {block_of[target]}")
                self.emit(level, "continue")
            else:
                self.emit(level, "raise RuntimeFault("
                                 f'"pc {target} out of program")')

        if insn.op == "ja":
            goto(insn.target, ind)
            return
        d = f"r{insn.dst}"
        op = insn.op
        if insn.imm is not None:
            im = insn.imm & U64_MASK
            guard = f"isinstance({d}, int)"
            if op in _CMP:
                expr = f"{d} {_CMP[op]} {im}"
            elif op in _SCMP:
                expr = f"_sg({d}) {_SCMP[op]} {_to_signed(im)}"
            else:  # jset
                expr = f"({d} & {im}) != 0"
            slow = f'_t = _jmp_slow("{op}", {d}, {im})'
        else:
            self.emit(ind, f"_s = r{insn.src}")
            guard = f"isinstance({d}, int) and isinstance(_s, int)"
            if op in _CMP:
                expr = f"{d} {_CMP[op]} _s"
            elif op in _SCMP:
                expr = f"_sg({d}) {_SCMP[op]} _sg(_s)"
            else:  # jset
                expr = f"({d} & _s) != 0"
            slow = f'_t = _jmp_slow("{op}", {d}, _s)'
        self.emit(ind, f"if {guard}:")
        self.emit(ind + 1, f"_t = {expr}")
        self.emit(ind, "else:")
        self.emit(ind + 1, slow)
        self.emit(ind, "if _t:")
        goto(insn.target, ind + 1)

    def emit_load(self, insn: Load, ind: int) -> None:
        d, w = f"r{insn.dst}", insn.width
        self.emit(ind, f"_p = r{insn.src}")
        self.emit(ind, "if isinstance(_p, _Ptr) and _p.region is not None:")
        self.emit(ind + 1, "_g = _p.region")
        self.emit(ind + 1, f"_o = _p.off + {insn.off}")
        self.emit(ind + 1, "_m = _g.data")
        self.emit(ind + 1, f"if 0 <= _o and _o + {w} <= len(_m):")
        self.emit(ind + 2, f'{d} = _fb(_m[_o:_o + {w}], "little")')
        self.emit(ind + 1, "else:")
        self.emit(ind + 2, f"{d} = _g.read(_o, {w})")
        self.emit(ind, "else:")
        self.emit(ind + 1, 'raise RuntimeFault('
                           '"load base is not a dereferenceable pointer")')

    def emit_store(self, insn: Store, ind: int) -> None:
        w = insn.width
        wmask = (1 << (8 * w)) - 1
        self.emit(ind, f"_p = r{insn.dst}")
        self.emit(ind, "if isinstance(_p, _Ptr) and _p.region is not None:")
        if insn.imm is not None:
            packed = self.const(
                "c", (insn.imm & wmask).to_bytes(w, "little"))
            value, fast = str(insn.imm), f"_m[_o:_o + {w}] = {packed}"
        else:
            value = "_v"
            fast = (f"_m[_o:_o + {w}] = "
                    f'(_v & {"0x%X" % wmask}).to_bytes({w}, "little")')
            self.emit(ind + 1, f"_v = r{insn.src}")
            self.emit(ind + 1, "if not isinstance(_v, int):")
            self.emit(ind + 2,
                      'raise RuntimeFault("store of non-scalar value")')
        self.emit(ind + 1, "_g = _p.region")
        self.emit(ind + 1, f"_o = _p.off + {insn.off}")
        self.emit(ind + 1, "_m = _g.data")
        self.emit(ind + 1, f"if _g.writable and 0 <= _o "
                           f"and _o + {w} <= len(_m):")
        self.emit(ind + 2, fast)
        self.emit(ind + 1, "else:")
        self.emit(ind + 2, f"_g.write(_o, {w}, {value})")
        self.emit(ind, "else:")
        self.emit(ind + 1, 'raise RuntimeFault('
                           '"store base is not a dereferenceable pointer")')

    def emit_call(self, insn: Call, ind: int) -> None:
        hid = insn.helper_id
        if hid == H.BPF_FUNC_MAP_LOOKUP_ELEM:
            self.emit(ind, "_a = _map_arg(r1)")
            self.emit(ind, "_key = _buffer_arg(r2, _a.key_size)")
            self.emit(ind, "_v = _a.lookup(_key)")
            self.emit(ind, "if _v is None:")
            self.emit(ind + 1, "r0 = 0")
            self.emit(ind, "else:")
            self.emit(ind + 1,
                      'r0 = _Ptr(_Region(_v, True, "map:" + _a.name), 0)')
        elif hid == H.BPF_FUNC_MAP_UPDATE_ELEM:
            self.emit(ind, "_a = _map_arg(r1)")
            self.emit(ind, "_key = _buffer_arg(r2, _a.key_size)")
            self.emit(ind, "_val = _buffer_arg(r3, _a.value_size)")
            self.emit(ind, "try:")
            self.emit(ind + 1, "_a.update(_key, _val)")
            self.emit(ind + 1, "r0 = 0")
            self.emit(ind, "except ValueError:")
            self.emit(ind + 1, f"r0 = {_MASK}")
        elif hid == H.BPF_FUNC_MAP_DELETE_ELEM:
            self.emit(ind, "_a = _map_arg(r1)")
            self.emit(ind, "_key = _buffer_arg(r2, _a.key_size)")
            self.emit(ind, "try:")
            self.emit(ind + 1, "_a.delete(_key)")
            self.emit(ind + 1, "r0 = 0")
            self.emit(ind, "except ValueError:")
            self.emit(ind + 1, f"r0 = {_MASK}")
        elif hid == H.BPF_FUNC_RINGBUF_OUTPUT:
            self.emit(ind, "_a = _map_arg(r1)")
            self.emit(ind, 'if _a.KIND != "ringbuf":')
            self.emit(ind + 1, 'raise RuntimeFault('
                               '"bpf_ringbuf_output on non-ringbuf map")')
            self.emit(ind, "_val = _buffer_arg(r2, _a.value_size)")
            self.emit(ind, f"r0 = _a.output(_val) & {_MASK}")
        elif hid == H.BPF_FUNC_KTIME_GET_NS:
            self.emit(ind, f"r0 = int(rt.time_ns()) & {_MASK}")
        elif hid == H.BPF_FUNC_TRACE_PRINTK:
            self.emit(ind, "_v = r1")
            self.emit(ind, "if not isinstance(_v, int):")
            self.emit(ind + 1,
                      'raise RuntimeFault("trace_printk arg not scalar")')
            self.emit(ind, "rt.printk_log.append(_v)")
            self.emit(ind, "r0 = 0")
        elif hid == H.BPF_FUNC_CACHED_PAGES:
            self.emit(ind, "_v = r1")
            self.emit(ind, "if not isinstance(_v, int):")
            self.emit(ind + 1,
                      'raise RuntimeFault("cached_pages arg not scalar")')
            self.emit(ind, "_ps = rt.page_stats")
            self.emit(ind, "r0 = (0 if _ps is None else "
                           f"int(_ps.cached_pages(_v)) & {_MASK})")
        else:
            # Unknown id: raise the interpreter's error lazily, when (if)
            # execution actually reaches the call.
            self.emit(ind, f"_spec_for({hid})")
            self.emit(ind, "raise RuntimeFault("
                           f'"helper {hid} not implemented")')
        self.emit(ind, "r1 = r2 = r3 = r4 = r5 = None")

    def emit_kfunc(self, insn: CallKfunc, ind: int) -> None:
        if insn.name not in self.kfuncs:
            # Resolution failed at load time; raise the registry's error
            # only if execution reaches the call (interpreter parity).
            self.emit(ind, f"rt.kfuncs.get({insn.name!r})")
            return
        spec = self.kfuncs.get(insn.name)
        kf = self.const("kf", spec)
        args = []
        for idx in range(spec.n_args):
            arg = f"_a{idx + 1}"
            self.emit(ind, f"{arg} = r{idx + 1}")
            self.emit(ind, f"if not isinstance({arg}, int):")
            self.emit(ind + 1, "raise RuntimeFault("
                               f'"kfunc {insn.name}: arg{idx + 1} '
                               'not scalar")')
            args.append(arg)
        self.emit(ind, f"_x = {kf}.func({', '.join(args)})")
        self.emit(ind, f"r0 = int(_x) & {_MASK} if _x is not None else 0")
        self.emit(ind, "r1 = r2 = r3 = r4 = r5 = None")

    def emit_exit(self, ind: int) -> None:
        self.emit(ind, "if not isinstance(r0, int):")
        self.emit(ind + 1, 'raise RuntimeFault("exit with non-scalar R0")')
        self.emit(ind, "_tr = rt.tracer")
        self.emit(ind, "if _tr is not None and _tr.enabled:")
        self.emit(ind + 1, '_tr.complete(_span, "ebpf", '
                           "rt.time_ns() / 1e9, dur=executed * _cost, "
                           'track="ebpf", insns=executed, r0=r0)')
        self.emit(ind, "return ExecutionResult(r0=r0, insn_count=executed)")


def _cache_key(program: Program, kfuncs: KfuncRegistry) -> tuple:
    """Structure key: everything the generated *source* depends on."""
    kfunc_sig = tuple(
        (insn.name, kfuncs.get(insn.name).n_args
         if insn.name in kfuncs else None)
        for insn in program.insns if isinstance(insn, CallKfunc))
    return (program.name, tuple(program.insns), tuple(program.maps),
            kfunc_sig)


def compile_program(program: Program, interpreter) -> CompiledProgram:
    """Translate ``program`` once for ``interpreter``'s runtime.

    Raises :class:`CompileError` for programs the generator cannot
    handle (unresolved labels, foreign instruction types); the caller
    keeps interpreting those.
    """
    gen = _Codegen(program, interpreter.kfuncs)
    source = gen.generate()
    key = _cache_key(program, interpreter.kfuncs)
    code = _CODE_CACHE.get(key)
    if code is None:
        code = compile(source, f"<bpf:{program.name}>", "exec")
        _CODE_CACHE[key] = code
    namespace = dict(_BASE_NAMESPACE)
    namespace.update(gen.consts)
    exec(code, namespace)
    return CompiledProgram(owner=interpreter, fn=namespace["_bpf_run"],
                           source=source)
