"""Interpreter for verified programs.

Runs an assembled :class:`~repro.ebpf.asm.Program` against a concrete
context, with the runtime guarantees the kernel gives: a hard budget on
executed instructions (loop termination) and bounds-checked memory even
though the verifier already proved safety (defense in depth — a verifier
bug must not corrupt the "kernel").

Execution cost is reported as the executed-instruction count so callers
(the kprobe dispatch path) can charge simulated nanoseconds for program
runs — eBPF overhead is part of what the paper measures.
"""

from __future__ import annotations

import os
import struct
from dataclasses import dataclass, field
from typing import Callable

from repro.ebpf import helpers as H
from repro.ebpf.asm import Program
from repro.ebpf.insn import (
    FP,
    NUM_REGS,
    R0,
    R1,
    STACK_SIZE,
    U64_MASK,
    Alu,
    Call,
    CallKfunc,
    Exit,
    Jmp,
    Load,
    LoadMapFd,
    Store,
)
from repro.ebpf.kfunc import KfuncRegistry
from repro.ebpf.maps import BpfMap

INSN_BUDGET = 1 << 20

#: Cost of one interpreted BPF instruction.  JITed eBPF runs at roughly
#: nanosecond-per-instruction scale; the exact constant only needs to keep
#: program overhead small relative to I/O, which the paper confirms (<1 %).
INSN_COST_SECONDS = 2e-9


class RuntimeFault(RuntimeError):
    """Illegal runtime behaviour (should be prevented by the verifier)."""


@dataclass(slots=True)
class ExecutionResult:
    """Outcome of one program run."""

    r0: int
    insn_count: int
    trace: list[int] = field(default_factory=list)


class _Region:
    """A bounds-checked byte region addressable from BPF."""

    __slots__ = ("data", "writable", "name")

    def __init__(self, data: bytearray | bytes, writable: bool, name: str):
        self.data = data
        self.writable = writable
        self.name = name

    def read(self, off: int, width: int) -> int:
        if off < 0 or off + width > len(self.data):
            raise RuntimeFault(
                f"{self.name}: read [{off}, {off + width}) out of bounds")
        return int.from_bytes(self.data[off:off + width], "little")

    def read_bytes(self, off: int, size: int) -> bytes:
        if off < 0 or off + size > len(self.data):
            raise RuntimeFault(
                f"{self.name}: read [{off}, {off + size}) out of bounds")
        return bytes(self.data[off:off + size])

    def write(self, off: int, width: int, value: int) -> None:
        if not self.writable:
            raise RuntimeFault(f"{self.name}: region is read-only")
        if off < 0 or off + width > len(self.data):
            raise RuntimeFault(
                f"{self.name}: write [{off}, {off + width}) out of bounds")
        self.data[off:off + width] = (value & ((1 << (8 * width)) - 1)).to_bytes(
            width, "little")


@dataclass(slots=True)
class _Ptr:
    """A concrete typed pointer: region + byte offset."""

    region: _Region | None
    off: int
    bpf_map: BpfMap | None = None  # set for const-map pointers

    def moved(self, delta: int) -> "_Ptr":
        return _Ptr(self.region, self.off + delta, self.bpf_map)


def _to_signed(value: int) -> int:
    return value - (1 << 64) if value >= (1 << 63) else value


class Interpreter:
    """Executes programs; shared helper/kfunc environment.

    Two execution tiers share this entry point.  By default a program is
    *compiled* on first run — translated once into a Python closure with
    identical semantics (see :mod:`repro.ebpf.compile`) — and every
    later run executes the closure.  Setting ``REPRO_EBPF_INTERP=1`` in
    the environment (or ``use_compiled = False`` on an instance) falls
    back to the per-instruction interpreter loop, which the equivalence
    fuzz harness runs side by side with the compiled tier.
    """

    def __init__(self, kfuncs: KfuncRegistry | None = None,
                 time_ns: Callable[[], int] | None = None):
        self.kfuncs = kfuncs or KfuncRegistry()
        self.time_ns = time_ns or (lambda: 0)
        self.printk_log: list[int] = []
        #: Trace plane hook (duck-typed; see repro.trace).  When set and
        #: enabled, every completed program run emits one span.
        self.tracer = None
        #: Residency hook for bpf_cached_pages(): any object exposing
        #: ``cached_pages(ino) -> int`` (the kernel wires its page cache
        #: here).  ``None`` makes the helper report 0 — a standalone
        #: interpreter has no page cache to inspect.
        self.page_stats = None
        #: Tier switch: compiled closures by default, interpreter loop
        #: when the escape hatch is set.
        self.use_compiled = os.environ.get(
            "REPRO_EBPF_INTERP", "") not in ("1", "true", "yes", "on")

    def run(self, program: Program, ctx: bytes = b"",
            budget: int = INSN_BUDGET) -> ExecutionResult:
        """Run ``program`` on the active tier (compiled unless disabled)."""
        if self.use_compiled:
            compiled = getattr(program, "_compiled", None)
            if compiled is None or compiled.owner is not self:
                compiled = self.prepare(program)
                if compiled is None:   # generator punted; interpret
                    return self.interpret(program, ctx, budget)
            return compiled.fn(self, ctx, budget)
        return self.interpret(program, ctx, budget)

    def prepare(self, program: Program):
        """Compile ``program`` for this runtime and cache it on the
        program (the program-load step; kprobe attach calls this so the
        first fire already runs compiled code).  Returns the compiled
        form, or ``None`` when the program cannot be compiled."""
        from repro.ebpf.compile import CompileError, compile_program
        self._kfunc_table(program)   # resolve once for both tiers
        try:
            compiled = compile_program(program, self)
        except CompileError:
            return None
        program._compiled = compiled
        return compiled

    def interpret(self, program: Program, ctx: bytes = b"",
                  budget: int = INSN_BUDGET) -> ExecutionResult:
        """The per-instruction fallback tier (``REPRO_EBPF_INTERP=1``)."""
        stack = _Region(bytearray(STACK_SIZE), writable=True, name="stack")
        ctx_region = _Region(bytes(ctx), writable=False, name="ctx")
        regs: list[object] = [None] * NUM_REGS
        regs[R1] = _Ptr(ctx_region, 0)
        regs[FP] = _Ptr(stack, STACK_SIZE)

        tracer = self.tracer
        tracing = tracer is not None and tracer.enabled
        kfunc_table = self._kfunc_table(program)
        pc = 0
        executed = 0
        while True:
            if executed >= budget:
                raise RuntimeFault(
                    f"instruction budget {budget} exhausted at pc {pc}")
            if not 0 <= pc < len(program.insns):
                raise RuntimeFault(f"pc {pc} out of program")
            insn = program.insns[pc]
            executed += 1

            if isinstance(insn, Exit):
                r0 = regs[R0]
                if not isinstance(r0, int):
                    raise RuntimeFault("exit with non-scalar R0")
                if tracing:
                    tracer.complete(
                        f"bpf:{program.name}", "ebpf",
                        self.time_ns() / 1e9,
                        dur=executed * INSN_COST_SECONDS, track="ebpf",
                        insns=executed, r0=r0)
                return ExecutionResult(r0=r0, insn_count=executed)
            if isinstance(insn, Alu):
                self._alu(regs, insn)
                pc += 1
            elif isinstance(insn, Jmp):
                pc = self._jump(regs, insn, pc)
            elif isinstance(insn, Load):
                ptr = self._as_ptr(regs[insn.src], "load base")
                regs[insn.dst] = ptr.region.read(ptr.off + insn.off, insn.width)
                pc += 1
            elif isinstance(insn, Store):
                ptr = self._as_ptr(regs[insn.dst], "store base")
                value = insn.imm if insn.imm is not None else regs[insn.src]
                if not isinstance(value, int):
                    raise RuntimeFault("store of non-scalar value")
                ptr.region.write(ptr.off + insn.off, insn.width, value)
                pc += 1
            elif isinstance(insn, LoadMapFd):
                regs[insn.dst] = _Ptr(None, 0,
                                      bpf_map=program.map_named(insn.map_name))
                pc += 1
            elif isinstance(insn, Call):
                regs[R0] = self._helper(regs, insn.helper_id)
                self._clobber(regs)
                pc += 1
            elif isinstance(insn, CallKfunc):
                spec = kfunc_table.get(insn.name)
                if spec is None:   # unresolved (or late-registered) name
                    spec = self.kfuncs.get(insn.name)
                args = []
                for arg_idx in range(spec.n_args):
                    arg = regs[R1 + arg_idx]
                    if not isinstance(arg, int):
                        raise RuntimeFault(
                            f"kfunc {insn.name}: arg{arg_idx + 1} not scalar")
                    args.append(arg)
                result = spec.func(*args)
                regs[R0] = int(result) & U64_MASK if result is not None else 0
                self._clobber(regs)
                pc += 1
            else:  # pragma: no cover
                raise RuntimeFault(f"unknown instruction {insn!r}")

    def _kfunc_table(self, program: Program) -> dict:
        """Kfunc resolution hoisted to program-load time (once per
        program, not per invocation); the compiled tier resolves against
        the same registry at the same point.  Names that fail to resolve
        stay lazy so late registration — or the registry's error — keeps
        per-invocation behaviour."""
        cached = getattr(program, "_kfunc_table", None)
        if cached is not None and cached[0] is self.kfuncs:
            return cached[1]
        table = {insn.name: self.kfuncs.get(insn.name)
                 for insn in program.insns
                 if isinstance(insn, CallKfunc) and insn.name in self.kfuncs}
        program._kfunc_table = (self.kfuncs, table)
        return table

    # -- instruction semantics -------------------------------------------------
    @staticmethod
    def _as_ptr(value: object, what: str) -> _Ptr:
        if not isinstance(value, _Ptr) or value.region is None:
            raise RuntimeFault(f"{what} is not a dereferenceable pointer")
        return value

    def _alu(self, regs: list[object], insn: Alu) -> None:
        op = insn.op
        if op == "mov":
            regs[insn.dst] = (insn.imm & U64_MASK if insn.imm is not None
                              else regs[insn.src])
            return
        if op == "neg":
            value = regs[insn.dst]
            if not isinstance(value, int):
                raise RuntimeFault("neg on pointer")
            regs[insn.dst] = (-value) & U64_MASK
            return
        dst = regs[insn.dst]
        src = insn.imm if insn.imm is not None else regs[insn.src]
        if isinstance(dst, _Ptr):
            if op == "add" and isinstance(src, int):
                regs[insn.dst] = dst.moved(_to_signed(src & U64_MASK))
            elif op == "sub" and isinstance(src, int):
                regs[insn.dst] = dst.moved(-_to_signed(src & U64_MASK))
            else:
                raise RuntimeFault(f"{op} on pointer")
            return
        if not isinstance(dst, int) or not isinstance(src, int):
            raise RuntimeFault(f"{op} with non-scalar operand")
        src &= U64_MASK
        if op == "add":
            result = dst + src
        elif op == "sub":
            result = dst - src
        elif op == "mul":
            result = dst * src
        elif op == "div":
            result = 0 if src == 0 else dst // src
        elif op == "mod":
            result = dst if src == 0 else dst % src
        elif op == "and":
            result = dst & src
        elif op == "or":
            result = dst | src
        elif op == "xor":
            result = dst ^ src
        elif op == "lsh":
            result = dst << (src & 63)
        elif op == "rsh":
            result = dst >> (src & 63)
        elif op == "arsh":
            result = _to_signed(dst) >> (src & 63)
        else:  # pragma: no cover - validated at construction
            raise RuntimeFault(f"unknown ALU op {op}")
        regs[insn.dst] = result & U64_MASK

    def _jump(self, regs: list[object], insn: Jmp, pc: int) -> int:
        if insn.op == "ja":
            return insn.target
        dst = regs[insn.dst]
        src = insn.imm if insn.imm is not None else regs[insn.src]
        if isinstance(dst, _Ptr):
            # Only the NULL check is legal on pointers; a live _Ptr is by
            # construction non-null (NULL lookups return scalar 0).
            if insn.op in ("jeq", "jne") and isinstance(src, int) and src == 0:
                return insn.target if insn.op == "jne" else pc + 1
            raise RuntimeFault("pointer comparison beyond NULL check")
        if not isinstance(dst, int) or not isinstance(src, int):
            raise RuntimeFault("jump on non-scalar operands")
        dst &= U64_MASK
        src &= U64_MASK
        op = insn.op
        if op == "jeq":
            taken = dst == src
        elif op == "jne":
            taken = dst != src
        elif op == "jgt":
            taken = dst > src
        elif op == "jge":
            taken = dst >= src
        elif op == "jlt":
            taken = dst < src
        elif op == "jle":
            taken = dst <= src
        elif op == "jsgt":
            taken = _to_signed(dst) > _to_signed(src)
        elif op == "jsge":
            taken = _to_signed(dst) >= _to_signed(src)
        elif op == "jslt":
            taken = _to_signed(dst) < _to_signed(src)
        elif op == "jsle":
            taken = _to_signed(dst) <= _to_signed(src)
        elif op == "jset":
            taken = (dst & src) != 0
        else:  # pragma: no cover
            raise RuntimeFault(f"unknown jump op {op}")
        return insn.target if taken else pc + 1

    # -- helpers ---------------------------------------------------------------
    def _helper(self, regs: list[object], helper_id: int) -> object:
        # Dispatch directly on the id: the helper table is static, so
        # there is nothing to resolve per invocation (spec_for is only
        # consulted for unknown ids, to raise its canonical error).
        if helper_id == H.BPF_FUNC_MAP_LOOKUP_ELEM:
            bpf_map = self._map_arg(regs[R1])
            key = self._buffer_arg(regs[R1 + 1], bpf_map.key_size)
            value = bpf_map.lookup(key)
            if value is None:
                return 0
            return _Ptr(_Region(value, writable=True,
                                name=f"map:{bpf_map.name}"), 0)
        if helper_id == H.BPF_FUNC_MAP_UPDATE_ELEM:
            bpf_map = self._map_arg(regs[R1])
            key = self._buffer_arg(regs[R1 + 1], bpf_map.key_size)
            value = self._buffer_arg(regs[R1 + 2], bpf_map.value_size)
            try:
                bpf_map.update(key, value)
            except ValueError:
                return (-1) & U64_MASK
            return 0
        if helper_id == H.BPF_FUNC_MAP_DELETE_ELEM:
            bpf_map = self._map_arg(regs[R1])
            key = self._buffer_arg(regs[R1 + 1], bpf_map.key_size)
            try:
                bpf_map.delete(key)
            except ValueError:
                return (-1) & U64_MASK
            return 0
        if helper_id == H.BPF_FUNC_RINGBUF_OUTPUT:
            bpf_map = self._map_arg(regs[R1])
            if bpf_map.KIND != "ringbuf":
                raise RuntimeFault("bpf_ringbuf_output on non-ringbuf map")
            data = self._buffer_arg(regs[R1 + 1], bpf_map.value_size)
            # reserve + copy + commit; a full ring is -ENOSPC (flattened
            # to -1 like the update helper), never a fault.
            return bpf_map.output(data) & U64_MASK
        if helper_id == H.BPF_FUNC_KTIME_GET_NS:
            return int(self.time_ns()) & U64_MASK
        if helper_id == H.BPF_FUNC_TRACE_PRINTK:
            value = regs[R1]
            if not isinstance(value, int):
                raise RuntimeFault("trace_printk arg not scalar")
            self.printk_log.append(value)
            return 0
        if helper_id == H.BPF_FUNC_CACHED_PAGES:
            ino = regs[R1]
            if not isinstance(ino, int):
                raise RuntimeFault("cached_pages arg not scalar")
            if self.page_stats is None:
                return 0
            return int(self.page_stats.cached_pages(ino)) & U64_MASK
        H.spec_for(helper_id)   # unknown id: raise the canonical KeyError
        raise RuntimeFault(f"helper {helper_id} not implemented")

    @staticmethod
    def _map_arg(value: object) -> BpfMap:
        if not isinstance(value, _Ptr) or value.bpf_map is None:
            raise RuntimeFault("helper expected a map pointer")
        return value.bpf_map

    @staticmethod
    def _buffer_arg(value: object, size: int) -> bytes:
        if not isinstance(value, _Ptr) or value.region is None:
            raise RuntimeFault("helper expected a buffer pointer")
        return value.region.read_bytes(value.off, size)

    @staticmethod
    def _clobber(regs: list[object]) -> None:
        for reg in range(R1, R1 + 5):
            regs[reg] = None


def pack_u64(*values: int) -> bytes:
    """Pack integers as a little-endian u64 context struct."""
    return struct.pack(f"<{len(values)}Q", *values)
