"""BPF helper function table: ids, type signatures, runtime semantics.

The helper set is deliberately the small classic core — notably there is
*no* helper that can issue block I/O or insert pages into the page cache.
That omission is the point: it is why the paper (and this reproduction)
must expose ``snapbpf_prefetch`` as an explicitly registered kfunc.
"""

from __future__ import annotations

from dataclasses import dataclass

# Helper ids (matching the classic kernel numbering where one exists).
BPF_FUNC_MAP_LOOKUP_ELEM = 1
BPF_FUNC_MAP_UPDATE_ELEM = 2
BPF_FUNC_MAP_DELETE_ELEM = 3
BPF_FUNC_KTIME_GET_NS = 5
BPF_FUNC_TRACE_PRINTK = 6
BPF_FUNC_RINGBUF_OUTPUT = 130
BPF_FUNC_CACHED_PAGES = 131

# Argument archetypes used by the verifier.
ARG_CONST_MAP_PTR = "const_map_ptr"
ARG_PTR_TO_MAP_KEY = "ptr_to_map_key"
ARG_PTR_TO_MAP_VALUE = "ptr_to_map_value"
ARG_SCALAR = "scalar"

# Return archetypes.
RET_INTEGER = "integer"
RET_MAP_VALUE_OR_NULL = "map_value_or_null"
RET_VOID = "void"


#: Map kinds admitting the classic lookup/update/delete key/value API.
KEYED_MAP_KINDS = ("hash", "array")


@dataclass(frozen=True)
class HelperSpec:
    """Static signature of one helper, consumed by the verifier."""

    helper_id: int
    name: str
    args: tuple[str, ...]
    ret: str
    #: Map kinds legal for this helper's ARG_CONST_MAP_PTR argument
    #: (``None`` = any).  The kernel encodes the same compatibility matrix
    #: in ``check_map_func_compatibility``; e.g. ``bpf_ringbuf_output``
    #: on a hash map — or ``bpf_map_lookup_elem`` on a ringbuf — is a
    #: verifier rejection, not a runtime error.
    map_kinds: tuple[str, ...] | None = None


HELPERS: dict[int, HelperSpec] = {
    spec.helper_id: spec
    for spec in (
        HelperSpec(BPF_FUNC_MAP_LOOKUP_ELEM, "bpf_map_lookup_elem",
                   (ARG_CONST_MAP_PTR, ARG_PTR_TO_MAP_KEY),
                   RET_MAP_VALUE_OR_NULL, map_kinds=KEYED_MAP_KINDS),
        HelperSpec(BPF_FUNC_MAP_UPDATE_ELEM, "bpf_map_update_elem",
                   (ARG_CONST_MAP_PTR, ARG_PTR_TO_MAP_KEY,
                    ARG_PTR_TO_MAP_VALUE, ARG_SCALAR),
                   RET_INTEGER, map_kinds=KEYED_MAP_KINDS),
        HelperSpec(BPF_FUNC_MAP_DELETE_ELEM, "bpf_map_delete_elem",
                   (ARG_CONST_MAP_PTR, ARG_PTR_TO_MAP_KEY),
                   RET_INTEGER, map_kinds=KEYED_MAP_KINDS),
        HelperSpec(BPF_FUNC_KTIME_GET_NS, "bpf_ktime_get_ns",
                   (), RET_INTEGER),
        HelperSpec(BPF_FUNC_TRACE_PRINTK, "bpf_trace_printk",
                   (ARG_SCALAR,), RET_INTEGER),
        HelperSpec(BPF_FUNC_RINGBUF_OUTPUT, "bpf_ringbuf_output",
                   (ARG_CONST_MAP_PTR, ARG_PTR_TO_MAP_VALUE),
                   RET_INTEGER, map_kinds=("ringbuf",)),
        # Read-only residency introspection for eviction-policy programs:
        # how many pages of inode R1 are currently in the page cache.
        HelperSpec(BPF_FUNC_CACHED_PAGES, "bpf_cached_pages",
                   (ARG_SCALAR,), RET_INTEGER),
    )
}


def spec_for(helper_id: int) -> HelperSpec:
    try:
        return HELPERS[helper_id]
    except KeyError:
        raise KeyError(f"unknown BPF helper id {helper_id}") from None
