"""BPF maps: the kernel/userspace data plane.

SnapBPF uses maps twice: the capture program records working-set page
offsets into a map the VMM later drains, and on restore the VMM loads the
grouped offset ranges into an array map the prefetch program walks.

Keys and values are fixed-size byte strings, as in the kernel; integer
convenience accessors (little-endian u32/u64) are provided for userspace
callers.  In-program access goes through the helper functions and is
bounds-checked by the verifier against ``value_size``.
"""

from __future__ import annotations

import struct


class MapError(ValueError):
    """Bad key/value size, capacity exhausted, or unknown key."""


class BpfMap:
    """Common behaviour: sized keys/values, capacity, byte-level access."""

    KIND = "map"

    def __init__(self, name: str, key_size: int, value_size: int,
                 max_entries: int):
        if key_size <= 0 or value_size <= 0 or max_entries <= 0:
            raise MapError("map dimensions must be positive")
        self.name = name
        self.key_size = key_size
        self.value_size = value_size
        self.max_entries = max_entries

    # -- subclass interface ---------------------------------------------------
    def lookup(self, key: bytes) -> bytearray | None:
        raise NotImplementedError

    def update(self, key: bytes, value: bytes) -> None:
        raise NotImplementedError

    def delete(self, key: bytes) -> None:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def keys(self) -> list[bytes]:
        raise NotImplementedError

    # -- shared checks ---------------------------------------------------------
    def _check_key(self, key: bytes) -> bytes:
        key = bytes(key)
        if len(key) != self.key_size:
            raise MapError(
                f"map {self.name!r}: key size {len(key)} != {self.key_size}")
        return key

    def _check_value(self, value: bytes) -> bytearray:
        value = bytearray(value)
        if len(value) != self.value_size:
            raise MapError(
                f"map {self.name!r}: value size {len(value)} != {self.value_size}")
        return value

    # -- userspace integer conveniences (bpf(2) syscall wrappers) -------------
    def update_u64s(self, key_u64: int, *values: int) -> None:
        key = struct.pack("<Q", key_u64)[: self.key_size]
        if len(key) < self.key_size:
            key = key.ljust(self.key_size, b"\0")
        packed = struct.pack(f"<{len(values)}Q", *values)
        self.update(key, packed.ljust(self.value_size, b"\0"))

    def lookup_u64s(self, key_u64: int) -> tuple[int, ...] | None:
        key = struct.pack("<Q", key_u64)[: self.key_size]
        if len(key) < self.key_size:
            key = key.ljust(self.key_size, b"\0")
        value = self.lookup(key)
        if value is None:
            return None
        count = self.value_size // 8
        return struct.unpack(f"<{count}Q", bytes(value[: count * 8]))

    def items_u64(self) -> list[tuple[int, tuple[int, ...]]]:
        """All entries decoded as (key-as-u64, value-as-u64-tuple)."""
        out = []
        for key in self.keys():
            key_u64 = int.from_bytes(key, "little")
            value = self.lookup(key)
            assert value is not None
            count = self.value_size // 8
            out.append(
                (key_u64, struct.unpack(f"<{count}Q", bytes(value[: count * 8]))))
        return out

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<{type(self).__name__} {self.name!r} key={self.key_size} "
                f"value={self.value_size} max={self.max_entries} len={len(self)}>")


class HashMap(BpfMap):
    """BPF_MAP_TYPE_HASH: dynamic membership up to max_entries."""

    KIND = "hash"

    def __init__(self, name: str, key_size: int = 8, value_size: int = 8,
                 max_entries: int = 1 << 20):
        super().__init__(name, key_size, value_size, max_entries)
        self._table: dict[bytes, bytearray] = {}

    def lookup(self, key: bytes) -> bytearray | None:
        return self._table.get(self._check_key(key))

    def update(self, key: bytes, value: bytes) -> None:
        key = self._check_key(key)
        if key not in self._table and len(self._table) >= self.max_entries:
            raise MapError(f"map {self.name!r} full ({self.max_entries} entries)")
        self._table[key] = self._check_value(value)

    def delete(self, key: bytes) -> None:
        key = self._check_key(key)
        if key not in self._table:
            raise MapError(f"map {self.name!r}: no such key")
        del self._table[key]

    def clear(self) -> None:
        self._table.clear()

    def __len__(self) -> int:
        return len(self._table)

    def keys(self) -> list[bytes]:
        return list(self._table)


class ArrayMap(BpfMap):
    """BPF_MAP_TYPE_ARRAY: u32-indexed, preallocated, never deletable."""

    KIND = "array"

    def __init__(self, name: str, value_size: int = 8, max_entries: int = 1024):
        super().__init__(name, key_size=4, value_size=value_size,
                         max_entries=max_entries)
        self._slots = [bytearray(value_size) for _ in range(max_entries)]

    def _index(self, key: bytes) -> int | None:
        key = self._check_key(key)
        index = struct.unpack("<I", key)[0]
        return index if index < self.max_entries else None

    def lookup(self, key: bytes) -> bytearray | None:
        index = self._index(key)
        return None if index is None else self._slots[index]

    def update(self, key: bytes, value: bytes) -> None:
        index = self._index(key)
        if index is None:
            raise MapError(f"array map {self.name!r}: index out of bounds")
        self._slots[index][:] = self._check_value(value)

    def delete(self, key: bytes) -> None:
        raise MapError("array map entries cannot be deleted")

    def __len__(self) -> int:
        return self.max_entries

    def keys(self) -> list[bytes]:
        return [struct.pack("<I", i) for i in range(self.max_entries)]
