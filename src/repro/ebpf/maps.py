"""BPF maps: the kernel/userspace data plane.

SnapBPF uses maps twice: the capture program records working-set page
offsets into a map the VMM later drains, and on restore the VMM loads the
grouped offset ranges into an array map the prefetch program walks.

Keys and values are fixed-size byte strings, as in the kernel; integer
convenience accessors (little-endian u32/u64) are provided for userspace
callers.  In-program access goes through the helper functions and is
bounds-checked by the verifier against ``value_size``.
"""

from __future__ import annotations

import struct
from collections import deque


class MapError(ValueError):
    """Bad key/value size, capacity exhausted, or unknown key."""


class BpfMap:
    """Common behaviour: sized keys/values, capacity, byte-level access."""

    KIND = "map"

    def __init__(self, name: str, key_size: int, value_size: int,
                 max_entries: int):
        if key_size <= 0 or value_size <= 0 or max_entries <= 0:
            raise MapError("map dimensions must be positive")
        self.name = name
        self.key_size = key_size
        self.value_size = value_size
        self.max_entries = max_entries

    # -- subclass interface ---------------------------------------------------
    def lookup(self, key: bytes) -> bytearray | None:
        raise NotImplementedError

    def update(self, key: bytes, value: bytes) -> None:
        raise NotImplementedError

    def delete(self, key: bytes) -> None:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def keys(self) -> list[bytes]:
        raise NotImplementedError

    # -- shared checks ---------------------------------------------------------
    def _check_key(self, key: bytes) -> bytes:
        key = bytes(key)
        if len(key) != self.key_size:
            raise MapError(
                f"map {self.name!r}: key size {len(key)} != {self.key_size}")
        return key

    def _check_value(self, value: bytes) -> bytearray:
        value = bytearray(value)
        if len(value) != self.value_size:
            raise MapError(
                f"map {self.name!r}: value size {len(value)} != {self.value_size}")
        return value

    # -- userspace integer conveniences (bpf(2) syscall wrappers) -------------
    def update_u64s(self, key_u64: int, *values: int) -> None:
        key = struct.pack("<Q", key_u64)[: self.key_size]
        if len(key) < self.key_size:
            key = key.ljust(self.key_size, b"\0")
        packed = struct.pack(f"<{len(values)}Q", *values)
        self.update(key, packed.ljust(self.value_size, b"\0"))

    def lookup_u64s(self, key_u64: int) -> tuple[int, ...] | None:
        key = struct.pack("<Q", key_u64)[: self.key_size]
        if len(key) < self.key_size:
            key = key.ljust(self.key_size, b"\0")
        value = self.lookup(key)
        if value is None:
            return None
        count = self.value_size // 8
        return struct.unpack(f"<{count}Q", bytes(value[: count * 8]))

    def items_u64(self) -> list[tuple[int, tuple[int, ...]]]:
        """All entries decoded as (key-as-u64, value-as-u64-tuple)."""
        out = []
        for key in self.keys():
            key_u64 = int.from_bytes(key, "little")
            value = self.lookup(key)
            assert value is not None
            count = self.value_size // 8
            out.append(
                (key_u64, struct.unpack(f"<{count}Q", bytes(value[: count * 8]))))
        return out

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<{type(self).__name__} {self.name!r} key={self.key_size} "
                f"value={self.value_size} max={self.max_entries} len={len(self)}>")


class HashMap(BpfMap):
    """BPF_MAP_TYPE_HASH: dynamic membership up to max_entries."""

    KIND = "hash"

    def __init__(self, name: str, key_size: int = 8, value_size: int = 8,
                 max_entries: int = 1 << 20):
        super().__init__(name, key_size, value_size, max_entries)
        self._table: dict[bytes, bytearray] = {}

    def lookup(self, key: bytes) -> bytearray | None:
        return self._table.get(self._check_key(key))

    def update(self, key: bytes, value: bytes) -> None:
        key = self._check_key(key)
        if key not in self._table and len(self._table) >= self.max_entries:
            raise MapError(f"map {self.name!r} full ({self.max_entries} entries)")
        self._table[key] = self._check_value(value)

    def delete(self, key: bytes) -> None:
        key = self._check_key(key)
        if key not in self._table:
            raise MapError(f"map {self.name!r}: no such key")
        del self._table[key]

    def clear(self) -> None:
        self._table.clear()

    def __len__(self) -> int:
        return len(self._table)

    def keys(self) -> list[bytes]:
        return list(self._table)


class ArrayMap(BpfMap):
    """BPF_MAP_TYPE_ARRAY: u32-indexed, preallocated, never deletable."""

    KIND = "array"

    def __init__(self, name: str, value_size: int = 8, max_entries: int = 1024):
        super().__init__(name, key_size=4, value_size=value_size,
                         max_entries=max_entries)
        self._slots = [bytearray(value_size) for _ in range(max_entries)]

    def _index(self, key: bytes) -> int | None:
        key = self._check_key(key)
        index = struct.unpack("<I", key)[0]
        return index if index < self.max_entries else None

    def lookup(self, key: bytes) -> bytearray | None:
        index = self._index(key)
        return None if index is None else self._slots[index]

    def update(self, key: bytes, value: bytes) -> None:
        index = self._index(key)
        if index is None:
            raise MapError(f"array map {self.name!r}: index out of bounds")
        self._slots[index][:] = self._check_value(value)

    def delete(self, key: bytes) -> None:
        raise MapError("array map entries cannot be deleted")

    def __len__(self) -> int:
        return self.max_entries

    def keys(self) -> list[bytes]:
        return [struct.pack("<I", i) for i in range(self.max_entries)]


class RingRecord:
    """One reserved ringbuf record: a writable slot plus its commit state.

    Mirrors the kernel's per-record header: a record is *pending* between
    ``bpf_ringbuf_reserve`` and ``bpf_ringbuf_submit``/``discard``, and
    the consumer must stop at the first pending record because commits
    can land out of reservation order.
    """

    __slots__ = ("data", "state")

    PENDING = "pending"
    COMMITTED = "committed"
    DISCARDED = "discarded"

    def __init__(self, size: int):
        self.data = bytearray(size)
        self.state = RingRecord.PENDING


class RingBufMap(BpfMap):
    """BPF_MAP_TYPE_RINGBUF: an ordered kernel-to-userspace event stream.

    The kernel's ringbuf is a byte ring; records are reserved (allocating
    space while marking the record busy), written in place, then committed
    or discarded.  The userspace consumer observes records strictly in
    reservation order and stops at the first uncommitted one.  This model
    keeps those semantics but fixes the record size to ``value_size`` so
    the verifier can statically bound the ``bpf_ringbuf_output`` payload
    (no scalar-range tracking is needed), and counts capacity in records
    rather than bytes.

    Unlike hash/array maps there is no random access: lookup/update/
    delete raise :class:`MapError` (the kernel returns ``-ENOTSUPP``),
    and the verifier rejects such helper calls outright.
    """

    KIND = "ringbuf"

    def __init__(self, name: str, value_size: int = 16,
                 max_entries: int = 4096):
        if value_size <= 0 or max_entries <= 0:
            raise MapError("map dimensions must be positive")
        self.name = name
        self.key_size = 0  # ringbufs are keyless, as in the kernel
        self.value_size = value_size
        self.max_entries = max_entries
        self._records: deque[RingRecord] = deque()
        #: Reservations refused because the ring was full.  Userspace
        #: reads this to learn it lost events (the paper's capture path
        #: degrades, it does not block the kernel).
        self.dropped = 0

    # -- producer side (program / kernel) -------------------------------------
    def reserve(self, size: int | None = None) -> RingRecord | None:
        """Reserve one record; ``None`` when the ring is full (drop)."""
        if size is not None and size != self.value_size:
            raise MapError(
                f"ringbuf {self.name!r}: record size {size} != "
                f"{self.value_size}")
        if len(self._records) >= self.max_entries:
            self.dropped += 1
            return None
        record = RingRecord(self.value_size)
        self._records.append(record)
        return record

    def commit(self, record: RingRecord) -> None:
        """Make a reserved record visible to the consumer."""
        if record.state != RingRecord.PENDING:
            raise MapError(
                f"ringbuf {self.name!r}: commit of {record.state} record")
        record.state = RingRecord.COMMITTED

    def discard(self, record: RingRecord) -> None:
        """Abandon a reserved record; its slot frees once consumed past."""
        if record.state != RingRecord.PENDING:
            raise MapError(
                f"ringbuf {self.name!r}: discard of {record.state} record")
        record.state = RingRecord.DISCARDED

    def output(self, data: bytes) -> int:
        """reserve + copy + commit, the ``bpf_ringbuf_output`` fast path.

        Returns 0 on success, -1 when the ring is full (the helper's
        ``-ENOSPC`` contract, flattened like the map-update helper's).
        """
        payload = self._check_value(data)
        record = self.reserve()
        if record is None:
            return -1
        record.data[:] = payload
        self.commit(record)
        return 0

    # -- consumer side (userspace) ---------------------------------------------
    def consume(self, max_records: int | None = None) -> list[bytes]:
        """Drain committed records in reservation order.

        Stops at the first still-pending record (its space is not yet
        released) and silently skips discarded ones, exactly like
        ``ring_buffer__consume``.
        """
        out: list[bytes] = []
        while self._records and (max_records is None
                                 or len(out) < max_records):
            head = self._records[0]
            if head.state == RingRecord.PENDING:
                break
            self._records.popleft()
            if head.state == RingRecord.COMMITTED:
                out.append(bytes(head.data))
        return out

    def consume_u64s(self, max_records: int | None = None
                     ) -> list[tuple[int, ...]]:
        """:meth:`consume`, with each record decoded as little-endian u64s."""
        count = self.value_size // 8
        return [struct.unpack(f"<{count}Q", record[: count * 8])
                for record in self.consume(max_records)]

    # -- no random access -------------------------------------------------------
    def lookup(self, key: bytes) -> bytearray | None:
        raise MapError(f"ringbuf {self.name!r} has no lookup")

    def update(self, key: bytes, value: bytes) -> None:
        raise MapError(f"ringbuf {self.name!r} has no update")

    def delete(self, key: bytes) -> None:
        raise MapError(f"ringbuf {self.name!r} has no delete")

    def keys(self) -> list[bytes]:
        raise MapError(f"ringbuf {self.name!r} has no keys")

    def __len__(self) -> int:
        """Records currently occupying the ring (committed or pending)."""
        return len(self._records)
