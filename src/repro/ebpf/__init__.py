"""A miniature eBPF subsystem.

SnapBPF's mechanism *is* eBPF: a capture program attached to a kprobe on
``add_to_page_cache_lru()``, BPF maps to move working-set offsets between
kernel and userspace, and a kfunc (``snapbpf_prefetch``) because the
verifier's sandbox forbids BPF programs from issuing block I/O or touching
the page cache directly.  To reproduce that faithfully we implement the
subsystem itself:

* a register-machine instruction set (:mod:`repro.ebpf.insn`) with an
  assembler (:mod:`repro.ebpf.asm`),
* HASH/ARRAY maps with the classic helper call interface, plus a
  RINGBUF map with reserve/commit semantics and an ordered userspace
  consumer (:mod:`repro.ebpf.maps`, :mod:`repro.ebpf.helpers`),
* a static verifier (:mod:`repro.ebpf.verifier`) that performs abstract
  interpretation over register types — rejecting uninitialized reads,
  out-of-bounds stack/map accesses, dereferences of unchecked
  ``bpf_map_lookup_elem`` results, and calls to unregistered kfuncs,
* an interpreter (:mod:`repro.ebpf.interp`) with a runtime instruction
  budget (the loop-termination guarantee),
* kprobe attach points fired by the simulated kernel
  (:mod:`repro.ebpf.kprobe`) and a kfunc registry
  (:mod:`repro.ebpf.kfunc`).

The SnapBPF capture/prefetch programs in :mod:`repro.core` are written in
this assembly and must pass this verifier before they can attach — the
same contract the paper's programs have with Linux.
"""

from repro.ebpf.asm import Label, Program, assemble
from repro.ebpf.interp import ExecutionResult, Interpreter, RuntimeFault
from repro.ebpf.kfunc import KfuncRegistry
from repro.ebpf.kprobe import KprobeManager
from repro.ebpf.maps import ArrayMap, BpfMap, HashMap, MapError, RingBufMap
from repro.ebpf.verifier import VerificationError, Verifier

__all__ = [
    "ArrayMap",
    "BpfMap",
    "ExecutionResult",
    "HashMap",
    "Interpreter",
    "KfuncRegistry",
    "KprobeManager",
    "Label",
    "MapError",
    "Program",
    "RingBufMap",
    "RuntimeFault",
    "VerificationError",
    "Verifier",
    "assemble",
]
