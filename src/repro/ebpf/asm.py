"""Assembler: labels + mnemonic helpers producing a verified-ready Program.

Programs are written as flat lists mixing :class:`Label` markers and
instructions; :func:`assemble` resolves label targets to absolute
instruction indices and wraps the result in a :class:`Program` together
with its map table (name -> BpfMap).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ebpf.insn import (
    Alu,
    Call,
    CallKfunc,
    Exit,
    Insn,
    Jmp,
    Load,
    LoadMapFd,
    Store,
)
from repro.ebpf.maps import BpfMap


@dataclass(frozen=True)
class Label:
    name: str


@dataclass
class Program:
    """An assembled (label-free) program plus its referenced maps."""

    name: str
    insns: list[Insn]
    maps: dict[str, BpfMap] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.insns)

    def map_named(self, name: str) -> BpfMap:
        try:
            return self.maps[name]
        except KeyError:
            raise KeyError(
                f"program {self.name!r} references unknown map {name!r}"
            ) from None


class AssemblyError(ValueError):
    """Malformed source: duplicate or unresolved labels, empty program."""


def assemble(name: str, source: list[Insn | Label],
             maps: dict[str, BpfMap] | None = None) -> Program:
    """Resolve labels and produce a :class:`Program`.

    Jump targets may be :class:`Label` names (strings) or already-absolute
    integer indices; after assembly every ``Jmp.target`` is an int.
    """
    maps = dict(maps or {})
    labels: dict[str, int] = {}
    insns: list[Insn] = []
    for item in source:
        if isinstance(item, Label):
            if item.name in labels:
                raise AssemblyError(f"duplicate label {item.name!r}")
            labels[item.name] = len(insns)
        elif isinstance(item, Insn):
            insns.append(item)
        else:
            raise AssemblyError(f"not an instruction or label: {item!r}")
    if not insns:
        raise AssemblyError("empty program")

    resolved: list[Insn] = []
    for idx, insn in enumerate(insns):
        if isinstance(insn, Jmp):
            target = insn.target
            if isinstance(target, str):
                if target not in labels:
                    raise AssemblyError(
                        f"unresolved label {target!r} at insn {idx}")
                target = labels[target]
            if not isinstance(target, int):
                raise AssemblyError(f"bad jump target {insn.target!r}")
            insn = Jmp(insn.op, target, dst=insn.dst, src=insn.src, imm=insn.imm)
        if isinstance(insn, LoadMapFd) and insn.map_name not in maps:
            raise AssemblyError(
                f"insn {idx} references map {insn.map_name!r} not in map table")
        resolved.append(insn)
    return Program(name=name, insns=resolved, maps=maps)


# -- mnemonic sugar ----------------------------------------------------------
def mov(dst: int, src: int) -> Alu:
    return Alu("mov", dst, src=src)


def movi(dst: int, imm: int) -> Alu:
    return Alu("mov", dst, imm=imm)


def alu(op: str, dst: int, src: int) -> Alu:
    return Alu(op, dst, src=src)


def alui(op: str, dst: int, imm: int) -> Alu:
    return Alu(op, dst, imm=imm)


def jmp(target: str | int) -> Jmp:
    return Jmp("ja", target)


def jcond(op: str, dst: int, target: str | int, *, src: int | None = None,
          imm: int | None = None) -> Jmp:
    return Jmp(op, target, dst=dst, src=src, imm=imm)


def load(dst: int, src: int, off: int, width: int = 8) -> Load:
    return Load(dst, src, off, width)


def store(dst: int, off: int, src: int, width: int = 8) -> Store:
    return Store(dst, off, src=src, width=width)


def storei(dst: int, off: int, imm: int, width: int = 8) -> Store:
    return Store(dst, off, imm=imm, width=width)


def ldmap(dst: int, map_name: str) -> LoadMapFd:
    return LoadMapFd(dst, map_name)


def call(helper_id: int) -> Call:
    return Call(helper_id)


def call_kfunc(name: str) -> CallKfunc:
    return CallKfunc(name)


def exit_() -> Exit:
    return Exit()
