"""Command-line interface: ``python -m repro <command>``.

Commands:
  list                         the 13 evaluated functions and 7 approaches
  run FN APPROACH [-n N]       one scenario, printed as a one-line report
                               (--ram-gib sizes the frame pool and turns
                               on watermark reclaim; --evict-policy
                               attaches a BPF eviction policy)
  table1                       regenerate the paper's Table 1
  fig {3a,3b,3c,4,overheads,mem}
                               regenerate one figure (or --all), sweeping
                               the scenario matrix across --jobs workers;
                               "mem" is the memory-pressure elasticity
                               figure
  chaos FN [APPROACH ...]      serve a request train under a seeded fault
                               schedule; report degradation counters
  trace FN APPROACH            run one scenario with span tracing on and
                               write a chrome://tracing-loadable JSON
                               (plus optional JSONL)
  cluster FN [APPROACH]        run a multi-node fleet behind the routing
                               gateway (--policy, --nodes, --autoscale,
                               --node-crash-rate), or sweep routing
                               policies x node counts with --fig
  traffic [FN [APPROACH]]      sweep the production traffic plane: Zipf
                               popularity, diurnal + burst arrivals,
                               multi-tenant mixes through the cluster
                               fleet, comparing restore approaches x
                               keep-alive policies (fixed TTL vs
                               idle-time histograms) with per-tenant
                               SLO tables; --quick shrinks it to CI
                               size
  storage [FN [APPROACH]]      sweep the snapshot-tiering figure: tier
                               configurations (flat file, all-local,
                               base-image-local, capped SSD + HDD
                               spill, remote-only) x routing policies
                               through the cluster fleet, reporting
                               cold-start ratio, p99 E2E, fleet dedup
                               factor, and bytes per tier; --quick
                               shrinks it to CI size
  bench [--quick]              run the perf-trajectory harness: pinned
                               figure cells + the eBPF tier
                               microbenchmark, written to BENCH_*.json;
                               --compare gates on a committed baseline
  serve --attach STATE.json    serve the live control-room dashboard for
                               a run started elsewhere with
                               --serve-state (HTTP + SSE + /metrics)

``run``, ``fig``, ``chaos``, ``cluster``, ``traffic``, ``storage``,
and ``bench`` share the sweep
flags (one parent parser, resolved into a single
:class:`~repro.harness.sweep.SweepOptions` value handed to the runners):
``--jobs N`` fans independent scenario cells out over N worker
processes (results are byte-identical for every N), ``--cache-dir DIR``
persists each finished cell in a content-addressed store *as it
completes* so interrupted or warm reruns resume from exactly what was
already computed, and ``--no-cache`` ignores the store for one
invocation.  The supervisor flags ride along everywhere: ``--timeout``
puts a deadline on every cell, ``--max-retries`` bounds retries for
worker crashes and timeouts, ``--keep-going`` finishes the sweep and
reports permanently-failed cells in a failure manifest
(``--failure-manifest PATH``) instead of aborting, and the
``--sweep-kill-rate``/``--sweep-hang-rate``/``--sweep-tear-rate``
chaos knobs SIGKILL workers, hang cells past their deadline, and tear
store writes to prove all of the above works.

The same four commands also share the serve flags: ``--serve``
self-hosts the control-room dashboard (``/``), the Prometheus scrape
endpoint (``/metrics``), and the SSE stream (``/api/events``) for the
duration of the run; ``--serve-state PATH`` atomically publishes each
state snapshot to a JSON file that a separate ``repro serve --attach
PATH`` process can watch; ``--serve-hold`` keeps the server up after
the run finishes until SIGINT/SIGTERM (CI smoke tests, long scrapes).
Serving is observation-only: results, figures, and fingerprints are
byte-identical with and without it.

Examples:
  python -m repro run bert snapbpf -n 10
  python -m repro run json snapbpf -n 10 --ram-gib 0.25 --evict-policy protect-head
  python -m repro fig 3c --functions bfs,bert
  python -m repro fig mem --functions json
  python -m repro fig --all --jobs 4 --cache-dir .sweep-cache
  python -m repro fig --all --jobs 4 --timeout 300 --keep-going \\
      --failure-manifest failures.json --cache-dir .sweep-cache
  python -m repro fig 3a --jobs 2 --sweep-kill-rate 0.5 --max-retries 3
  python -m repro chaos json snapbpf linux-ra --fault-seed 7
  python -m repro trace json snapbpf -o restore.json --jsonl spans.jsonl
  python -m repro cluster json snapbpf --policy snapshot-locality --nodes 4
  python -m repro cluster json --fig --jobs 4 --cache-dir .sweep-cache
  python -m repro traffic --quick --jobs 2
  python -m repro traffic json snapbpf --rps 500 --duration 30
  python -m repro storage --jobs 4 --cache-dir .sweep-cache
  python -m repro storage json snapbpf --tiers local,remote --quick
  python -m repro bench --quick --compare BENCH_9.json
  python -m repro fig --all --serve --serve-port 8040
  python -m repro fig --all --serve-state /tmp/repro-state.json &
  python -m repro serve --attach /tmp/repro-state.json --port 8040
"""

from __future__ import annotations

import argparse
import dataclasses
import signal
import sys
import threading

from repro import GIB, MIB, FUNCTIONS, approach_registry, profile_by_name, run_scenario
from repro.core.policies import policy_names
from repro.faults import FaultConfig
from repro.harness import figures as F
from repro.harness.chaos import DEFAULT_CHAOS, render_chaos, run_chaos_suite
from repro.harness.experiment import ResultCache
from repro.harness.report import render_figure, render_table1
from repro.harness.spec import ScenarioSpec
from repro.harness.sweep import (
    SweepFailure,
    SweepInterrupted,
    SweepOptions,
    SweepRunner,
    write_failure_manifest,
)


def cmd_list(_args) -> int:
    print("functions:")
    for profile in FUNCTIONS:
        print(f"  {profile.name:12s} mem {profile.mem_bytes // MIB:5d} MiB  "
              f"ws {profile.ws_bytes // MIB:4d} MiB  "
              f"alloc {profile.alloc_bytes // MIB:4d} MiB  "
              f"compute {profile.compute_seconds * 1e3:5.0f} ms")
    print("approaches:")
    for name in sorted(approach_registry()):
        print(f"  {name}")
    return 0


def _wait_for_signal() -> None:
    """Block the main thread until SIGINT/SIGTERM, then return (so the
    caller can shut its server down and exit 0)."""
    fired = threading.Event()

    def handler(_signum, _frame) -> None:
        fired.set()

    restore = []
    try:
        for sig in (signal.SIGINT, signal.SIGTERM):
            restore.append((sig, signal.signal(sig, handler)))
    except (ValueError, OSError):
        pass  # non-main thread / exotic platform: fall through and wait
    try:
        while not fired.wait(timeout=1.0):
            pass
    except KeyboardInterrupt:
        pass
    finally:
        for sig, previous in restore:
            try:
                signal.signal(sig, previous)
            except (ValueError, OSError):
                pass


class _ServeContext:
    """The shared --serve/--serve-state flags, resolved to a running
    telemetry hub + HTTP server around one command invocation.

    ``hub`` is None when serving is off — every call site passes it
    straight through as the ``telemetry=`` argument, so the disabled
    path is the exact pre-serve code path (identity guarantee).
    """

    def __init__(self, opts: SweepOptions):
        self.opts = opts
        self.hub = None
        self.server = None
        if not opts.serve and not opts.serve_state:
            return
        from repro.serve import TelemetryHub, TelemetryServer
        self.hub = TelemetryHub(state_path=opts.serve_state)
        if opts.serve:
            self.server = TelemetryServer(self.hub, host=opts.serve_host,
                                          port=opts.serve_port)
            self.server.start()
            print(f"serve: control room at {self.server.url} "
                  f"(/metrics, /api/state, /api/events)", file=sys.stderr)

    def attach_cache(self, cache: ResultCache) -> None:
        """Expose the sweep cache's registry on /metrics and in the
        dashboard's metrics table."""
        if self.hub is not None:
            self.hub.attach_registry(cache.metrics)

    def finish(self) -> None:
        """Flush the final snapshot; honor --serve-hold; stop serving.
        Runs in a ``finally`` so a failed sweep still tears down."""
        if self.hub is None:
            return
        self.hub.publish(force=True)
        if self.server is not None and self.opts.serve_hold:
            print("serve: run finished, holding for scrapes "
                  "(SIGTERM/Ctrl-C to exit)", file=sys.stderr)
            _wait_for_signal()
        if self.server is not None:
            self.server.stop()


def _sweep(runner: SweepRunner, specs, opts: SweepOptions) -> dict:
    """Run specs through the supervisor, honoring --failure-manifest
    whatever the outcome (an empty manifest is evidence of a clean
    sweep; a partial one is the resume/debugging artifact)."""
    try:
        return runner.run(specs)
    finally:
        if opts.failure_manifest:
            runner.write_manifest(opts.failure_manifest)


def cmd_run(args) -> int:
    try:
        profile = profile_by_name(args.function)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    spec = ScenarioSpec(function=profile, approach=args.approach,
                        n_instances=args.instances,
                        vary_inputs=args.vary_inputs,
                        device_kind=args.device,
                        ram_bytes=(int(args.ram_gib * GIB)
                                   if args.ram_gib else None),
                        evict_policy=args.evict_policy)
    opts = SweepOptions.from_args(args)
    cache = ResultCache(store=opts.make_store())
    serving = _ServeContext(opts)
    serving.attach_cache(cache)
    runner = opts.make_runner(cache, telemetry=serving.hub)
    try:
        result = _sweep(runner, [spec], opts).get(spec)
    finally:
        serving.finish()
    if result is None:
        print("error: scenario quarantined; see the failure manifest",
              file=sys.stderr)
        return 1
    if cache.store is not None:
        origin = "hit" if cache.disk_hits else "simulated, stored"
        print(f"cache: {origin} ({spec.stable_hash()[:12]})",
              file=sys.stderr)
    print(f"{profile.name}/{args.approach} x{args.instances} "
          f"[{args.device}]:")
    print(f"  mean E2E      {result.mean_e2e * 1e3:10.1f} ms "
          f"(max {result.max_e2e * 1e3:.1f} ms)")
    print(f"  E2E p50/95/99 {result.p50_e2e * 1e3:10.1f} / "
          f"{result.p95_e2e * 1e3:.1f} / {result.p99_e2e * 1e3:.1f} ms")
    print(f"  dev p50/95/99 {result.device_p50_latency * 1e6:10.0f} / "
          f"{result.device_p95_latency * 1e6:.0f} / "
          f"{result.device_p99_latency * 1e6:.0f} us")
    print(f"  peak memory   {result.peak_memory_bytes / GIB:10.2f} GiB")
    print(f"  device reads  {result.device_bytes_read / MIB:10.1f} MiB in "
          f"{result.device_requests} requests")
    for key, value in sorted(result.extra.items()):
        print(f"  {key:13s} {value:10.4g}")
    return 0


def cmd_table1(_args) -> int:
    print(render_table1(F.table_1()))
    return 0


def cmd_fig(args) -> int:
    if args.all:
        figures = list(F.FIGURES)
    elif args.figure:
        figures = [args.figure]
    else:
        print("error: name a figure or pass --all", file=sys.stderr)
        return 2
    functions = args.functions.split(",") if args.functions else None
    opts = SweepOptions.from_args(args)
    cache = ResultCache(store=opts.make_store())
    serving = _ServeContext(opts)
    serving.attach_cache(cache)
    runner = opts.make_runner(cache, telemetry=serving.hub)
    try:
        _sweep(runner, F.matrix_specs(figures, functions), opts)
        if runner.last_manifest:
            print(f"warning: {len(runner.last_manifest)} cell(s) "
                  f"quarantined; figures will re-attempt them inline",
                  file=sys.stderr)
        for figure in figures:
            print(render_figure(F.build_figure(figure, cache,
                                               functions=functions)))
    finally:
        serving.finish()
    print(runner.last_stats.summary(), file=sys.stderr)
    return 0


def cmd_chaos(args) -> int:
    try:
        profile = profile_by_name(args.function)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    known = sorted(approach_registry())
    approaches = args.approaches or known
    for name in approaches:
        if name not in known:
            print(f"error: unknown approach {name!r}; choose from {known}",
                  file=sys.stderr)
            return 2
    overrides = {}
    if args.media_error_rate is not None:
        overrides["media_error_rate"] = args.media_error_rate
    if args.attach_failure_rate:
        overrides["attach_failure_rate"] = args.attach_failure_rate
    if args.reclaim_stall_rate:
        overrides["reclaim_stall_rate"] = args.reclaim_stall_rate
    config = DEFAULT_CHAOS
    if overrides:
        try:
            config = dataclasses.replace(DEFAULT_CHAOS, **overrides)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    failures: list = []
    opts = SweepOptions.from_args(args)
    serving = _ServeContext(opts)
    try:
        results = run_chaos_suite(profile, approaches, config=config,
                                  fault_seed=args.fault_seed,
                                  n_requests=args.requests,
                                  request_deadline=args.deadline,
                                  device_kind=args.device,
                                  ram_bytes=(int(args.ram_gib * GIB)
                                             if args.ram_gib else None),
                                  jobs=opts.jobs, store=opts.make_store(),
                                  timeout=opts.timeout,
                                  max_retries=opts.max_retries,
                                  keep_going=opts.keep_going,
                                  injector=opts.make_injector(),
                                  failures_out=failures,
                                  telemetry=serving.hub)
    finally:
        serving.finish()
    if args.failure_manifest:
        write_failure_manifest(args.failure_manifest, failures)
    if failures:
        print(f"warning: {len(failures)} chaos cell(s) quarantined",
              file=sys.stderr)
    print(render_chaos(results))
    return 0


def cmd_trace(args) -> int:
    try:
        profile = profile_by_name(args.function)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    from repro.harness.experiment import make_kernel
    from repro.trace import write_chrome, write_jsonl

    kernel = make_kernel(args.device)
    kernel.tracer.enable()
    result = run_scenario(ScenarioSpec(function=profile,
                                       approach=args.approach,
                                       n_instances=args.instances,
                                       device_kind=args.device),
                          kernel=kernel)
    tracer = kernel.tracer
    with open(args.out, "w") as fp:
        write_chrome(tracer, fp)
    print(f"wrote {len(tracer)} spans to {args.out} "
          f"(load in chrome://tracing or Perfetto)")
    if args.jsonl:
        with open(args.jsonl, "w") as fp:
            write_jsonl(tracer, fp)
        print(f"wrote JSONL spans to {args.jsonl}")
    if tracer.dropped:
        print(f"warning: {tracer.dropped} spans dropped (buffer full)")
    print(f"mean E2E {result.mean_e2e * 1e3:.1f} ms over "
          f"{args.instances} instance(s); simulated time by category:")
    for cat, total in sorted(tracer.category_totals().items(),
                             key=lambda kv: -kv[1]):
        print(f"  {cat:12s} {total * 1e3:10.3f} ms")
    return 0


def cmd_cluster(args) -> int:
    try:
        profile = profile_by_name(args.function)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    from repro.cluster import ROUTING_POLICIES, ClusterSpec
    from repro.cluster.runner import run_cluster

    cluster_kwargs = dict(
        n_functions=args.cluster_functions,
        rate_per_function=args.rate, duration=args.duration,
        warm_pool_ttl=args.warm_ttl)

    if args.fig:
        policies = args.policies.split(",")
        for policy in policies:
            if policy not in ROUTING_POLICIES:
                print(f"error: unknown routing policy {policy!r}; choose "
                      f"from {sorted(ROUTING_POLICIES)}", file=sys.stderr)
                return 2
        node_counts = [int(n) for n in args.node_counts.split(",")]
        approaches = ([args.approach] if args.approach
                      else list(F.FIGURE_MATRIX["cluster"][0]))
        opts = SweepOptions.from_args(args)
        cache = ResultCache(store=opts.make_store())
        serving = _ServeContext(opts)
        serving.attach_cache(cache)
        runner = opts.make_runner(cache, telemetry=serving.hub)
        try:
            _sweep(runner, [F.cluster_cell_spec(profile, a, policy, n,
                                                **cluster_kwargs)
                            for a in approaches for policy in policies
                            for n in node_counts], opts)
            data = F.cluster_figure_data(cache, [profile], approaches,
                                         policies=policies,
                                         node_counts=node_counts,
                                         **cluster_kwargs)
            print(render_figure(data))
        finally:
            serving.finish()
        print(runner.last_stats.summary(), file=sys.stderr)
        return 0

    try:
        cspec = ClusterSpec(
            n_nodes=args.nodes, policy=args.policy,
            autoscale=args.autoscale,
            target_inflight=args.target_inflight,
            min_nodes=args.min_nodes, max_nodes=args.max_nodes,
            **cluster_kwargs)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    spec = ScenarioSpec(function=profile, approach=args.approach or "snapbpf",
                        device_kind=args.device, cluster=cspec)
    fault_config = None
    if args.node_crash_rate:
        try:
            fault_config = dataclasses.replace(
                FaultConfig(), node_crash_rate=args.node_crash_rate)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    serving = _ServeContext(SweepOptions.from_args(args))
    try:
        report = run_cluster(spec, fault_config=fault_config,
                             fault_seed=args.fault_seed,
                             telemetry=serving.hub)
    finally:
        serving.finish()
    print(f"{profile.name}/{spec.approach} cluster: {cspec}")
    print(f"  requests      {report.requests:10d} "
          f"(completed {report.completed}, timeouts {report.timeouts}, "
          f"failures {report.failures})")
    print(f"  cold starts   {report.cold_starts:10d} "
          f"(ratio {report.cold_ratio:.3f}, warm {report.warm_starts})")
    print(f"  latency       {report.mean_latency() * 1e3:10.1f} ms mean, "
          f"p50/95/99 {report.percentile(50) * 1e3:.1f} / "
          f"{report.percentile(95) * 1e3:.1f} / "
          f"{report.percentile(99) * 1e3:.1f} ms")
    peak_nodes = int(max((n for _, n in report.node_timeline), default=0))
    print(f"  node seconds  {report.node_seconds():10.1f} "
          f"(peak {peak_nodes} nodes)")
    per_node = ", ".join(f"node{node}:{count}"
                         for node, count in report.per_node_served().items())
    print(f"  served/node   {per_node or '-':>10s}")
    for key in ("cluster_scale_ups_total", "cluster_scale_downs_total",
                "cluster_node_crashes_total", "cluster_crash_reroutes_total",
                "cluster_rebalance_evictions_total",
                "cluster_locality_overflow_routes"):
        value = report.metrics.get(key, 0)
        if value:
            print(f"  {key:33s} {value:10.0f}")
    return 0


def cmd_traffic(args) -> int:
    """Sweep the production-traffic figure (restore approaches x
    keep-alive policies under Zipf/diurnal/burst multi-tenant load) and
    print the figure plus the per-tenant SLO table."""
    try:
        profile = profile_by_name(args.function)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    from repro.cluster.keepalive import KEEPALIVE_POLICIES

    keepalives = args.keepalives.split(",")
    for name in keepalives:
        if name not in KEEPALIVE_POLICIES:
            print(f"error: unknown keep-alive policy {name!r}; choose "
                  f"from {list(KEEPALIVE_POLICIES)}", file=sys.stderr)
            return 2
    approaches = ([args.approach] if args.approach
                  else list(F.FIGURE_MATRIX["traffic"][0]))
    traffic = F.default_traffic_spec(quick=args.quick)
    overrides = {key: value for key, value in (
        ("n_functions", args.traffic_functions),
        ("n_tenants", args.tenants),
        ("total_rps", args.rps),
        ("duration", args.duration),
        ("seed", args.traffic_seed)) if value is not None}
    try:
        if overrides:
            traffic = dataclasses.replace(traffic, **overrides)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    cluster_kwargs = dict(F.traffic_cluster_kwargs(quick=args.quick))
    if args.nodes is not None:
        cluster_kwargs["n_nodes"] = args.nodes
    if args.slots is not None:
        cluster_kwargs["overflow_inflight"] = args.slots

    opts = SweepOptions.from_args(args)
    cache = ResultCache(store=opts.make_store())
    serving = _ServeContext(opts)
    serving.attach_cache(cache)
    runner = opts.make_runner(cache, telemetry=serving.hub)
    try:
        specs = [F.traffic_cell_spec(profile, a, keepalive,
                                     traffic=traffic, **cluster_kwargs)
                 for a in approaches for keepalive in keepalives]
        _sweep(runner, specs, opts)
        data = F.traffic_figure_data(cache, [profile], approaches,
                                     keepalives=keepalives,
                                     traffic=traffic, **cluster_kwargs)
        print(render_figure(data))
        # Per-tenant SLO table straight from the flattened extras.
        for approach in approaches:
            for keepalive in keepalives:
                result = cache.get(F.traffic_cell_spec(
                    profile, approach, keepalive, traffic=traffic,
                    **cluster_kwargs))
                print(f"{profile.name}/{approach} [{keepalive}]: "
                      f"{result.extra['traffic_invocations']:.0f} "
                      f"invocations, cold ratio "
                      f"{result.extra['traffic_cold_ratio']:.4f}, "
                      f"p99.9 E2E "
                      f"{result.extra['traffic_p999_e2e'] * 1e3:.1f} ms")
                print("  tenant   requests  cold-ratio   p99 e2e "
                      "p99.9 e2e  p99 cold")
                for tenant in range(traffic.n_tenants):
                    row = {key: result.extra[f"slo_t{tenant}_{key}"]
                           for key in ("requests", "cold_ratio",
                                       "p99_e2e", "p999_e2e",
                                       "p99_cold")}
                    print(f"  t{tenant:<7d} {row['requests']:8.0f}  "
                          f"{row['cold_ratio']:10.4f} "
                          f"{row['p99_e2e'] * 1e3:8.1f}ms "
                          f"{row['p999_e2e'] * 1e3:8.1f}ms "
                          f"{row['p99_cold'] * 1e3:8.1f}ms")
    finally:
        serving.finish()
    print(runner.last_stats.summary(), file=sys.stderr)
    return 0


def cmd_storage(args) -> int:
    """Sweep the snapshot-tiering figure (tier configurations x routing
    policies through the cluster plane) and print it, followed by a
    per-cell dedup/tier-bytes summary."""
    try:
        profile = profile_by_name(args.function)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    from repro.cluster import ROUTING_POLICIES

    tiers = args.tiers.split(",")
    for name in tiers:
        if name not in F.STORAGE_TIERS:
            print(f"error: unknown tier config {name!r}; choose from "
                  f"{list(F.STORAGE_TIERS)}", file=sys.stderr)
            return 2
    policies = args.policies.split(",")
    for name in policies:
        if name not in ROUTING_POLICIES:
            print(f"error: unknown routing policy {name!r}; choose "
                  f"from {sorted(ROUTING_POLICIES)}", file=sys.stderr)
            return 2
    approaches = ([args.approach] if args.approach
                  else list(F.FIGURE_MATRIX["storage"][0]))
    cluster_kwargs = dict(F.storage_cluster_kwargs(quick=args.quick))
    n_nodes = args.nodes if args.nodes is not None else (
        2 if args.quick else F.STORAGE_NODE_COUNT)

    opts = SweepOptions.from_args(args)
    cache = ResultCache(store=opts.make_store())
    serving = _ServeContext(opts)
    serving.attach_cache(cache)
    runner = opts.make_runner(cache, telemetry=serving.hub)
    try:
        specs = [F.storage_cell_spec(profile, a, tier, policy,
                                     n_nodes=n_nodes, **cluster_kwargs)
                 for a in approaches for tier in tiers
                 for policy in policies]
        _sweep(runner, specs, opts)
        data = F.storage_figure_data(cache, [profile], approaches,
                                     tiers=tiers, policies=policies,
                                     n_nodes=n_nodes, **cluster_kwargs)
        print(render_figure(data))
        # Per-cell summary straight from the flattened extras.
        for approach in approaches:
            for tier in tiers:
                for policy in policies:
                    result = cache.get(F.storage_cell_spec(
                        profile, approach, tier, policy,
                        n_nodes=n_nodes, **cluster_kwargs))
                    dedup = result.extra.get("snapstore_dedup_factor")
                    if dedup is None:
                        print(f"{profile.name}/{approach} [{tier} "
                              f"{policy}]: flat files (no snapstore)")
                        continue
                    fetched = result.extra.get(
                        "snapstore_remote_fetch_bytes", 0.0)
                    print(f"{profile.name}/{approach} [{tier} {policy}]: "
                          f"dedup {dedup:.2f}x, unique "
                          f"{result.extra['snapstore_unique_bytes'] / MIB:.0f}"
                          f" MiB, local "
                          f"{result.extra['snapstore_local_bytes'] / MIB:.0f}"
                          f" MiB, remote fetched {fetched / MIB:.0f} MiB")
    finally:
        serving.finish()
    print(runner.last_stats.summary(), file=sys.stderr)
    return 0


def cmd_bench(args) -> int:
    """Run the perf-trajectory harness and optionally gate on the
    committed ``BENCH_*.json`` baseline (CI smoke: ``bench --quick
    --compare BENCH_8.json``)."""
    from repro.harness import bench as B

    opts = SweepOptions.from_args(args)
    serving = _ServeContext(opts)
    try:
        report = B.run_bench(
            quick=args.quick,
            progress=lambda msg: print(f"bench: {msg}", file=sys.stderr))
    finally:
        serving.finish()
    print(B.render_bench(report))
    out = args.out
    if out is None and not args.quick:
        # A full run refreshes the committed trajectory by default; a
        # --quick run never clobbers it unless --out says so.
        out = B.DEFAULT_BENCH_PATH
    if out:
        B.write_bench(report, out)
        print(f"bench: wrote {out}", file=sys.stderr)
    if args.compare:
        try:
            baseline = B.load_bench(args.compare)
        except (OSError, ValueError) as exc:
            print(f"error: cannot load baseline {args.compare!r}: {exc}",
                  file=sys.stderr)
            return 2
        regressions = B.compare(report, baseline,
                                threshold=args.regression_threshold)
        if regressions:
            for line in regressions:
                print(f"bench regression: {line}", file=sys.stderr)
            return 1
        print(f"bench: no regression vs {args.compare} "
              f"(threshold {args.regression_threshold:.0%})",
              file=sys.stderr)
    return 0


def cmd_serve(args) -> int:
    """Attach mode: serve the dashboard for a run publishing its state
    elsewhere (``--serve-state``), until SIGINT/SIGTERM (exit 0)."""
    from repro.serve import StateFileWatcher, TelemetryHub, TelemetryServer

    hub = TelemetryHub()
    watcher = StateFileWatcher(args.attach, hub,
                               interval=args.poll_interval)
    if not watcher.poll_once():
        print(f"serve: waiting for {args.attach} to appear "
              f"(start the run with --serve-state)", file=sys.stderr)
    watcher.start()
    server = TelemetryServer(hub, host=args.host, port=args.port)
    server.start()
    print(f"serve: control room at {server.url} "
          f"(attached to {args.attach})", file=sys.stderr)
    try:
        _wait_for_signal()
    finally:
        watcher.stop()
        server.stop()
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="SnapBPF reproduction harness")
    sub = parser.add_subparsers(dest="command", required=True)

    # Sweep flags shared by run/fig/chaos/cluster (same semantics
    # everywhere).
    sweep_flags = argparse.ArgumentParser(add_help=False)
    sweep_flags.add_argument(
        "-j", "--jobs", type=int, default=1,
        help="worker processes for independent scenario cells "
             "(any value yields byte-identical results)")
    sweep_flags.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="persist each finished cell in a content-addressed store "
             "as it completes; interrupted and warm reruns resume from "
             "what is already there")
    sweep_flags.add_argument(
        "--no-cache", action="store_true",
        help="ignore --cache-dir for this invocation")
    sweep_flags.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-cell deadline; a cell that exceeds it is torn down "
             "and retried (default: unbounded)")
    sweep_flags.add_argument(
        "--max-retries", type=int, default=2, metavar="N",
        help="retries per cell for transient failures (worker crashes, "
             "deadline expiries) beyond the first attempt (default: 2)")
    sweep_flags.add_argument(
        "--keep-going", action="store_true",
        help="finish the sweep and report permanently-failed cells in "
             "the failure manifest instead of aborting on the first one")
    sweep_flags.add_argument(
        "--failure-manifest", default=None, metavar="PATH",
        help="write the failure manifest (spec hashes + last errors) "
             "here, even when empty")
    sweep_flags.add_argument(
        "--sweep-kill-rate", type=float, default=0.0, metavar="RATE",
        help="chaos: probability a cell's first attempt SIGKILLs its "
             "worker (retries run clean)")
    sweep_flags.add_argument(
        "--sweep-hang-rate", type=float, default=0.0, metavar="RATE",
        help="chaos: probability a cell's first attempt hangs past the "
             "--timeout deadline")
    sweep_flags.add_argument(
        "--sweep-tear-rate", type=float, default=0.0, metavar="RATE",
        help="chaos: probability a finished cell's store write is torn "
             "mid-file (the next load quarantines it)")
    sweep_flags.add_argument(
        "--sweep-fault-seed", type=int, default=0,
        help="seed for the --sweep-*-rate chaos draws")
    # Serve flags ride along on the same four commands.
    sweep_flags.add_argument(
        "--serve", action="store_true",
        help="self-host the live control-room dashboard, /metrics "
             "scrape endpoint, and /api/events SSE stream for the "
             "duration of the run (observation-only)")
    sweep_flags.add_argument(
        "--serve-host", default="127.0.0.1", metavar="HOST",
        help="bind address for --serve (default: 127.0.0.1)")
    sweep_flags.add_argument(
        "--serve-port", type=int, default=8040, metavar="PORT",
        help="bind port for --serve; 0 picks an ephemeral port "
             "(default: 8040)")
    sweep_flags.add_argument(
        "--serve-state", default=None, metavar="PATH",
        help="atomically publish each telemetry snapshot to this JSON "
             "file so 'repro serve --attach PATH' can watch the run")
    sweep_flags.add_argument(
        "--serve-hold", action="store_true",
        help="with --serve: keep serving after the run finishes until "
             "SIGINT/SIGTERM (CI smoke tests, manual inspection)")

    sub.add_parser("list", help="list functions and approaches")

    run_parser = sub.add_parser("run", help="run one scenario",
                                parents=[sweep_flags])
    run_parser.add_argument("function")
    run_parser.add_argument("approach",
                            choices=sorted(approach_registry()))
    run_parser.add_argument("-n", "--instances", type=int, default=1)
    run_parser.add_argument("--device", choices=("ssd", "hdd"),
                            default="ssd")
    run_parser.add_argument("--vary-inputs", action="store_true",
                            help="give each instance a different input")
    run_parser.add_argument(
        "--ram-gib", type=float, default=None, metavar="GIB",
        help="frame-pool size in GiB; enables watermarks + kswapd "
             "(default: 256 GiB pool, pressure plane off)")
    run_parser.add_argument(
        "--evict-policy", choices=policy_names(), default=None,
        help="attach a named BPF eviction policy to the reclaim hook")

    sub.add_parser("table1", help="regenerate Table 1")

    fig_parser = sub.add_parser("fig", help="regenerate figures",
                                parents=[sweep_flags])
    fig_parser.add_argument("figure", nargs="?", default=None,
                            choices=F.FIGURES)
    fig_parser.add_argument("--all", action="store_true",
                            help="regenerate every figure in one sweep")
    fig_parser.add_argument("--functions", default="",
                            help="comma-separated subset of functions")

    chaos_parser = sub.add_parser(
        "chaos", help="serve requests under a seeded fault schedule",
        parents=[sweep_flags])
    chaos_parser.add_argument("function")
    chaos_parser.add_argument("approaches", nargs="*",
                              metavar="approach",
                              help="approaches to stress (default: all)")
    chaos_parser.add_argument("--fault-seed", type=int, default=0)
    chaos_parser.add_argument("-n", "--requests", type=int, default=8)
    chaos_parser.add_argument("--deadline", type=float, default=None,
                              help="per-request deadline in seconds")
    chaos_parser.add_argument("--media-error-rate", type=float, default=None,
                              help="override the default 1%% media error rate")
    chaos_parser.add_argument("--attach-failure-rate", type=float, default=0.0,
                              help="probability each BPF attach fails")
    chaos_parser.add_argument(
        "--reclaim-stall-rate", type=float, default=0.0,
        help="probability each kswapd wakeup stalls before scanning")
    chaos_parser.add_argument(
        "--ram-gib", type=float, default=None, metavar="GIB",
        help="frame-pool size in GiB; enables watermarks + kswapd")
    chaos_parser.add_argument("--device", choices=("ssd", "hdd"),
                              default="ssd")

    trace_parser = sub.add_parser(
        "trace", help="run one scenario with span tracing enabled")
    trace_parser.add_argument("function")
    trace_parser.add_argument("approach",
                              choices=sorted(approach_registry()))
    trace_parser.add_argument("-n", "--instances", type=int, default=1)
    trace_parser.add_argument("-o", "--out", default="trace.json",
                              help="Chrome trace output path")
    trace_parser.add_argument("--jsonl", default=None,
                              help="also write one-span-per-line JSONL")
    trace_parser.add_argument("--device", choices=("ssd", "hdd"),
                              default="ssd")

    cluster_parser = sub.add_parser(
        "cluster", help="run a multi-node fleet behind the routing gateway",
        parents=[sweep_flags])
    cluster_parser.add_argument("function", help="base function profile "
                                "the cluster's function mix is cloned from")
    cluster_parser.add_argument("approach", nargs="?", default=None,
                                choices=sorted(approach_registry()),
                                help="restore approach (default: snapbpf; "
                                     "with --fig: all four figure columns)")
    cluster_parser.add_argument("--fig", action="store_true",
                                help="sweep --policies x --node-counts and "
                                     "print the cold-start-ratio figure")
    cluster_parser.add_argument("--policy", default="snapshot-locality",
                                help="routing policy for a single run")
    cluster_parser.add_argument("--nodes", type=int, default=2,
                                help="fleet size for a single run")
    cluster_parser.add_argument(
        "--policies", default="random,round-robin,least-loaded,"
                              "snapshot-locality",
        help="comma-separated policies for --fig")
    cluster_parser.add_argument("--node-counts", default="2,4",
                                help="comma-separated fleet sizes for --fig")
    cluster_parser.add_argument("--cluster-functions", type=int, default=4,
                                metavar="N",
                                help="function clones in the mix")
    cluster_parser.add_argument("--rate", type=float, default=1.0,
                                help="arrivals/second per function")
    cluster_parser.add_argument("--duration", type=float, default=8.0,
                                help="arrival-stream duration in seconds")
    cluster_parser.add_argument("--warm-ttl", type=float, default=1.5,
                                help="warm-pool TTL per node in seconds")
    cluster_parser.add_argument("--autoscale", action="store_true",
                                help="run the cluster autoscaler loop")
    cluster_parser.add_argument("--target-inflight", type=float, default=4.0,
                                help="scale-up threshold, in-flight per node")
    cluster_parser.add_argument("--min-nodes", type=int, default=1)
    cluster_parser.add_argument("--max-nodes", type=int, default=8)
    cluster_parser.add_argument(
        "--node-crash-rate", type=float, default=0.0,
        help="probability a node is killed per crash opportunity")
    cluster_parser.add_argument("--fault-seed", type=int, default=0)
    cluster_parser.add_argument("--device", choices=("ssd", "hdd"),
                                default="ssd")

    traffic_parser = sub.add_parser(
        "traffic", help="sweep the production-traffic figure (approaches "
                        "x keep-alive policies) with per-tenant SLOs",
        parents=[sweep_flags])
    traffic_parser.add_argument(
        "function", nargs="?", default="json",
        help="base function profile (service-time calibration shape "
             "mix is fixed by the traffic spec; default: json)")
    traffic_parser.add_argument(
        "approach", nargs="?", default=None,
        choices=sorted(approach_registry()),
        help="restore approach (default: all four figure columns)")
    traffic_parser.add_argument(
        "--keepalives", default="fixed,histogram",
        help="comma-separated keep-alive policies to compare")
    traffic_parser.add_argument(
        "--quick", action="store_true",
        help="CI-sized workload (400 functions, 10s) instead of the "
             "committed 10k-function figure scale")
    traffic_parser.add_argument(
        "--traffic-functions", type=int, default=None, metavar="N",
        help="override the function-catalog size")
    traffic_parser.add_argument("--tenants", type=int, default=None,
                                help="override the tenant count")
    traffic_parser.add_argument("--rps", type=float, default=None,
                                help="override aggregate arrivals/sec")
    traffic_parser.add_argument("--duration", type=float, default=None,
                                help="override the stream duration (s)")
    traffic_parser.add_argument("--traffic-seed", type=int, default=None,
                                help="override the traffic seed")
    traffic_parser.add_argument("--nodes", type=int, default=None,
                                help="override the fleet size")
    traffic_parser.add_argument("--slots", type=int, default=None,
                                help="override per-node concurrency slots")

    storage_parser = sub.add_parser(
        "storage", help="sweep the snapshot-tiering figure (tier configs "
                        "x routing policies) through the cluster fleet",
        parents=[sweep_flags])
    storage_parser.add_argument(
        "function", nargs="?", default="json",
        help="base function profile the cluster's function mix is "
             "cloned from (default: json)")
    storage_parser.add_argument(
        "approach", nargs="?", default=None,
        choices=sorted(approach_registry()),
        help="restore approach (default: all figure columns)")
    storage_parser.add_argument(
        "--tiers", default=",".join(F.STORAGE_TIERS),
        help="comma-separated tier configs to compare (default: all)")
    storage_parser.add_argument(
        "--policies", default=",".join(F.STORAGE_POLICIES),
        help="comma-separated routing policies to compare")
    storage_parser.add_argument(
        "--nodes", type=int, default=None,
        help="fleet size (default: 4, or 2 with --quick)")
    storage_parser.add_argument(
        "--quick", action="store_true",
        help="CI-sized workload (2 nodes, 2 function clones, 3s "
             "stream) instead of the committed figure scale")

    bench_parser = sub.add_parser(
        "bench", help="run the perf-trajectory harness (BENCH_*.json)",
        parents=[sweep_flags])
    bench_parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke subset: quick-eligible cells and a shorter "
             "microbench; never overwrites the committed file unless "
             "--out says so")
    bench_parser.add_argument(
        "--out", default=None, metavar="PATH",
        help="write the JSON report here (default: the committed "
             "trajectory file for full runs, nothing for --quick)")
    bench_parser.add_argument(
        "--compare", default=None, metavar="PATH",
        help="load a baseline report and exit 1 on regression")
    bench_parser.add_argument(
        "--regression-threshold", type=float, default=0.30,
        metavar="FRAC",
        help="events/sec drop that counts as a regression (default: "
             "0.30)")

    serve_parser = sub.add_parser(
        "serve", help="serve the control-room dashboard for a run "
                      "publishing --serve-state elsewhere")
    serve_parser.add_argument(
        "--attach", required=True, metavar="STATE.json",
        help="state file the watched run writes via --serve-state")
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument("--port", type=int, default=8040,
                              help="0 picks an ephemeral port")
    serve_parser.add_argument("--poll-interval", type=float, default=0.5,
                              metavar="SECONDS",
                              help="state-file poll cadence")

    args = parser.parse_args(argv)
    if hasattr(args, "sweep_kill_rate"):
        try:
            # Validates the --sweep-*-rate flags before any work starts.
            SweepOptions.from_args(args).make_injector()
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    threshold = getattr(args, "regression_threshold", None)
    if threshold is not None and not 0 < threshold < 1:
        print(f"error: --regression-threshold must be in (0, 1), "
              f"got {threshold}", file=sys.stderr)
        return 2
    handler = {"list": cmd_list, "run": cmd_run, "table1": cmd_table1,
               "fig": cmd_fig, "chaos": cmd_chaos, "trace": cmd_trace,
               "cluster": cmd_cluster, "traffic": cmd_traffic,
               "storage": cmd_storage, "bench": cmd_bench,
               "serve": cmd_serve}[args.command]
    try:
        return handler(args)
    except SweepFailure as exc:
        print(f"error: {exc}", file=sys.stderr)
        if "MemoryError" in str(exc):
            print("hint: the frame pool cannot hold the scenario's pinned "
                  "anonymous footprint; raise --ram-gib", file=sys.stderr)
        else:
            print("hint: completed cells are checkpointed; rerun with "
                  "--keep-going (and --failure-manifest PATH) to finish "
                  "everything else", file=sys.stderr)
        return 1
    except SweepInterrupted as exc:
        print(f"interrupted: {exc}", file=sys.stderr)
        return 130


if __name__ == "__main__":
    sys.exit(main())
