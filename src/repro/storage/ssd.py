"""NAND-flash SSD model, calibrated to the paper's Micron 5300 SATA SSD.

The 5300's datasheet numbers (480 GB TLC SATA): ~540 MB/s sequential read,
~95 k 4 KiB random-read IOPS, ~36 k random-write IOPS, NCQ depth 32.  In
the two-stage device model the serialized controller stage enforces those
aggregate caps (per-command overhead ≈ 1/IOPS at saturation; bus transfer
at the SATA-limited bandwidth), while the parallel media stage contributes
the flash access latency that dominates shallow queue depths.

The crucial property for SnapBPF: random and sequential reads cost nearly
the same per byte once the queue is kept busy — only the per-*request*
command overhead differs — so prefetching a scattered working set straight
from the snapshot file is almost as fast as streaming a separately
serialized, contiguous working-set file.
"""

from __future__ import annotations

from repro.sim import Environment
from repro.storage.device import READ, BlockDevice, IORequest
from repro.units import GIB, MIB, USEC


class SSDevice(BlockDevice):
    """SATA TLC SSD (default parameters ≈ Micron 5300, 480 GB)."""

    def __init__(self, env: Environment,
                 capacity_bytes: int = 480 * GIB,
                 queue_depth: int = 32,
                 read_bandwidth: float = 540 * MIB,
                 write_bandwidth: float = 410 * MIB,
                 read_command_overhead: float = 9 * USEC,
                 write_command_overhead: float = 25 * USEC,
                 read_media_latency: float = 85 * USEC,
                 write_media_latency: float = 220 * USEC,
                 name: str = "ssd0",
                 registry=None):
        super().__init__(env, capacity_bytes, queue_depth=queue_depth,
                         name=name, registry=registry)
        self.read_bandwidth = read_bandwidth
        self.write_bandwidth = write_bandwidth
        self.read_command_overhead = read_command_overhead
        self.write_command_overhead = write_command_overhead
        self.read_media_latency = read_media_latency
        self.write_media_latency = write_media_latency

    def controller_time(self, request: IORequest) -> float:
        if request.op == READ:
            overhead, bandwidth = self.read_command_overhead, self.read_bandwidth
        else:
            overhead, bandwidth = self.write_command_overhead, self.write_bandwidth
        return overhead + request.nbytes / bandwidth

    def media_time(self, request: IORequest, sequential: bool) -> float:
        # Flash access latency is insensitive to LBA contiguity; sequential
        # requests get a small plane-pipelining benefit.
        latency = (self.read_media_latency if request.op == READ
                   else self.write_media_latency)
        return latency * (0.8 if sequential else 1.0)
