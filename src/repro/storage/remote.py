"""Remote object store modeled as a block device: RTT + NIC bandwidth.

The snapstore's coldest tier is a disaggregated object store (S3-style)
reached over the datacenter network.  In the two-stage device model the
serialized controller stage is the node's NIC — transfers share its
bandwidth — and the parallel media stage is one network round trip per
request, paid concurrently by every in-flight fetch (the store itself is
assumed wide enough never to be the bottleneck).

Defaults model a 10 GbE NIC and an intra-datacenter RTT of ~600 µs
including the object store's request-processing time, which puts one
256 KiB chunk fetch at ~0.8 ms — two orders of magnitude above the local
SSD's media latency, which is precisely the gap that makes snapshot
locality (and tier placement) worth routing for.
"""

from __future__ import annotations

from repro.sim import Environment
from repro.storage.device import BlockDevice, IORequest
from repro.units import GIB, MIB, USEC


class RemoteObjectStore(BlockDevice):
    """Disaggregated object store behind a NIC-bandwidth bottleneck."""

    def __init__(self, env: Environment,
                 capacity_bytes: int = 64 * 1024 * GIB,
                 queue_depth: int = 64,
                 rtt: float = 600 * USEC,
                 bandwidth: float = 1250 * MIB,
                 name: str = "remote0",
                 registry=None):
        super().__init__(env, capacity_bytes, queue_depth=queue_depth,
                         name=name, registry=registry)
        if rtt < 0:
            raise ValueError("rtt must be >= 0")
        if bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        self.rtt = rtt
        self.bandwidth = bandwidth

    def controller_time(self, request: IORequest) -> float:
        # The NIC serializes payload bytes regardless of direction.
        return request.nbytes / self.bandwidth

    def media_time(self, request: IORequest, sequential: bool) -> float:
        # One network round trip per request; the remote store has no
        # notion of head position, so sequentiality buys nothing.
        return self.rtt
