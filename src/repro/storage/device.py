"""Abstract block device with a fixed-depth hardware queue.

Requests are admitted into ``queue_depth`` concurrent service slots (SATA
NCQ-style); each slot serves one request for a device-specific service
time.  Subclasses implement :meth:`service_time`, which may depend on the
previous request's end offset (sequentiality) — that is the hook the HDD
model uses to penalize random I/O and the SSD model mostly ignores, which
is exactly the asymmetry SnapBPF's "metadata-only prefetch" design bets on.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.sim import Environment, Event, Resource
from repro.units import PAGE_SIZE

READ = "read"
WRITE = "write"

#: Request priorities: synchronous (fault-path) reads overtake queued
#: readahead/prefetch I/O, mirroring the block layer's REQ_RAHEAD
#: deprioritization.
PRIO_SYNC = 0
PRIO_READAHEAD = 10


@dataclass
class IORequest:
    """One block-layer request: a contiguous byte range on the device."""

    offset: int
    nbytes: int
    op: str = READ
    prio: int = PRIO_SYNC
    submit_time: float = 0.0
    complete_time: float = 0.0

    def __post_init__(self) -> None:
        if self.nbytes <= 0:
            raise ValueError(f"request size must be positive, got {self.nbytes}")
        if self.offset < 0:
            raise ValueError(f"request offset must be >= 0, got {self.offset}")
        if self.op not in (READ, WRITE):
            raise ValueError(f"unknown op {self.op!r}")

    @property
    def end(self) -> int:
        return self.offset + self.nbytes


class BlockIOError(IOError):
    """A block request failed with a media error.

    ``transient`` distinguishes errors that may clear on retry from
    persistent ones (a bad extent keeps failing), which is what the
    page-cache retry policy keys on.
    """

    def __init__(self, request: "IORequest", transient: bool = True):
        kind = "transient" if transient else "persistent"
        super().__init__(f"{kind} I/O error on {request.op} "
                         f"[{request.offset}, {request.end})")
        self.request = request
        self.transient = transient


#: Deprecated alias, kept for callers written against the old name.
IOError_ = BlockIOError


@dataclass
class DeviceStats:
    """Cumulative accounting used by the benchmarks (I/O amplification)."""

    requests: int = 0
    read_requests: int = 0
    write_requests: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    sequential_requests: int = 0
    errors: int = 0
    transient_errors: int = 0
    persistent_errors: int = 0
    #: Sum of per-request wall times, queueing included (a load proxy,
    #: not device utilization — requests overlap).
    busy_time: float = 0.0
    #: Per-request wall latency, submission to completion.
    per_request_latency: list[float] = field(default_factory=list)

    @property
    def bytes_total(self) -> int:
        return self.bytes_read + self.bytes_written

    def snapshot(self) -> dict[str, float]:
        return {
            "requests": self.requests,
            "bytes_read": self.bytes_read,
            "bytes_written": self.bytes_written,
            "sequential_requests": self.sequential_requests,
            "errors": self.errors,
            "busy_time": self.busy_time,
        }


class BlockDevice:
    """Base class: queue admission + stats; timing left to subclasses.

    Service is a two-stage pipeline: a serialized *controller/bus* stage
    (capacity 1 — this is what caps aggregate IOPS and bandwidth) followed
    by a *media* stage that runs in parallel across the ``queue_depth``
    slots (flash-plane access latency, or the mechanical seek for HDDs
    where ``queue_depth`` should be 1).
    """

    def __init__(self, env: Environment, capacity_bytes: int,
                 queue_depth: int = 32, name: str = "blk0"):
        if capacity_bytes <= 0:
            raise ValueError("device capacity must be positive")
        if queue_depth < 1:
            raise ValueError("queue depth must be >= 1")
        self.env = env
        self.name = name
        self.capacity_bytes = capacity_bytes
        self.queue_depth = queue_depth
        self.stats = DeviceStats()
        self._slots = Resource(env, capacity=queue_depth)
        self._controller = Resource(env, capacity=1)
        self._last_end: int | None = None
        self._seq = itertools.count()
        #: Fault plane hook (duck-typed; see repro.faults).  When set,
        #: each request is submitted to ``fault_injector.on_request``,
        #: whose decision can fail the request with a media error after
        #: its service time elapses and/or stretch its service time.
        self.fault_injector = None

    # -- subclass interface -------------------------------------------------
    def controller_time(self, request: IORequest) -> float:
        """Serialized per-request time (bus transfer + command overhead)."""
        raise NotImplementedError

    def media_time(self, request: IORequest, sequential: bool) -> float:
        """Per-slot media access time (parallel across the queue depth)."""
        raise NotImplementedError

    # -- submission -----------------------------------------------------------
    def submit(self, request: IORequest) -> Event:
        """Submit a request; returns the completion event (value: request)."""
        if request.end > self.capacity_bytes:
            raise ValueError(
                f"request [{request.offset}, {request.end}) exceeds device "
                f"capacity {self.capacity_bytes}")
        request.submit_time = self.env.now
        return self.env.process(self._serve(request),
                                name=f"{self.name}-io-{next(self._seq)}")

    def read(self, offset: int, nbytes: int) -> Event:
        return self.submit(IORequest(offset, nbytes, READ))

    def write(self, offset: int, nbytes: int) -> Event:
        return self.submit(IORequest(offset, nbytes, WRITE))

    def _serve(self, request: IORequest):
        start = self.env.now
        decision = (self.fault_injector.on_request(request)
                    if self.fault_injector is not None else None)
        multiplier = decision.multiplier if decision is not None else 1.0
        slot = self._slots.request(priority=request.prio)
        yield slot
        try:
            ctrl = self._controller.request(priority=request.prio)
            yield ctrl
            try:
                sequential = self._last_end == request.offset
                self._last_end = request.end
                yield self.env.timeout(
                    self.controller_time(request) * multiplier)
            finally:
                self._controller.release(ctrl)
            yield self.env.timeout(
                self.media_time(request, sequential) * multiplier)
        finally:
            self._slots.release(slot)
        request.complete_time = self.env.now
        duration = request.complete_time - start
        if decision is not None and decision.error is not None:
            transient = decision.error != "persistent"
            self._account_failure(request, duration, transient)
            raise BlockIOError(request, transient=transient)
        self._account(request, sequential, duration)
        return request

    def _account(self, request: IORequest, sequential: bool,
                 duration: float) -> None:
        st = self.stats
        st.requests += 1
        st.busy_time += duration
        st.per_request_latency.append(duration)
        if sequential:
            st.sequential_requests += 1
        if request.op == READ:
            st.read_requests += 1
            st.bytes_read += request.nbytes
        else:
            st.write_requests += 1
            st.bytes_written += request.nbytes

    def _account_failure(self, request: IORequest, duration: float,
                         transient: bool) -> None:
        """Failed requests still occupied the device for their service
        time: charge busy time and latency, but none of the success
        counters (requests/bytes/sequential)."""
        st = self.stats
        st.errors += 1
        if transient:
            st.transient_errors += 1
        else:
            st.persistent_errors += 1
        st.busy_time += duration
        st.per_request_latency.append(duration)

    # -- misc -----------------------------------------------------------------
    def reset_stats(self) -> None:
        self.stats = DeviceStats()

    @property
    def pages_capacity(self) -> int:
        return self.capacity_bytes // PAGE_SIZE

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<{type(self).__name__} {self.name} "
                f"cap={self.capacity_bytes} qd={self.queue_depth}>")
