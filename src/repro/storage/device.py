"""Abstract block device with a fixed-depth hardware queue.

Requests are admitted into ``queue_depth`` concurrent service slots (SATA
NCQ-style); each slot serves one request for a device-specific service
time.  Subclasses implement :meth:`service_time`, which may depend on the
previous request's end offset (sequentiality) — that is the hook the HDD
model uses to penalize random I/O and the SSD model mostly ignores, which
is exactly the asymmetry SnapBPF's "metadata-only prefetch" design bets on.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.metrics.registry import Histogram, MetricsRegistry
from repro.sim import Environment, Event, Resource
from repro.units import PAGE_SIZE

READ = "read"
WRITE = "write"

#: Request priorities: synchronous (fault-path) reads overtake queued
#: readahead/prefetch I/O, mirroring the block layer's REQ_RAHEAD
#: deprioritization.
PRIO_SYNC = 0
PRIO_READAHEAD = 10


@dataclass
class IORequest:
    """One block-layer request: a contiguous byte range on the device."""

    offset: int
    nbytes: int
    op: str = READ
    prio: int = PRIO_SYNC
    submit_time: float = 0.0
    complete_time: float = 0.0

    def __post_init__(self) -> None:
        if self.nbytes <= 0:
            raise ValueError(f"request size must be positive, got {self.nbytes}")
        if self.offset < 0:
            raise ValueError(f"request offset must be >= 0, got {self.offset}")
        if self.op not in (READ, WRITE):
            raise ValueError(f"unknown op {self.op!r}")

    @property
    def end(self) -> int:
        return self.offset + self.nbytes


class BlockIOError(IOError):
    """A block request failed with a media error.

    ``transient`` distinguishes errors that may clear on retry from
    persistent ones (a bad extent keeps failing), which is what the
    page-cache retry policy keys on.
    """

    def __init__(self, request: "IORequest", transient: bool = True):
        kind = "transient" if transient else "persistent"
        super().__init__(f"{kind} I/O error on {request.op} "
                         f"[{request.offset}, {request.end})")
        self.request = request
        self.transient = transient


#: Deprecated alias, kept for callers written against the old name.
IOError_ = BlockIOError


class DeviceStats:
    """Cumulative accounting used by the benchmarks (I/O amplification).

    A read-compatible facade over registry metrics: every counter the old
    dataclass exposed is still an attribute here, but the values live in
    the machine's :class:`~repro.metrics.registry.MetricsRegistry` so the
    harness can read all layers through one ``snapshot()``.  Per-request
    latency is a fixed log2-bucket :class:`Histogram` (O(1) memory per
    request instead of an unbounded list) with p50/p95/p99 accessors.
    """

    def __init__(self, registry: MetricsRegistry):
        self.registry = registry
        c = registry.counter
        self._requests = c("device_requests_total")
        self._read_requests = c("device_read_requests_total")
        self._write_requests = c("device_write_requests_total")
        self._bytes_read = c("device_bytes_read_total")
        self._bytes_written = c("device_bytes_written_total")
        self._sequential = c("device_sequential_requests_total")
        self._errors = c("device_errors_total")
        self._transient_errors = c("device_transient_errors_total")
        self._persistent_errors = c("device_persistent_errors_total")
        self._busy_time = c("device_busy_seconds_total")
        #: Per-request wall latency, submission to completion.
        self.latency: Histogram = registry.histogram(
            "device_request_latency_seconds",
            help="per-request wall latency, queueing included")

    # -- recording (called by BlockDevice only) ----------------------------
    def record_success(self, request: IORequest, sequential: bool,
                       duration: float) -> None:
        self._requests.inc()
        self._busy_time.inc(duration)
        self.latency.observe(duration)
        if sequential:
            self._sequential.inc()
        if request.op == READ:
            self._read_requests.inc()
            self._bytes_read.inc(request.nbytes)
        else:
            self._write_requests.inc()
            self._bytes_written.inc(request.nbytes)

    def record_failure(self, duration: float, transient: bool) -> None:
        """Failed requests still occupied the device for their service
        time: charge busy time and latency, but none of the success
        counters (requests/bytes/sequential)."""
        self._errors.inc()
        (self._transient_errors if transient
         else self._persistent_errors).inc()
        self._busy_time.inc(duration)
        self.latency.observe(duration)

    # -- read-compatible counter views -------------------------------------
    @property
    def requests(self) -> int:
        return self._requests.value

    @property
    def read_requests(self) -> int:
        return self._read_requests.value

    @property
    def write_requests(self) -> int:
        return self._write_requests.value

    @property
    def bytes_read(self) -> int:
        return self._bytes_read.value

    @property
    def bytes_written(self) -> int:
        return self._bytes_written.value

    @property
    def sequential_requests(self) -> int:
        return self._sequential.value

    @property
    def errors(self) -> int:
        return self._errors.value

    @property
    def transient_errors(self) -> int:
        return self._transient_errors.value

    @property
    def persistent_errors(self) -> int:
        return self._persistent_errors.value

    @property
    def busy_time(self) -> float:
        return self._busy_time.value

    @property
    def bytes_total(self) -> int:
        return self.bytes_read + self.bytes_written

    # -- latency percentiles (report columns) ------------------------------
    @property
    def p50_latency(self) -> float:
        return self.latency.percentile(50)

    @property
    def p95_latency(self) -> float:
        return self.latency.percentile(95)

    @property
    def p99_latency(self) -> float:
        return self.latency.percentile(99)

    def snapshot(self) -> dict[str, float]:
        return {
            "requests": self.requests,
            "bytes_read": self.bytes_read,
            "bytes_written": self.bytes_written,
            "sequential_requests": self.sequential_requests,
            "errors": self.errors,
            "busy_time": self.busy_time,
        }

    def reset(self) -> None:
        """Zero this device's metrics in place (other layers untouched)."""
        for metric in (self._requests, self._read_requests,
                       self._write_requests, self._bytes_read,
                       self._bytes_written, self._sequential, self._errors,
                       self._transient_errors, self._persistent_errors,
                       self._busy_time, self.latency):
            metric.reset()


class BlockDevice:
    """Base class: queue admission + stats; timing left to subclasses.

    Service is a two-stage pipeline: a serialized *controller/bus* stage
    (capacity 1 — this is what caps aggregate IOPS and bandwidth) followed
    by a *media* stage that runs in parallel across the ``queue_depth``
    slots (flash-plane access latency, or the mechanical seek for HDDs
    where ``queue_depth`` should be 1).
    """

    def __init__(self, env: Environment, capacity_bytes: int,
                 queue_depth: int = 32, name: str = "blk0",
                 registry: MetricsRegistry | None = None):
        if capacity_bytes <= 0:
            raise ValueError("device capacity must be positive")
        if queue_depth < 1:
            raise ValueError("queue depth must be >= 1")
        self.env = env
        self.name = name
        self.capacity_bytes = capacity_bytes
        self.queue_depth = queue_depth
        #: The machine-wide metrics registry; a standalone device (tests,
        #: examples) gets a private one, and the Kernel adopts whichever
        #: registry its device carries so all layers share it.
        self.registry = registry or MetricsRegistry()
        self.stats = DeviceStats(self.registry)
        self._slots = Resource(env, capacity=queue_depth)
        self._controller = Resource(env, capacity=1)
        self._last_end: int | None = None
        self._seq = itertools.count()
        #: Fault plane hook (duck-typed; see repro.faults).  When set,
        #: each request is submitted to ``fault_injector.on_request``,
        #: whose decision can fail the request with a media error after
        #: its service time elapses and/or stretch its service time.
        self.fault_injector = None

    # -- subclass interface -------------------------------------------------
    def controller_time(self, request: IORequest) -> float:
        """Serialized per-request time (bus transfer + command overhead)."""
        raise NotImplementedError

    def media_time(self, request: IORequest, sequential: bool) -> float:
        """Per-slot media access time (parallel across the queue depth)."""
        raise NotImplementedError

    # -- submission -----------------------------------------------------------
    def submit(self, request: IORequest) -> Event:
        """Submit a request; returns the completion event (value: request)."""
        if request.end > self.capacity_bytes:
            raise ValueError(
                f"request [{request.offset}, {request.end}) exceeds device "
                f"capacity {self.capacity_bytes}")
        request.submit_time = self.env.now
        return self.env.process(self._serve(request),
                                name=f"{self.name}-io-{next(self._seq)}")

    def read(self, offset: int, nbytes: int) -> Event:
        return self.submit(IORequest(offset, nbytes, READ))

    def write(self, offset: int, nbytes: int) -> Event:
        return self.submit(IORequest(offset, nbytes, WRITE))

    def _serve(self, request: IORequest):
        start = self.env.now
        decision = (self.fault_injector.on_request(request)
                    if self.fault_injector is not None else None)
        multiplier = decision.multiplier if decision is not None else 1.0
        slot = self._slots.request(priority=request.prio)
        yield slot
        try:
            ctrl = self._controller.request(priority=request.prio)
            yield ctrl
            try:
                sequential = self._last_end == request.offset
                self._last_end = request.end
                yield self.env.timeout(
                    self.controller_time(request) * multiplier)
            finally:
                self._controller.release(ctrl)
            yield self.env.timeout(
                self.media_time(request, sequential) * multiplier)
        finally:
            self._slots.release(slot)
        request.complete_time = self.env.now
        duration = request.complete_time - start
        failed = decision is not None and decision.error is not None
        self._trace_request(request, start, sequential, failed)
        if failed:
            transient = decision.error != "persistent"
            self.stats.record_failure(duration, transient)
            raise BlockIOError(request, transient=transient)
        self.stats.record_success(request, sequential, duration)
        return request

    def _trace_request(self, request: IORequest, start: float,
                       sequential: bool, failed: bool) -> None:
        tracer = self.env.tracer
        if tracer is not None and tracer.enabled:
            tracer.complete(
                f"{request.op} {request.nbytes}B", "device", start,
                end=self.env.now, track=self.name, offset=request.offset,
                nbytes=request.nbytes, prio=request.prio,
                sequential=sequential, error=failed)

    # -- misc -----------------------------------------------------------------
    def reset_stats(self) -> None:
        """Zero the device counters in place (the stats object survives)."""
        self.stats.reset()

    @property
    def pages_capacity(self) -> int:
        return self.capacity_bytes // PAGE_SIZE

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<{type(self).__name__} {self.name} "
                f"cap={self.capacity_bytes} qd={self.queue_depth}>")
