"""Flat extent-based file store on top of a block device.

Snapshot memory files, the baselines' serialized working-set files, and
SnapBPF's tiny offset-metadata files all live here.  Files are placed as
single contiguous extents (firecracker snapshots are written in one
stream, so this matches reality and gives the serialized-WS baselines
their best case: fully sequential layout).

Page *contents* are modeled as integer tokens rather than bytes: token 0
is a zero page (what FaaSnap's patched guest kernel leaves behind when it
zeroes freed memory and what its snapshot scanner looks for), and any
other token is an opaque content identity used to check copy fidelity in
tests.  Untouched pages default to a deterministic per-(inode, index)
token so content comparisons are meaningful without storing real data.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.sim import Environment, Event
from repro.storage.device import READ, WRITE, BlockDevice, IORequest
from repro.units import PAGE_SIZE

ZERO_PAGE = 0


class TornPageError(IOError):
    """A read returned a torn/corrupt snapshot page.

    The block-layer request itself succeeded; integrity checking above
    it (checksums over snapshot pages) rejected the payload.  Treated as
    transient by the retry ladder: a torn *read* (e.g. racing a snapshot
    rewrite) heals on re-read, and the fault plane draws fresh per read.
    """

    transient = True

    def __init__(self, file_name: str, page: int):
        super().__init__(f"torn page {page} in {file_name!r}")
        self.file_name = file_name
        self.page = page


def default_token(ino: int, index: int) -> int:
    """Deterministic nonzero content token for an untouched file page."""
    return (ino << 40) | (index + 1)


@dataclass
class File:
    """A file: one contiguous device extent plus sparse content overrides."""

    ino: int
    name: str
    size_bytes: int
    device_offset: int
    _contents: dict[int, int] = field(default_factory=dict)

    @property
    def size_pages(self) -> int:
        return -(-self.size_bytes // PAGE_SIZE)

    def content(self, page: int) -> int:
        self._check_page(page)
        return self._contents.get(page, default_token(self.ino, page))

    def set_content(self, page: int, token: int) -> None:
        self._check_page(page)
        self._contents[page] = token

    def zero_pages(self) -> list[int]:
        """Indices of pages whose content is the zero token (for scanners)."""
        return sorted(p for p, tok in self._contents.items() if tok == ZERO_PAGE)

    def _check_page(self, page: int) -> None:
        if not 0 <= page < self.size_pages:
            raise IndexError(
                f"page {page} out of range for {self.name!r} "
                f"({self.size_pages} pages)")


class FileStore:
    """Allocates files on a device and mediates page-granular I/O.

    Every read/write is issued as a single contiguous :class:`IORequest`
    covering the page range, which is how the block layer sees a merged
    readahead batch.  Callers that want per-page requests issue per-page
    ranges themselves (that is precisely the I/O-amplification difference
    the paper instruments with eBPF).
    """

    def __init__(self, env: Environment, device: BlockDevice):
        self.env = env
        self.device = device
        self._files: dict[str, File] = {}
        self._by_ino: dict[int, File] = {}
        self._next_ino = itertools.count(1)
        self._next_offset = 0
        #: Fault plane hook (duck-typed; see repro.faults).  When set,
        #: reads consult ``fault_injector.on_read`` and may surface a
        #: :class:`TornPageError` even though the device read succeeded.
        self.fault_injector = None
        #: Tiered snapshot store hook (see repro.snapstore).  When set,
        #: a read of a recorded snapshot file first stages any chunks
        #: not resident in the local tier; reads whose chunks are all
        #: local take the unmodified flat-file path below.
        self.snapstore = None

    # -- namespace ------------------------------------------------------------
    def create(self, name: str, size_bytes: int) -> File:
        if name in self._files:
            raise FileExistsError(name)
        if size_bytes <= 0:
            raise ValueError("file size must be positive")
        aligned = -(-size_bytes // PAGE_SIZE) * PAGE_SIZE
        if self._next_offset + aligned > self.device.capacity_bytes:
            raise OSError(f"device full creating {name!r}")
        file = File(ino=next(self._next_ino), name=name, size_bytes=size_bytes,
                    device_offset=self._next_offset)
        self._next_offset += aligned
        self._files[name] = file
        self._by_ino[file.ino] = file
        return file

    def open(self, name: str) -> File:
        try:
            return self._files[name]
        except KeyError:
            raise FileNotFoundError(name) from None

    def by_ino(self, ino: int) -> File:
        try:
            return self._by_ino[ino]
        except KeyError:
            raise FileNotFoundError(f"ino {ino}") from None

    def exists(self, name: str) -> bool:
        return name in self._files

    def unlink(self, name: str) -> None:
        file = self.open(name)
        del self._files[name]
        del self._by_ino[file.ino]

    # -- I/O --------------------------------------------------------------------
    def read_pages(self, file: File, start_page: int, npages: int,
                   prio: int = 0) -> Event:
        """Issue one contiguous read of ``npages`` pages; completion event."""
        return self._io(file, start_page, npages, READ, prio)

    def write_pages(self, file: File, start_page: int, npages: int,
                    prio: int = 0) -> Event:
        return self._io(file, start_page, npages, WRITE, prio)

    def _io(self, file: File, start_page: int, npages: int, op: str,
            prio: int = 0) -> Event:
        if npages <= 0:
            raise ValueError("page count must be positive")
        if start_page < 0 or start_page + npages > file.size_pages:
            raise IndexError(
                f"pages [{start_page}, {start_page + npages}) out of range "
                f"for {file.name!r} ({file.size_pages} pages)")
        if op == READ and self.snapstore is not None:
            plan = self.snapstore.plan_read(file, start_page, npages)
            if plan:
                return self.env.process(
                    self._staged_read(file, start_page, npages, prio, plan),
                    name=f"staged-read-{file.name}-{start_page}")
        return self._device_io(file, start_page, npages, op, prio)

    def _device_io(self, file: File, start_page: int, npages: int, op: str,
                   prio: int = 0) -> Event:
        offset = file.device_offset + start_page * PAGE_SIZE
        completion = self.device.submit(
            IORequest(offset, npages * PAGE_SIZE, op, prio=prio))
        if self.fault_injector is not None and op == READ:
            error = self.fault_injector.on_read(file, start_page, npages)
            if error is not None:
                return self.env.process(
                    self._torn_read(completion, error),
                    name=f"torn-read-{file.name}-{start_page}")
        return completion

    def _staged_read(self, file: File, start_page: int, npages: int,
                     prio: int, plan):
        # Stage the cold chunks into the local tier (charging the source
        # tier's device/network model), then perform the ordinary local
        # read.  Staging failures propagate to the caller like any other
        # read error, feeding the page cache's retry ladder.
        yield from self.snapstore.stage(plan, prio)
        result = yield self._device_io(file, start_page, npages, READ, prio)
        return result

    def _torn_read(self, completion: Event, error: TornPageError):
        # A device-level failure propagates as-is (yield re-raises it);
        # only a successful read is demoted to the torn-page error.
        yield completion
        raise error
