"""Spindle hard-disk model for the sequential-I/O ablation (§3.1).

SnapBPF's key insight is that modern SSDs "relax the need for sequential
I/O"; this 7200 rpm HDD model exists to show the counterfactual — with a
mechanical actuator, prefetching a scattered working set directly from
the snapshot file costs a seek per discontiguity, and the baselines'
serialized (contiguous) working-set files win decisively.  The ablation
benchmark ``benchmarks/test_ablation_device.py`` (A1) runs both.
"""

from __future__ import annotations

from repro.sim import Environment
from repro.storage.device import BlockDevice, IORequest
from repro.units import GIB, MIB, MSEC, USEC


class HDDevice(BlockDevice):
    """7200 rpm SATA HDD: seek + rotational latency on non-sequential I/O.

    The actuator is a single mechanical resource, so the media stage must
    not overlap: ``queue_depth`` is forced to 1 (NCQ reordering is beyond
    the fidelity this ablation needs — it would soften but not remove the
    random-I/O penalty).
    """

    def __init__(self, env: Environment,
                 capacity_bytes: int = 1000 * GIB,
                 transfer_bandwidth: float = 160 * MIB,
                 avg_seek_time: float = 8 * MSEC,
                 rpm: int = 7200,
                 command_overhead: float = 20 * USEC,
                 name: str = "hdd0",
                 registry=None):
        super().__init__(env, capacity_bytes, queue_depth=1, name=name,
                         registry=registry)
        self.transfer_bandwidth = transfer_bandwidth
        self.avg_seek_time = avg_seek_time
        # Average rotational latency = half a revolution.
        self.avg_rotational_latency = 0.5 * 60.0 / rpm
        self.command_overhead = command_overhead

    def controller_time(self, request: IORequest) -> float:
        return self.command_overhead

    def media_time(self, request: IORequest, sequential: bool) -> float:
        transfer = request.nbytes / self.transfer_bandwidth
        if sequential:
            return transfer
        return self.avg_seek_time + self.avg_rotational_latency + transfer
