"""Block-storage substrate: device models and a flat file store.

The paper stores function memory snapshots (and, for the baselines, the
serialized working-set files) on a Micron 5300 SATA SSD.  This package
models that device — and a spindle HDD for the §3.1 "modern SSDs relax
the need for sequential I/O" ablation — behind a common request-queue
interface, plus a minimal extent-based :class:`FileStore` that places
files on a device and tracks per-page content identities.
"""

from repro.storage.device import (
    BlockDevice,
    BlockIOError,
    DeviceStats,
    IOError_,
    IORequest,
)
from repro.storage.filestore import File, FileStore, TornPageError
from repro.storage.hdd import HDDevice
from repro.storage.remote import RemoteObjectStore
from repro.storage.ssd import SSDevice

__all__ = [
    "BlockDevice",
    "BlockIOError",
    "DeviceStats",
    "File",
    "FileStore",
    "HDDevice",
    "IOError_",
    "IORequest",
    "RemoteObjectStore",
    "SSDevice",
    "TornPageError",
]
