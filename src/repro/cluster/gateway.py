"""The cluster front end: routes requests onto a fleet of FaaS nodes.

The gateway owns the fleet membership (:class:`ClusterNode` wraps one
:class:`~repro.platform.node.FaaSNode` with routing state), applies one
pluggable :class:`~repro.cluster.routing.RoutingPolicy` per run, and
absorbs node crashes: a request whose node dies mid-flight is
re-routed — with a fresh attempt — to a surviving node, so faults
degrade latency, never lose requests.

Determinism: nodes are kept in an insertion-ordered dict keyed by a
monotonically assigned ``node_id``; routable listings are sorted by id;
in-flight processes are tracked in lists (insertion order), so crash
interrupts deliver in a reproducible order.  All cluster-level counters
live in one :class:`~repro.metrics.registry.MetricsRegistry` separate
from the per-node kernel registries.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.metrics.registry import MetricsRegistry
from repro.platform.node import FaaSNode
from repro.platform.workload import Arrival
from repro.sim import Environment, Interrupt

from repro.cluster.routing import RoutingError, RoutingPolicy

#: Node lifecycle states.
BOOTING = "booting"     # spawned, record phase not finished
UP = "up"               # routable
DRAINING = "draining"   # unroutable, finishing in-flight requests
RETIRED = "retired"     # drained and torn down
CRASHED = "crashed"     # killed mid-run

#: How long a request waits between route attempts when no node is
#: routable (e.g. every survivor crashed and a replacement is booting),
#: and how long it keeps trying before giving up as "unroutable".
ROUTE_RETRY_SECONDS = 0.05
ROUTE_WAIT_LIMIT = 30.0


@dataclass
class ClusterRequestResult:
    """Outcome of one request against the whole cluster."""

    function: str
    arrival_time: float
    latency: float
    cold: bool
    node_id: int
    #: "ok", "timeout", "failed" (per-node meanings), or "unroutable"
    #: (no routable node appeared within the wait limit).
    status: str = "ok"
    #: Times this request was re-routed because its node crashed.
    reroutes: int = 0
    #: Cold-start retries the serving node performed (EIO ladder).
    retries: int = 0


class ClusterNode:
    """One fleet member: a FaaSNode plus the gateway's routing state."""

    def __init__(self, node_id: int, node: FaaSNode, state: str = UP):
        self.node_id = node_id
        self.node = node
        self.state = state
        self.inflight = 0
        self.served = 0
        #: Consecutive autoscaler evaluations with zero in-flight work.
        self.idle_intervals = 0
        #: In-flight handle() processes, insertion-ordered, so a crash
        #: interrupts them in a reproducible order.
        self.procs: list = []

    @property
    def name(self) -> str:
        return f"node{self.node_id}"

    @property
    def routable(self) -> bool:
        return self.state == UP

    @property
    def live(self) -> bool:
        return self.state in (BOOTING, UP, DRAINING)

    def snapshot_residency(self, function: str) -> int:
        """Pages of ``function``'s snapshot file resident in this node's
        page cache (the per-ino counters the memory plane keeps)."""
        approach = self.node.approaches.get(function)
        snapshot = getattr(approach, "snapshot", None)
        if snapshot is None:
            return 0
        return self.node.kernel.page_cache.cached_pages(snapshot.file.ino)


class Gateway:
    """Routes an arrival stream onto the fleet under one policy."""

    def __init__(self, env: Environment, policy: RoutingPolicy,
                 registry: MetricsRegistry | None = None, tracer=None):
        self.env = env
        self.policy = policy
        self.registry = registry or MetricsRegistry()
        self.tracer = tracer
        self.nodes: dict[int, ClusterNode] = {}
        self._next_id = 0
        #: (time, routable node count) after every membership/state change.
        self.node_timeline: list[tuple[float, float]] = []
        self.peak_nodes = 0

        m = self.registry
        self._requests = m.counter(
            "cluster_requests_total", "requests submitted to the gateway")
        self._routes = m.counter(
            "cluster_routes_total", "routing decisions taken")
        self._cold = m.counter(
            "cluster_cold_starts_total", "requests served by a cold start")
        self._warm = m.counter(
            "cluster_warm_starts_total", "requests served from a warm pool")
        self._timeouts = m.counter(
            "cluster_request_timeouts_total", "requests past their deadline")
        self._failures = m.counter(
            "cluster_request_failures_total",
            "requests failed (EIO ladder exhausted or unroutable)")
        self._reroutes = m.counter(
            "cluster_crash_reroutes_total",
            "requests re-routed after their node crashed")
        self._crashes = m.counter(
            "cluster_node_crashes_total", "nodes killed by the fault plane")
        self._scale_ups = m.counter(
            "cluster_scale_ups_total", "nodes added by the autoscaler")
        self._scale_downs = m.counter(
            "cluster_scale_downs_total", "nodes retired by the autoscaler")
        self._rebalance_evictions = m.counter(
            "cluster_rebalance_evictions_total",
            "resident pages discarded by node drain/retire")
        self._nodes_gauge = m.gauge(
            "cluster_nodes", "currently routable nodes")
        self._latency = m.histogram(
            "cluster_request_latency_seconds", "gateway-observed E2E latency")

    # -- membership ---------------------------------------------------------
    def add_node(self, node: FaaSNode, state: str = UP) -> ClusterNode:
        cnode = ClusterNode(self._next_id, node, state=state)
        self._next_id += 1
        self.nodes[cnode.node_id] = cnode
        self._record_membership()
        return cnode

    def routable_nodes(self) -> list[ClusterNode]:
        return [n for n in self.nodes.values() if n.routable]

    def live_nodes(self) -> list[ClusterNode]:
        return [n for n in self.nodes.values() if n.live]

    def mark(self, cnode: ClusterNode, state: str) -> None:
        cnode.state = state
        self._record_membership()

    def _record_membership(self) -> None:
        count = len(self.routable_nodes())
        self.node_timeline.append((self.env.now, float(count)))
        self._nodes_gauge.set(count)
        self.peak_nodes = max(self.peak_nodes, count)

    # -- lifecycle events ---------------------------------------------------
    def crash(self, cnode: ClusterNode) -> None:
        """Kill a node: fail its in-flight requests (their waiters
        re-route) and discard its sandbox/page-cache state."""
        self.mark(cnode, CRASHED)
        self._crashes.inc()
        if self.tracer is not None and self.tracer.enabled:
            self.tracer.instant(f"crash {cnode.name}", "cluster",
                                self.env.now, track="gateway",
                                inflight=cnode.inflight)
        for proc in list(cnode.procs):
            if proc.is_alive:
                proc.interrupt("node-crash")
        cnode.node.shutdown()

    def drain(self, cnode: ClusterNode) -> None:
        """Stop routing to a node; it finishes its in-flight requests."""
        self.mark(cnode, DRAINING)
        if self.tracer is not None and self.tracer.enabled:
            self.tracer.instant(f"drain {cnode.name}", "cluster",
                                self.env.now, track="gateway")

    def retire(self, cnode: ClusterNode) -> None:
        """Tear down a drained node: warm pools die, caches are dropped
        (counted as rebalance evictions — that state must be rebuilt
        elsewhere)."""
        self.mark(cnode, RETIRED)
        dropped = cnode.node.shutdown()
        self._rebalance_evictions.inc(dropped)
        self._scale_downs.inc()
        if self.tracer is not None and self.tracer.enabled:
            self.tracer.instant(f"retire {cnode.name}", "cluster",
                                self.env.now, track="gateway",
                                evicted_pages=dropped)

    # -- request path -------------------------------------------------------
    def route(self, function: str) -> ClusterNode:
        """One routing decision over the currently routable nodes."""
        nodes = self.routable_nodes()
        if not nodes:
            raise RoutingError("no routable nodes")
        chosen = self.policy.choose(function, nodes)
        self._routes.inc()
        if self.tracer is not None and self.tracer.enabled:
            self.tracer.instant(f"route {function}", "cluster",
                                self.env.now, track="gateway",
                                node=chosen.name,
                                inflight=chosen.inflight)
        return chosen

    def submit(self, arrival: Arrival):
        """Generator: serve one request; returns a ClusterRequestResult.

        A crash of the serving node surfaces here as an
        :class:`~repro.sim.Interrupt`; the request then re-routes (a
        fresh cold attempt) to a survivor.  If the whole fleet is
        momentarily unroutable the request polls until a node comes up
        or the wait limit expires.
        """
        env = self.env
        start = env.now
        self._requests.inc()
        reroutes = 0
        while True:
            try:
                cnode = self.route(arrival.function)
            except RoutingError:
                if env.now - start >= ROUTE_WAIT_LIMIT:
                    self._failures.inc()
                    return ClusterRequestResult(
                        function=arrival.function,
                        arrival_time=arrival.time,
                        latency=env.now - start, cold=False, node_id=-1,
                        status="unroutable", reroutes=reroutes)
                yield env.timeout(ROUTE_RETRY_SECONDS)
                continue
            cnode.inflight += 1
            proc = env.process(cnode.node.handle(arrival),
                               name=f"{cnode.name}-{arrival.function}")
            cnode.procs.append(proc)
            try:
                result = yield proc
            except Interrupt:
                reroutes += 1
                self._reroutes.inc()
                continue
            finally:
                cnode.inflight -= 1
                try:
                    cnode.procs.remove(proc)
                except ValueError:
                    pass
            break

        cnode.served += 1
        latency = env.now - start
        self._latency.observe(latency)
        (self._cold if result.cold else self._warm).inc()
        if result.status == "timeout":
            self._timeouts.inc()
        elif result.status == "failed":
            self._failures.inc()
        return ClusterRequestResult(
            function=arrival.function, arrival_time=arrival.time,
            latency=latency, cold=result.cold, node_id=cnode.node_id,
            status=result.status, reroutes=reroutes, retries=result.retries)

    # -- end-of-run ---------------------------------------------------------
    def finalize(self) -> None:
        """Publish derived end-of-run gauges."""
        cold = self._cold.value
        warm = self._warm.value
        ratio = cold / (cold + warm) if cold + warm else 0.0
        self.registry.gauge(
            "cluster_cold_start_ratio",
            "cold starts / served requests at end of run").set(ratio)
        overflow = getattr(self.policy, "overflow_routes", 0)
        self.registry.gauge(
            "cluster_locality_overflow_routes",
            "snapshot-locality routes that overflowed the home node"
        ).set(overflow)
