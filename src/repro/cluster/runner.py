"""Drive one cluster scenario: fleet build-out, workload, aggregation.

``run_cluster(spec)`` composes many kernels (one per node, each with its
own device, frame pool, and metrics registry) inside ONE shared DES
environment, routes a Poisson arrival stream through the gateway, and
returns a :class:`ClusterReport`.  ``run_cluster_scenario(spec)`` wraps
that into the standard :class:`~repro.metrics.results.ScenarioResult`
shape (per-cluster counters in ``extra``, cluster registry snapshot in
``metrics``) so the sweep engine, result store, and figure builders work
unchanged.

Determinism: the whole run is a pure function of the spec (plus an
optional fault config/seed) — seeded arrival stream, seeded routing,
sorted node iteration for crash draws, and insertion-ordered in-flight
tracking.  Equal specs produce byte-identical results under any job
count, which the store-replay tests pin.
"""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass, field, replace

from repro.metrics.registry import MetricsRegistry
from repro.metrics.results import ScenarioResult
from repro.mm.kernel import Kernel
from repro.platform.node import FaaSNode
from repro.platform.workload import poisson_arrivals
from repro.sim import Environment
from repro.storage.hdd import HDDevice
from repro.storage.ssd import SSDevice
from repro.trace import Tracer
from repro.units import GIB

from repro.cluster.autoscaler import ClusterAutoscaler
from repro.cluster.gateway import (
    BOOTING,
    UP,
    ClusterRequestResult,
    Gateway,
)
from repro.cluster.keepalive import make_keepalive_policy
from repro.cluster.routing import make_routing_policy

#: How often the fault plane rolls a crash die per routable node.
CRASH_CHECK_INTERVAL = 0.25

#: Per-node degradation counters rolled up into the cluster registry
#: (the FaaSNode publishes these on its kernel's registry).
NODE_METRIC_NAMES = (
    "node_requests_total",
    "node_requests_completed_total",
    "node_request_retries_total",
    "node_request_timeouts_total",
    "node_request_failures_total",
    "node_cold_starts_total",
    "node_warm_starts_total",
)


def cluster_profiles(base, n_functions: int):
    """``n_functions`` clones of the base profile with distinct names and
    record seeds — distinct snapshot files, warm pools, and hash-ring
    positions, but identical shape so results compare across policies."""
    return [replace(base, name=f"{base.name}-{i}", seed=base.seed + i)
            for i in range(n_functions)]


@dataclass
class ClusterReport:
    """Everything one cluster run produced."""

    policy: str
    results: list[ClusterRequestResult]
    #: (time, routable node count) after every membership change.
    node_timeline: list[tuple[float, float]]
    #: Cluster-registry snapshot (cluster_* plus node_* rollups).
    metrics: dict[str, float] = field(default_factory=dict)
    #: Fleet-wide kernel aggregates (summed over every node ever built).
    peak_memory_bytes: int = 0
    end_memory_bytes: int = 0
    device_requests: int = 0
    device_bytes_read: int = 0
    device_bytes_written: int = 0
    cache_adds: int = 0
    #: Workload window (arrival base time and final drain time).
    start_time: float = 0.0
    end_time: float = 0.0

    # -- summaries ----------------------------------------------------------
    @property
    def requests(self) -> int:
        return len(self.results)

    @property
    def served(self) -> list[ClusterRequestResult]:
        return [r for r in self.results if r.status != "unroutable"]

    @property
    def cold_starts(self) -> int:
        return sum(1 for r in self.served if r.cold)

    @property
    def warm_starts(self) -> int:
        return len(self.served) - self.cold_starts

    @property
    def cold_ratio(self) -> float:
        served = len(self.served)
        return self.cold_starts / served if served else 0.0

    @property
    def completed(self) -> int:
        return sum(1 for r in self.results if r.status == "ok")

    @property
    def timeouts(self) -> int:
        return sum(1 for r in self.results if r.status == "timeout")

    @property
    def failures(self) -> int:
        return sum(1 for r in self.results
                   if r.status in ("failed", "unroutable"))

    @property
    def reroutes(self) -> int:
        return sum(r.reroutes for r in self.results)

    def latencies(self) -> list[float]:
        return [r.latency for r in self.served]

    def mean_latency(self) -> float:
        values = self.latencies()
        return statistics.fmean(values) if values else 0.0

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile of served-request latencies."""
        values = sorted(self.latencies())
        if not values:
            return 0.0
        index = min(len(values) - 1,
                    max(0, math.ceil(p / 100 * len(values)) - 1))
        return values[index]

    def per_node_served(self) -> dict[int, int]:
        out: dict[int, int] = {}
        for r in self.served:
            out[r.node_id] = out.get(r.node_id, 0) + 1
        return dict(sorted(out.items()))

    def node_seconds(self) -> float:
        """Integral of the routable-node count over the workload window
        (the capacity the run paid for)."""
        total = 0.0
        count = 0.0
        last = self.start_time
        for when, n in self.node_timeline:
            if when > self.start_time:
                total += count * (min(when, self.end_time) - last)
                last = min(max(when, self.start_time), self.end_time)
            count = n
        total += count * max(0.0, self.end_time - last)
        return total

    def fingerprint(self) -> str:
        """Canonical digest of everything observable — what the
        determinism tests compare across job counts and processes."""
        rows = [(r.function, round(r.arrival_time, 9), round(r.latency, 9),
                 r.cold, r.node_id, r.status, r.reroutes, r.retries)
                for r in self.results]
        return repr((self.policy, rows,
                     [(round(t, 9), n) for t, n in self.node_timeline],
                     sorted(self.metrics.items())))


def run_cluster(spec, fault_config=None, fault_seed: int = 0,
                tracer: Tracer | None = None,
                telemetry=None) -> ClusterReport:
    """Run the fleet scenario described by ``spec`` (a ScenarioSpec
    whose ``cluster`` field is set).

    ``telemetry`` (a :class:`~repro.serve.hub.TelemetryHub`) observes
    the run live: it is wired to the DES engine's per-event hook, the
    cluster registry, the tracer, and a fleet-topology provider built
    from the gateway's node table.  Observation-only — attaching a hub
    changes no report field or fingerprint.
    """
    cspec = spec.cluster
    if cspec is None:
        raise ValueError("spec.cluster is not set; use run_scenario")
    if cspec.traffic is not None:
        raise ValueError("spec.cluster.traffic is set; use "
                         "repro.cluster.traffic.run_traffic")

    env = Environment()
    tracer = tracer or Tracer()
    registry = MetricsRegistry()
    profiles = cluster_profiles(spec.function, cspec.n_functions)
    policy = make_routing_policy(
        cspec.policy, seed=spec.input_seed,
        overflow_inflight=cspec.overflow_inflight)
    gateway = Gateway(env, policy, registry=registry, tracer=tracer)
    kernels: list[Kernel] = []
    # One keep-alive policy for the whole fleet (platform-level view of
    # arrival history); nodes park/pre-warm through it, the autoscaler
    # reads its pending pre-warms as imminent load.
    keepalive = make_keepalive_policy(
        cspec.keepalive, warm_pool_ttl=cspec.warm_pool_ttl,
        percentile=cspec.keepalive_percentile,
        min_ttl=cspec.keepalive_min_ttl, max_ttl=cspec.keepalive_max_ttl,
        min_samples=cspec.keepalive_min_samples, prewarm=cspec.prewarm)

    if telemetry is not None:
        def fleet_topology() -> dict:
            counts: dict[str, int] = {}
            nodes = []
            for cnode in gateway.nodes.values():
                counts[cnode.state] = counts.get(cnode.state, 0) + 1
                nodes.append({"id": cnode.node_id, "name": cnode.name,
                              "state": cnode.state,
                              "inflight": cnode.inflight,
                              "served": cnode.served})
            return {"nodes": nodes, "counts": counts}

        env.telemetry = telemetry
        telemetry.attach_registry(registry)
        telemetry.attach_tracer(tracer)
        telemetry.attach_fleet_provider(fleet_topology)
        telemetry.attach_engine(env)
        telemetry.flush(phase=f"cluster:{cspec.policy}")

    schedule = None
    if fault_config is not None:
        from repro.faults import FaultSchedule
        schedule = FaultSchedule(seed=fault_seed, config=fault_config)

    # Shared snapstore plane: one chunk namespace and one remote object
    # store for the whole fleet.  Each node overlays a local tier on it;
    # a locality miss on routing now costs real staged remote fetches.
    shared_chunks = None
    shared_remote = None
    snapstores = []
    if spec.snapstore is not None:
        from repro.snapstore import ChunkRegistry
        from repro.storage.remote import RemoteObjectStore
        shared_chunks = ChunkRegistry()
        shared_remote = RemoteObjectStore(
            env, rtt=spec.snapstore.remote_latency,
            bandwidth=spec.snapstore.remote_bandwidth)

        if telemetry is not None:
            def snapstore_occupancy() -> dict:
                return {
                    "placement": spec.snapstore.placement,
                    "chunk_pages": spec.snapstore.chunk_pages,
                    "dedup_factor": float(shared_chunks.dedup_factor),
                    "logical_bytes": float(shared_chunks.logical_bytes),
                    "unique_bytes": float(shared_chunks.unique_bytes),
                    "remote_bytes": float(shared_chunks.unique_bytes),
                    "gc_reclaimed_bytes":
                        float(shared_chunks.gc_reclaimed_bytes),
                    "local_bytes":
                        float(sum(s.local_bytes for s in snapstores)),
                    "hdd_bytes":
                        float(sum(s.hdd_bytes for s in snapstores)),
                    "nodes": [s.occupancy() for s in snapstores],
                }

            telemetry.attach_snapstore_provider(snapstore_occupancy)

    def build_node() -> FaaSNode:
        device = (SSDevice(env) if spec.device_kind == "ssd"
                  else HDDevice(env))
        kernel = Kernel(env=env, device=device,
                        ram_bytes=(spec.ram_bytes if spec.ram_bytes
                                   is not None else 256 * GIB),
                        costs=spec.costs, tracer=tracer)
        if spec.ram_bytes is not None:
            kernel.reclaim.enable_watermarks()
        if schedule is not None:
            schedule.install(kernel)
        if spec.snapstore is not None:
            from repro.snapstore import install_snapstore
            store = install_snapstore(kernel, spec.snapstore,
                                      chunks=shared_chunks,
                                      remote=shared_remote)
            snapstores.append(store)
        kernels.append(kernel)
        return FaaSNode(kernel, spec.approach, profiles,
                        warm_pool_ttl=cspec.warm_pool_ttl,
                        request_deadline=cspec.request_deadline,
                        keepalive=keepalive)

    def finish_boot(cnode) -> None:
        if spec.evict_policy is not None:
            from repro.core.policies import attach_evict_policy
            attach_evict_policy(cnode.node.kernel, spec.evict_policy)
        gateway.mark(cnode, UP)

    # -- stage the initial fleet (record phases run before traffic) ---------
    for _ in range(cspec.n_nodes):
        cnode = gateway.add_node(build_node(), state=BOOTING)
        env.run(env.process(cnode.node.prepare(),
                            name=f"prepare-{cnode.name}"))
        finish_boot(cnode)

    autoscaler = None
    if cspec.autoscale:
        def spawn_node():
            return gateway.add_node(build_node(), state=BOOTING)

        autoscaler = ClusterAutoscaler(
            env, gateway, spawn_node, on_node_ready=finish_boot,
            target_inflight=cspec.target_inflight,
            min_nodes=cspec.min_nodes, max_nodes=cspec.max_nodes,
            scale_interval=cspec.scale_interval,
            drain_idle_intervals=cspec.drain_idle_intervals,
            node_boot_seconds=cspec.node_boot_seconds, tracer=tracer,
            keepalive=keepalive)

    # -- node-crash fault process -------------------------------------------
    crash_stop = {"flag": False}
    if (schedule is not None
            and schedule.config.node_crash_rate > 0):
        def crasher():
            while not crash_stop["flag"]:
                yield env.timeout(CRASH_CHECK_INTERVAL)
                if crash_stop["flag"]:
                    return
                for cnode in gateway.routable_nodes():
                    if len(gateway.routable_nodes()) <= 1:
                        break  # never strand the fleet entirely
                    if cnode.routable and schedule.node.draw_crash():
                        gateway.crash(cnode)

        env.process(crasher(), name="node-crasher")

    # -- workload ------------------------------------------------------------
    arrivals = poisson_arrivals(
        [(p, cspec.rate_per_function) for p in profiles],
        cspec.duration, seed=spec.input_seed, vary_inputs=spec.vary_inputs)
    base = env.now
    keepalive.horizon = base + cspec.duration

    def request(arrival):
        yield env.timeout(max(0.0, base + arrival.time - env.now))
        result = yield from gateway.submit(arrival)
        return result

    processes = [env.process(request(a), name=f"creq-{i}")
                 for i, a in enumerate(arrivals)]
    env.run(env.all_of(processes))
    if autoscaler is not None:
        autoscaler.stop()
    crash_stop["flag"] = True
    env.run()  # drain reapers, in-flight boots, final control ticks
    gateway.finalize()

    # Roll per-node degradation counters up into the cluster registry so
    # one text exposition shows fleet-wide node_* next to cluster_*.
    def node_rollup() -> dict[str, float]:
        out: dict[str, float] = {}
        for kernel in kernels:
            for name in NODE_METRIC_NAMES:
                if name in kernel.metrics:
                    out[name] = (out.get(name, 0.0)
                                 + kernel.metrics.get(name).value)
        return out

    registry.register_collector(node_rollup)

    if snapstores:
        # Dedup state is fleet-shared (one chunk namespace); tier
        # occupancy and fetch counters are per-node and summed.
        def snapstore_rollup() -> dict[str, float]:
            out = {
                "snapstore_dedup_factor":
                    float(shared_chunks.dedup_factor),
                "snapstore_logical_bytes":
                    float(shared_chunks.logical_bytes),
                "snapstore_unique_bytes":
                    float(shared_chunks.unique_bytes),
                "snapstore_remote_bytes":
                    float(shared_chunks.unique_bytes),
                "snapstore_gc_reclaimed_bytes_total":
                    float(shared_chunks.gc_reclaimed_bytes),
                "snapstore_local_bytes":
                    float(sum(s.local_bytes for s in snapstores)),
            }
            if any(s.hdd is not None for s in snapstores):
                out["snapstore_hdd_bytes"] = float(
                    sum(s.hdd_bytes for s in snapstores))
            for name in ("snapstore_remote_fetches_total",
                         "snapstore_remote_fetch_bytes_total",
                         "snapstore_staged_chunks_total",
                         "snapstore_chunk_hits_local_total",
                         "snapstore_chunk_hits_hdd_total",
                         "snapstore_demotions_total",
                         "snapstore_fetch_retries_total",
                         "snapstore_degraded_fetches_total"):
                out[name] = float(sum(
                    k.metrics.get(name).value for k in kernels
                    if name in k.metrics))
            return out

        registry.register_collector(snapstore_rollup)

    if telemetry is not None:
        telemetry.publish(sim_time=env.now, force=True,
                          phase=f"cluster:{cspec.policy} done")

    return ClusterReport(
        policy=cspec.policy,
        results=[p.value for p in processes],
        node_timeline=list(gateway.node_timeline),
        metrics=registry.snapshot(),
        peak_memory_bytes=sum(k.frames.peak_bytes for k in kernels),
        end_memory_bytes=sum(k.memory_in_use_bytes() for k in kernels),
        device_requests=sum(k.device.stats.requests for k in kernels),
        device_bytes_read=sum(k.device.stats.bytes_read for k in kernels),
        device_bytes_written=sum(k.device.stats.bytes_written
                                 for k in kernels),
        cache_adds=sum(k.page_cache.stats.adds for k in kernels),
        start_time=base, end_time=env.now)


def run_cluster_scenario(spec) -> ScenarioResult:
    """Adapt a cluster run to the standard ScenarioResult shape.

    ``invocations`` stays empty (there is no single-host E2E breakdown);
    every cluster-level statistic rides in ``extra`` as floats and the
    cluster registry snapshot in ``metrics`` — the exact-JSON-round-trip
    contract the warm result store depends on.

    A spec whose cluster carries a :class:`~repro.workloads.traffic.
    TrafficSpec` dispatches to the traffic plane (modeled-fidelity
    nodes, production-shaped load) instead of the page-level fleet.
    """
    if spec.cluster is not None and spec.cluster.traffic is not None:
        from repro.cluster.traffic import run_traffic_scenario
        return run_traffic_scenario(spec)
    report = run_cluster(spec)
    extra = {
        "cluster_requests": float(report.requests),
        "cluster_cold_starts": float(report.cold_starts),
        "cluster_warm_starts": float(report.warm_starts),
        "cluster_cold_ratio": float(report.cold_ratio),
        "cluster_completed": float(report.completed),
        "cluster_timeouts": float(report.timeouts),
        "cluster_failures": float(report.failures),
        "cluster_reroutes": float(report.reroutes),
        "cluster_mean_latency": float(report.mean_latency()),
        "cluster_p50_latency": float(report.percentile(50)),
        "cluster_p95_latency": float(report.percentile(95)),
        "cluster_p99_latency": float(report.percentile(99)),
        "cluster_node_seconds": float(report.node_seconds()),
        "cluster_nodes_final": float(report.node_timeline[-1][1]
                                     if report.node_timeline else 0.0),
        "cluster_nodes_peak": float(max(
            (n for _, n in report.node_timeline), default=0.0)),
        "cluster_scale_ups": float(
            report.metrics.get("cluster_scale_ups_total", 0.0)),
        "cluster_scale_downs": float(
            report.metrics.get("cluster_scale_downs_total", 0.0)),
        "cluster_crashes": float(
            report.metrics.get("cluster_node_crashes_total", 0.0)),
        "cluster_rebalance_evictions": float(
            report.metrics.get("cluster_rebalance_evictions_total", 0.0)),
    }
    # Snapstore plane: dedup and per-tier bytes, present only when the
    # spec enables the store (storeless extras stay byte-identical).
    for key in ("snapstore_dedup_factor", "snapstore_logical_bytes",
                "snapstore_unique_bytes", "snapstore_local_bytes",
                "snapstore_hdd_bytes", "snapstore_remote_bytes"):
        if key in report.metrics:
            extra[key] = float(report.metrics[key])
    for key in ("snapstore_remote_fetches_total",
                "snapstore_remote_fetch_bytes_total",
                "snapstore_staged_chunks_total",
                "snapstore_demotions_total",
                "snapstore_fetch_retries_total",
                "snapstore_degraded_fetches_total",
                "snapstore_gc_reclaimed_bytes_total"):
        if report.metrics.get(key):
            extra[key.removesuffix("_total")] = float(report.metrics[key])
    return ScenarioResult(
        function=spec.function_name,
        approach=spec.approach,
        n_instances=spec.n_instances,
        invocations=[],
        peak_memory_bytes=report.peak_memory_bytes,
        end_memory_bytes=report.end_memory_bytes,
        device_requests=report.device_requests,
        device_bytes_read=report.device_bytes_read,
        device_bytes_written=report.device_bytes_written,
        cache_adds=report.cache_adds,
        metrics=report.metrics,
        extra=extra,
    )
