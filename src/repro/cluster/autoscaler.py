"""Fleet autoscaling as a DES process.

The :class:`ClusterAutoscaler` evaluates the fleet every
``scale_interval`` simulated seconds: when mean in-flight load per
routable node exceeds ``target_inflight`` (and nothing is already
booting) it spawns one node — boot delay, then the record phase for
every function, all in simulated time — and when a node has been idle
for ``drain_idle_intervals`` consecutive evaluations it drains it
(unroutable, finishes in-flight work) and retires it once empty (warm
pools die, page cache discarded).

One boot at a time and one drain victim per evaluation keeps scaling
decisions a deterministic function of fleet state; the victim is the
*newest* idle node, so the stable core of the fleet (and its cache
residency) survives load dips.
"""

from __future__ import annotations

from typing import Callable

from repro.cluster.gateway import DRAINING, UP, ClusterNode, Gateway


class ClusterAutoscaler:
    """Periodic scale-up/scale-down controller for one gateway."""

    def __init__(self, env, gateway: Gateway,
                 spawn_node: Callable[[], ClusterNode], *,
                 on_node_ready: Callable[[ClusterNode], None] | None = None,
                 target_inflight: float = 4.0, min_nodes: int = 1,
                 max_nodes: int = 8, scale_interval: float = 0.5,
                 drain_idle_intervals: int = 4,
                 node_boot_seconds: float = 0.5, tracer=None,
                 keepalive=None):
        self.env = env
        self.gateway = gateway
        #: Builds a fresh (unprepared) node and registers it with the
        #: gateway in state BOOTING; the autoscaler drives its boot.
        self.spawn_node = spawn_node
        #: Finishes a boot (e.g. attaches eviction policies) and marks
        #: the node UP; defaults to just flipping the gateway state.
        self.on_node_ready = on_node_ready
        self.target_inflight = target_inflight
        self.min_nodes = min_nodes
        self.max_nodes = max_nodes
        self.scale_interval = scale_interval
        self.drain_idle_intervals = drain_idle_intervals
        self.node_boot_seconds = node_boot_seconds
        self.tracer = tracer
        #: Shared :class:`~repro.cluster.keepalive.KeepAlivePolicy`: its
        #: pending pre-warms count as imminent load, so the fleet scales
        #: ahead of predicted arrivals instead of reacting to them.
        self.keepalive = keepalive
        self.scale_ups = 0
        self.scale_downs = 0
        self._booting = 0
        self._running = True
        self.process = env.process(self._loop(), name="autoscaler")

    def stop(self) -> None:
        """Let the loop wind down at its next evaluation."""
        self._running = False

    # -- control loop -------------------------------------------------------
    def _loop(self):
        while self._running:
            yield self.env.timeout(self.scale_interval)
            if not self._running:
                return
            self._evaluate()

    def _evaluate(self) -> None:
        gateway = self.gateway
        # Retire drained nodes whose last in-flight request finished.
        for cnode in [n for n in gateway.nodes.values()
                      if n.state == DRAINING and n.inflight == 0]:
            gateway.retire(cnode)
            self.scale_downs += 1

        up = gateway.routable_nodes()
        if not up:
            return
        live = len(gateway.live_nodes())
        pending = (self.keepalive.pending_prewarms
                   if self.keepalive is not None else 0)
        load = (sum(n.inflight for n in up) + pending) / len(up)

        if (load > self.target_inflight and self._booting == 0
                and live < self.max_nodes):
            self._booting += 1
            self.env.process(self._boot(), name="autoscaler-boot")
            if self.tracer is not None and self.tracer.enabled:
                self.tracer.instant("scale-up", "cluster", self.env.now,
                                    track="autoscaler", load=load)
            return

        for cnode in up:
            cnode.idle_intervals = (cnode.idle_intervals + 1
                                    if cnode.inflight == 0 else 0)
        if len(up) > self.min_nodes:
            idle = [n for n in up
                    if n.idle_intervals >= self.drain_idle_intervals]
            if idle:
                victim = max(idle, key=lambda n: n.node_id)
                gateway.drain(victim)
                if self.tracer is not None and self.tracer.enabled:
                    self.tracer.instant("scale-down", "cluster",
                                        self.env.now, track="autoscaler",
                                        node=victim.name)

    def _boot(self):
        cnode = self.spawn_node()
        yield self.env.timeout(self.node_boot_seconds)
        yield from cnode.node.prepare()
        if self.on_node_ready is not None:
            self.on_node_ready(cnode)
        else:
            self.gateway.mark(cnode, UP)
        self.gateway._scale_ups.inc()
        self.scale_ups += 1
        self._booting -= 1
        if self.tracer is not None and self.tracer.enabled:
            self.tracer.instant(f"node-up {cnode.name}", "cluster",
                                self.env.now, track="autoscaler")
