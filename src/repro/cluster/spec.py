"""`ClusterSpec` — the hashable description of one fleet-level run.

A cluster scenario composes many :class:`~repro.platform.node.FaaSNode`
hosts inside one DES engine behind a gateway.  Everything that
determines the run's outcome beyond the base :class:`ScenarioSpec`
fields — fleet size, routing policy, workload shape, warm-pool TTL,
autoscaler knobs — lives here, so nesting a ``ClusterSpec`` inside a
``ScenarioSpec`` keeps the spec a pure cache key: two equal specs
produce byte-identical results whatever process ran them.

The class is frozen and JSON-round-trippable (``canonical()`` /
``from_dict()``), mirroring :class:`~repro.mm.costs.CostModel`, so the
sweep engine's content-addressed store works unchanged.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

from repro.cluster.keepalive import KEEPALIVE_POLICIES
from repro.cluster.routing import ROUTING_POLICIES
from repro.workloads.traffic import TrafficSpec


@dataclass(frozen=True)
class ClusterSpec:
    """Fleet shape, routing policy, and workload for one cluster run."""

    #: Nodes booted (and prepared) before the arrival stream starts.
    n_nodes: int = 2
    #: Routing policy name (see :data:`repro.cluster.routing.ROUTING_POLICIES`).
    policy: str = "snapshot-locality"
    #: Distinct functions cloned from the base profile (distinct names
    #: and record seeds, same shape) — the per-function locality the
    #: consistent-hash ring exploits.
    n_functions: int = 4
    #: Poisson arrival rate per function, requests/second.
    rate_per_function: float = 1.0
    #: Arrival-stream duration, seconds.
    duration: float = 8.0
    #: Warm-pool TTL per node (``None`` disables pooling: every request
    #: is a cold start and routing can only move cache residency).
    warm_pool_ttl: float | None = 1.5
    #: Per-request wall-clock budget (``None`` = unbounded).
    request_deadline: float | None = None
    #: Run the autoscaler loop (off: the fleet stays at ``n_nodes``).
    autoscale: bool = False
    #: Scale up when mean in-flight per routable node exceeds this.
    target_inflight: float = 4.0
    min_nodes: int = 1
    max_nodes: int = 8
    #: Autoscaler evaluation period, seconds.
    scale_interval: float = 0.5
    #: Consecutive idle evaluations before a node is drained.
    drain_idle_intervals: int = 4
    #: Boot delay for a scaled-up node before its record phase runs.
    node_boot_seconds: float = 0.5
    #: snapshot-locality only: in-flight load on the ring-preferred node
    #: past which the request overflows to the warmest other node.
    overflow_inflight: int = 8
    #: Keep-alive policy name (see
    #: :data:`repro.cluster.keepalive.KEEPALIVE_POLICIES`).  ``fixed``
    #: parks every sandbox for ``warm_pool_ttl``; ``histogram`` learns
    #: per-function idle-time distributions (schema v4).
    keepalive: str = "fixed"
    #: histogram policy: idle-time percentile choosing the TTL.
    keepalive_percentile: float = 99.0
    #: histogram policy: TTL clamp bounds, seconds.
    keepalive_min_ttl: float = 0.25
    keepalive_max_ttl: float = 8.0
    #: histogram policy: observed gaps before trusting the histogram
    #: (``warm_pool_ttl`` serves as the default until then).
    keepalive_min_samples: int = 4
    #: histogram policy: pre-warm sandboxes ahead of predicted arrivals.
    prewarm: bool = True
    #: Production-shaped workload (overrides the uniform
    #: n_functions x rate_per_function stream when set; schema v4).
    traffic: TrafficSpec | None = None

    def __post_init__(self) -> None:
        if isinstance(self.traffic, dict):
            object.__setattr__(self, "traffic",
                               TrafficSpec.from_dict(self.traffic))
        if self.policy not in ROUTING_POLICIES:
            raise ValueError(
                f"unknown routing policy {self.policy!r}; choose from "
                f"{', '.join(sorted(ROUTING_POLICIES))}")
        if self.n_nodes < 1:
            raise ValueError(f"n_nodes must be >= 1, got {self.n_nodes}")
        if self.n_functions < 1:
            raise ValueError(
                f"n_functions must be >= 1, got {self.n_functions}")
        if self.rate_per_function <= 0:
            raise ValueError("rate_per_function must be positive")
        if self.duration <= 0:
            raise ValueError("duration must be positive")
        if self.warm_pool_ttl is not None and self.warm_pool_ttl <= 0:
            raise ValueError("warm_pool_ttl must be positive or None")
        if self.request_deadline is not None and self.request_deadline <= 0:
            raise ValueError("request_deadline must be positive or None")
        if self.target_inflight <= 0:
            raise ValueError("target_inflight must be positive")
        if not 1 <= self.min_nodes <= self.max_nodes:
            raise ValueError(
                f"need 1 <= min_nodes <= max_nodes, got "
                f"{self.min_nodes}..{self.max_nodes}")
        if self.scale_interval <= 0:
            raise ValueError("scale_interval must be positive")
        if self.drain_idle_intervals < 1:
            raise ValueError("drain_idle_intervals must be >= 1")
        if self.node_boot_seconds < 0:
            raise ValueError("node_boot_seconds must be >= 0")
        if self.overflow_inflight < 1:
            raise ValueError("overflow_inflight must be >= 1")
        if self.keepalive not in KEEPALIVE_POLICIES:
            raise ValueError(
                f"unknown keep-alive policy {self.keepalive!r}; choose "
                f"from {', '.join(KEEPALIVE_POLICIES)}")
        if not 0 < self.keepalive_percentile <= 100:
            raise ValueError("keepalive_percentile must be in (0, 100]")
        if not 0 < self.keepalive_min_ttl <= self.keepalive_max_ttl:
            raise ValueError(
                f"need 0 < keepalive_min_ttl <= keepalive_max_ttl, got "
                f"{self.keepalive_min_ttl}..{self.keepalive_max_ttl}")
        if self.keepalive_min_samples < 1:
            raise ValueError("keepalive_min_samples must be >= 1")

    def canonical(self) -> dict:
        """JSON-serializable dict with every outcome-determining field."""
        data = asdict(self)
        if self.traffic is not None:
            data["traffic"] = self.traffic.canonical()
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "ClusterSpec":
        data = dict(data)
        if data.get("traffic") is not None:
            data["traffic"] = TrafficSpec.from_dict(data["traffic"])
        return cls(**data)

    def __str__(self) -> str:  # pragma: no cover - display helper
        auto = ", autoscale" if self.autoscale else ""
        return (f"{self.policy} x{self.n_nodes} nodes, "
                f"{self.n_functions} fns @ {self.rate_per_function}/s "
                f"for {self.duration}s{auto}")
