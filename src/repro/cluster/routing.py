"""Pluggable request-routing policies for the cluster gateway.

A policy sees the fleet through duck-typed node handles exposing
``node_id`` (int, stable), ``inflight`` (requests currently on the
node), and ``snapshot_residency(function)`` (pages of the function's
snapshot file resident in that node's page cache — the per-ino counters
the memory plane keeps).  The gateway always passes the routable nodes
sorted by ``node_id``, so every policy is a deterministic function of
(seeded policy state, fleet state) and the same arrival stream replays
identically under any job count.

``snapshot-locality`` is the paper-motivated policy: consistent hashing
on the function name pins each function to a home node (so its snapshot
pages stay hot in exactly one page cache), with residency-aware
overflow — when the home node is saturated the request goes to whichever
other node already holds the most of this function's snapshot, because a
node that never saw the function is a guaranteed cold cache.
"""

from __future__ import annotations

import bisect
import hashlib
import random


class RoutingError(RuntimeError):
    """Raised when a route is requested with no routable nodes."""


def _point(text: str) -> int:
    """A stable 64-bit hash-ring point (sha256, not salted hash())."""
    return int.from_bytes(
        hashlib.sha256(text.encode("utf-8")).digest()[:8], "big")


class RoutingPolicy:
    """Base: pick one node handle from a non-empty sorted list."""

    name = "abstract"

    def __init__(self, seed: int = 0):
        self.seed = seed

    def choose(self, function: str, nodes: list):
        raise NotImplementedError


class RandomRouting(RoutingPolicy):
    """Uniform random spraying (the locality-oblivious baseline)."""

    name = "random"

    def __init__(self, seed: int = 0):
        super().__init__(seed)
        self._rng = random.Random(f"route:{seed}:random")

    def choose(self, function: str, nodes: list):
        return nodes[self._rng.randrange(len(nodes))]


class RoundRobinRouting(RoutingPolicy):
    """Strict rotation over the current membership order."""

    name = "round-robin"

    def __init__(self, seed: int = 0):
        super().__init__(seed)
        self._next = 0

    def choose(self, function: str, nodes: list):
        node = nodes[self._next % len(nodes)]
        self._next += 1
        return node


class LeastLoadedRouting(RoutingPolicy):
    """Fewest in-flight requests; ties broken by lowest node id."""

    name = "least-loaded"

    def choose(self, function: str, nodes: list):
        return min(nodes, key=lambda n: (n.inflight, n.node_id))


class SnapshotLocalityRouting(RoutingPolicy):
    """Consistent hashing on function name with residency-aware overflow.

    Each node contributes :data:`VNODES` points to a sha256 ring; a
    function routes to the first point clockwise of its own hash, so
    membership changes only remap the functions whose arc moved.  When
    the home node already carries ``overflow_inflight`` or more requests
    the policy overflows to the node holding the most resident snapshot
    pages for this function (ties: least loaded, then lowest id).
    """

    name = "snapshot-locality"
    VNODES = 32

    def __init__(self, seed: int = 0, overflow_inflight: int = 8):
        super().__init__(seed)
        self.overflow_inflight = overflow_inflight
        self.overflow_routes = 0
        self._members: tuple[int, ...] = ()
        self._ring: list[tuple[int, int]] = []
        self._by_id: dict[int, object] = {}

    def _rebuild(self, nodes: list) -> None:
        self._members = tuple(n.node_id for n in nodes)
        self._by_id = {n.node_id: n for n in nodes}
        self._ring = sorted(
            (_point(f"node:{node_id}:{replica}"), node_id)
            for node_id in self._members
            for replica in range(self.VNODES))

    def home(self, function: str, nodes: list):
        """The ring-preferred node for ``function`` (no overflow)."""
        if tuple(n.node_id for n in nodes) != self._members:
            self._rebuild(nodes)
        index = bisect.bisect_right(self._ring, (_point(f"fn:{function}"),
                                                 float("inf")))
        if index == len(self._ring):
            index = 0
        return self._by_id[self._ring[index][1]]

    def choose(self, function: str, nodes: list):
        home = self.home(function, nodes)
        if home.inflight < self.overflow_inflight or len(nodes) == 1:
            return home
        self.overflow_routes += 1
        others = [n for n in nodes if n.node_id != home.node_id]
        return max(others, key=lambda n: (n.snapshot_residency(function),
                                          -n.inflight, -n.node_id))


#: Policy name -> class, the registry the spec and CLI validate against.
ROUTING_POLICIES: dict[str, type[RoutingPolicy]] = {
    RandomRouting.name: RandomRouting,
    RoundRobinRouting.name: RoundRobinRouting,
    LeastLoadedRouting.name: LeastLoadedRouting,
    SnapshotLocalityRouting.name: SnapshotLocalityRouting,
}


def make_routing_policy(name: str, seed: int = 0,
                        overflow_inflight: int = 8) -> RoutingPolicy:
    """Instantiate a policy by registry name."""
    try:
        cls = ROUTING_POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown routing policy {name!r}; choose from "
            f"{', '.join(sorted(ROUTING_POLICIES))}") from None
    if cls is SnapshotLocalityRouting:
        return cls(seed=seed, overflow_inflight=overflow_inflight)
    return cls(seed=seed)
