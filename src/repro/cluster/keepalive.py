"""Keep-alive policies: how long a warm sandbox stays parked.

The fixed warm-pool TTL every node used until now treats a function
invoked every 50 ms and one invoked every 30 s identically — wasteful
for the first, useless for the second.  Production platforms instead
learn per-function idle-time distributions and pick the keep-alive from
a percentile (Shahrad et al., *Serverless in the Wild*, the
histogram-policy FaaS scheduler Azure Functions shipped).

A :class:`KeepAlivePolicy` answers three questions for the node:

* ``observe(function, now)`` — an arrival happened; update state;
* ``ttl(function)`` — how long to park this function's sandbox after an
  invocation (``None`` = do not pool, tear down immediately);
* ``prewarm_at(function, now)`` — after a pool entry expires, when (if
  ever) to spawn a sandbox *ahead* of the predicted next arrival.

One policy instance is shared by every node in a fleet (and consulted
by the autoscaler for in-flight pre-warm load), so its view of a
function's arrival history is cluster-wide — matching a platform-level
scheduler, and keeping state O(functions), not O(nodes x functions).

Determinism: policies are pure state machines over observed arrival
times; no RNG, no wall clock.  Equal arrival streams produce equal TTL
decisions whatever process replays them.
"""

from __future__ import annotations

from repro.metrics.registry import Histogram

#: Registry of policy names for ClusterSpec validation / CLI choices.
KEEPALIVE_POLICIES = ("fixed", "histogram")


class KeepAlivePolicy:
    """Base: per-function warm-pool TTL and pre-warm decisions."""

    #: Pre-warm processes currently scheduled (maintained by the nodes,
    #: read by the autoscaler as imminent load).
    pending_prewarms: int = 0
    #: End of the workload horizon; nodes set this so pre-warms are
    #: never scheduled past the last possible arrival.
    horizon: float | None = None

    def observe(self, function: str, now: float) -> None:
        """An arrival for ``function`` at sim-time ``now``."""

    def ttl(self, function: str) -> float | None:
        """Park duration after an invocation (``None`` = no pooling)."""
        raise NotImplementedError

    def prewarm_at(self, function: str, now: float) -> float | None:
        """After a pool expiry at ``now``: sim-time to pre-warm a
        sandbox for the predicted next arrival, or ``None``."""
        return None


class FixedTTLPolicy(KeepAlivePolicy):
    """The historic behavior: one TTL for every function, no pre-warm.

    ``FixedTTLPolicy(ttl)`` on a node is byte-identical to the old
    ``warm_pool_ttl=ttl`` path (``None`` disables pooling outright).
    """

    def __init__(self, ttl: float | None):
        if ttl is not None and ttl <= 0:
            raise ValueError(f"ttl must be positive or None, got {ttl}")
        self._ttl = ttl

    def ttl(self, function: str) -> float | None:
        return self._ttl


class HistogramKeepAlivePolicy(KeepAlivePolicy):
    """Per-function idle-time histograms choose TTL and pre-warm windows.

    Each arrival records the gap since the function's previous arrival
    in a bounded log2-bucket :class:`Histogram`.  After ``min_samples``
    gaps the TTL becomes the ``percentile``-th gap (clamped to
    ``[min_ttl, max_ttl]``): frequently-invoked functions get a pool
    that covers nearly all their gaps, rare functions stop hoarding
    sandboxes.  When the *typical* gap (p50) exceeds the TTL — the pool
    will lose the race — the policy instead pre-warms a sandbox just
    before the predicted next arrival (``margin`` early, bounded by the
    workload horizon).
    """

    def __init__(self, *, percentile: float = 99.0,
                 min_ttl: float = 0.25, max_ttl: float = 8.0,
                 default_ttl: float = 1.5, min_samples: int = 4,
                 prewarm: bool = True, margin: float = 0.1):
        if not 0 < percentile <= 100:
            raise ValueError(f"percentile must be in (0, 100], "
                             f"got {percentile}")
        if not 0 < min_ttl <= max_ttl:
            raise ValueError(f"need 0 < min_ttl <= max_ttl, "
                             f"got {min_ttl}..{max_ttl}")
        if default_ttl <= 0:
            raise ValueError("default_ttl must be positive")
        if min_samples < 1:
            raise ValueError("min_samples must be >= 1")
        if not 0 <= margin < 1:
            raise ValueError(f"margin must be in [0, 1), got {margin}")
        self.percentile = percentile
        self.min_ttl = min_ttl
        self.max_ttl = max_ttl
        self.default_ttl = default_ttl
        self.min_samples = min_samples
        self.prewarm = prewarm
        self.margin = margin
        self._last_seen: dict[str, float] = {}
        self._gaps: dict[str, Histogram] = {}

    def _histogram(self, function: str) -> Histogram:
        hist = self._gaps.get(function)
        if hist is None:
            # Standalone (unregistered) histogram: lock-free, 1 ms base
            # covers gaps from 1 ms to ~12 days in 40 log2 buckets.
            hist = Histogram(f"keepalive_gap_{function}", base=1e-3)
            self._gaps[function] = hist
        return hist

    def observe(self, function: str, now: float) -> None:
        last = self._last_seen.get(function)
        if last is not None and now > last:
            self._histogram(function).observe(now - last)
        self._last_seen[function] = now

    def ttl(self, function: str) -> float | None:
        hist = self._gaps.get(function)
        if hist is None or hist.count < self.min_samples:
            return self.default_ttl
        # Upper-bound percentile clamped to the observed max: a function
        # arriving every g seconds exactly gets ttl == g (within clamp),
        # so the pool covers its steady state with zero slack.
        estimate = hist.percentile(self.percentile)
        return min(self.max_ttl, max(self.min_ttl, estimate))

    def prewarm_at(self, function: str, now: float) -> float | None:
        if not self.prewarm:
            return None
        hist = self._gaps.get(function)
        last = self._last_seen.get(function)
        if hist is None or last is None or hist.count < self.min_samples:
            return None
        typical = hist.percentile(50.0)
        current_ttl = self.ttl(function)
        if current_ttl is None or typical <= current_ttl:
            return None  # the pool already covers the typical gap
        when = last + typical * (1.0 - self.margin)
        if when <= now:
            return None  # prediction already in the past
        if self.horizon is not None and when >= self.horizon:
            return None  # past the last possible arrival
        return when

    # -- introspection -------------------------------------------------------
    def tracked_functions(self) -> int:
        return len(self._gaps)


def make_keepalive_policy(name: str, *, warm_pool_ttl: float | None = 1.5,
                          percentile: float = 99.0, min_ttl: float = 0.25,
                          max_ttl: float = 8.0, min_samples: int = 4,
                          prewarm: bool = True) -> KeepAlivePolicy:
    """Build a policy by registry name (ClusterSpec / CLI entry point)."""
    if name == "fixed":
        return FixedTTLPolicy(warm_pool_ttl)
    if name == "histogram":
        default = warm_pool_ttl if warm_pool_ttl is not None else 1.5
        return HistogramKeepAlivePolicy(
            percentile=percentile, min_ttl=min_ttl, max_ttl=max_ttl,
            default_ttl=default, min_samples=min_samples, prewarm=prewarm)
    raise ValueError(f"unknown keep-alive policy {name!r}; choose from "
                     f"{', '.join(KEEPALIVE_POLICIES)}")
