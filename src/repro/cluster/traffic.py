"""Drive production-shaped traffic through the cluster plane.

Per-page simulation of 1M+ invocations is infeasible (each invocation
is thousands of DES events), so the traffic plane runs at *modeled
fidelity with measured constants*: ``calibrate_service_times`` first
executes real page-level mini-runs — record phase, cold spawn + invoke
after a cache drop, warm resume + invoke — for every function *shape* x
the spec's restore approach, then :class:`TrafficNode` replays those
measured service times per invocation.  Warm-pool bookkeeping,
keep-alive/pre-warm policies, routing, autoscaling, and per-node
concurrency limits all still run for real inside the DES, so the
figure-level quantities (cold-start ratio, per-tenant tail latency,
fleet size) emerge from the same control plane the small-scale cluster
figure exercises — only the data plane inside one invocation is
replaced by its measured cost.

Scale: invocations stream lazily from
:class:`~repro.workloads.traffic.TrafficProcess`; accounting goes into
bounded per-tenant histograms and a rolling SHA-256 digest, so memory
stays O(tenants + functions) however many invocations run.

Determinism: a pure function of the spec.  Calibration runs in fresh
private environments (seeded like everything else), the event stream is
seeded, and the digest pins the full per-request outcome sequence —
byte-identical across serial and ``--jobs N`` sweeps.
"""

from __future__ import annotations

import hashlib
from collections import deque
from dataclasses import dataclass, field

from repro.baselines.base import approach_registry
from repro.metrics.registry import Histogram, MetricsRegistry
from repro.metrics.results import ScenarioResult
from repro.platform.node import WARM_RESUME_SECONDS, RequestResult
from repro.platform.workload import Arrival
from repro.sim import Environment
from repro.trace import Tracer
from repro.units import GIB
from repro.workloads.profile import profile_by_name
from repro.workloads.trace import generate_trace
from repro.workloads.traffic import TrafficProcess

from repro.cluster.autoscaler import ClusterAutoscaler
from repro.cluster.gateway import BOOTING, UP, Gateway
from repro.cluster.keepalive import make_keepalive_policy
from repro.cluster.routing import make_routing_policy

#: Tail percentiles the SLO summary reports per tenant.
SLO_PERCENTILES = (99.0, 99.9)


@dataclass(frozen=True)
class ServiceTimes:
    """Measured per-invocation costs for one (shape, approach) pair."""

    cold: float
    warm: float
    prepare: float


def calibrate_service_times(approach_name: str, shapes: tuple[str, ...],
                            device_kind: str = "ssd",
                            ram_bytes: int | None = None,
                            costs=None) -> dict[str, ServiceTimes]:
    """Measure cold/warm/prepare seconds per shape with real mini-runs.

    Each shape gets a fresh private kernel: record phase (prepare), a
    cache drop, one cold spawn+invoke, then one warm resume+invoke on
    the same sandbox — the exact sequence a node's first two requests
    for a function experience, measured in simulated seconds.
    """
    from repro.harness.experiment import make_kernel

    factory = approach_registry()[approach_name]
    out: dict[str, ServiceTimes] = {}
    for shape in shapes:
        kernel = make_kernel(device_kind,
                             ram_bytes if ram_bytes is not None
                             else 256 * GIB, costs)
        env = kernel.env
        profile = profile_by_name(shape)
        approach = factory(kernel)
        trace = generate_trace(profile, 0)

        start = env.now
        env.run(env.process(approach.prepare(profile, trace),
                            name=f"calib-prepare-{shape}"))
        prepare = env.now - start
        kernel.drop_caches()

        holder: dict = {}

        def cold_run():
            vm = yield from approach.spawn(profile,
                                           vm_id=f"calib-{shape}")
            yield from vm.invoke(trace)
            approach.post_invoke(vm)
            holder["vm"] = vm

        start = env.now
        env.run(env.process(cold_run(), name=f"calib-cold-{shape}"))
        cold = env.now - start

        def warm_run():
            yield env.timeout(WARM_RESUME_SECONDS)
            yield from holder["vm"].invoke(trace)

        start = env.now
        env.run(env.process(warm_run(), name=f"calib-warm-{shape}"))
        warm = env.now - start
        holder["vm"].teardown()

        out[shape] = ServiceTimes(cold=cold, warm=warm, prepare=prepare)
    return out


class TrafficNode:
    """A fleet member that replays calibrated service times.

    Duck-types the :class:`~repro.platform.node.FaaSNode` surface the
    gateway and autoscaler drive — ``handle`` / ``prepare`` /
    ``shutdown`` / ``approaches`` — with a bounded-concurrency server:
    ``slots`` invocations run at once, excess requests queue FIFO (the
    queueing delay is what pushes p99.9 E2E under bursts).  Warm pools
    are per-function expiry timestamps; parking, expiry, and pre-warm
    all consult the shared keep-alive policy exactly like the real node.

    One snapshot per *shape* (functions of a shape share a base image),
    so a node's record phase costs ``sum(prepare per shape)`` no matter
    how many thousands of functions it may serve.
    """

    def __init__(self, env: Environment, shapes: dict[str, str],
                 times: dict[str, ServiceTimes], keepalive, slots: int):
        self.env = env
        #: function name -> shape name.
        self.shapes = shapes
        self.times = times
        self.keepalive = keepalive
        self.slots = slots
        #: Gateway residency probes find no snapshot -> residency 0.
        self.approaches: dict = {}
        self.prepared = False
        self._in_service = True
        self._active = 0
        self._waiters: deque = deque()
        #: function -> list of pool-entry expiry times (ascending-ish).
        self._pool: dict[str, list[float]] = {}
        # Plain counters; the runner rolls them into the registry.
        self.requests = 0
        self.cold_starts = 0
        self.warm_starts = 0
        self.prewarms = 0

    # -- lifecycle -----------------------------------------------------------
    def prepare(self):
        """Generator: record phase, one snapshot per served shape."""
        for shape in sorted(set(self.shapes.values())):
            yield self.env.timeout(self.times[shape].prepare)
        self.prepared = True

    def shutdown(self) -> int:
        self._in_service = False
        self._pool.clear()
        return 0  # no page cache at modeled fidelity

    # -- bounded concurrency -------------------------------------------------
    def _acquire(self):
        if self._active < self.slots:
            self._active += 1
            return
        gate = self.env.event()
        self._waiters.append(gate)
        yield gate

    def _release(self) -> None:
        if self._waiters:
            self._waiters.popleft().succeed()  # slot handed over, FIFO
        else:
            self._active -= 1

    # -- warm pool -----------------------------------------------------------
    def _take_warm(self, function: str) -> bool:
        """Claim a live pool entry (expiry >= now); prune dead ones."""
        now = self.env.now
        entries = self._pool.get(function)
        if not entries:
            return False
        live = [e for e in entries if e >= now]
        if not live:
            self._pool[function] = []
            return False
        live.pop(0)
        self._pool[function] = live
        return True

    def _park(self, function: str, ttl: float) -> None:
        env = self.env
        expiry = env.now + ttl
        self._pool.setdefault(function, []).append(expiry)

        def reaper():
            yield env.timeout(ttl)
            entries = self._pool.get(function)
            if entries and expiry in entries and env.now >= expiry:
                entries.remove(expiry)
                self._maybe_prewarm(function)

        env.process(reaper(), name=f"treaper-{function}")

    def _maybe_prewarm(self, function: str) -> None:
        env = self.env
        when = self.keepalive.prewarm_at(function, env.now)
        if when is None or not self._in_service:
            return
        self.keepalive.pending_prewarms += 1

        def prewarm():
            try:
                yield env.timeout(max(0.0, when - env.now))
                if not self._in_service or self._pool.get(function):
                    return
                st = self.times[self.shapes[function]]
                # Spawn-only cost: the cold path minus the invoke the
                # warm path shares (clamped; charged to the node).
                yield env.timeout(max(0.0, st.cold - st.warm))
                self.prewarms += 1
                ttl = self.keepalive.ttl(function)
                if ttl is not None and self._in_service:
                    self._park(function, ttl)
            finally:
                self.keepalive.pending_prewarms -= 1

        env.process(prewarm(), name=f"tprewarm-{function}")

    # -- request path --------------------------------------------------------
    def handle(self, arrival: Arrival):
        """Generator: serve one request; returns a RequestResult."""
        if not self.prepared:
            raise RuntimeError("node.prepare() has not run")
        env = self.env
        self.keepalive.observe(arrival.function, env.now)
        start = env.now
        yield from self._acquire()
        try:
            st = self.times[self.shapes[arrival.function]]
            warm = self._take_warm(arrival.function)
            yield env.timeout(st.warm if warm else st.cold)
        finally:
            self._release()
        self.requests += 1
        if warm:
            self.warm_starts += 1
        else:
            self.cold_starts += 1
        ttl = self.keepalive.ttl(arrival.function)
        if ttl is not None:
            self._park(arrival.function, ttl)
        return RequestResult(function=arrival.function,
                             arrival_time=arrival.time,
                             latency=env.now - start, cold=not warm,
                             input_seed=arrival.input_seed)


@dataclass
class TrafficReport:
    """Everything one traffic run produced (bounded, list-free)."""

    policy: str
    keepalive: str
    invocations: int = 0
    cold_starts: int = 0
    warm_starts: int = 0
    completed: int = 0
    timeouts: int = 0
    failures: int = 0
    reroutes: int = 0
    prewarms: int = 0
    #: SHA-256 over the full per-request outcome sequence.
    digest: str = ""
    #: DES events the run processed (throughput denominator).
    events_processed: int = 0
    node_timeline: list[tuple[float, float]] = field(default_factory=list)
    metrics: dict[str, float] = field(default_factory=dict)
    #: tenant id -> flat SLO floats (p99/p99.9 E2E + cold, ratio, count).
    slo: dict[int, dict[str, float]] = field(default_factory=dict)
    start_time: float = 0.0
    end_time: float = 0.0
    #: Fleet-wide tail estimates from the bounded histograms.
    p99_e2e: float = 0.0
    p999_e2e: float = 0.0

    @property
    def cold_ratio(self) -> float:
        served = self.cold_starts + self.warm_starts
        return self.cold_starts / served if served else 0.0

    def fingerprint(self) -> str:
        """Canonical digest for byte-identity checks across job counts."""
        return repr((self.policy, self.keepalive, self.invocations,
                     self.cold_starts, self.digest,
                     [(round(t, 9), n) for t, n in self.node_timeline],
                     sorted((k, round(v, 9))
                            for k, v in self.metrics.items()),
                     sorted((t, sorted((k, round(v, 9))
                                       for k, v in d.items()))
                            for t, d in self.slo.items())))


def run_traffic(spec, tracer: Tracer | None = None,
                telemetry=None) -> TrafficReport:
    """Run the traffic scenario described by ``spec`` (a ScenarioSpec
    whose ``cluster.traffic`` is set)."""
    cspec = spec.cluster
    if cspec is None or cspec.traffic is None:
        raise ValueError("spec.cluster.traffic is not set")
    tspec = cspec.traffic

    times = calibrate_service_times(
        spec.approach, tspec.shapes, device_kind=spec.device_kind,
        ram_bytes=spec.ram_bytes, costs=spec.costs)

    traffic = TrafficProcess(tspec)
    shapes = {fn.name: fn.shape for fn in traffic.functions}
    tenants = {fn.name: fn.tenant for fn in traffic.functions}

    env = Environment()
    tracer = tracer or Tracer()
    registry = MetricsRegistry()
    policy = make_routing_policy(
        cspec.policy, seed=spec.input_seed,
        overflow_inflight=cspec.overflow_inflight)
    gateway = Gateway(env, policy, registry=registry, tracer=tracer)
    keepalive = make_keepalive_policy(
        cspec.keepalive, warm_pool_ttl=cspec.warm_pool_ttl,
        percentile=cspec.keepalive_percentile,
        min_ttl=cspec.keepalive_min_ttl, max_ttl=cspec.keepalive_max_ttl,
        min_samples=cspec.keepalive_min_samples, prewarm=cspec.prewarm)
    nodes: list[TrafficNode] = []

    # Per-tenant bounded accounting on the cluster registry.
    t_e2e: dict[int, Histogram] = {}
    t_cold_hist: dict[int, Histogram] = {}
    t_requests: dict[int, int] = {}
    t_cold: dict[int, int] = {}
    for tenant in range(tspec.n_tenants):
        t_e2e[tenant] = registry.histogram(
            f"traffic_tenant{tenant}_e2e_seconds",
            f"E2E latency, tenant {tenant}", base=1e-4)
        t_cold_hist[tenant] = registry.histogram(
            f"traffic_tenant{tenant}_cold_seconds",
            f"cold-start E2E latency, tenant {tenant}", base=1e-4)
        t_requests[tenant] = 0
        t_cold[tenant] = 0
    all_e2e = registry.histogram(
        "traffic_e2e_seconds", "E2E latency, all tenants", base=1e-4)

    if telemetry is not None:
        def fleet_topology() -> dict:
            counts: dict[str, int] = {}
            out = []
            for cnode in gateway.nodes.values():
                counts[cnode.state] = counts.get(cnode.state, 0) + 1
                out.append({"id": cnode.node_id, "name": cnode.name,
                            "state": cnode.state,
                            "inflight": cnode.inflight,
                            "served": cnode.served})
            return {"nodes": out, "counts": counts}

        env.telemetry = telemetry
        telemetry.attach_registry(registry)
        telemetry.attach_tracer(tracer)
        telemetry.attach_fleet_provider(fleet_topology)
        telemetry.attach_engine(env)
        telemetry.attach_tenant_counts(t_requests)
        telemetry.flush(phase=f"traffic:{cspec.keepalive}")

    def build_node() -> TrafficNode:
        node = TrafficNode(env, shapes, times, keepalive,
                           slots=cspec.overflow_inflight)
        nodes.append(node)
        return node

    def finish_boot(cnode) -> None:
        gateway.mark(cnode, UP)

    for _ in range(cspec.n_nodes):
        cnode = gateway.add_node(build_node(), state=BOOTING)
        env.run(env.process(cnode.node.prepare(),
                            name=f"prepare-{cnode.name}"))
        finish_boot(cnode)

    autoscaler = None
    if cspec.autoscale:
        def spawn_node():
            return gateway.add_node(build_node(), state=BOOTING)

        autoscaler = ClusterAutoscaler(
            env, gateway, spawn_node, on_node_ready=finish_boot,
            target_inflight=cspec.target_inflight,
            min_nodes=cspec.min_nodes, max_nodes=cspec.max_nodes,
            scale_interval=cspec.scale_interval,
            drain_idle_intervals=cspec.drain_idle_intervals,
            node_boot_seconds=cspec.node_boot_seconds, tracer=tracer,
            keepalive=keepalive)

    base = env.now
    keepalive.horizon = base + tspec.duration
    digest = hashlib.sha256()
    state = {"submitted": 0, "done": 0, "stream_done": False,
             "cold": 0, "timeouts": 0, "failures": 0, "reroutes": 0}
    all_done = env.event()

    def check_done() -> None:
        if (state["stream_done"] and state["done"] == state["submitted"]
                and not all_done.triggered):
            all_done.succeed()

    def request(inv):
        arrival = Arrival(time=inv.time, function=inv.function,
                          input_seed=0)
        result = yield from gateway.submit(arrival)
        latency = result.latency
        all_e2e.observe(latency)
        t_e2e[inv.tenant].observe(latency)
        t_requests[inv.tenant] += 1
        if result.cold:
            state["cold"] += 1
            t_cold[inv.tenant] += 1
            t_cold_hist[inv.tenant].observe(latency)
        if result.status == "timeout":
            state["timeouts"] += 1
        elif result.status in ("failed", "unroutable"):
            state["failures"] += 1
        state["reroutes"] += result.reroutes
        digest.update(repr((inv.function, round(inv.time, 9),
                            result.cold, round(latency, 9),
                            result.status)).encode())
        state["done"] += 1
        check_done()

    def driver():
        # Lazy: one invocation in hand at a time; requests run as
        # independent processes so a slow one never stalls the stream.
        for seq, inv in enumerate(traffic.invocations()):
            target = base + inv.time
            if target > env.now:
                yield env.timeout(target - env.now)
            state["submitted"] += 1
            env.process(request(inv), name=f"treq-{seq}")
        state["stream_done"] = True
        check_done()

    env.process(driver(), name="traffic-driver")
    env.run(all_done)
    if autoscaler is not None:
        autoscaler.stop()
    env.run()  # drain reapers, pre-warms, in-flight boots
    gateway.finalize()

    def node_rollup() -> dict[str, float]:
        return {
            "node_requests_total": float(sum(n.requests for n in nodes)),
            "node_cold_starts_total": float(sum(n.cold_starts
                                                for n in nodes)),
            "node_warm_starts_total": float(sum(n.warm_starts
                                                for n in nodes)),
            "node_prewarms_total": float(sum(n.prewarms for n in nodes)),
        }

    registry.register_collector(node_rollup)
    for tenant in range(tspec.n_tenants):
        registry.counter(f"traffic_tenant{tenant}_requests_total",
                         f"requests, tenant {tenant}"
                         ).inc(t_requests[tenant])
        registry.counter(f"traffic_tenant{tenant}_cold_total",
                         f"cold starts, tenant {tenant}"
                         ).inc(t_cold[tenant])

    slo: dict[int, dict[str, float]] = {}
    for tenant in range(tspec.n_tenants):
        reqs = t_requests[tenant]
        slo[tenant] = {
            "requests": float(reqs),
            "cold_ratio": (t_cold[tenant] / reqs if reqs else 0.0),
            "p99_e2e": t_e2e[tenant].percentile(99.0),
            "p999_e2e": t_e2e[tenant].percentile(99.9),
            "p99_cold": t_cold_hist[tenant].percentile(99.0),
            "p999_cold": t_cold_hist[tenant].percentile(99.9),
        }

    if telemetry is not None:
        telemetry.publish(sim_time=env.now, force=True,
                          phase=f"traffic:{cspec.keepalive} done")

    return TrafficReport(
        policy=cspec.policy,
        keepalive=cspec.keepalive,
        invocations=state["submitted"],
        cold_starts=state["cold"],
        warm_starts=state["done"] - state["cold"],
        completed=state["done"] - state["timeouts"] - state["failures"],
        timeouts=state["timeouts"],
        failures=state["failures"],
        reroutes=state["reroutes"],
        prewarms=sum(n.prewarms for n in nodes),
        digest=digest.hexdigest(),
        events_processed=env.events_processed,
        node_timeline=list(gateway.node_timeline),
        metrics=registry.snapshot(),
        slo=slo,
        start_time=base, end_time=env.now,
        p99_e2e=all_e2e.percentile(99.0),
        p999_e2e=all_e2e.percentile(99.9))


def run_traffic_scenario(spec) -> ScenarioResult:
    """Adapt a traffic run to the standard ScenarioResult shape.

    Flat floats only in ``extra`` (the exact-JSON-round-trip contract of
    the warm result store): per-tenant SLO rows are flattened to
    ``slo_t{n}_*`` keys and the outcome digest rides as the integer
    value of its first 12 hex digits.
    """
    report = run_traffic(spec)
    extra: dict[str, float] = {
        "traffic_invocations": float(report.invocations),
        "traffic_cold_starts": float(report.cold_starts),
        "traffic_warm_starts": float(report.warm_starts),
        "traffic_cold_ratio": float(report.cold_ratio),
        "traffic_completed": float(report.completed),
        "traffic_timeouts": float(report.timeouts),
        "traffic_failures": float(report.failures),
        "traffic_reroutes": float(report.reroutes),
        "traffic_prewarms": float(report.prewarms),
        "traffic_p99_e2e": float(report.p99_e2e),
        "traffic_p999_e2e": float(report.p999_e2e),
        "traffic_events_processed": float(report.events_processed),
        "traffic_digest": float(int(report.digest[:12], 16)),
        "traffic_nodes_peak": float(max(
            (n for _, n in report.node_timeline), default=0.0)),
        "traffic_nodes_final": float(report.node_timeline[-1][1]
                                     if report.node_timeline else 0.0),
    }
    for tenant, row in sorted(report.slo.items()):
        for key, value in sorted(row.items()):
            extra[f"slo_t{tenant}_{key}"] = float(value)
    return ScenarioResult(
        function=spec.function_name,
        approach=spec.approach,
        n_instances=spec.n_instances,
        invocations=[],
        metrics=report.metrics,
        extra=extra,
    )
