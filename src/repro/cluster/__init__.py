"""Cluster plane: a fleet of FaaS nodes behind a routing gateway.

Eager exports stay dependency-light (spec + routing only) because
``repro.harness.spec`` imports :class:`ClusterSpec` at module load; the
gateway/autoscaler/runner — which pull in the platform and metrics
stacks — load lazily on first attribute access.
"""

from repro.cluster.routing import (
    ROUTING_POLICIES,
    RoutingError,
    RoutingPolicy,
    make_routing_policy,
)
from repro.cluster.spec import ClusterSpec

__all__ = [
    "ClusterAutoscaler",
    "ClusterReport",
    "ClusterRequestResult",
    "ClusterSpec",
    "Gateway",
    "ROUTING_POLICIES",
    "RoutingError",
    "RoutingPolicy",
    "cluster_profiles",
    "make_routing_policy",
    "run_cluster",
    "run_cluster_scenario",
]

_LAZY = {
    "ClusterAutoscaler": "repro.cluster.autoscaler",
    "ClusterReport": "repro.cluster.runner",
    "ClusterRequestResult": "repro.cluster.gateway",
    "Gateway": "repro.cluster.gateway",
    "cluster_profiles": "repro.cluster.runner",
    "run_cluster": "repro.cluster.runner",
    "run_cluster_scenario": "repro.cluster.runner",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(module_name)
    value = getattr(module, name)
    globals()[name] = value
    return value
