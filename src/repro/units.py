"""Shared unit constants and helpers.

All simulated times are in **seconds**, sizes in **bytes**, and memory is
managed in 4 KiB pages, matching the paper's Linux v6.3 setup.
"""

from __future__ import annotations

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB

PAGE_SIZE = 4 * KIB
PAGE_SHIFT = 12

USEC = 1e-6
MSEC = 1e-3

#: Default Linux readahead window: 128 KiB = 32 pages (paper §4 Methodology).
DEFAULT_READAHEAD_PAGES = 32


def pages(nbytes: int) -> int:
    """Number of whole pages covering ``nbytes`` (ceiling division)."""
    return -(-nbytes // PAGE_SIZE)


def page_index(offset: int) -> int:
    """File/page-cache index of the page containing byte ``offset``."""
    return offset >> PAGE_SHIFT


def page_aligned(offset: int) -> bool:
    return (offset & (PAGE_SIZE - 1)) == 0


def fmt_bytes(nbytes: float) -> str:
    """Human-readable size, e.g. ``fmt_bytes(3 * MIB) == '3.0 MiB'``."""
    for unit, name in ((GIB, "GiB"), (MIB, "MiB"), (KIB, "KiB")):
        if abs(nbytes) >= unit:
            return f"{nbytes / unit:.1f} {name}"
    return f"{nbytes:.0f} B"
