"""Prometheus-style metrics: Counter / Gauge / Histogram + registry.

One :class:`MetricsRegistry` per simulated machine is the single source
of truth for the per-layer counters that used to live in scattered stats
dataclasses.  Stats facades (``DeviceStats``, ``CacheStats``) create
their metrics here, so the harness can read any layer through one
``snapshot()`` — and subsystems that keep plain attribute counters
(fault injectors, approach degradation counters) publish through
registered *collectors*, the same split Prometheus client libraries use.

Histograms use fixed log2 buckets: bucket ``i`` holds observations in
``(base * 2**(i-1), base * 2**i]``.  Memory is O(bucket count) no matter
how many observations arrive — the property that replaces the unbounded
per-request latency list — and percentile estimates come from the
cumulative bucket counts (upper-bound rule, clamped to the observed max).
"""

from __future__ import annotations

import threading
from typing import Callable

#: The Content-Type a Prometheus scraper expects for the text format.
TEXT_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def escape_help(text: str) -> str:
    """Escape a ``# HELP`` string per the text-exposition spec:
    backslash and newline (quotes are legal in HELP text)."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def escape_label_value(text: str) -> str:
    """Escape a label value per the text-exposition spec: backslash,
    double quote, and newline."""
    return (text.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


class MetricError(ValueError):
    """Registry misuse: name reused with a different type, bad amount."""


class Metric:
    """Base: a named instrument owned by one registry."""

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help

    def reset(self) -> None:
        raise NotImplementedError

    def sample(self) -> dict[str, float]:
        """Flat name -> value pairs for :meth:`MetricsRegistry.snapshot`."""
        raise NotImplementedError


class Counter(Metric):
    """Monotonically non-decreasing count (int- or seconds-valued)."""

    def __init__(self, name: str, help: str = ""):
        super().__init__(name, help)
        self._value: float = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise MetricError(f"counter {self.name!r}: negative increment")
        self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def reset(self) -> None:
        self._value = 0

    def sample(self) -> dict[str, float]:
        return {self.name: self._value}


class Gauge(Metric):
    """A value that can go up and down (e.g. memory in use)."""

    def __init__(self, name: str, help: str = ""):
        super().__init__(name, help)
        self._value: float = 0

    def set(self, value: float) -> None:
        self._value = value

    def inc(self, amount: float = 1) -> None:
        self._value += amount

    def dec(self, amount: float = 1) -> None:
        self._value -= amount

    @property
    def value(self) -> float:
        return self._value

    def reset(self) -> None:
        self._value = 0

    def sample(self) -> dict[str, float]:
        return {self.name: self._value}


class Histogram(Metric):
    """Fixed log2-bucket histogram with bounded memory.

    ``bounds[i] = base * 2**i``; an observation lands in the first bucket
    whose bound is >= the value, with one overflow bucket past the last
    bound.  ``percentile(p)`` returns the upper bound of the bucket
    containing the p-th percentile observation (clamped to the observed
    maximum) — the standard Prometheus-side estimate.
    """

    def __init__(self, name: str, help: str = "", base: float = 1e-6,
                 n_buckets: int = 40):
        if base <= 0 or n_buckets < 1:
            raise MetricError(f"histogram {self.name if False else name!r}: "
                              f"bad bucket layout")
        super().__init__(name, help)
        self.base = base
        self.bounds = [base * (1 << i) for i in range(n_buckets)]
        self._counts = [0] * (n_buckets + 1)  # +1 = overflow bucket
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = 0.0
        #: Shared registry lock (set at registration): an observation
        #: updates five fields, so a concurrent scrape must not read a
        #: half-updated histogram.  Standalone histograms stay lock-free.
        self._lock: threading.RLock | None = None

    def observe(self, value: float) -> None:
        if value < 0:
            raise MetricError(f"histogram {self.name!r}: negative observation")
        lock = self._lock
        if lock is None:
            self._observe(value)
        else:
            with lock:
                self._observe(value)

    def _observe(self, value: float) -> None:
        self._counts[self._bucket_index(value)] += 1
        self._count += 1
        self._sum += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value

    def _bucket_index(self, value: float) -> int:
        if value <= self.bounds[0]:
            return 0
        if value > self.bounds[-1]:
            return len(self.bounds)
        lo, hi = 0, len(self.bounds) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if value <= self.bounds[mid]:
                hi = mid
            else:
                lo = mid + 1
        return lo

    # -- reads -------------------------------------------------------------
    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    @property
    def max(self) -> float:
        return self._max if self._count else 0.0

    @property
    def min(self) -> float:
        return self._min if self._count else 0.0

    def bucket_counts(self) -> list[int]:
        return list(self._counts)

    def percentile(self, p: float) -> float:
        """Estimate of the p-th percentile (p in [0, 100])."""
        if not 0 <= p <= 100:
            raise MetricError(f"percentile {p} outside [0, 100]")
        if self._count == 0:
            return 0.0
        rank = max(1, -(-self._count * p // 100))  # ceil, at least 1
        cumulative = 0
        for i, count in enumerate(self._counts):
            cumulative += count
            if cumulative >= rank:
                bound = (self.bounds[i] if i < len(self.bounds)
                         else self._max)
                return min(bound, self._max)
        return self._max  # pragma: no cover - cumulative covers count

    def reset(self) -> None:
        self._counts = [0] * len(self._counts)
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = 0.0

    def sample(self) -> dict[str, float]:
        return {f"{self.name}_count": self._count,
                f"{self.name}_sum": self._sum}


class MetricsRegistry:
    """Named metric store with get-or-create semantics and collectors."""

    def __init__(self):
        self._metrics: dict[str, Metric] = {}
        self._collectors: list[Callable[[], dict[str, float]]] = []
        #: Guards aggregate reads (snapshot / text exposition) against
        #: concurrent histogram mutation — the serve plane scrapes from
        #: HTTP threads while the sweep thread flushes results.  RLock:
        #: histogram observes take the same lock, and a collector may
        #: legitimately read its own registry.
        self.lock = threading.RLock()

    # -- get-or-create factories -------------------------------------------
    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)

    def histogram(self, name: str, help: str = "", base: float = 1e-6,
                  n_buckets: int = 40) -> Histogram:
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, Histogram):
                raise MetricError(
                    f"{name!r} already registered as "
                    f"{type(existing).__name__}")
            return existing
        metric = Histogram(name, help, base=base, n_buckets=n_buckets)
        metric._lock = self.lock
        self._metrics[name] = metric
        return metric

    def _get_or_create(self, cls: type, name: str, help: str):
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise MetricError(
                    f"{name!r} already registered as "
                    f"{type(existing).__name__}")
            return existing
        metric = cls(name, help)
        self._metrics[name] = metric
        return metric

    # -- access -------------------------------------------------------------
    def get(self, name: str) -> Metric:
        try:
            return self._metrics[name]
        except KeyError:
            raise MetricError(f"no metric named {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def names(self) -> list[str]:
        return sorted(self._metrics)

    # -- collectors ----------------------------------------------------------
    def register_collector(self,
                           collect: Callable[[], dict[str, float]]) -> None:
        """Publish externally-owned counters at snapshot time.

        Duplicate keys across collectors are *summed* — e.g. several
        approach instances of the same name each contribute their
        fallback counts.
        """
        self._collectors.append(collect)

    # -- aggregate reads ------------------------------------------------------
    def snapshot(self) -> dict[str, float]:
        """Every metric and collector flattened to name -> value.

        Taken under :attr:`lock`, so a snapshot from another thread can
        never observe a half-updated histogram mid-``observe``.
        """
        with self.lock:
            out: dict[str, float] = {}
            for metric in self._metrics.values():
                out.update(metric.sample())
            for collect in self._collectors:
                for key, value in collect().items():
                    out[key] = out.get(key, 0) + value
            return out

    def text_exposition(self) -> str:
        """The registry in Prometheus text-exposition format (0.0.4).

        Scrape-safe: the whole render happens under :attr:`lock` (a
        concurrent worker flush cannot tear a histogram), HELP text and
        label values are escaped per the spec, and collector-published
        series are included as untyped samples — serve it with
        :data:`TEXT_CONTENT_TYPE` and real scrapers parse it.
        """
        with self.lock:
            lines = []
            for name in self.names():
                metric = self._metrics[name]
                kind = type(metric).__name__.lower()
                if metric.help:
                    lines.append(f"# HELP {name} "
                                 f"{escape_help(metric.help)}")
                lines.append(f"# TYPE {name} {kind}")
                if isinstance(metric, Histogram):
                    cumulative = 0
                    for bound, count in zip(metric.bounds,
                                            metric.bucket_counts()):
                        cumulative += count
                        le = escape_label_value(f"{bound:g}")
                        lines.append(f'{name}_bucket{{le="{le}"}} '
                                     f"{cumulative}")
                    lines.append(f'{name}_bucket{{le="+Inf"}} '
                                 f"{metric.count}")
                    lines.append(f"{name}_sum {metric.sum:g}")
                    lines.append(f"{name}_count {metric.count}")
                else:
                    lines.append(f"{name} {metric.value:g}")
            collected: dict[str, float] = {}
            for collect in self._collectors:
                for key, value in collect().items():
                    collected[key] = collected.get(key, 0) + value
            for key in sorted(collected):
                if key in self._metrics:
                    continue  # already rendered as a typed series
                lines.append(f"# TYPE {key} untyped")
                lines.append(f"{key} {collected[key]:g}")
            return "\n".join(lines) + ("\n" if lines else "")

    def render(self) -> str:
        """Deprecated alias for :meth:`text_exposition`."""
        return self.text_exposition()

    def reset(self) -> None:
        with self.lock:
            for metric in self._metrics.values():
                metric.reset()
