"""Result types and the unified metrics registry.

The registry is imported eagerly (low-level layers depend on it); the
result types are lazy because :mod:`repro.metrics.results` pulls in the
VMM stack, which itself sits above the layers that import the registry.
"""

from repro.metrics.registry import (
    TEXT_CONTENT_TYPE,
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
    escape_help,
    escape_label_value,
)

__all__ = [
    "TEXT_CONTENT_TYPE",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricError",
    "MetricsRegistry",
    "ScenarioResult",
    "escape_help",
    "escape_label_value",
    "summarize",
]


def __getattr__(name):
    if name in ("ScenarioResult", "summarize"):
        from repro.metrics import results
        return getattr(results, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
