"""Result types and the unified metrics registry.

The registry is imported eagerly (low-level layers depend on it); the
result types are lazy because :mod:`repro.metrics.results` pulls in the
VMM stack, which itself sits above the layers that import the registry.
"""

from repro.metrics.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricError",
    "MetricsRegistry",
    "ScenarioResult",
    "summarize",
]


def __getattr__(name):
    if name in ("ScenarioResult", "summarize"):
        from repro.metrics import results
        return getattr(results, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
