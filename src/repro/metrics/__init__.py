"""Result types for experiments."""

from repro.metrics.results import ScenarioResult, summarize

__all__ = ["ScenarioResult", "summarize"]
