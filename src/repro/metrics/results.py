"""Scenario-level measurement results.

One :class:`ScenarioResult` corresponds to one bar (or bar group) of a
paper figure: a (function, approach, concurrency) triple run on a fresh
simulated host, reporting per-sandbox end-to-end latencies, system-wide
peak memory, and the device/cache counters used by the I/O-amplification
analyses.
"""

from __future__ import annotations

import json
import statistics
from dataclasses import asdict, dataclass, field, fields

from repro.units import GIB

from repro.vmm.microvm import InvocationStats


@dataclass
class ScenarioResult:
    function: str
    approach: str
    n_instances: int
    invocations: list[InvocationStats] = field(default_factory=list)
    #: System-wide peak memory during the concurrent invocations.
    peak_memory_bytes: int = 0
    #: Memory still resident when all invocations completed.
    end_memory_bytes: int = 0
    #: End-of-run residency split by frame kind: private anonymous
    #: (pinned per VM under pressure) vs shared file-backed (reclaimable)
    #: — the decomposition behind the paper's Fig. 3c elasticity claim.
    end_anon_bytes: int = 0
    end_file_bytes: int = 0
    #: Block-device counters over the invocation phase.
    device_requests: int = 0
    device_bytes_read: int = 0
    device_bytes_written: int = 0
    #: Page-cache counters over the invocation phase.
    cache_adds: int = 0
    bpf_hook_seconds: float = 0.0
    #: Offline record-phase duration (not part of E2E).
    prepare_seconds: float = 0.0
    #: Approach-specific extras (WS sizes, inflation ratios, ...).
    extra: dict[str, float] = field(default_factory=dict)
    #: Full registry snapshot of the host at scenario end (device, cache,
    #: fault, and approach counters under one namespace).
    metrics: dict[str, float] = field(default_factory=dict)
    #: Device request-latency percentiles over the invocation phase.
    device_p50_latency: float = 0.0
    device_p95_latency: float = 0.0
    device_p99_latency: float = 0.0

    # -- summaries ----------------------------------------------------------------
    @property
    def e2e_latencies(self) -> list[float]:
        return [inv.e2e_seconds for inv in self.invocations]

    @property
    def mean_e2e(self) -> float:
        """Mean E2E latency; 0.0 for a (failed/empty) run with no
        invocations rather than a crash — harness code tabulates results
        before checking success."""
        latencies = self.e2e_latencies
        return statistics.fmean(latencies) if latencies else 0.0

    @property
    def max_e2e(self) -> float:
        return max(self.e2e_latencies, default=0.0)

    def percentile_e2e(self, p: float) -> float:
        """Nearest-rank p-th percentile of the E2E latencies (0.0 when
        there are no invocations)."""
        values = sorted(self.e2e_latencies)
        if not values:
            return 0.0
        rank = max(1, int(-(-len(values) * p // 100)))  # ceil, at least 1
        return values[min(len(values), rank) - 1]

    @property
    def p50_e2e(self) -> float:
        return self.percentile_e2e(50)

    @property
    def p95_e2e(self) -> float:
        return self.percentile_e2e(95)

    @property
    def p99_e2e(self) -> float:
        return self.percentile_e2e(99)

    @property
    def peak_memory_gib(self) -> float:
        return self.peak_memory_bytes / GIB

    # -- serialization ------------------------------------------------------
    # The on-disk sweep store (repro.harness.sweep) depends on this
    # round-trip being *exact*: JSON preserves finite floats via repr, so
    # ``from_json(to_json(r)) == r`` field-for-field, and warm-cache
    # figure tables are byte-identical to cold ones.
    def to_dict(self) -> dict:
        out = {f.name: getattr(self, f.name) for f in fields(self)}
        out["invocations"] = [asdict(inv) for inv in self.invocations]
        out["extra"] = dict(self.extra)
        out["metrics"] = dict(self.metrics)
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "ScenarioResult":
        data = dict(data)
        data["invocations"] = [InvocationStats(**inv)
                               for inv in data["invocations"]]
        return cls(**data)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioResult":
        return cls.from_dict(json.loads(text))

    def __str__(self) -> str:  # pragma: no cover - display helper
        return (f"{self.function}/{self.approach} x{self.n_instances}: "
                f"mean E2E {self.mean_e2e * 1e3:.1f} ms, "
                f"peak mem {self.peak_memory_gib:.2f} GiB, "
                f"{self.device_requests} I/O reqs")


def summarize(results: list[ScenarioResult]) -> dict[str, dict[str, float]]:
    """{function: {approach: mean_e2e}} pivot used by the figure builders."""
    table: dict[str, dict[str, float]] = {}
    for result in results:
        table.setdefault(result.function, {})[result.approach] = (
            result.mean_e2e)
    return table
