"""The unified metrics registry: counters, gauges, log2 histograms."""

import threading

import pytest

from repro.metrics.registry import (
    TEXT_CONTENT_TYPE,
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
    escape_help,
    escape_label_value,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = Counter("c")
        assert counter.value == 0
        counter.inc()
        counter.inc(41)
        assert counter.value == 42

    def test_rejects_negative_increment(self):
        with pytest.raises(MetricError, match="negative"):
            Counter("c").inc(-1)

    def test_reset(self):
        counter = Counter("c")
        counter.inc(5)
        counter.reset()
        assert counter.value == 0


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("g")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(3)
        assert gauge.value == 12


class TestHistogram:
    def test_count_sum_mean_min_max(self):
        hist = Histogram("h")
        for value in (1e-6, 2e-6, 4e-6):
            hist.observe(value)
        assert hist.count == 3
        assert hist.sum == pytest.approx(7e-6)
        assert hist.mean == pytest.approx(7e-6 / 3)
        assert hist.min == pytest.approx(1e-6)
        assert hist.max == pytest.approx(4e-6)

    def test_empty_reads_are_zero(self):
        hist = Histogram("h")
        assert hist.count == 0
        assert hist.mean == 0.0
        assert hist.max == 0.0
        assert hist.percentile(99) == 0.0

    def test_log2_bucket_assignment(self):
        hist = Histogram("h", base=1.0, n_buckets=4)  # bounds 1,2,4,8
        for value in (0.5, 1.0, 1.5, 3.0, 100.0):
            hist.observe(value)
        # 0.5 and 1.0 -> bucket 0; 1.5 -> bucket 1; 3.0 -> bucket 2;
        # 100.0 -> overflow.
        assert hist.bucket_counts() == [2, 1, 1, 0, 1]

    def test_percentile_returns_bucket_bound_clamped_to_max(self):
        hist = Histogram("h", base=1.0, n_buckets=8)
        for _ in range(99):
            hist.observe(1.0)
        hist.observe(100.0)  # p100 outlier in the overflow region
        assert hist.percentile(50) == 1.0
        # The outlier's bucket bound would be 256; clamping keeps the
        # estimate at the observed max.
        assert hist.percentile(100) == 100.0

    def test_percentile_monotone(self):
        hist = Histogram("h")
        for i in range(1, 1000):
            hist.observe(i * 1e-5)
        ps = [hist.percentile(p) for p in (10, 50, 90, 99, 100)]
        assert ps == sorted(ps)

    def test_rejects_negative_observation_and_bad_p(self):
        hist = Histogram("h")
        with pytest.raises(MetricError):
            hist.observe(-1.0)
        with pytest.raises(MetricError):
            hist.percentile(101)

    def test_memory_is_bounded(self):
        hist = Histogram("h")
        buckets = len(hist.bucket_counts())
        for i in range(10_000):
            hist.observe(i * 1e-6)
        assert len(hist.bucket_counts()) == buckets
        assert hist.count == 10_000

    def test_reset(self):
        hist = Histogram("h")
        hist.observe(1.0)
        hist.reset()
        assert hist.count == 0
        assert hist.sum == 0.0
        assert hist.max == 0.0


class TestRegistry:
    def test_get_or_create_returns_same_instance(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.histogram("h") is registry.histogram("h")

    def test_type_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(MetricError, match="already registered"):
            registry.gauge("x")
        with pytest.raises(MetricError, match="already registered"):
            registry.histogram("x")

    def test_get_unknown_name(self):
        with pytest.raises(MetricError, match="no metric"):
            MetricsRegistry().get("nope")

    def test_snapshot_flattens_metrics(self):
        registry = MetricsRegistry()
        registry.counter("reqs").inc(3)
        registry.gauge("depth").set(2)
        registry.histogram("lat").observe(0.5)
        snap = registry.snapshot()
        assert snap["reqs"] == 3
        assert snap["depth"] == 2
        assert snap["lat_count"] == 1
        assert snap["lat_sum"] == pytest.approx(0.5)

    def test_collectors_merge_by_summation(self):
        registry = MetricsRegistry()
        registry.register_collector(lambda: {"fallbacks": 2, "only_a": 1})
        registry.register_collector(lambda: {"fallbacks": 3})
        snap = registry.snapshot()
        assert snap["fallbacks"] == 5
        assert snap["only_a"] == 1

    def test_collector_can_shadow_metric_by_summation(self):
        registry = MetricsRegistry()
        registry.counter("n").inc(1)
        registry.register_collector(lambda: {"n": 2})
        assert registry.snapshot()["n"] == 3

    def test_reset_resets_metrics_not_collectors(self):
        registry = MetricsRegistry()
        registry.counter("n").inc(7)
        registry.register_collector(lambda: {"ext": 4})
        registry.reset()
        snap = registry.snapshot()
        assert snap["n"] == 0
        assert snap["ext"] == 4

    def test_render_exposition_format(self):
        registry = MetricsRegistry()
        registry.counter("reqs", help="total requests").inc(2)
        registry.histogram("lat", base=1.0, n_buckets=2).observe(1.5)
        text = registry.render()
        assert "# HELP reqs total requests" in text
        assert "# TYPE reqs counter" in text
        assert "reqs 2" in text
        assert 'lat_bucket{le="+Inf"} 1' in text
        assert "lat_count 1" in text


class TestTextExposition:
    """The scrape-facing contract: escaping, collectors, content type."""

    def test_content_type_is_prometheus_0_0_4(self):
        assert TEXT_CONTENT_TYPE.startswith("text/plain")
        assert "version=0.0.4" in TEXT_CONTENT_TYPE

    def test_escape_help_round_trip(self):
        raw = 'multi\nline with back\\slash and "quotes"'
        escaped = escape_help(raw)
        assert "\n" not in escaped
        # HELP keeps quotes literal; only \ and newline are escaped.
        assert '"quotes"' in escaped
        unescaped = (escaped.replace("\\n", "\n")
                     .replace("\\\\", "\\"))
        # Round trip is exact when unescaping in spec order (the
        # replace order above is safe because escaping doubled every
        # original backslash first).
        assert escape_help(unescaped) == escaped

    def test_escape_label_value_round_trip(self):
        raw = 'a\\b"c\nd'
        escaped = escape_label_value(raw)
        assert escaped == 'a\\\\b\\"c\\nd'
        unescaped = (escaped.replace("\\\\", "\x00")
                     .replace('\\"', '"').replace("\\n", "\n")
                     .replace("\x00", "\\"))
        assert unescaped == raw

    def test_help_with_newline_stays_one_line(self):
        registry = MetricsRegistry()
        registry.counter("c", help="line one\nline two").inc()
        text = registry.text_exposition()
        help_lines = [ln for ln in text.splitlines()
                      if ln.startswith("# HELP")]
        assert help_lines == ["# HELP c line one\\nline two"]

    def test_histogram_buckets_are_cumulative(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat", base=1.0, n_buckets=3)
        for value in (0.5, 1.5, 3.0, 100.0):
            hist.observe(value)
        text = registry.text_exposition()
        assert 'lat_bucket{le="1"} 1' in text
        assert 'lat_bucket{le="2"} 2' in text
        assert 'lat_bucket{le="4"} 3' in text
        assert 'lat_bucket{le="+Inf"} 4' in text

    def test_collector_series_rendered_untyped(self):
        registry = MetricsRegistry()
        registry.counter("typed").inc()
        registry.register_collector(lambda: {"external_total": 3.0})
        text = registry.text_exposition()
        assert "# TYPE external_total untyped" in text
        assert "external_total 3" in text
        # A collector key shadowing a typed metric must NOT produce a
        # duplicate series (illegal in the exposition format).
        registry.register_collector(lambda: {"typed": 5.0})
        lines = registry.text_exposition().splitlines()
        assert lines.count("# TYPE typed counter") == 1
        assert sum(1 for ln in lines
                   if ln.split(" ")[0] == "typed") == 1

    def test_ends_with_newline(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        assert registry.text_exposition().endswith("\n")


class TestScrapeVsMutationRace:
    """A scrape during a worker flush must never observe a torn
    histogram (count/sum/buckets updated non-atomically)."""

    def test_threaded_observe_vs_snapshot(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat", base=1.0, n_buckets=8)
        n_per_thread, n_threads = 2_000, 4
        stop = threading.Event()
        torn: list[str] = []

        def scraper():
            while not stop.is_set():
                snap = registry.snapshot()
                count = snap["lat_count"]
                # Every observation has value 1.0, so sum == count at
                # every consistent point; inequality means a scrape
                # interleaved with a half-applied observe().
                if snap["lat_sum"] != count:
                    torn.append(f"count={count} sum={snap['lat_sum']}")
                text = registry.text_exposition()
                inf = cnt = None
                for line in text.splitlines():
                    if line.startswith('lat_bucket{le="+Inf"}'):
                        inf = float(line.split()[-1])
                    elif line.startswith("lat_count"):
                        cnt = float(line.split()[-1])
                # One render is one locked read: the +Inf bucket and
                # _count must agree inside a single exposition.
                if inf != cnt:
                    torn.append(f"inf_bucket={inf} count={cnt}")

        def writer():
            for _ in range(n_per_thread):
                hist.observe(1.0)

        scrape_thread = threading.Thread(target=scraper, daemon=True)
        scrape_thread.start()
        writers = [threading.Thread(target=writer)
                   for _ in range(n_threads)]
        for t in writers:
            t.start()
        for t in writers:
            t.join()
        stop.set()
        scrape_thread.join(timeout=10)
        assert not torn, torn[:5]
        assert hist.count == n_per_thread * n_threads
        assert hist.sum == float(n_per_thread * n_threads)

    def test_standalone_histogram_stays_lock_free(self):
        assert Histogram("h")._lock is None

    def test_registry_histogram_shares_registry_lock(self):
        registry = MetricsRegistry()
        assert registry.histogram("h")._lock is registry.lock
