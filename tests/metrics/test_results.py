"""ScenarioResult summaries."""

import pytest

from repro.metrics.results import ScenarioResult, summarize
from repro.units import GIB
from repro.vmm.microvm import InvocationStats


def make_result(function="f", approach="a", latencies=(1.0, 2.0, 3.0)):
    return ScenarioResult(
        function=function, approach=approach, n_instances=len(latencies),
        invocations=[InvocationStats(vm_id=f"vm{i}", e2e_seconds=lat)
                     for i, lat in enumerate(latencies)],
        peak_memory_bytes=2 * GIB)


def test_latency_summaries():
    result = make_result()
    assert result.e2e_latencies == [1.0, 2.0, 3.0]
    assert result.mean_e2e == pytest.approx(2.0)
    assert result.max_e2e == 3.0


def test_peak_memory_gib():
    assert make_result().peak_memory_gib == pytest.approx(2.0)


def test_str_is_informative():
    text = str(make_result(function="bert", approach="snapbpf"))
    assert "bert" in text and "snapbpf" in text


def test_empty_result_reports_zero_not_crash():
    """A scenario with no invocations (all requests failed before any
    sandbox completed) must summarize to 0.0, not raise."""
    result = ScenarioResult(function="f", approach="a", n_instances=0)
    assert result.e2e_latencies == []
    assert result.mean_e2e == 0.0
    assert result.max_e2e == 0.0
    assert result.p50_e2e == 0.0
    assert result.p99_e2e == 0.0
    assert "f/a" in str(result)


def test_e2e_percentiles_nearest_rank():
    latencies = tuple(float(i) for i in range(1, 101))  # 1..100
    result = make_result(latencies=latencies)
    assert result.p50_e2e == 50.0
    assert result.p95_e2e == 95.0
    assert result.p99_e2e == 99.0
    single = make_result(latencies=(7.0,))
    assert single.p50_e2e == single.p99_e2e == 7.0


def test_json_round_trip_is_exact():
    """The on-disk sweep store depends on from_json(to_json(r)) == r,
    exactly — including extras, the metrics snapshot, and percentiles."""
    result = make_result(function="bert", approach="snapbpf",
                         latencies=(0.1234567891234, 0.2, 0.3, 0.4, 0.5))
    result.end_memory_bytes = 123456789
    result.device_requests = 42
    result.device_bytes_read = 7 * GIB + 3
    result.device_bytes_written = 9
    result.cache_adds = 77
    result.bpf_hook_seconds = 1.5e-7
    result.prepare_seconds = 0.25
    result.extra = {"ws_pages": 512.0, "inflation_ratio": 1.0625}
    result.metrics = {"device_requests_total": 42.0,
                      "device_read_seconds_sum": 0.001953125}
    result.device_p50_latency = 95e-6
    result.device_p95_latency = 180e-6
    result.device_p99_latency = 250e-6
    result.invocations[0].nested_faults = 3
    result.invocations[0].compute_seconds = 0.017

    replayed = ScenarioResult.from_json(result.to_json())
    assert replayed == result
    assert replayed.extra == result.extra
    assert replayed.metrics == result.metrics
    assert replayed.invocations == result.invocations
    assert replayed.p50_e2e == result.p50_e2e
    assert replayed.p95_e2e == result.p95_e2e
    assert replayed.p99_e2e == result.p99_e2e
    assert replayed.mean_e2e == result.mean_e2e


def test_to_json_is_deterministic():
    result = make_result()
    assert result.to_json() == make_result().to_json()


def test_to_dict_copies_containers():
    result = make_result()
    data = result.to_dict()
    data["extra"]["injected"] = 1.0
    data["invocations"][0]["e2e_seconds"] = 99.0
    assert "injected" not in result.extra
    assert result.invocations[0].e2e_seconds == 1.0


def test_summarize_pivots_by_function_and_approach():
    table = summarize([
        make_result("f1", "a1", (1.0,)),
        make_result("f1", "a2", (2.0,)),
        make_result("f2", "a1", (3.0,)),
    ])
    assert table == {"f1": {"a1": 1.0, "a2": 2.0}, "f2": {"a1": 3.0}}
