"""ScenarioResult summaries."""

import pytest

from repro.metrics.results import ScenarioResult, summarize
from repro.units import GIB
from repro.vmm.microvm import InvocationStats


def make_result(function="f", approach="a", latencies=(1.0, 2.0, 3.0)):
    return ScenarioResult(
        function=function, approach=approach, n_instances=len(latencies),
        invocations=[InvocationStats(vm_id=f"vm{i}", e2e_seconds=lat)
                     for i, lat in enumerate(latencies)],
        peak_memory_bytes=2 * GIB)


def test_latency_summaries():
    result = make_result()
    assert result.e2e_latencies == [1.0, 2.0, 3.0]
    assert result.mean_e2e == pytest.approx(2.0)
    assert result.max_e2e == 3.0


def test_peak_memory_gib():
    assert make_result().peak_memory_gib == pytest.approx(2.0)


def test_str_is_informative():
    text = str(make_result(function="bert", approach="snapbpf"))
    assert "bert" in text and "snapbpf" in text


def test_summarize_pivots_by_function_and_approach():
    table = summarize([
        make_result("f1", "a1", (1.0,)),
        make_result("f1", "a2", (2.0,)),
        make_result("f2", "a1", (3.0,)),
    ])
    assert table == {"f1": {"a1": 1.0, "a2": 2.0}, "f2": {"a1": 3.0}}
