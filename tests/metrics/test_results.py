"""ScenarioResult summaries."""

import pytest

from repro.metrics.results import ScenarioResult, summarize
from repro.units import GIB
from repro.vmm.microvm import InvocationStats


def make_result(function="f", approach="a", latencies=(1.0, 2.0, 3.0)):
    return ScenarioResult(
        function=function, approach=approach, n_instances=len(latencies),
        invocations=[InvocationStats(vm_id=f"vm{i}", e2e_seconds=lat)
                     for i, lat in enumerate(latencies)],
        peak_memory_bytes=2 * GIB)


def test_latency_summaries():
    result = make_result()
    assert result.e2e_latencies == [1.0, 2.0, 3.0]
    assert result.mean_e2e == pytest.approx(2.0)
    assert result.max_e2e == 3.0


def test_peak_memory_gib():
    assert make_result().peak_memory_gib == pytest.approx(2.0)


def test_str_is_informative():
    text = str(make_result(function="bert", approach="snapbpf"))
    assert "bert" in text and "snapbpf" in text


def test_empty_result_reports_zero_not_crash():
    """A scenario with no invocations (all requests failed before any
    sandbox completed) must summarize to 0.0, not raise."""
    result = ScenarioResult(function="f", approach="a", n_instances=0)
    assert result.e2e_latencies == []
    assert result.mean_e2e == 0.0
    assert result.max_e2e == 0.0
    assert result.p50_e2e == 0.0
    assert result.p99_e2e == 0.0
    assert "f/a" in str(result)


def test_e2e_percentiles_nearest_rank():
    latencies = tuple(float(i) for i in range(1, 101))  # 1..100
    result = make_result(latencies=latencies)
    assert result.p50_e2e == 50.0
    assert result.p95_e2e == 95.0
    assert result.p99_e2e == 99.0
    single = make_result(latencies=(7.0,))
    assert single.p50_e2e == single.p99_e2e == 7.0


def test_summarize_pivots_by_function_and_approach():
    table = summarize([
        make_result("f1", "a1", (1.0,)),
        make_result("f1", "a2", (2.0,)),
        make_result("f2", "a1", (3.0,)),
    ])
    assert table == {"f1": {"a1": 1.0, "a2": 2.0}, "f2": {"a1": 3.0}}
