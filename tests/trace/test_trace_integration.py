"""End-to-end trace-plane acceptance: spans vs. measured results.

The contract under test: a traced SnapBPF restore produces a Chrome
trace whose per-instance ``restore`` span equals the measured
``e2e_seconds`` exactly, and whose phase-breakdown spans sum to it
within tolerance — so the visual timeline and the numeric result never
disagree.
"""

import pytest

from repro.harness.experiment import make_kernel, run_scenario
from repro.harness.spec import ScenarioSpec
from repro.trace import chrome_trace


@pytest.fixture
def traced_run(tiny_profile):
    kernel = make_kernel("ssd")
    kernel.tracer.enable()
    result = run_scenario(ScenarioSpec(tiny_profile, "snapbpf",
                                       n_instances=2), kernel=kernel)
    return kernel, result


def test_restore_span_matches_e2e_exactly(traced_run):
    kernel, result = traced_run
    for inv in result.invocations:
        spans = kernel.tracer.spans(cat="restore",
                                    name=f"restore {inv.vm_id}")
        assert len(spans) == 1
        assert spans[0].dur == inv.e2e_seconds


def test_breakdown_spans_sum_to_e2e_within_tolerance(traced_run):
    kernel, result = traced_run
    doc = chrome_trace(kernel.tracer)
    track_names = {e["tid"]: e["args"]["name"]
                   for e in doc["traceEvents"] if e["ph"] == "M"}
    for inv in result.invocations:
        breakdown = [e for e in doc["traceEvents"]
                     if e.get("cat") == "e2e" and e["ph"] == "X"
                     and track_names[e["tid"]] == inv.vm_id]
        assert {e["name"] for e in breakdown} == {
            "setup", "compute", "fault_overhead", "stall"}
        total_us = sum(e["dur"] for e in breakdown)
        assert total_us == pytest.approx(inv.e2e_seconds * 1e6, rel=0.10)


def test_trace_covers_every_layer(traced_run):
    kernel, _result = traced_run
    cats = {span.cat for span in kernel.tracer.events}
    # DES processes, device requests, cache fills/readahead, BPF program
    # runs, and the restore phases all report in.
    assert {"process", "device", "readahead", "ebpf", "restore",
            "e2e"} <= cats
    tracks = {span.track for span in kernel.tracer.events}
    assert "ssd0" in tracks  # per-device track


def test_device_spans_match_request_counter(traced_run):
    kernel, result = traced_run
    # Spans cover the whole run (record phase included) while the device
    # counters were reset at invoke start, so spans bound the counter
    # from above — and the invoke-phase request count from the result
    # must be found among them.
    device_spans = [s for s in kernel.tracer.spans(cat="device")
                    if not s.args.get("error")]
    assert len(device_spans) > 0
    snapshot = kernel.metrics.snapshot()
    assert 0 < snapshot["device_requests_total"] <= len(device_spans)
    assert snapshot["device_requests_total"] == result.device_requests


def test_tracing_off_is_free_and_identical(tiny_profile):
    traced_kernel = make_kernel("ssd")
    traced_kernel.tracer.enable()
    traced = run_scenario(ScenarioSpec(tiny_profile, "snapbpf"),
                          kernel=traced_kernel)

    plain_kernel = make_kernel("ssd")
    plain = run_scenario(ScenarioSpec(tiny_profile, "snapbpf"),
                         kernel=plain_kernel)

    assert len(plain_kernel.tracer) == 0
    # Tracing must be observation-only: identical simulated outcomes.
    assert plain.mean_e2e == traced.mean_e2e
    assert plain.device_requests == traced.device_requests
    assert plain.peak_memory_bytes == traced.peak_memory_bytes


def test_uffd_spans_for_userspace_baseline(tiny_profile):
    kernel = make_kernel("ssd")
    kernel.tracer.enable()
    run_scenario(ScenarioSpec(tiny_profile, "reap"), kernel=kernel)
    uffd_spans = kernel.tracer.spans(cat="uffd")
    assert len(uffd_spans) > 0
    assert all(span.dur >= 0 for span in uffd_spans)
