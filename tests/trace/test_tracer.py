"""Tracer unit behaviour + JSONL / Chrome export formats."""

import json

from repro.trace import Tracer, chrome_trace, to_jsonl


def make_tracer():
    tracer = Tracer()
    tracer.enable()
    return tracer


class TestTracer:
    def test_disabled_by_default_and_free(self):
        tracer = Tracer()
        tracer.complete("x", "cat", 0.0, dur=1.0)
        tracer.instant("y", "cat", 0.5)
        assert len(tracer) == 0

    def test_complete_with_end_or_dur(self):
        tracer = make_tracer()
        tracer.complete("a", "cat", 1.0, end=3.0)
        tracer.complete("b", "cat", 1.0, dur=0.5)
        spans = tracer.events
        assert spans[0].dur == 2.0
        assert spans[1].dur == 0.5

    def test_span_queries(self):
        tracer = make_tracer()
        tracer.complete("a", "x", 0.0, dur=1.0)
        tracer.complete("b", "y", 0.0, dur=1.0)
        tracer.complete("a", "y", 0.0, dur=1.0)
        assert len(tracer.spans(cat="y")) == 2
        assert len(tracer.spans(name="a")) == 2
        assert len(tracer.spans(cat="y", name="a")) == 1

    def test_category_totals(self):
        tracer = make_tracer()
        tracer.complete("a", "io", 0.0, dur=1.0)
        tracer.complete("b", "io", 0.0, dur=2.0)
        tracer.complete("c", "cpu", 0.0, dur=4.0)
        assert tracer.category_totals() == {"io": 3.0, "cpu": 4.0}

    def test_max_events_drops_and_counts(self):
        tracer = Tracer(max_events=2)
        tracer.enable()
        for i in range(5):
            tracer.complete(f"s{i}", "cat", float(i), dur=1.0)
        assert len(tracer) == 2
        assert tracer.dropped == 3

    def test_ring_keeps_newest_spans(self):
        # The buffer is a ring: overflow evicts the OLDEST span, so a
        # live dashboard always sees the most recent activity.
        tracer = Tracer(max_events=3)
        tracer.enable()
        for i in range(7):
            tracer.complete(f"s{i}", "cat", float(i), dur=1.0)
        assert [s.name for s in tracer.events] == ["s4", "s5", "s6"]
        assert tracer.dropped == 4

    def test_recent_returns_last_n_oldest_first(self):
        tracer = make_tracer()
        for i in range(5):
            tracer.complete(f"s{i}", "cat", float(i), dur=1.0)
        assert [s.name for s in tracer.recent(2)] == ["s3", "s4"]
        assert [s.name for s in tracer.recent(99)] == [
            f"s{i}" for i in range(5)]
        assert tracer.recent(0) == []

    def test_default_capacity_never_wraps_in_normal_runs(self):
        # Exports must stay byte-identical to the unbounded-buffer era:
        # the default ring is far larger than any scenario emits.
        assert Tracer().max_events >= 1_000_000

    def test_clear(self):
        tracer = make_tracer()
        tracer.complete("a", "cat", 0.0, dur=1.0)
        tracer.clear()
        assert len(tracer) == 0 and tracer.dropped == 0

    def test_args_recorded(self):
        tracer = make_tracer()
        tracer.complete("a", "cat", 0.0, dur=1.0, offset=42, ok=True)
        assert tracer.events[0].args == {"offset": 42, "ok": True}


class TestJsonlExport:
    def test_one_json_object_per_line(self):
        tracer = make_tracer()
        tracer.complete("a", "cat", 0.25, dur=0.5, track="t1", k=1)
        tracer.instant("b", "cat", 1.0)
        lines = to_jsonl(tracer).splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first == {"name": "a", "cat": "cat", "ph": "X", "ts": 0.25,
                         "dur": 0.5, "track": "t1", "args": {"k": 1}}
        assert json.loads(lines[1])["ph"] == "i"


class TestChromeExport:
    def test_structure_and_microseconds(self):
        tracer = make_tracer()
        tracer.complete("a", "cat", 0.001, dur=0.002, track="dev")
        doc = chrome_trace(tracer)
        assert doc["displayTimeUnit"] == "ms"
        events = doc["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        spans = [e for e in events if e["ph"] == "X"]
        assert meta[0]["args"]["name"] == "dev"
        assert spans[0]["ts"] == 1000.0  # 1 ms in us
        assert spans[0]["dur"] == 2000.0
        assert spans[0]["pid"] == meta[0]["pid"]

    def test_tracks_map_to_distinct_tids(self):
        tracer = make_tracer()
        tracer.complete("a", "cat", 0.0, dur=1.0, track="t1")
        tracer.complete("b", "cat", 0.0, dur=1.0, track="t2")
        tracer.complete("c", "cat", 0.0, dur=1.0, track="t1")
        doc = chrome_trace(tracer)
        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert spans[0]["tid"] == spans[2]["tid"]
        assert spans[0]["tid"] != spans[1]["tid"]
        names = {e["tid"]: e["args"]["name"]
                 for e in doc["traceEvents"] if e["ph"] == "M"}
        assert names[spans[1]["tid"]] == "t2"

    def test_instants_are_thread_scoped(self):
        tracer = make_tracer()
        tracer.instant("mark", "cat", 0.5)
        doc = chrome_trace(tracer)
        instant = [e for e in doc["traceEvents"] if e["ph"] == "i"][0]
        assert instant["s"] == "t"
        assert "dur" not in instant

    def test_serializable(self):
        tracer = make_tracer()
        tracer.complete("a", "cat", 0.0, dur=1.0, nested={"x": 1})
        json.dumps(chrome_trace(tracer))
