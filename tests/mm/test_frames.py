"""Frame allocator accounting — the basis of the Figure 3c numbers."""

import pytest

from repro.mm.frames import ANON, FILE, FrameAllocator, OutOfMemory
from repro.units import PAGE_SIZE


def test_alloc_kinds_counted_separately():
    frames = FrameAllocator(100)
    frames.alloc(ANON, owner="vm0")
    frames.alloc(ANON, owner="vm0")
    frames.alloc(FILE, ino=1, index=0)
    assert frames.counters.anon == 2
    assert frames.counters.file == 1
    assert frames.in_use == 3
    assert frames.free_frames == 97


def test_owner_attribution():
    frames = FrameAllocator(100)
    a = frames.alloc(ANON, owner="vm0")
    frames.alloc(ANON, owner="vm0")
    frames.alloc(ANON, owner="vm1")
    assert frames.owner_frames("vm0") == 2
    assert frames.owner_frames("vm1") == 1
    frames.free(a)
    assert frames.owner_frames("vm0") == 1
    assert frames.owner_frames("nobody") == 0


def test_peak_tracking():
    frames = FrameAllocator(100)
    held = [frames.alloc(ANON) for _ in range(10)]
    for frame in held[:8]:
        frames.free(frame)
    assert frames.peak_frames == 10
    assert frames.in_use == 2
    frames.reset_peak()
    assert frames.peak_frames == 2
    assert frames.peak_bytes == 2 * PAGE_SIZE


def test_oom():
    frames = FrameAllocator(2)
    frames.alloc(ANON)
    frames.alloc(ANON)
    with pytest.raises(OutOfMemory):
        frames.alloc(ANON)


def test_free_mapped_frame_rejected():
    frames = FrameAllocator(10)
    frame = frames.alloc(FILE, ino=1, index=0)
    frame.mapcount = 1
    with pytest.raises(ValueError):
        frames.free(frame)


def test_unique_pfns():
    frames = FrameAllocator(10)
    pfns = {frames.alloc(ANON).pfn for _ in range(5)}
    assert len(pfns) == 5


def test_bad_kind_rejected():
    with pytest.raises(ValueError):
        FrameAllocator(10).alloc("weird")


def test_positive_pool_required():
    with pytest.raises(ValueError):
        FrameAllocator(0)


def test_usage_snapshot_is_a_copy():
    frames = FrameAllocator(10)
    frames.alloc(ANON)
    usage = frames.usage()
    frames.alloc(ANON)
    assert usage.anon == 1
    assert usage.total_bytes == PAGE_SIZE
