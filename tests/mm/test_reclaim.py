"""The memory-pressure plane: split LRU, watermarks/kswapd, and the
ordering invariants the reclaim scan must uphold."""

import pytest

from repro.mm.frames import OutOfMemory
from repro.mm.kernel import Kernel
from repro.mm.reclaim import LruLists, Watermarks
from repro.units import MIB, PAGE_SIZE


class FakeEntry:
    def __init__(self):
        self.referenced = False
        self.active = False


# -- watermarks ---------------------------------------------------------------
def test_watermark_ordering_enforced():
    with pytest.raises(ValueError):
        Watermarks(min_frames=0, low_frames=1, high_frames=2)
    with pytest.raises(ValueError):
        Watermarks(min_frames=4, low_frames=3, high_frames=5)
    with pytest.raises(ValueError):
        Watermarks(min_frames=4, low_frames=6, high_frames=5)


def test_for_pool_defaults_scale_with_pool():
    small = Watermarks.for_pool(64)
    big = Watermarks.for_pool(1 << 20)
    for wm in (small, big):
        assert 0 < wm.min_frames <= wm.low_frames <= wm.high_frames
    assert big.min_frames > small.min_frames


# -- split LRU ----------------------------------------------------------------
def test_second_chance_promotion():
    lru = LruLists()
    entry = FakeEntry()
    lru.insert((1, 0), entry)
    assert lru.touch((1, 0)) == "referenced"
    assert entry.referenced
    assert lru.touch((1, 0)) == "promoted"
    assert (1, 0) in lru.active and (1, 0) not in lru.inactive
    assert lru.touch((1, 0)) == "active"
    lru.demote((1, 0))
    assert (1, 0) in lru.inactive and not entry.referenced
    assert lru.touch((9, 9)) is None


def test_rotate_moves_to_tail():
    lru = LruLists()
    for i in range(3):
        lru.insert((1, i), FakeEntry())
    lru.rotate((1, 0))
    assert list(lru.inactive) == [(1, 1), (1, 2), (1, 0)]
    lru.remove((1, 1))
    assert len(lru) == 2 and (1, 1) not in lru


# -- eviction order and invariants --------------------------------------------
def test_evictions_follow_lru_order(env):
    kernel = Kernel(env=env, ram_bytes=16 * PAGE_SIZE)
    file = kernel.filestore.create("f", MIB)
    kernel.page_cache.populate(file, 0, 16)
    env.run()
    kernel.page_cache.populate(file, 100, 4)
    env.run()
    assert kernel.reclaim.eviction_log == [(file.ino, i) for i in range(4)]
    assert kernel.reclaim.stats.direct == 4
    assert kernel.reclaim.stats.reclaimed == 4


def test_under_io_pages_never_evicted(env):
    kernel = Kernel(env=env, ram_bytes=8 * PAGE_SIZE)
    file = kernel.filestore.create("f", MIB)
    kernel.page_cache.populate(file, 0, 8)  # all locked until I/O lands
    with pytest.raises(OutOfMemory):
        kernel.page_cache.populate(file, 100, 1)
    env.run()
    assert kernel.reclaim.eviction_log == []
    assert all(kernel.page_cache.resident(file.ino, i) for i in range(8))


def test_mapped_pages_survive_direct_reclaim(env):
    kernel = Kernel(env=env, ram_bytes=16 * PAGE_SIZE)
    file = kernel.filestore.create("f", MIB)
    kernel.page_cache.populate(file, 0, 16)
    env.run()
    for i in range(8):
        kernel.page_cache.lookup(file.ino, i).frame.mapcount = 1
    kernel.page_cache.populate(file, 100, 8)
    env.run()
    evicted = {index for _ino, index in kernel.reclaim.eviction_log}
    assert evicted == set(range(8, 16))  # never a mapped page
    assert kernel.reclaim.stats.activations >= 8
    for i in range(8):
        assert kernel.page_cache.resident(file.ino, i)
        kernel.page_cache.lookup(file.ino, i).frame.mapcount = 0


# -- kswapd -------------------------------------------------------------------
def test_kswapd_wakes_and_reclaims_to_high_watermark(env):
    kernel = Kernel(env=env, ram_bytes=64 * PAGE_SIZE)
    wm = kernel.reclaim.enable_watermarks()
    file = kernel.filestore.create("f", MIB)
    kernel.page_cache.populate(file, 0, 59)
    env.run()
    assert kernel.reclaim.stats.kswapd_wakeups == 0  # still above low
    kernel.page_cache.populate(file, 100, 1)  # free sinks below low
    env.run()
    stats = kernel.reclaim.stats
    assert stats.kswapd_wakeups == 1
    assert kernel.frames.free_frames >= wm.high_frames
    assert stats.reclaimed >= 1
    assert stats.cpu_seconds > 0.0  # background reclaim charges CPU time


def test_enable_watermarks_idempotent(env):
    kernel = Kernel(env=env, ram_bytes=64 * PAGE_SIZE)
    wm = kernel.reclaim.enable_watermarks()
    assert kernel.reclaim.enable_watermarks() is wm


# -- per-ino residency accounting ---------------------------------------------
def test_cached_pages_per_ino_accounting(env):
    kernel = Kernel(env=env, ram_bytes=64 * PAGE_SIZE)
    cache = kernel.page_cache
    f1 = kernel.filestore.create("a", MIB)
    f2 = kernel.filestore.create("b", MIB)
    cache.populate(f1, 0, 10)
    cache.populate(f2, 0, 5)
    env.run()
    assert cache.cached_pages(f1.ino) == 10
    assert cache.cached_pages(f2.ino) == 5
    assert cache.cached_pages() == 15
    assert cache.cached_pages(9999) == 0
    cache.forget(cache.lookup(f2.ino, 0))
    assert cache.cached_pages(f2.ino) == 4
    kernel.drop_caches()
    assert cache.cached_pages(f1.ino) == 0
    assert cache.cached_pages() == 0


# -- speculative fills under OOM ----------------------------------------------
def test_speculative_fill_aborts_on_oom_demand_raises(env):
    kernel = Kernel(env=env, ram_bytes=8 * PAGE_SIZE)
    cache = kernel.page_cache
    file = kernel.filestore.create("f", MIB)
    cache.populate(file, 0, 8)
    env.run()
    for i in range(8):
        cache.lookup(file.ino, i).frame.mapcount = 1

    # A readahead-class fill degrades to a no-op instead of raising.
    cost, entries = cache.populate(file, 100, 8, speculative=True)
    assert entries == []
    assert cache.stats.ra_oom_aborts == 1
    assert cache.page_cache_ra_unbounded(file, 200, 8) == 0.0
    assert cache.stats.ra_oom_aborts == 2

    # The demand page of a speculative window still raises.
    with pytest.raises(OutOfMemory):
        cache.populate(file, 100, 8, speculative=True, required=100)

    # Once the pins go away the demand path retries and succeeds.
    for i in range(8):
        cache.lookup(file.ino, i).frame.mapcount = 0
    cache.populate(file, 100, 2)
    env.run()
    assert cache.resident(file.ino, 100)
    assert cache.resident(file.ino, 101)
