"""Page-cache EIO semantics: waiter wakeup, entry teardown, retry ladder."""

import pytest

from repro.faults import FaultSchedule, RetryPolicy
from repro.storage import BlockIOError
from repro.units import MIB
from tests.conftest import drive


@pytest.fixture
def faults(kernel):
    return FaultSchedule(seed=0).install(kernel)


def test_concurrent_waiters_all_see_eio(kernel, faults):
    """Every process blocked on a failed fill gets EIO, exactly like
    concurrent faulters on a locked page whose read fails."""
    kernel.page_cache.retry_policy = None
    file = kernel.filestore.create("f", MIB)
    kernel.device.fault_injector.fail_next()
    kernel.page_cache.populate(file, 0, 4)
    entries = [kernel.page_cache.lookup(file.ino, i) for i in range(4)]
    outcomes = []

    def waiter(entry):
        try:
            yield entry.io_event
        except BlockIOError:
            outcomes.append("eio")
        else:
            outcomes.append("ok")

    processes = [kernel.env.process(waiter(e), name=f"w{i}")
                 for i, e in enumerate(entries)]
    kernel.env.run(kernel.env.all_of(processes))
    assert outcomes == ["eio"] * 4
    # The failed entries are gone and their frames freed.
    assert kernel.page_cache.cached_pages() == 0
    assert kernel.frames.in_use == 0
    assert kernel.page_cache.stats.io_failures == 1
    # A later populate starts from scratch and succeeds.
    kernel.page_cache.populate(file, 0, 4)
    kernel.env.run()
    assert all(kernel.page_cache.resident(file.ino, i) for i in range(4))


def test_retry_heals_transient_error_invisibly(kernel, faults):
    """With the default policy a transient error is re-issued after a
    backoff; waiters never observe it."""
    file = kernel.filestore.create("f", MIB)
    kernel.device.fault_injector.fail_next()
    kernel.page_cache.populate(file, 0, 8)
    entry = kernel.page_cache.lookup(file.ino, 0)

    def waiter():
        result = yield entry.io_event
        return result

    assert drive(kernel.env, waiter()) is entry
    assert all(kernel.page_cache.resident(file.ino, i) for i in range(8))
    assert kernel.page_cache.stats.io_retries == 1
    assert kernel.page_cache.stats.io_failures == 0
    assert kernel.device.stats.errors == 1


def test_retry_budget_exhaustion_surfaces_eio(kernel, faults):
    """max_attempts failures in a row exhaust the ladder: waiters see
    EIO and the entries are dropped."""
    file = kernel.filestore.create("f", MIB)
    kernel.device.fault_injector.fail_next(3)  # matches max_attempts=3
    kernel.page_cache.populate(file, 0, 2)
    entry = kernel.page_cache.lookup(file.ino, 0)

    def waiter():
        with pytest.raises(BlockIOError):
            yield entry.io_event
        return "eio"

    assert drive(kernel.env, waiter()) == "eio"
    assert kernel.page_cache.stats.io_retries == 2
    assert kernel.page_cache.stats.io_failures == 1
    assert kernel.page_cache.cached_pages() == 0
    assert kernel.frames.in_use == 0


def test_persistent_error_is_not_retried(kernel, faults):
    file = kernel.filestore.create("f", MIB)
    kernel.device.fault_injector.fail_next(persistent=True)
    kernel.page_cache.populate(file, 0, 2)
    kernel.env.run()
    assert kernel.page_cache.stats.io_retries == 0
    assert kernel.page_cache.stats.io_failures == 1
    assert kernel.page_cache.cached_pages() == 0


def test_retry_backoff_delays_completion(kernel, faults):
    """The healed read completes later than a clean one by at least the
    first backoff step."""
    kernel.page_cache.retry_policy = RetryPolicy(backoff_base=1e-3)
    file = kernel.filestore.create("f", MIB)

    kernel.page_cache.populate(file, 0, 1)
    kernel.env.run()
    clean_duration = kernel.env.now

    kernel.drop_caches()
    start = kernel.env.now
    kernel.device.fault_injector.fail_next()
    kernel.page_cache.populate(file, 0, 1)
    kernel.env.run()
    assert kernel.env.now - start >= clean_duration + 1e-3


def test_torn_page_heals_through_retry(kernel, faults):
    """A torn snapshot page is transient: the re-read comes back clean."""
    file = kernel.filestore.create("f", MIB)
    kernel.filestore.fault_injector.tear_next()
    kernel.page_cache.populate(file, 0, 4)
    kernel.env.run()
    assert all(kernel.page_cache.resident(file.ino, i) for i in range(4))
    assert kernel.page_cache.stats.io_retries == 1
    assert kernel.faults.stats.torn_pages == 1
