"""Cost model sanity and scaling."""

import dataclasses

import pytest

from repro.mm.costs import CostModel


def test_defaults_positive_and_sub_millisecond():
    costs = CostModel()
    for field in dataclasses.fields(costs):
        value = getattr(costs, field.name)
        assert value > 0, field.name
        if field.name != "bpf_prog_attach":
            assert value < 1e-4, f"{field.name} suspiciously large"


def test_relative_magnitudes():
    costs = CostModel()
    # A uffd round trip costs several base faults (the REAP tax).
    assert costs.uffd_roundtrip > 2 * costs.fault_base
    # Page copy costs more than PTE manipulation.
    assert costs.memcpy_page > costs.pte_install
    # mincore per page is far below a fault.
    assert costs.mincore_per_page < costs.fault_base / 10


def test_scaled():
    costs = CostModel()
    double = costs.scaled(2.0)
    assert double.fault_base == pytest.approx(2 * costs.fault_base)
    assert double.memcpy_page == pytest.approx(2 * costs.memcpy_page)
    # Original untouched (frozen).
    assert costs.fault_base == CostModel().fault_base


def test_frozen():
    with pytest.raises(dataclasses.FrozenInstanceError):
        CostModel().fault_base = 1.0


def test_custom_cost_model_reaches_simulation(tiny_profile):
    from repro.harness.experiment import run_scenario
    from repro.harness.spec import ScenarioSpec
    slow = run_scenario(ScenarioSpec(tiny_profile, "linux-nora",
                                     costs=CostModel().scaled(10.0)))
    fast = run_scenario(ScenarioSpec(tiny_profile, "linux-nora"))
    assert slow.mean_e2e > fast.mean_e2e
