"""Page cache: insertion hook, population, locking, sharing, reclaim."""

import pytest

from repro.ebpf.asm import assemble, exit_, load, movi, store, ldmap, mov, alui, call
from repro.ebpf.insn import R0, R1, R2, R3, R4, R6, R7, R10
from repro.ebpf.maps import HashMap
from repro.mm.page_cache import HOOK_ADD_TO_PAGE_CACHE
from repro.units import MIB
from tests.conftest import drive


@pytest.fixture
def file(kernel):
    return kernel.filestore.create("snap", 4 * MIB)  # 1024 pages


class TestAdd:
    def test_add_inserts_locked_page(self, kernel, file):
        entry, cost = kernel.page_cache.add_to_page_cache_lru(file, 3)
        assert entry.locked and not entry.uptodate
        assert kernel.page_cache.lookup(file.ino, 3) is entry
        assert kernel.frames.counters.file == 1

    def test_double_add_rejected(self, kernel, file):
        kernel.page_cache.add_to_page_cache_lru(file, 3)
        with pytest.raises(ValueError):
            kernel.page_cache.add_to_page_cache_lru(file, 3)

    def test_add_fires_kprobe_with_ino_and_index(self, kernel, file):
        seen = HashMap("seen", key_size=8, value_size=8)
        prog = assemble("watch", [
            load(R6, R1, 0),
            load(R7, R1, 8),
            store(R10, -8, R7),
            store(R10, -16, R6),
            ldmap(R1, "seen"),
            mov(R2, R10), alui("add", R2, -8),
            mov(R3, R10), alui("add", R3, -16),
            movi(R4, 0),
            call(2),
            movi(R0, 0), exit_(),
        ], maps={"seen": seen})
        kernel.kprobes.attach(HOOK_ADD_TO_PAGE_CACHE, prog)
        kernel.page_cache.add_to_page_cache_lru(file, 17)
        assert seen.items_u64() == [(17, (file.ino,))]


class TestPopulate:
    def test_populate_reads_contiguous_run_as_one_request(self, kernel, file):
        kernel.page_cache.populate(file, 0, 32)
        kernel.env.run()
        assert kernel.device.stats.requests == 1
        assert kernel.page_cache.resident(file.ino, 0)
        assert kernel.page_cache.resident(file.ino, 31)

    def test_populate_skips_present_pages(self, kernel, file):
        kernel.page_cache.populate(file, 0, 8)
        kernel.env.run()
        kernel.device.reset_stats()
        _cost, new = kernel.page_cache.populate(file, 0, 16)
        kernel.env.run()
        assert len(new) == 8
        assert kernel.device.stats.requests == 1  # only [8, 16)

    def test_populate_holes_issue_separate_requests(self, kernel, file):
        kernel.page_cache.populate(file, 4, 4)
        kernel.env.run()
        kernel.device.reset_stats()
        kernel.page_cache.populate(file, 0, 16)  # hole at [4, 8)
        kernel.env.run()
        assert kernel.device.stats.requests == 2  # [0,4) and [8,16)

    def test_content_tokens_filled_after_io(self, kernel, file):
        kernel.page_cache.populate(file, 5, 1)
        kernel.env.run()
        entry = kernel.page_cache.lookup(file.ino, 5)
        assert entry.frame.content == file.content(5)

    def test_populate_bounds_checked(self, kernel, file):
        with pytest.raises(IndexError):
            kernel.page_cache.populate(file, 0, file.size_pages + 1)

    def test_marker_set_on_requested_page(self, kernel, file):
        kernel.page_cache.populate(file, 0, 32, marker=24)
        kernel.env.run()
        assert kernel.page_cache.lookup(file.ino, 24).ra_marker


class TestWaiting:
    def test_waiters_wake_on_io_completion(self, kernel, file):
        cache = kernel.page_cache
        cache.populate(file, 0, 1)
        entry = cache.lookup(file.ino, 0)

        def waiter():
            yield entry.io_event
            return kernel.env.now

        woken = drive(kernel.env, waiter())
        assert woken > 0
        assert entry.uptodate

    def test_concurrent_readers_share_one_io(self, kernel, file):
        cache = kernel.page_cache

        def reader():
            cost = yield from cache.read_range(file, 0, 8)
            return cost

        kernel.env.process(reader())
        kernel.env.process(reader())
        kernel.env.run()
        assert kernel.device.stats.requests == 1
        assert kernel.frames.counters.file == 8  # one copy, shared


class TestRaUnbounded:
    def test_clips_to_file(self, kernel, file):
        kernel.page_cache.page_cache_ra_unbounded(
            file, file.size_pages - 4, 100)
        kernel.env.run()
        assert kernel.page_cache.resident(file.ino, file.size_pages - 1)
        assert kernel.page_cache.cached_pages() == 4

    def test_out_of_range_is_noop(self, kernel, file):
        assert kernel.page_cache.page_cache_ra_unbounded(
            file, file.size_pages + 5, 10) == 0.0
        assert kernel.page_cache.cached_pages() == 0

    def test_async_does_not_block_caller(self, kernel, file):
        # Returns before any simulated time elapses.
        kernel.page_cache.page_cache_ra_unbounded(file, 0, 64)
        assert kernel.env.now == 0.0
        kernel.env.run()
        assert kernel.page_cache.resident(file.ino, 63)


class TestReclaim:
    def test_drop_caches_frees_unmapped(self, kernel, file):
        kernel.page_cache.populate(file, 0, 16)
        kernel.env.run()
        assert kernel.drop_caches() == 16
        assert kernel.frames.counters.file == 0

    def test_drop_caches_keeps_mapped(self, kernel, file):
        kernel.page_cache.populate(file, 0, 2)
        kernel.env.run()
        entry = kernel.page_cache.lookup(file.ino, 0)
        entry.frame.mapcount = 1
        assert kernel.drop_caches() == 1
        assert kernel.page_cache.resident(file.ino, 0)
        entry.frame.mapcount = 0

    def test_lru_eviction_under_pressure(self, env):
        from repro.mm.kernel import Kernel
        from repro.units import PAGE_SIZE
        small = Kernel(env=env, ram_bytes=64 * PAGE_SIZE)
        f = small.filestore.create("f", MIB)
        small.page_cache.populate(f, 0, 64)
        env.run()
        # Pool is full of cache pages; next insert must evict the LRU one.
        small.page_cache.populate(f, 100, 1)
        env.run()
        assert small.page_cache.stats.evictions >= 1
        assert not small.page_cache.resident(f.ino, 0)  # LRU head gone

    def test_forget_requires_unmapped_uptodate(self, kernel, file):
        kernel.page_cache.populate(file, 0, 1)
        entry = kernel.page_cache.lookup(file.ino, 0)
        with pytest.raises(ValueError):
            kernel.page_cache.forget(entry)  # still under I/O
        kernel.env.run()
        kernel.page_cache.forget(entry)
        assert not kernel.page_cache.resident(file.ino, 0)


class TestStats:
    def test_adds_counted(self, kernel, file):
        kernel.page_cache.populate(file, 0, 10)
        kernel.env.run()
        assert kernel.page_cache.stats.adds == 10

    def test_cached_pages_by_ino(self, kernel, file):
        other = kernel.filestore.create("other", MIB)
        kernel.page_cache.populate(file, 0, 4)
        kernel.page_cache.populate(other, 0, 2)
        kernel.env.run()
        assert kernel.page_cache.cached_pages(file.ino) == 4
        assert kernel.page_cache.cached_pages(other.ino) == 2
        assert kernel.page_cache.cached_pages() == 6
