"""Property tests: page-cache bookkeeping stays consistent under
arbitrary populate / wait / drop / fault-injection sequences."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import FaultSchedule
from repro.mm.kernel import Kernel
from repro.sim import Environment

FILE_PAGES = 256

op_strategy = st.one_of(
    st.tuples(st.just("populate"), st.integers(0, FILE_PAGES - 1),
              st.integers(1, 64)),
    st.tuples(st.just("ra"), st.integers(0, FILE_PAGES + 32),
              st.integers(1, 64)),
    st.tuples(st.just("run"), st.just(0), st.just(0)),
    st.tuples(st.just("drop"), st.just(0), st.just(0)),
    st.tuples(st.just("fail_next"), st.just(0), st.integers(1, 3)),
)


@settings(max_examples=60, deadline=None)
@given(ops=st.lists(op_strategy, min_size=1, max_size=25))
def test_cache_frame_accounting_invariant(ops):
    kernel = Kernel(env=Environment())
    FaultSchedule(seed=0).install(kernel)
    file = kernel.filestore.create("f", FILE_PAGES * 4096)
    for op, a, b in ops:
        if op == "populate":
            count = min(b, FILE_PAGES - a)
            if count > 0:
                kernel.page_cache.populate(file, a, count)
        elif op == "ra":
            kernel.page_cache.page_cache_ra_unbounded(file, a, b)
        elif op == "run":
            kernel.env.run()
        elif op == "drop":
            kernel.env.run()
            kernel.drop_caches()
        elif op == "fail_next":
            kernel.device.fault_injector.fail_next(b)

        # Invariant: one FILE frame per cache entry, at all times.
        assert (kernel.frames.counters.file
                == kernel.page_cache.cached_pages())
        assert kernel.frames.counters.anon == 0

    kernel.env.run()
    assert kernel.frames.counters.file == kernel.page_cache.cached_pages()
    # After a final drain + drop, nothing leaks.
    kernel.drop_caches()
    assert kernel.frames.in_use == 0


@settings(max_examples=40, deadline=None)
@given(
    windows=st.lists(st.tuples(st.integers(0, FILE_PAGES - 1),
                               st.integers(1, 48)),
                     min_size=1, max_size=10))
def test_populate_is_idempotent_and_complete(windows):
    kernel = Kernel(env=Environment())
    file = kernel.filestore.create("f", FILE_PAGES * 4096)
    requested: set[int] = set()
    for start, count in windows:
        count = min(count, FILE_PAGES - start)
        if count <= 0:
            continue
        kernel.page_cache.populate(file, start, count)
        requested.update(range(start, start + count))
    kernel.env.run()
    resident = {index for index in range(FILE_PAGES)
                if kernel.page_cache.resident(file.ino, index)}
    assert resident == requested
    # Re-populating everything is a no-op I/O-wise.
    reads_before = kernel.device.stats.requests
    for start, count in windows:
        count = min(count, FILE_PAGES - start)
        if count > 0:
            kernel.page_cache.populate(file, start, count)
    kernel.env.run()
    assert kernel.device.stats.requests == reads_before
