"""LRU ordering: recently-touched pages survive reclaim."""

from repro.mm.kernel import Kernel
from repro.units import MIB, PAGE_SIZE


def test_recently_accessed_page_survives_eviction(env):
    kernel = Kernel(env=env, ram_bytes=32 * PAGE_SIZE)
    file = kernel.filestore.create("f", MIB)
    kernel.page_cache.populate(file, 0, 32)
    env.run()
    # Touch page 0, making page 1 the coldest.
    kernel.page_cache.lookup(file.ino, 0)
    kernel.page_cache.populate(file, 100, 1)  # forces one eviction
    env.run()
    assert kernel.page_cache.resident(file.ino, 0)
    assert not kernel.page_cache.resident(file.ino, 1)


def test_eviction_skips_mapped_pages(env):
    kernel = Kernel(env=env, ram_bytes=32 * PAGE_SIZE)
    file = kernel.filestore.create("f", MIB)
    kernel.page_cache.populate(file, 0, 32)
    env.run()
    # Map the two coldest pages; eviction must take the third.
    for index in (0, 1):
        kernel.page_cache.lookup(file.ino, index).frame.mapcount = 1
    kernel.page_cache.lookup(file.ino, 31)  # warm the tail
    kernel.page_cache.populate(file, 100, 1)
    env.run()
    assert kernel.page_cache.resident(file.ino, 0)
    assert kernel.page_cache.resident(file.ino, 1)
    assert not kernel.page_cache.resident(file.ino, 2)
    for index in (0, 1):
        kernel.page_cache.lookup(file.ino, index).frame.mapcount = 0


def test_reclaim_raises_when_everything_pinned(env):
    import pytest
    from repro.mm.frames import OutOfMemory
    kernel = Kernel(env=env, ram_bytes=8 * PAGE_SIZE)
    file = kernel.filestore.create("f", MIB)
    kernel.page_cache.populate(file, 0, 8)
    env.run()
    for index in range(8):
        kernel.page_cache.lookup(file.ino, index).frame.mapcount = 1
    with pytest.raises(OutOfMemory):
        kernel.page_cache.populate(file, 100, 1)
    for index in range(8):
        kernel.page_cache.lookup(file.ino, index).frame.mapcount = 0
