"""Readahead state machine: windows, markers, mmap_miss heuristic."""

from repro.mm.readahead import MMAP_LOTSAMISS, ReadaheadState


FILE_PAGES = 10_000


def test_disabled_readahead_reads_single_page():
    ra = ReadaheadState(ra_pages=0)
    plan = ra.on_cache_miss(100, FILE_PAGES)
    assert (plan.start, plan.count) == (100, 1)
    assert plan.marker is None


def test_default_window_is_32_pages():
    ra = ReadaheadState()
    plan = ra.on_cache_miss(100, FILE_PAGES)
    assert (plan.start, plan.count) == (100, 32)


def test_marker_set_a_quarter_before_end():
    ra = ReadaheadState()
    plan = ra.on_cache_miss(0, FILE_PAGES)
    assert plan.marker == 32 - 8


def test_marker_hit_triggers_next_window():
    ra = ReadaheadState()
    ra.on_cache_miss(0, FILE_PAGES)
    plan = ra.on_marker_hit(24, FILE_PAGES)
    assert (plan.start, plan.count) == (25, 32)
    assert plan.marker is not None


def test_window_clipped_to_file_end():
    ra = ReadaheadState()
    plan = ra.on_cache_miss(FILE_PAGES - 5, FILE_PAGES)
    assert plan.count == 5


def test_mmap_miss_suppresses_random_readahead():
    ra = ReadaheadState()
    # Scattered misses: after MMAP_LOTSAMISS of them, windows collapse.
    for i in range(MMAP_LOTSAMISS + 1):
        plan = ra.on_cache_miss(i * 1000, FILE_PAGES * 1000)
    assert plan.count == 1


def test_sequential_misses_keep_full_windows():
    ra = ReadaheadState()
    plan = ra.on_cache_miss(0, FILE_PAGES)
    for i in range(1, 200):
        plan = ra.on_cache_miss(i, FILE_PAGES)
    assert plan.count == 32


def test_hits_decay_miss_counter():
    ra = ReadaheadState()
    for i in range(MMAP_LOTSAMISS + 1):
        ra.on_cache_miss(i * 1000, FILE_PAGES * 1000)
    assert ra.on_cache_miss(9_999_000, FILE_PAGES * 1000).count == 1
    for i in range(MMAP_LOTSAMISS + 1):
        ra.on_cache_hit(i)
    plan = ra.on_cache_miss(5_000_000, FILE_PAGES * 1000)
    assert plan.count == 32


def test_stats_track_requested_pages():
    ra = ReadaheadState()
    ra.on_cache_miss(0, FILE_PAGES)
    ra.on_marker_hit(24, FILE_PAGES)
    assert ra.windows_issued == 2
    assert ra.pages_requested == 64


def test_no_marker_for_tiny_windows():
    ra = ReadaheadState(ra_pages=2)
    plan = ra.on_cache_miss(0, FILE_PAGES)
    assert plan.marker is None


def test_negative_ra_pages_rejected():
    import pytest
    with pytest.raises(ValueError):
        ReadaheadState(ra_pages=-1)
