"""The aggregate Kernel object."""

from repro.mm.kernel import Kernel
from repro.mm.page_cache import HOOK_ADD_TO_PAGE_CACHE
from repro.units import GIB, MIB, PAGE_SIZE


def test_default_wiring():
    kernel = Kernel()
    assert kernel.frames.total_frames == 256 * GIB // PAGE_SIZE
    assert kernel.page_cache.frames is kernel.frames
    assert kernel.kprobes.kfuncs is kernel.kfuncs
    # The page cache declared its hook point.
    assert kernel.kprobes.hook(HOOK_ADD_TO_PAGE_CACHE).ctx_size == 16


def test_interpreter_clock_follows_env():
    kernel = Kernel()
    kernel.env.timeout(1.5)
    kernel.env.run()
    assert kernel.interpreter.time_ns() == int(1.5e9)


def test_memory_in_use(kernel):
    file = kernel.filestore.create("f", MIB)
    kernel.page_cache.populate(file, 0, 4)
    kernel.env.run()
    assert kernel.memory_in_use_bytes() == 4 * PAGE_SIZE
    kernel.drop_caches()
    assert kernel.memory_in_use_bytes() == 0


def test_spawn_space_owner(kernel):
    assert kernel.spawn_space("x").owner == "x"
    auto = kernel.spawn_space()
    assert auto.owner.startswith("proc")


def test_run_passthrough(kernel):
    kernel.env.timeout(2.0)
    kernel.run(until=1.0)
    assert kernel.env.now == 1.0
