"""Address spaces: mmap, fault paths, CoW, sharing, mincore, teardown."""

import pytest

from repro.mm.address_space import SegfaultError
from repro.units import MIB
from tests.conftest import drive


@pytest.fixture
def file(kernel):
    return kernel.filestore.create("snap", 4 * MIB)


@pytest.fixture
def space(kernel):
    return kernel.spawn_space("vm0")


def fault(kernel, space, vpn, write=False):
    return drive(kernel.env, space.handle_fault(vpn, write))


class TestMmap:
    def test_placement_and_lookup(self, kernel, space, file):
        vma = space.mmap(64, file=file, at=1000)
        assert space.vma_at(1000) is vma
        assert space.vma_at(1063) is vma
        with pytest.raises(SegfaultError):
            space.vma_at(1064)

    def test_auto_placement_non_overlapping(self, space, file):
        v1 = space.mmap(64, file=file)
        v2 = space.mmap(64)
        assert v1.end <= v2.start

    def test_overlap_rejected(self, space, file):
        space.mmap(64, file=file, at=1000)
        with pytest.raises(ValueError):
            space.mmap(8, at=1030)
        with pytest.raises(ValueError):
            space.mmap(2000, at=0)

    def test_mapping_beyond_file_rejected(self, space, file):
        with pytest.raises(ValueError):
            space.mmap(file.size_pages + 1, file=file)

    def test_file_index_translation(self, space, file):
        vma = space.mmap(64, file=file, pgoff=100, at=1000)
        assert vma.file_index(1010) == 110


class TestAnonFault:
    def test_zero_fill(self, kernel, space):
        space.mmap(16, at=1000)
        cost = fault(kernel, space, 1000, write=True)
        pte = space.pte(1000)
        assert pte.writable and pte.frame.kind == "anon"
        assert pte.frame.content == 0
        assert cost > 0

    def test_owner_attribution(self, kernel, space):
        space.mmap(16, at=1000)
        fault(kernel, space, 1000, write=True)
        assert kernel.frames.owner_frames("vm0") == 1


class TestFileFault:
    def test_read_fault_maps_shared_readonly(self, kernel, space, file):
        space.mmap(64, file=file, at=1000)
        fault(kernel, space, 1010)
        pte = space.pte(1010)
        assert not pte.writable and pte.cow
        assert pte.frame.kind == "file"
        assert pte.frame.content == file.content(10)

    def test_write_fault_cows_at_fault_time(self, kernel, space, file):
        space.mmap(64, file=file, at=1000)
        fault(kernel, space, 1010, write=True)
        pte = space.pte(1010)
        assert pte.writable and pte.frame.kind == "anon"
        assert pte.frame.content == file.content(10)  # copy fidelity

    def test_write_after_read_cows(self, kernel, space, file):
        space.mmap(64, file=file, at=1000)
        fault(kernel, space, 1010)
        shared = space.pte(1010).frame
        fault(kernel, space, 1010, write=True)
        pte = space.pte(1010)
        assert pte.frame is not shared
        assert pte.frame.kind == "anon"
        assert shared.mapcount == 0  # unshared by this space
        assert space.stats_cow_faults == 1

    def test_two_spaces_share_cache_frame(self, kernel, file):
        s1, s2 = kernel.spawn_space("a"), kernel.spawn_space("b")
        s1.mmap(64, file=file, at=1000)
        s2.mmap(64, file=file, at=1000)
        fault(kernel, s1, 1005)
        fault(kernel, s2, 1005)
        assert s1.pte(1005).frame is s2.pte(1005).frame
        assert s1.pte(1005).frame.mapcount == 2

    def test_major_vs_minor_accounting(self, kernel, space, file):
        space.mmap(64, file=file, at=1000, ra_pages=0)
        fault(kernel, space, 1000)
        assert space.stats_major_faults == 1
        # Second space hits the now-resident page: minor.
        other = kernel.spawn_space("vm1")
        other.mmap(64, file=file, at=1000, ra_pages=0)
        fault(kernel, other, 1000)
        assert other.stats_major_faults == 0
        assert other.stats_minor_faults == 1

    def test_readahead_window_populated_on_miss(self, kernel, space, file):
        space.mmap(file.size_pages, file=file, at=1000, ra_pages=32)
        fault(kernel, space, 1000)
        assert kernel.page_cache.cached_pages(file.ino) == 32

    def test_nora_populates_single_page(self, kernel, space, file):
        space.mmap(file.size_pages, file=file, at=1000, ra_pages=0)
        fault(kernel, space, 1000)
        assert kernel.page_cache.cached_pages(file.ino) == 1

    def test_marker_hit_extends_window_async(self, kernel, space, file):
        space.mmap(file.size_pages, file=file, at=1000, ra_pages=32)
        fault(kernel, space, 1000)
        marker_index = next(
            i for i in range(32)
            if kernel.page_cache.lookup(file.ino, i).ra_marker)
        fault(kernel, space, 1000 + marker_index)
        kernel.env.run()
        assert kernel.page_cache.cached_pages(file.ino) > 32

    def test_fault_outside_vma_segfaults(self, kernel, space):
        with pytest.raises(SegfaultError):
            fault(kernel, space, 123456)


class TestUffdFault:
    def test_fault_delegated_and_resolved(self, kernel, space):
        uffd = kernel.new_uffd()
        space.mmap(16, at=1000, uffd=uffd)

        def handler():
            msg = yield uffd.read()
            space.install_anon(msg.vpn, content=777)
            uffd.resolve(msg.vpn)

        kernel.env.process(handler())
        fault(kernel, space, 1003)
        assert space.pte(1003).frame.content == 777
        assert space.stats_uffd_faults == 1

    def test_concurrent_faulters_share_one_message(self, kernel, space):
        uffd = kernel.new_uffd()
        space.mmap(16, at=1000, uffd=uffd)
        messages = []

        def handler():
            while True:
                msg = yield uffd.read()
                messages.append(msg.vpn)
                yield kernel.env.timeout(1e-6)
                space.install_anon(msg.vpn, content=1)
                uffd.resolve(msg.vpn)

        kernel.env.process(handler())
        kernel.env.process(space.handle_fault(1003, False))
        kernel.env.process(space.handle_fault(1003, False))
        kernel.env.run()
        assert messages == [1003]


class TestDirectInstall:
    def test_install_anon(self, kernel, space):
        space.mmap(16, at=1000)
        cost = space.install_anon(1000, content=5)
        assert cost > 0
        assert space.pte(1000).frame.content == 5

    def test_double_install_rejected(self, kernel, space):
        space.mmap(16, at=1000)
        space.install_anon(1000)
        with pytest.raises(ValueError):
            space.install_anon(1000)


class TestMincore:
    def test_reports_mapped_and_cached(self, kernel, space, file):
        vma = space.mmap(8, file=file, at=1000, ra_pages=0)
        fault(kernel, space, 1002)
        kernel.page_cache.populate(file, 5, 1)
        kernel.env.run()
        residency = space.mincore(vma)
        assert residency == [False, False, True, False, False,
                             True, False, False]

    def test_anon_vma_mincore(self, kernel, space):
        vma = space.mmap(4, at=1000)
        space.install_anon(1001)
        assert space.mincore(vma) == [False, True, False, False]


class TestTeardown:
    def test_frees_anon_keeps_cache(self, kernel, space, file):
        space.mmap(64, file=file, at=1000)
        fault(kernel, space, 1001)               # shared file page
        fault(kernel, space, 1002, write=True)   # private CoW page
        assert kernel.frames.counters.anon == 1
        space.teardown()
        assert kernel.frames.counters.anon == 0
        assert kernel.frames.counters.file >= 1  # cache survives
        assert kernel.page_cache.lookup(file.ino, 1).frame.mapcount == 0
