"""userfaultfd message queue semantics."""

from tests.conftest import drive


def test_notify_queues_message(kernel):
    uffd = kernel.new_uffd()
    uffd.notify(100, write=False)

    def handler():
        msg = yield uffd.read()
        return (msg.vpn, msg.write)

    assert drive(kernel.env, handler()) == (100, False)
    assert uffd.faults_delivered == 1


def test_duplicate_notify_joins_pending(kernel):
    uffd = kernel.new_uffd()
    wake1 = uffd.notify(100, write=False)
    wake2 = uffd.notify(100, write=True)
    assert wake1 is wake2
    assert uffd.faults_delivered == 1
    assert uffd.pending_vpns == [100]


def test_resolve_wakes_waiters(kernel):
    uffd = kernel.new_uffd()
    wake = uffd.notify(100, write=False)

    def waiter():
        yield wake
        return kernel.env.now

    process = kernel.env.process(waiter())

    def resolver():
        yield kernel.env.timeout(3e-6)
        uffd.resolve(100)

    kernel.env.process(resolver())
    kernel.env.run()
    assert process.value == 3e-6
    assert not uffd.is_pending(100)


def test_resolve_unknown_vpn_is_noop(kernel):
    uffd = kernel.new_uffd()
    uffd.resolve(999)  # preemptive install before any fault


def test_messages_fifo(kernel):
    uffd = kernel.new_uffd()
    for vpn in (5, 3, 9):
        uffd.notify(vpn, write=False)
    got = []

    def handler():
        for _ in range(3):
            msg = yield uffd.read()
            got.append(msg.vpn)

    drive(kernel.env, handler())
    assert got == [5, 3, 9]
