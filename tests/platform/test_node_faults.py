"""Node-level degradation: cold-start retry on EIO, request deadlines."""

import pytest

from repro.faults import FaultSchedule
from repro.harness.experiment import make_kernel
from repro.platform.node import FaaSNode
from repro.platform.workload import Arrival
from repro.units import MIB
from repro.workloads.profile import FunctionProfile


@pytest.fixture
def profile():
    return FunctionProfile(name="alpha", mem_bytes=48 * MIB,
                           ws_bytes=4 * MIB, alloc_bytes=2 * MIB,
                           compute_seconds=0.02, run_len_mean=8.0, seed=31)


def make_node(profile, deadline=None):
    """Node prepared clean, then fault schedule installed for serving."""
    kernel = make_kernel()
    node = FaaSNode(kernel, "linux-ra", [profile],
                    request_deadline=deadline)
    kernel.env.run(kernel.env.process(node.prepare(), name="prepare"))
    FaultSchedule(seed=0).install(kernel)
    return node


def test_transient_eio_gets_one_cold_retry(profile):
    node = make_node(profile)
    node.kernel.page_cache.retry_policy = None  # EIO escalates directly
    node.kernel.device.fault_injector.fail_next()

    report = node.run([Arrival(0.0, "alpha", 0)])

    result = report.results[0]
    assert result.status == "ok"
    assert result.retries == 1
    assert result.cold
    assert report.completed == 1
    assert report.request_retries == 1


def test_persistent_eio_exhausts_retry_and_fails(profile):
    node = make_node(profile)
    node.kernel.device.fault_injector.fail_next(persistent=True)

    report = node.run([Arrival(0.0, "alpha", 0)])

    result = report.results[0]
    # The retry's fresh cold start re-reads the poisoned extent.
    assert result.status == "failed"
    assert result.retries == 1
    assert report.failures == 1
    assert report.completed == 0


def test_deadline_expiry_reports_timeout(profile):
    node = make_node(profile, deadline=1e-3)

    report = node.run([Arrival(0.0, "alpha", 0)])

    result = report.results[0]
    assert result.status == "timeout"
    assert result.latency == pytest.approx(1e-3)
    assert report.timeouts == 1
    # The abandoned attempt still cleaned up its sandbox: node.run's
    # final drain let it finish, so no anonymous memory leaks.
    assert node.kernel.frames.counters.anon == 0
    assert node.pooled_sandboxes("alpha") == 0


def test_generous_deadline_does_not_fire(profile):
    node = make_node(profile, deadline=60.0)
    report = node.run([Arrival(0.0, "alpha", 0),
                       Arrival(0.1, "alpha", 0)])
    assert report.timeouts == 0
    assert report.completed == 2
    assert all(r.status == "ok" for r in report.results)


def test_faults_never_crash_the_node(profile):
    """Mixed forced faults: every request still gets a result."""
    node = make_node(profile)
    node.kernel.device.fault_injector.fail_next(2)
    node.kernel.filestore.fault_injector.tear_next()

    report = node.run([Arrival(i * 0.2, "alpha", 0) for i in range(3)])

    assert len(report.results) == 3
    assert report.completed == 3  # retry ladder healed everything
