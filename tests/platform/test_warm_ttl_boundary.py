"""Warm-pool TTL boundary: exactly-at-expiry is warm, just-after is cold.

A sandbox parks when its request completes; the reaper tears it down
``warm_pool_ttl`` seconds later.  An arrival landing at *exactly*
``park_time + ttl`` must classify warm — the request's timeout event is
scheduled before the reaper's, so it wins the tie deterministically —
and that classification must be identical whether the scenario runs
in-process or inside sweep worker processes (``parallel_map`` jobs).
"""

from repro.harness.experiment import make_kernel
from repro.harness.sweep import parallel_map
from repro.platform.node import FaaSNode
from repro.platform.workload import Arrival
from repro.units import MIB
from repro.workloads.profile import FunctionProfile

TTL = 1.5
EPSILON = 1e-9


def tiny_profile():
    return FunctionProfile(name="alpha", mem_bytes=48 * MIB,
                           ws_bytes=4 * MIB, alloc_bytes=2 * MIB,
                           compute_seconds=0.02, run_len_mean=8.0, seed=31)


def first_request_latency():
    """How long the first (cold) request takes — the park timestamp."""
    node = FaaSNode(make_kernel(), "snapbpf", [tiny_profile()],
                    warm_pool_ttl=TTL)
    report = node.run([Arrival(0.0, "alpha", 0)])
    return report.results[0].latency


def run_pair(second_arrival_time):
    """Cold/warm classification for [0, second_arrival_time]."""
    node = FaaSNode(make_kernel(), "snapbpf", [tiny_profile()],
                    warm_pool_ttl=TTL)
    report = node.run([Arrival(0.0, "alpha", 0),
                       Arrival(second_arrival_time, "alpha", 0)])
    return tuple(r.cold for r in report.results)


def test_arrival_exactly_at_expiry_is_warm():
    park_time = first_request_latency()
    assert run_pair(park_time + TTL) == (True, False)


def test_arrival_just_after_expiry_is_cold():
    park_time = first_request_latency()
    assert run_pair(park_time + TTL + EPSILON) == (True, True)


def test_arrival_well_before_expiry_is_warm():
    park_time = first_request_latency()
    assert run_pair(park_time + TTL / 2) == (True, False)


def test_boundary_classification_identical_across_jobs():
    park_time = first_request_latency()
    arrivals = [park_time + TTL, park_time + TTL + EPSILON,
                park_time + TTL / 2]
    serial = parallel_map(run_pair, arrivals, jobs=1)
    parallel = parallel_map(run_pair, arrivals, jobs=2)
    assert serial == parallel
    assert serial == [(True, False), (True, True), (True, False)]
