"""Teardown vs. background-thread races must not leak memory.

A sandbox can be destroyed while its approach's prefetcher threads are
still streaming (short invocations on large working sets).  Installs
into a dead address space must be dropped, and the node must converge to
zero private memory once pools drain.
"""

from repro.harness.experiment import make_kernel
from repro.platform.node import FaaSNode
from repro.platform.workload import Arrival
from repro.units import MIB
from repro.workloads.profile import FunctionProfile
from repro.workloads.trace import generate_trace


def big_ws_quick_compute():
    """Large working set + tiny compute: the invocation can finish while
    the prefetcher is still mid-stream."""
    return FunctionProfile(name="racer", mem_bytes=96 * MIB,
                           ws_bytes=24 * MIB, alloc_bytes=MIB,
                           compute_seconds=0.001, run_len_mean=8.0,
                           seed=88)


def test_dead_space_install_is_noop(kernel):
    space = kernel.spawn_space("vm")
    space.mmap(16, at=1000)
    space.teardown()
    assert space.install_anon(1000, content=5) == 0.0
    assert space.pte(1000) is None
    assert kernel.frames.counters.anon == 0


def test_reap_node_does_not_leak_after_teardown():
    profile = big_ws_quick_compute()
    node = FaaSNode(make_kernel(), "reap", [profile], warm_pool_ttl=None)
    report = node.run([Arrival(0.0, "racer", 0),
                       Arrival(0.05, "racer", 0)])
    assert len(report.results) == 2
    # After the run drains (teardowns + stray prefetcher chunks), no
    # sandbox-private memory may remain.
    assert node.kernel.frames.counters.anon == 0


def test_faasnap_node_does_not_leak_after_teardown():
    profile = big_ws_quick_compute()
    node = FaaSNode(make_kernel(), "faasnap", [profile],
                    warm_pool_ttl=None)
    node.run([Arrival(0.0, "racer", 0)])
    assert node.kernel.frames.counters.anon == 0


def test_direct_race_reap(kernel):
    """Force the race: tear the VM down the instant the invocation ends
    and drain the engine; the prefetcher must stop on the dead space."""
    from repro.baselines.reap import REAP
    profile = big_ws_quick_compute()
    approach = REAP(kernel)
    trace = generate_trace(profile, 0)
    kernel.env.run(kernel.env.process(approach.prepare(profile, trace)))

    def body():
        vm = yield from approach.spawn(profile, "vm0")
        yield from vm.invoke(trace)
        vm.teardown()

    kernel.env.run(kernel.env.process(body()))
    kernel.env.run()  # drain any remaining prefetcher work
    assert kernel.frames.counters.anon == 0
