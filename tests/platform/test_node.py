"""FaaS node: cold/warm paths, pooling, cross-function sharing."""

import pytest

from repro.harness.experiment import make_kernel
from repro.platform.node import FaaSNode, NodeReport, RequestResult
from repro.platform.workload import Arrival, poisson_arrivals
from repro.units import MIB
from repro.workloads.profile import FunctionProfile


def make_profile(name, seed):
    return FunctionProfile(name=name, mem_bytes=48 * MIB, ws_bytes=4 * MIB,
                           alloc_bytes=2 * MIB, compute_seconds=0.02,
                           run_len_mean=8.0, seed=seed)


@pytest.fixture
def profiles():
    return [make_profile("alpha", 31), make_profile("beta", 32)]


def make_node(profiles, approach="snapbpf", ttl=None):
    return FaaSNode(make_kernel(), approach, profiles, warm_pool_ttl=ttl)


def test_every_request_served(profiles):
    node = make_node(profiles)
    arrivals = [Arrival(0.0, "alpha", 0), Arrival(0.1, "beta", 0),
                Arrival(0.2, "alpha", 0)]
    report = node.run(arrivals)
    assert len(report.results) == 3
    assert all(r.latency > 0 for r in report.results)
    assert {r.function for r in report.results} == {"alpha", "beta"}


def test_without_pool_everything_is_cold(profiles):
    node = make_node(profiles, ttl=None)
    arrivals = [Arrival(i * 0.2, "alpha", 0) for i in range(4)]
    report = node.run(arrivals)
    assert report.cold_starts == 4
    assert node.pooled_sandboxes("alpha") == 0


def test_warm_pool_reuses_sandboxes(profiles):
    node = make_node(profiles, ttl=60.0)
    arrivals = [Arrival(i * 0.3, "alpha", 0) for i in range(5)]
    report = node.run(arrivals)
    assert report.cold_starts == 1
    assert report.warm_starts == 4
    # Warm starts skip restore entirely.
    assert report.percentile(50, cold=False) < report.mean_latency(cold=True)


def test_pool_expiry_triggers_cold_start(profiles):
    node = make_node(profiles, ttl=0.5)
    arrivals = [Arrival(0.0, "alpha", 0), Arrival(5.0, "alpha", 0)]
    report = node.run(arrivals)
    assert report.cold_starts == 2


def test_pool_is_per_function(profiles):
    node = make_node(profiles, ttl=60.0)
    arrivals = [Arrival(0.0, "alpha", 0), Arrival(0.5, "beta", 0)]
    report = node.run(arrivals)
    assert report.cold_starts == 2  # beta cannot reuse alpha's sandbox


def test_second_cold_start_shares_page_cache():
    """Even without warm pooling, a page-cache approach makes the second
    cold start of a function cheap: the working set is still cached.
    Uses an I/O-bound profile so restore dominates the latency."""
    io_bound = FunctionProfile(
        name="iobound", mem_bytes=64 * MIB, ws_bytes=12 * MIB,
        alloc_bytes=MIB, compute_seconds=0.002, run_len_mean=8.0, seed=77)
    node = make_node([io_bound], ttl=None)
    arrivals = [Arrival(0.0, "iobound", 0), Arrival(2.0, "iobound", 0)]
    report = node.run(arrivals)
    first, second = sorted(report.results, key=lambda r: r.arrival_time)
    assert second.latency < 0.7 * first.latency


def test_memory_timeline_sampled(profiles):
    node = make_node(profiles)
    report = node.run([Arrival(0.0, "alpha", 0)], sample_interval=0.01)
    assert len(report.memory_timeline) >= 2
    assert report.peak_memory_bytes >= max(
        s.bytes_in_use for s in report.memory_timeline)


def test_handle_requires_prepare(profiles):
    node = make_node(profiles)
    with pytest.raises(RuntimeError):
        node.kernel.env.process(node.handle(Arrival(0.0, "alpha", 0)))
        node.kernel.env.run()


def test_mixed_poisson_run_end_to_end(profiles):
    node = make_node(profiles, ttl=2.0)
    arrivals = poisson_arrivals([(profiles[0], 3.0), (profiles[1], 1.0)],
                                duration=4.0, seed=9)
    report = node.run(arrivals)
    assert len(report.results) == len(arrivals)
    assert report.warm_starts > 0
    assert report.percentile(99) >= report.percentile(50)


def test_percentile_nearest_rank_regression():
    """Nearest-rank on 10 samples: p50 is the 5th value, not the 6th."""
    results = [RequestResult(function="alpha", arrival_time=0.0,
                             latency=float(v), cold=True, input_seed=0)
               for v in range(1, 11)]
    report = NodeReport(results=results, memory_timeline=[],
                        peak_memory_bytes=0)
    assert report.percentile(50) == 5.0
    assert report.percentile(95) == 10.0
    assert report.percentile(99) == 10.0
    assert report.percentile(10) == 1.0
    assert report.percentile(0) == 1.0   # clamps below the first rank
    assert report.percentile(100) == 10.0


def test_degradation_counters_in_text_exposition(profiles):
    node = make_node(profiles, ttl=60.0)
    arrivals = [Arrival(i * 0.3, "alpha", 0) for i in range(4)]
    report = node.run(arrivals)
    registry = node.kernel.metrics
    exposition = registry.render()
    # fault_summary() counters surface as node_* metrics alongside the
    # kernel's other series in one Prometheus text exposition.
    assert "node_requests_total 4" in exposition
    assert "node_requests_completed_total 4" in exposition
    assert "node_cold_starts_total 1" in exposition
    assert "node_warm_starts_total 3" in exposition
    assert "node_request_timeouts_total 0" in exposition
    assert "node_request_failures_total 0" in exposition
    summary = report.fault_summary()
    assert registry.get("node_requests_completed_total").value == summary[
        "completed"]
    assert registry.get("node_request_retries_total").value == summary[
        "request_retries"]
