"""Poisson workload generation."""

import pytest

from repro.platform.workload import poisson_arrivals
from repro.units import MIB
from repro.workloads.profile import FunctionProfile


def make_profile(name):
    return FunctionProfile(name=name, mem_bytes=32 * MIB, ws_bytes=2 * MIB,
                           alloc_bytes=MIB, compute_seconds=0.01, seed=5)


def test_sorted_and_bounded():
    mix = [(make_profile("a"), 5.0), (make_profile("b"), 2.0)]
    arrivals = poisson_arrivals(mix, duration=10.0, seed=1)
    times = [a.time for a in arrivals]
    assert times == sorted(times)
    assert all(0 <= t < 10.0 for t in times)


def test_rates_approximately_honored():
    mix = [(make_profile("a"), 8.0), (make_profile("b"), 2.0)]
    arrivals = poisson_arrivals(mix, duration=200.0, seed=3)
    a_count = sum(1 for x in arrivals if x.function == "a")
    b_count = sum(1 for x in arrivals if x.function == "b")
    assert a_count == pytest.approx(1600, rel=0.15)
    assert b_count == pytest.approx(400, rel=0.2)


def test_deterministic_per_seed():
    mix = [(make_profile("a"), 3.0)]
    assert (poisson_arrivals(mix, 20, seed=7)
            == poisson_arrivals(mix, 20, seed=7))
    assert (poisson_arrivals(mix, 20, seed=7)
            != poisson_arrivals(mix, 20, seed=8))


def test_input_seeds():
    mix = [(make_profile("a"), 5.0)]
    identical = poisson_arrivals(mix, 10, seed=1, vary_inputs=False)
    assert {a.input_seed for a in identical} == {0}
    varying = poisson_arrivals(mix, 10, seed=1, vary_inputs=True)
    seeds = [a.input_seed for a in varying]
    assert seeds == list(range(len(seeds)))


def test_validation():
    mix = [(make_profile("a"), 5.0)]
    with pytest.raises(ValueError):
        poisson_arrivals(mix, duration=0)
    with pytest.raises(ValueError):
        poisson_arrivals([(make_profile("a"), 0.0)], duration=1)


def test_empty_mix_rejected():
    with pytest.raises(ValueError, match="at least one function"):
        poisson_arrivals([], duration=1.0)
    # Both error paths stay independent: a bad duration is reported
    # first, an empty mix on its own second.
    with pytest.raises(ValueError, match="duration"):
        poisson_arrivals([], duration=0.0)
