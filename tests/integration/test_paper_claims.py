"""The paper's qualitative claims, verified on scaled-down workloads.

These are the integration tests that would catch a regression breaking
the reproduction: each asserts a *shape* from the evaluation section
(who wins, direction of effects), not absolute numbers.
"""

import pytest

from repro.harness.experiment import ResultCache
from repro.harness.spec import ScenarioSpec
from repro.units import MIB
from repro.workloads.profile import FunctionProfile

CONCURRENCY = 10


@pytest.fixture(scope="module")
def cache():
    return ResultCache()


@pytest.fixture(scope="module")
def bert_like():
    """Large initialized state, little allocation (a scaled-down bert)."""
    return FunctionProfile(
        name="bert-like", mem_bytes=192 * MIB, ws_bytes=56 * MIB,
        alloc_bytes=3 * MIB, compute_seconds=0.05, write_frac=0.04,
        run_len_mean=64.0, seed=23)


@pytest.fixture(scope="module")
def image_like():
    """Allocation-heavy, small working set (a scaled-down image)."""
    return FunctionProfile(
        name="image-like", mem_bytes=96 * MIB, ws_bytes=7 * MIB,
        alloc_bytes=24 * MIB, compute_seconds=0.03, write_frac=0.1,
        run_len_mean=24.0, free_span_pages=12.0, seed=15)


class TestFigure3a:
    """Single instance: SnapBPF matches/outperforms REAP and FaaSnap."""

    def test_snapbpf_beats_reap(self, cache, bert_like):
        snapbpf = cache.get(ScenarioSpec(bert_like, "snapbpf"))
        reap = cache.get(ScenarioSpec(bert_like, "reap"))
        assert snapbpf.mean_e2e < reap.mean_e2e

    def test_snapbpf_matches_faasnap(self, cache, bert_like):
        snapbpf = cache.get(ScenarioSpec(bert_like, "snapbpf"))
        faasnap = cache.get(ScenarioSpec(bert_like, "faasnap"))
        assert snapbpf.mean_e2e < 1.15 * faasnap.mean_e2e

    def test_snapbpf_stores_no_ws_pages_on_disk(self, cache, bert_like):
        snapbpf = cache.get(ScenarioSpec(bert_like, "snapbpf"))
        assert snapbpf.extra["metadata_bytes"] < bert_like.ws_bytes / 100


class TestFigure3b:
    """10 concurrent instances: dedup dominates."""

    def test_snapbpf_beats_everything(self, cache, bert_like):
        snapbpf = cache.get(ScenarioSpec(bert_like, "snapbpf",
                                    n_instances=CONCURRENCY))
        for other in ("linux-nora", "linux-ra", "reap"):
            rival = cache.get(ScenarioSpec(bert_like, other,
                                           n_instances=CONCURRENCY))
            assert snapbpf.mean_e2e < rival.mean_e2e

    def test_reap_latency_collapses_under_concurrency(self, cache,
                                                      bert_like):
        """The paper's headline: large-WS functions are multiple times
        slower on REAP than SnapBPF at 10x concurrency (8x for bert)."""
        reap = cache.get(ScenarioSpec(bert_like, "reap",
                                    n_instances=CONCURRENCY))
        snapbpf = cache.get(ScenarioSpec(bert_like, "snapbpf",
                                    n_instances=CONCURRENCY))
        assert reap.mean_e2e > 3 * snapbpf.mean_e2e

    def test_reap_rereads_working_set_per_instance(self, cache, bert_like):
        reap1 = cache.get(ScenarioSpec(bert_like, "reap",
                                    n_instances=1))
        reap10 = cache.get(ScenarioSpec(bert_like, "reap",
                                    n_instances=CONCURRENCY))
        assert reap10.device_bytes_read > 9 * reap1.device_bytes_read

    def test_snapbpf_reads_working_set_once(self, cache, bert_like):
        snap1 = cache.get(ScenarioSpec(bert_like, "snapbpf",
                                    n_instances=1))
        snap10 = cache.get(ScenarioSpec(bert_like, "snapbpf",
                                    n_instances=CONCURRENCY))
        assert snap10.device_bytes_read <= 1.1 * snap1.device_bytes_read


class TestFigure3c:
    """Memory: uffd approaches cannot deduplicate."""

    def test_memory_reduction_vs_reap(self, cache, bert_like):
        """Paper: up to 6x lower memory for large-WS functions."""
        reap = cache.get(ScenarioSpec(bert_like, "reap",
                                    n_instances=CONCURRENCY))
        snapbpf = cache.get(ScenarioSpec(bert_like, "snapbpf",
                                    n_instances=CONCURRENCY))
        assert reap.peak_memory_bytes > 3 * snapbpf.peak_memory_bytes

    def test_page_cache_approaches_stay_flat(self, cache, bert_like):
        for approach in ("linux-nora", "linux-ra", "snapbpf"):
            one = cache.get(ScenarioSpec(bert_like, approach,
                                         n_instances=1))
            ten = cache.get(ScenarioSpec(bert_like, approach,
                                         n_instances=CONCURRENCY))
            assert ten.peak_memory_bytes < 4 * one.peak_memory_bytes

    def test_reap_memory_scales_with_instances(self, cache, bert_like):
        one = cache.get(ScenarioSpec(bert_like, "reap",
                                    n_instances=1))
        ten = cache.get(ScenarioSpec(bert_like, "reap",
                                    n_instances=CONCURRENCY))
        assert ten.peak_memory_bytes > 8 * one.peak_memory_bytes


class TestFigure4:
    """Breakdown: PV PTE marking helps allocation-heavy functions."""

    def test_pv_alone_speeds_up_alloc_heavy(self, cache, image_like):
        ra = cache.get(ScenarioSpec(image_like, "linux-ra"))
        pv = cache.get(ScenarioSpec(image_like, "pv-ptes"))
        assert pv.mean_e2e < 0.8 * ra.mean_e2e

    def test_pv_alone_barely_helps_model_serving(self, cache, bert_like):
        ra = cache.get(ScenarioSpec(bert_like, "linux-ra"))
        pv = cache.get(ScenarioSpec(bert_like, "pv-ptes"))
        assert pv.mean_e2e > 0.85 * ra.mean_e2e

    def test_full_snapbpf_fastest(self, cache, image_like, bert_like):
        for profile in (image_like, bert_like):
            full = cache.get(ScenarioSpec(profile, "snapbpf"))
            pv = cache.get(ScenarioSpec(profile, "pv-ptes"))
            assert full.mean_e2e < pv.mean_e2e


class TestOverheads:
    """§4: offset loading is ~1-2 ms, <1% of E2E (full-size profiles in
    benchmarks); here: the fraction stays small even on tiny functions."""

    def test_map_load_fraction(self, cache, bert_like):
        result = cache.get(ScenarioSpec(bert_like, "snapbpf"))
        assert result.extra["map_load_seconds"] < 0.02 * result.mean_e2e


class TestKvmCowAnecdote:
    """§4 Memory paragraph: unpatched KVM forcibly write-maps some read
    faults, CoWing shared pages and diminishing deduplication."""

    def test_unpatched_kvm_diminishes_dedup(self, bert_like):
        from repro.core.approach import SnapBPF
        from repro.harness.experiment import run_scenario

        def patched(kernel):
            return SnapBPF(kernel, patched_cow=True)

        def unpatched(kernel):
            approach = SnapBPF(kernel, patched_cow=False)
            return approach

        spec = ScenarioSpec(bert_like, "snapbpf",
                            n_instances=CONCURRENCY)
        good = run_scenario(spec, approach_factory=patched)
        bad = run_scenario(spec, approach_factory=unpatched)
        assert bad.approach == good.approach == "snapbpf"
        assert bad.peak_memory_bytes > 1.5 * good.peak_memory_bytes
