"""Concurrency-specific behaviours: racing faults, shared I/O, program
attach/detach discipline with many sandboxes."""


from repro.core.approach import SnapBPF
from repro.harness.experiment import make_kernel, run_scenario
from repro.harness.spec import ScenarioSpec
from repro.mm.page_cache import HOOK_ADD_TO_PAGE_CACHE
from repro.workloads.trace import generate_trace


def test_racing_faulters_wait_on_one_io(kernel):
    """N processes fault the same cold page: one disk read, everyone
    resumes at its completion."""
    from repro.units import MIB
    file = kernel.filestore.create("f", MIB)
    spaces = [kernel.spawn_space(f"p{i}") for i in range(8)]
    for space in spaces:
        space.mmap(64, file=file, at=1000, ra_pages=0)
    for space in spaces:
        kernel.env.process(space.handle_fault(1000, False))
    kernel.env.run()
    assert kernel.device.stats.requests == 1
    frame = spaces[0].pte(1000).frame
    assert all(space.pte(1000).frame is frame for space in spaces)
    assert frame.mapcount == 8


def test_snapbpf_programs_all_detached_after_concurrent_run(tiny_profile):
    kernel = make_kernel()
    approach = SnapBPF(kernel)
    trace = generate_trace(tiny_profile, 0)
    kernel.env.run(kernel.env.process(approach.prepare(tiny_profile,
                                                       trace)))

    def instance(i):
        vm = yield from approach.spawn(tiny_profile, f"vm{i}")
        yield from vm.invoke(trace)
        return vm

    procs = [kernel.env.process(instance(i)) for i in range(6)]
    kernel.env.run(kernel.env.all_of(procs))
    for p in procs:
        approach.post_invoke(p.value)
    # No prefetch program may linger on the hook.
    assert kernel.kprobes.attached(HOOK_ADD_TO_PAGE_CACHE) == []


def test_concurrent_instances_have_similar_latency(tiny_profile):
    """With shared-cache approaches, instance latencies cluster (no
    instance starves); the max/min spread stays small."""
    result = run_scenario(ScenarioSpec(tiny_profile, "snapbpf",
                                       n_instances=10))
    latencies = result.e2e_latencies
    assert max(latencies) < 1.5 * min(latencies)


def test_scaling_concurrency_monotone_memory(tiny_profile):
    peaks = [run_scenario(ScenarioSpec(tiny_profile, "reap",
                                       n_instances=n)).peak_memory_bytes
             for n in (1, 4, 8)]
    assert peaks[0] < peaks[1] < peaks[2]


def test_mixed_functions_share_host(tiny_profile, alloc_heavy_profile):
    """Two different functions on one kernel: snapshots, programs, and
    page-cache state stay isolated per function."""
    kernel = make_kernel()
    approach_a = SnapBPF(kernel)
    approach_b = SnapBPF(kernel)
    trace_a = generate_trace(tiny_profile, 0)
    trace_b = generate_trace(alloc_heavy_profile, 0)
    kernel.env.run(kernel.env.process(
        approach_a.prepare(tiny_profile, trace_a)))
    kernel.env.run(kernel.env.process(
        approach_b.prepare(alloc_heavy_profile, trace_b)))

    def run(approach, profile, trace, vm_id):
        vm = yield from approach.spawn(profile, vm_id)
        stats = yield from vm.invoke(trace)
        approach.post_invoke(vm)
        return stats

    pa = kernel.env.process(run(approach_a, tiny_profile, trace_a, "a0"))
    pb = kernel.env.process(run(approach_b, alloc_heavy_profile, trace_b,
                                "b0"))
    kernel.env.run(kernel.env.all_of([pa, pb]))
    assert pa.value.pages_touched > 0 and pb.value.pages_touched > 0
    # Each function's groups cover only its own snapshot.
    assert approach_a.snapshot.file.ino != approach_b.snapshot.file.ino
    for group in approach_a.groups:
        assert group.end <= approach_a.snapshot.mem_pages
