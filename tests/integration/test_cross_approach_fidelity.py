"""Cross-approach fidelity: whatever the restore mechanism, the guest
must observe the same memory contents, do the same amount of work, and
leave the guest allocator in the same state.

These tests pin down the property that makes the latency/memory
comparison meaningful at all: every approach computes the same function.
"""

import pytest

from repro.baselines.base import approach_registry
from repro.harness.experiment import make_kernel
from repro.workloads.trace import generate_trace, working_set_pages

APPROACHES = ("linux-nora", "linux-ra", "reap", "faast", "faasnap",
              "snapbpf", "pv-ptes")


def run_and_keep_vm(approach_name, profile):
    kernel = make_kernel()
    approach = approach_registry()[approach_name](kernel)
    trace = generate_trace(profile, 0)
    prep = kernel.env.process(approach.prepare(profile, trace))
    kernel.env.run(prep)

    def body():
        vm = yield from approach.spawn(profile, "vm0")
        stats = yield from vm.invoke(trace)
        return vm, stats

    process = kernel.env.process(body())
    kernel.env.run(process)
    vm, stats = process.value
    return approach, vm, stats, trace


@pytest.mark.parametrize("approach_name", APPROACHES)
def test_guest_sees_snapshot_contents(approach_name, tiny_profile):
    approach, vm, _stats, trace = run_and_keep_vm(approach_name,
                                                  tiny_profile)
    snapshot_file = approach.snapshot.file
    mismatches = []
    for gfn in working_set_pages(trace):
        pte = vm.space.pte(vm.guest_vpn(gfn))
        assert pte is not None, f"{approach_name}: WS page {gfn} unmapped"
        if pte.frame.content != snapshot_file.content(gfn):
            mismatches.append(gfn)
    assert not mismatches, (
        f"{approach_name}: wrong contents at {mismatches[:5]}")


@pytest.mark.parametrize("approach_name", APPROACHES)
def test_same_work_performed(approach_name, tiny_profile):
    _approach, _vm, stats, trace = run_and_keep_vm(approach_name,
                                                   tiny_profile)
    expected_pages = sum(
        op.count for op in trace if hasattr(op, "count"))
    assert stats.pages_touched == expected_pages
    assert stats.compute_seconds == pytest.approx(
        tiny_profile.compute_seconds, rel=0.01)


@pytest.mark.parametrize("approach_name", APPROACHES)
def test_guest_allocator_balanced(approach_name, tiny_profile):
    _approach, vm, _stats, _trace = run_and_keep_vm(approach_name,
                                                    tiny_profile)
    assert vm.guest.pages_allocated == tiny_profile.alloc_pages
    assert vm.guest.pages_freed == tiny_profile.alloc_pages
    assert not vm.guest.live_allocations


@pytest.mark.parametrize("approach_name", APPROACHES)
def test_teardown_leaves_no_private_memory(approach_name, tiny_profile):
    approach, vm, _stats, _trace = run_and_keep_vm(approach_name,
                                                   tiny_profile)
    kernel = approach.kernel
    approach.post_invoke(vm)
    vm.teardown()
    assert kernel.frames.owner_frames(vm.vm_id) == 0
    assert kernel.frames.counters.anon == 0
