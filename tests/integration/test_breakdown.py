"""Latency breakdown accounting invariants."""

import pytest

from repro.harness.experiment import run_scenario
from repro.harness.spec import ScenarioSpec


def test_breakdown_parts_nonnegative(tiny_profile):
    result = run_scenario(ScenarioSpec(tiny_profile, "snapbpf"))
    inv = result.invocations[0]
    for part, seconds in inv.breakdown.items():
        assert seconds >= 0, part


def test_breakdown_sums_to_at_most_e2e(tiny_profile):
    for approach in ("linux-nora", "reap", "snapbpf"):
        inv = run_scenario(ScenarioSpec(tiny_profile,
                                        approach)).invocations[0]
        total = sum(inv.breakdown.values())
        assert total <= inv.e2e_seconds * 1.001, approach


def test_compute_matches_trace_budget(tiny_profile):
    inv = run_scenario(ScenarioSpec(tiny_profile,
                                    "linux-nora")).invocations[0]
    assert inv.compute_seconds == pytest.approx(
        tiny_profile.compute_seconds, rel=0.01)


def test_nora_is_stall_dominated(tiny_profile):
    inv = run_scenario(ScenarioSpec(tiny_profile,
                                    "linux-nora")).invocations[0]
    assert inv.stall_seconds > inv.compute_seconds


def test_prefetchers_reduce_stall(tiny_profile):
    nora = run_scenario(ScenarioSpec(tiny_profile,
                                     "linux-nora")).invocations[0]
    snapbpf = run_scenario(ScenarioSpec(tiny_profile,
                                        "snapbpf")).invocations[0]
    assert snapbpf.stall_seconds < 0.2 * nora.stall_seconds


def test_stall_excludes_charged_cpu(tiny_profile):
    """Stall is wall time inside fault paths; the CPU cost of those
    faults is reported separately and must not be double counted."""
    inv = run_scenario(ScenarioSpec(tiny_profile,
                                    "linux-nora")).invocations[0]
    assert inv.stall_seconds + inv.compute_seconds + inv.overhead_seconds \
        <= inv.e2e_seconds * 1.001
