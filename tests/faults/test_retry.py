"""RetryPolicy: budget and backoff arithmetic."""

import pytest

from repro.faults import RetryPolicy


def test_defaults_retry_transient_twice():
    policy = RetryPolicy()
    assert policy.should_retry(1, transient=True)
    assert policy.should_retry(2, transient=True)
    assert not policy.should_retry(3, transient=True)


def test_persistent_errors_never_retry():
    policy = RetryPolicy()
    assert not policy.should_retry(1, transient=False)


def test_backoff_is_exponential():
    policy = RetryPolicy(backoff_base=1e-3, backoff_multiplier=4.0)
    assert policy.backoff(1) == pytest.approx(1e-3)
    assert policy.backoff(2) == pytest.approx(4e-3)
    assert policy.backoff(3) == pytest.approx(16e-3)


@pytest.mark.parametrize("kwargs", [
    {"max_attempts": 0},
    {"backoff_base": -1.0},
    {"backoff_multiplier": 0.5},
])
def test_rejects_bad_parameters(kwargs):
    with pytest.raises(ValueError):
        RetryPolicy(**kwargs)
