"""Reclaim-stall injection: seeded determinism, forced stalls through an
installed schedule, and config validation."""

import dataclasses
import random

import pytest

from repro.faults import FaultConfig, FaultSchedule, MemFaultInjector
from repro.faults.schedule import FaultStats
from repro.harness.chaos import DEFAULT_CHAOS, run_chaos_scenario
from repro.harness.figures import pressure_ram_bytes
from repro.mm.kernel import Kernel
from repro.units import MIB, PAGE_SIZE


def _stall_pattern(seed: int, n: int = 64) -> list[float]:
    config = FaultConfig(reclaim_stall_rate=0.3)
    injector = MemFaultInjector(random.Random(f"faults:{seed}:mm"),
                                config, FaultStats())
    return [injector.on_wakeup() for _ in range(n)]


def test_stall_stream_is_seeded_and_deterministic():
    assert _stall_pattern(7) == _stall_pattern(7)
    assert _stall_pattern(7) != _stall_pattern(8)
    pattern = _stall_pattern(7)
    assert any(pattern) and not all(pattern)
    assert set(pattern) <= {0.0, FaultConfig().reclaim_stall_seconds}


def test_zero_rate_never_draws_or_stalls():
    rng = random.Random(1)
    before = rng.getstate()
    injector = MemFaultInjector(rng, FaultConfig(), FaultStats())
    assert [injector.on_wakeup() for _ in range(8)] == [0.0] * 8
    assert rng.getstate() == before  # RNG untouched when no rate is set
    assert injector.reclaim_stalls == 0


def test_forced_stall_reaches_kswapd_through_install(env):
    kernel = Kernel(env=env, ram_bytes=64 * PAGE_SIZE)
    kernel.reclaim.enable_watermarks()
    schedule = FaultSchedule(seed=0, config=FaultConfig()).install(kernel)
    assert kernel.reclaim.fault_injector is schedule.mm
    schedule.mm.stall_next()

    file = kernel.filestore.create("f", MIB)
    kernel.page_cache.populate(file, 0, 59)
    env.run()
    kernel.page_cache.populate(file, 100, 1)  # dips below the low mark
    env.run()

    stats = kernel.reclaim.stats
    assert stats.kswapd_wakeups == 1
    assert schedule.mm.reclaim_stalls == 1
    assert stats.stalls == 1
    assert stats.stall_seconds == pytest.approx(
        FaultConfig().reclaim_stall_seconds)


def test_config_validation_and_replace():
    with pytest.raises(ValueError):
        FaultConfig(reclaim_stall_rate=1.5)
    with pytest.raises(ValueError):
        FaultConfig(reclaim_stall_seconds=-1e-6)
    # The CLI layers overrides with dataclasses.replace; validation runs.
    replaced = dataclasses.replace(DEFAULT_CHAOS, reclaim_stall_rate=0.5)
    assert replaced.reclaim_stall_rate == 0.5
    assert replaced.media_error_rate == DEFAULT_CHAOS.media_error_rate
    with pytest.raises(ValueError):
        dataclasses.replace(DEFAULT_CHAOS, reclaim_stall_rate=-0.1)


def test_chaos_surfaces_reclaim_counters_deterministically(tiny_profile):
    config = dataclasses.replace(DEFAULT_CHAOS, reclaim_stall_rate=1.0)
    ram = pressure_ram_bytes(tiny_profile, "snapbpf", 1, 0.0)
    results = [run_chaos_scenario(tiny_profile, "snapbpf", config=config,
                                  fault_seed=3, n_requests=4, ram_bytes=ram)
               for _ in range(2)]
    assert results[0].fingerprint() == results[1].fingerprint()
    counters = results[0].approach_counters
    assert counters.get("reclaim_evictions", 0) > 0
    # The record phase runs clean (schedule installs after prepare), so
    # only the serving-phase wakeups stall — but at rate 1.0 all do.
    wakeups = counters.get("reclaim_kswapd_wakeups", 0)
    assert 0 < counters.get("reclaim_stalls", 0) <= wakeups
