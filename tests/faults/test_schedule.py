"""FaultSchedule: seeding, wiring, and config validation."""

import pytest

from repro.faults import FaultConfig, FaultSchedule
from repro.harness.experiment import make_kernel


@pytest.mark.parametrize("kwargs", [
    {"media_error_rate": -0.1},
    {"media_error_rate": 1.5},
    {"persistent_fraction": 2.0},
    {"torn_page_rate": -1.0},
    {"attach_failure_rate": 7.0},
    {"latency_spike_multiplier": 0.5},
    {"degraded_multiplier": 0.0},
    {"map_capacity_cap": 0},
])
def test_config_rejects_out_of_range(kwargs):
    with pytest.raises(ValueError):
        FaultConfig(**kwargs)


def test_default_config_injects_nothing():
    config = FaultConfig()
    assert config.media_error_rate == 0.0
    assert config.degraded_multiplier == 1.0
    assert config.map_capacity_cap is None


def test_install_wires_every_layer():
    kernel = make_kernel("ssd")
    schedule = FaultSchedule(seed=3)
    assert schedule.install(kernel) is schedule
    assert kernel.faults is schedule
    assert kernel.device.fault_injector is schedule.device
    assert kernel.filestore.fault_injector is schedule.filestore
    assert kernel.kprobes.fault_injector is schedule.ebpf


def test_layer_streams_are_independent():
    """Draining one layer's RNG must not perturb another layer's
    decisions — that's what keeps per-layer streams aligned."""
    config = FaultConfig(media_error_rate=0.3, attach_failure_rate=0.3)
    lone = FaultSchedule(seed=11, config=config)
    mixed = FaultSchedule(seed=11, config=config)
    for _ in range(50):  # interleave draws on the mixed schedule
        mixed.ebpf.rng.random()
    assert ([lone.device.rng.random() for _ in range(20)]
            == [mixed.device.rng.random() for _ in range(20)])


def test_different_seeds_give_different_streams():
    a = FaultSchedule(seed=1)
    b = FaultSchedule(seed=2)
    assert ([a.device.rng.random() for _ in range(8)]
            != [b.device.rng.random() for _ in range(8)])


def test_stats_snapshot_roundtrip():
    schedule = FaultSchedule(seed=0)
    snap = schedule.stats.snapshot()
    assert snap == {"media_errors": 0, "persistent_errors": 0,
                    "latency_spikes": 0, "torn_pages": 0,
                    "attach_failures": 0, "map_squeezes": 0}
    schedule.stats.torn_pages += 3
    assert schedule.stats.snapshot()["torn_pages"] == 3
    assert snap["torn_pages"] == 0  # snapshot is a copy


def test_node_crash_rate_validated():
    with pytest.raises(ValueError, match="node_crash_rate"):
        FaultConfig(node_crash_rate=1.5)
    with pytest.raises(ValueError, match="node_crash_rate"):
        FaultConfig(node_crash_rate=-0.1)


def test_node_injector_draws_and_counts():
    schedule = FaultSchedule(seed=4,
                             config=FaultConfig(node_crash_rate=1.0))
    assert schedule.node.draw_crash() is True
    assert schedule.node.node_crashes == 1
    # The crash counter lives on the injector, NOT in FaultStats, so
    # single-node chaos fingerprints stay byte-identical.
    assert "node_crashes" not in schedule.stats.snapshot()


def test_node_injector_forced_crashes():
    schedule = FaultSchedule(seed=4, config=FaultConfig())
    assert schedule.node.draw_crash() is False  # rate 0 never fires
    schedule.node.crash_next(2)
    assert schedule.node.draw_crash() is True
    assert schedule.node.draw_crash() is True
    assert schedule.node.draw_crash() is False
