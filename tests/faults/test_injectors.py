"""Per-layer injectors: forcing hooks, rate draws, determinism."""

from dataclasses import dataclass

import pytest

from repro.faults import FaultConfig, FaultSchedule
from repro.faults.injectors import PERSISTENT, TRANSIENT
from repro.storage.filestore import TornPageError


@dataclass(frozen=True)
class FakeRequest:
    offset: int
    end: int


@dataclass(frozen=True)
class FakeFile:
    name: str = "snap"


def decisions(schedule, n=64, size=4096):
    return [schedule.device.on_request(
        FakeRequest(offset=i * size, end=(i + 1) * size))
        for i in range(n)]


def test_forced_failures_are_fifo():
    schedule = FaultSchedule(seed=0)
    schedule.device.fail_next(2)
    schedule.device.fail_next(persistent=True)
    kinds = [d.error for d in decisions(schedule, n=5)]
    assert kinds == [TRANSIENT, TRANSIENT, PERSISTENT, None, None]
    assert schedule.stats.media_errors == 2
    assert schedule.stats.persistent_errors == 1


def test_persistent_error_registers_bad_extent():
    schedule = FaultSchedule(seed=0)
    schedule.device.fail_next(persistent=True)
    schedule.device.on_request(FakeRequest(offset=0, end=8192))
    assert schedule.device.bad_extents == [(0, 8192)]
    # Overlapping request fails, disjoint one does not.
    assert schedule.device.on_request(
        FakeRequest(offset=4096, end=16384)).error == PERSISTENT
    assert schedule.device.on_request(
        FakeRequest(offset=8192, end=16384)).error is None


def test_device_rate_draws_are_seed_deterministic():
    config = FaultConfig(media_error_rate=0.2, persistent_fraction=0.3,
                         latency_spike_rate=0.2)
    first = decisions(FaultSchedule(seed=9, config=config))
    again = decisions(FaultSchedule(seed=9, config=config))
    other = decisions(FaultSchedule(seed=10, config=config))
    assert first == again
    assert first != other
    assert any(d.error is not None for d in first)
    assert any(d.spiked for d in first)


def test_degraded_multiplier_applies_to_every_request():
    config = FaultConfig(degraded_multiplier=2.5)
    for decision in decisions(FaultSchedule(seed=0, config=config), n=8):
        assert decision.multiplier == 2.5
        assert decision.error is None


def test_spike_multiplies_on_top_of_degraded():
    config = FaultConfig(degraded_multiplier=2.0, latency_spike_rate=1.0,
                         latency_spike_multiplier=8.0)
    decision = decisions(FaultSchedule(seed=0, config=config), n=1)[0]
    assert decision.spiked
    assert decision.multiplier == pytest.approx(16.0)


def test_torn_page_forcing_and_rates():
    schedule = FaultSchedule(seed=0)
    assert schedule.filestore.on_read(FakeFile(), 0, 4) is None
    schedule.filestore.tear_next()
    error = schedule.filestore.on_read(FakeFile(), 16, 4)
    assert isinstance(error, TornPageError)
    assert error.transient
    assert 16 <= error.page < 20
    assert schedule.stats.torn_pages == 1
    always = FaultSchedule(seed=0, config=FaultConfig(torn_page_rate=1.0))
    assert isinstance(always.filestore.on_read(FakeFile(), 0, 1),
                      TornPageError)


def test_attach_failures_forced_and_rated():
    from repro.ebpf.kprobe import AttachError

    schedule = FaultSchedule(seed=0)
    schedule.ebpf.on_attach("hook", object())  # no-op at zero rate
    schedule.ebpf.fail_next_attach()
    with pytest.raises(AttachError):
        schedule.ebpf.on_attach("hook", object())
    assert schedule.stats.attach_failures == 1
    always = FaultSchedule(
        seed=0, config=FaultConfig(attach_failure_rate=1.0))
    with pytest.raises(AttachError):
        always.ebpf.on_attach("hook", object())


def test_map_capacity_clamps_and_counts():
    schedule = FaultSchedule(
        seed=0, config=FaultConfig(map_capacity_cap=128))
    assert schedule.ebpf.map_capacity(64) == 64
    assert schedule.ebpf.map_capacity(1 << 20) == 128
    assert schedule.stats.map_squeezes == 1
    unlimited = FaultSchedule(seed=0)
    assert unlimited.ebpf.map_capacity(1 << 20) == 1 << 20
    assert unlimited.stats.map_squeezes == 0
