"""SweepFaultInjector: deterministic runner-level chaos planning."""

import pickle

import pytest

from repro.faults import SweepFaultInjector, WorkerFault


def test_plans_are_pure_functions_of_seed_key_attempt():
    a = SweepFaultInjector(seed=7, kill_rate=0.5, hang_rate=0.5)
    b = SweepFaultInjector(seed=7, kill_rate=0.5, hang_rate=0.5)
    keys = [f"key{i}" for i in range(32)]
    assert [a.plan(k, 1) for k in keys] == [b.plan(k, 1) for k in keys]
    # Order-independent: replaying one key later gives the same answer.
    c = SweepFaultInjector(seed=7, kill_rate=0.5, hang_rate=0.5)
    for k in reversed(keys):
        assert c.plan(k, 1) == b.plan(k, 1)


def test_seed_changes_the_plan():
    keys = [f"key{i}" for i in range(64)]
    a = [SweepFaultInjector(seed=1, kill_rate=0.5).plan(k, 1) for k in keys]
    b = [SweepFaultInjector(seed=2, kill_rate=0.5).plan(k, 1) for k in keys]
    assert a != b


def test_rate_faults_fire_on_first_attempt_only():
    """Retries run clean, so a faulted sweep always terminates."""
    inj = SweepFaultInjector(kill_rate=1.0)
    assert inj.plan("k", 1).kill
    assert inj.plan("k", 2) is None
    assert inj.plan("k", 3) is None


def test_every_attempt_mode():
    inj = SweepFaultInjector(kill_rate=1.0, first_attempt_only=False)
    assert inj.plan("k", 1).kill and inj.plan("k", 2).kill


def test_kill_takes_priority_over_hang():
    inj = SweepFaultInjector(kill_rate=1.0, hang_rate=1.0)
    fault = inj.plan("k", 1)
    assert fault.kill and fault.hang_seconds == 0.0


def test_forcing_hooks_fifo_and_counters():
    inj = SweepFaultInjector(hang_seconds=5.0)
    inj.kill_next()
    inj.hang_next()
    assert inj.plan("a", 4).kill
    fault = inj.plan("b", 4)
    assert not fault.kill and fault.hang_seconds == 5.0
    assert inj.plan("c", 4) is None
    assert inj.worker_kills == 1 and inj.hangs == 1


def test_store_tears_once_per_key():
    inj = SweepFaultInjector(tear_rate=1.0)
    assert inj.on_store_write("k")
    assert not inj.on_store_write("k"), "re-execution's write survives"
    assert inj.on_store_write("other")
    assert inj.store_tears == 2


def test_forced_tear_bypasses_rate():
    inj = SweepFaultInjector()
    inj.tear_next()
    assert inj.on_store_write("k")
    assert not inj.on_store_write("k2")
    assert inj.store_tears == 1


def test_rates_and_hang_validated():
    with pytest.raises(ValueError):
        SweepFaultInjector(kill_rate=1.5)
    with pytest.raises(ValueError):
        SweepFaultInjector(tear_rate=-0.1)
    with pytest.raises(ValueError):
        SweepFaultInjector(hang_seconds=-1)


def test_worker_fault_crosses_process_boundary():
    """Faults ride inside pool task payloads, so they must pickle."""
    fault = WorkerFault(kill=True, hang_seconds=2.0)
    assert pickle.loads(pickle.dumps(fault)) == fault
