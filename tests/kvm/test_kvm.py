"""KVM nested paging: EPT, PV mirror faults, the CoW write-mapping bug."""

import pytest

from repro.guest.kernel import mirror_gfn
from repro.kvm.kvm import KVM
from repro.units import MIB
from tests.conftest import drive


@pytest.fixture
def file(kernel):
    return kernel.filestore.create("snap", 4 * MIB)


def make_kvm(kernel, file, pv=False, patched=True, force=30):
    space = kernel.spawn_space("vm0")
    space.mmap(file.size_pages, file=file, at=1 << 20, ra_pages=0)
    return KVM(space, guest_base_vpn=1 << 20, mem_pages=file.size_pages,
               pv_enabled=pv, patched_cow=patched,
               force_write_percent=force, vm_seed=7)


def access(kernel, kvm, gfn, write=False):
    return drive(kernel.env, kvm.access(gfn, write))


class TestEpt:
    def test_miss_then_hit(self, kernel, file):
        kvm = make_kvm(kernel, file)
        cost1 = access(kernel, kvm, 10)
        assert cost1 > 0
        assert kvm.stats_nested_faults == 1
        cost2 = access(kernel, kvm, 10)
        assert cost2 == 0.0
        assert kvm.stats_nested_faults == 1

    def test_read_fault_maps_readonly_under_patched_kvm(self, kernel, file):
        kvm = make_kvm(kernel, file, patched=True, force=100)
        access(kernel, kvm, 10)
        assert not kvm.ept[10].writable
        # The backing host page is the shared cache frame.
        assert kvm.space.pte(kvm.host_vpn(10)).frame.kind == "file"

    def test_write_after_read_upgrades_via_cow(self, kernel, file):
        kvm = make_kvm(kernel, file)
        access(kernel, kvm, 10)
        access(kernel, kvm, 10, write=True)
        assert kvm.ept[10].writable
        pte = kvm.space.pte(kvm.host_vpn(10))
        assert pte.frame.kind == "anon"
        assert pte.frame.content == file.content(10)

    def test_gfn_out_of_range(self, kernel, file):
        kvm = make_kvm(kernel, file)
        with pytest.raises(ValueError):
            access(kernel, kvm, file.size_pages)


class TestCowBug:
    def test_unpatched_forces_some_read_faults_to_write(self, kernel, file):
        kvm = make_kvm(kernel, file, patched=False, force=100)
        access(kernel, kvm, 10)  # read fault, forcibly write-mapped
        assert kvm.stats_forced_writes == 1
        pte = kvm.space.pte(kvm.host_vpn(10))
        assert pte.frame.kind == "anon"  # CoW'd: dedup destroyed

    def test_patched_never_forces(self, kernel, file):
        kvm = make_kvm(kernel, file, patched=True, force=100)
        for gfn in range(50):
            access(kernel, kvm, gfn)
        assert kvm.stats_forced_writes == 0
        assert kernel.frames.counters.anon == 0

    def test_force_probability_is_partial(self, kernel, file):
        kvm = make_kvm(kernel, file, patched=False, force=30)
        for gfn in range(200):
            access(kernel, kvm, gfn)
        assert 0 < kvm.stats_forced_writes < 200

    def test_force_deterministic_per_seed(self, kernel, file):
        kvm1 = make_kvm(kernel, file, patched=False, force=30)
        for gfn in range(100):
            access(kernel, kvm1, gfn)
        kernel2_forced = kvm1.stats_forced_writes
        kvm2 = make_kvm(kernel, file, patched=False, force=30)
        for gfn in range(100):
            access(kernel, kvm2, gfn)
        assert kvm2.stats_forced_writes == kernel2_forced


class TestPvFault:
    def test_mirrored_fault_serves_anonymous_memory(self, kernel, file):
        kvm = make_kvm(kernel, file, pv=True)
        gfn = mirror_gfn(100)
        access(kernel, kvm, gfn, write=True)
        assert kvm.stats_pv_faults == 1
        pte = kvm.space.pte(kvm.host_vpn(100))
        assert pte.frame.kind == "anon" and pte.frame.content == 0
        # No snapshot I/O happened.
        assert kernel.device.stats.requests == 0

    def test_both_aliases_mapped(self, kernel, file):
        """Paper Fig. 2 step 6: the anonymous page is mapped under the
        mirrored AND the original gPFN."""
        kvm = make_kvm(kernel, file, pv=True)
        access(kernel, kvm, mirror_gfn(100), write=True)
        assert kvm.ept[mirror_gfn(100)].writable
        assert kvm.ept[100].writable
        # A subsequent access via the original gPFN is an EPT hit.
        assert access(kernel, kvm, 100, write=True) == 0.0

    def test_pv_replaces_snapshot_backing(self, kernel, file):
        kvm = make_kvm(kernel, file, pv=True)
        access(kernel, kvm, 100)  # fetch from snapshot first
        assert kvm.space.pte(kvm.host_vpn(100)).frame.kind == "file"
        access(kernel, kvm, mirror_gfn(100), write=True)
        assert kvm.space.pte(kvm.host_vpn(100)).frame.kind == "anon"

    def test_mirrored_without_pv_support_rejected(self, kernel, file):
        kvm = make_kvm(kernel, file, pv=False)
        with pytest.raises(RuntimeError):
            access(kernel, kvm, mirror_gfn(100), write=True)

    def test_pv_reuse_skips_allocation(self, kernel, file):
        kvm = make_kvm(kernel, file, pv=True)
        access(kernel, kvm, mirror_gfn(100), write=True)
        anon_before = kernel.frames.counters.anon
        kvm.ept.pop(mirror_gfn(100))  # simulate EPT eviction
        access(kernel, kvm, mirror_gfn(100), write=True)
        assert kernel.frames.counters.anon == anon_before
