"""vCPU trace replay."""

import pytest

from repro.workloads.trace import Alloc, Compute, Free, TouchRun
from repro.vmm.microvm import GUEST_BASE_VPN, MicroVM
from repro.vmm.snapshot import build_snapshot


def spawn_plain_vm(kernel, profile, pv=False):
    snapshot = build_snapshot(kernel, profile)
    vm = MicroVM(kernel, snapshot, pv_marking=pv)
    vm.space.mmap(snapshot.mem_pages, file=snapshot.file,
                  at=GUEST_BASE_VPN, ra_pages=0)
    return vm


def test_compute_advances_clock(kernel, tiny_profile):
    vm = spawn_plain_vm(kernel, tiny_profile)
    p = kernel.env.process(vm.vcpu.run_trace([Compute(0.5)]))
    kernel.env.run(p)
    assert kernel.env.now == pytest.approx(0.5)


def test_touch_run_faults_pages(kernel, tiny_profile):
    vm = spawn_plain_vm(kernel, tiny_profile)
    trace = [TouchRun(start=0, count=16, write=False, per_page_compute=0)]
    p = kernel.env.process(vm.vcpu.run_trace(trace))
    kernel.env.run(p)
    assert vm.vcpu.stats.pages_touched == 16
    assert vm.kvm.stats_nested_faults == 16
    assert all(vm.kvm.ept.get(g) for g in range(16))


def test_repeat_touch_is_ept_hit(kernel, tiny_profile):
    vm = spawn_plain_vm(kernel, tiny_profile)
    trace = [TouchRun(0, 16, False, 0), TouchRun(0, 16, False, 0)]
    p = kernel.env.process(vm.vcpu.run_trace(trace))
    kernel.env.run(p)
    assert vm.kvm.stats_nested_faults == 16


def test_alloc_and_free_cycle(kernel, tiny_profile):
    vm = spawn_plain_vm(kernel, tiny_profile, pv=True)
    trace = [Alloc("a", 32, 0), Free("a")]
    p = kernel.env.process(vm.vcpu.run_trace(trace))
    kernel.env.run(p)
    assert vm.vcpu.stats.pages_allocated == 32
    assert vm.guest.pages_freed == 32
    assert vm.kvm.stats_pv_faults > 0


def test_unknown_op_rejected(kernel, tiny_profile):
    vm = spawn_plain_vm(kernel, tiny_profile)
    p = kernel.env.process(vm.vcpu.run_trace(["bogus"]))
    with pytest.raises(TypeError):
        kernel.env.run(p)


def test_compute_seconds_accounted(kernel, tiny_profile):
    vm = spawn_plain_vm(kernel, tiny_profile)
    trace = [TouchRun(0, 10, False, 1e-3), Compute(0.1)]
    p = kernel.env.process(vm.vcpu.run_trace(trace))
    kernel.env.run(p)
    assert vm.vcpu.stats.compute_seconds == pytest.approx(0.11)
