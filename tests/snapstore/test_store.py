"""SnapStore tier state machine: placement, staging, eviction, faults."""

from types import SimpleNamespace

import pytest

import random

from repro.faults import FaultConfig, RemoteFetchInjector
from repro.faults.schedule import FaultStats
from repro.metrics.registry import MetricsRegistry
from repro.sim import Environment, Event
from repro.snapstore import ChunkRegistry, SnapStore, SnapStoreSpec
from repro.storage.device import BlockIOError
from repro.units import MIB
from repro.workloads.profile import FunctionProfile


def make_profile(name="alpha", seed=7, **overrides):
    fields = dict(name=name, mem_bytes=8 * MIB, ws_bytes=2 * MIB,
                  alloc_bytes=1 * MIB, compute_seconds=0.01,
                  run_len_mean=8.0, seed=seed)
    fields.update(overrides)
    return FunctionProfile(**fields)


def make_store(env, **spec_overrides):
    spec = SnapStoreSpec(chunk_pages=16, **spec_overrides)
    return SnapStore(env, spec, metrics=MetricsRegistry())


def record_one(store, name="alpha", ino=1):
    file = SimpleNamespace(ino=ino, name=name)
    manifest = store.record(file, make_profile(name))
    return file, manifest


def run_stage(env, store, plan, prio=0):
    def driver():
        yield from store.stage(plan, prio)

    proc = env.process(driver())
    env.run(proc)
    return proc


class TestPlacement:
    def test_record_marks_chunks_local(self):
        env = Environment()
        store = make_store(env)
        file, manifest = record_one(store)
        assert store.local_bytes == manifest.logical_bytes
        # All-local reads plan to None: the flat-file identity path.
        assert store.plan_read(file, 0, manifest.size_pages) is None

    def test_remote_placement_clears_the_local_tier(self):
        env = Environment()
        store = make_store(env, placement="remote")
        file, manifest = record_one(store)
        store.apply_placement()
        assert store.local_bytes == 0
        plan = store.plan_read(file, 0, manifest.size_pages)
        assert len(plan) == len(manifest.cids)

    def test_base_local_keeps_only_shared_chunks(self):
        env = Environment()
        store = make_store(env, placement="base-local")
        # Two distinct snapshots of the same runtime: base chunks shared.
        file_a, manifest_a = record_one(store, "alpha", ino=1)
        file_b, manifest_b = record_one(store, "beta", ino=2)
        store.apply_placement()
        shared = set(manifest_a.cids) & set(manifest_b.cids)
        assert shared
        resident = set(store._local)
        assert resident == shared
        # A read over the private extent must stage something.
        assert store.plan_read(file_a, 0, manifest_a.size_pages)

    def test_apply_placement_is_idempotent(self):
        env = Environment()
        store = make_store(env, placement="local")
        file, manifest = record_one(store)
        store.apply_placement()
        before = dict(store._local)
        store.apply_placement()
        assert store._local == before
        assert store.local_bytes == manifest.logical_bytes


class TestStaging:
    def test_staging_promotes_and_charges_the_remote_device(self):
        env = Environment()
        store = make_store(env, placement="remote")
        file, manifest = record_one(store)
        store.apply_placement()
        plan = store.plan_read(file, 0, manifest.size_pages)
        run_stage(env, store, plan)
        assert env.now > 0.0  # remote RTT + bandwidth were charged
        assert store.remote.stats.requests >= 1
        assert store.plan_read(file, 0, manifest.size_pages) is None
        extras = store.result_extras()
        assert extras["snapstore_staged_chunks"] == len(manifest.cids)
        assert extras["snapstore_remote_fetch_bytes"] >= (
            manifest.logical_bytes)

    def test_adjacent_chunks_coalesce_into_one_request(self):
        env = Environment()
        store = make_store(env, placement="remote")
        file, manifest = record_one(store)
        store.apply_placement()
        plan = store.plan_read(file, 0, manifest.size_pages)
        run_stage(env, store, plan)
        # Contiguously recorded chunks are offset-adjacent: one request.
        assert store.remote.stats.requests == 1

    def test_inflight_fetches_are_awaited_not_duplicated(self):
        env = Environment()
        store = make_store(env, placement="remote")
        file, manifest = record_one(store)
        store.apply_placement()
        plan = store.plan_read(file, 0, manifest.size_pages)

        def driver():
            yield from store.stage(plan)

        first = env.process(driver())
        second = env.process(driver())
        env.run(env.all_of([first, second]))
        assert store.remote.stats.requests == 1
        assert store.result_extras()["snapstore_staged_chunks"] == len(
            manifest.cids)

    def test_partial_reads_stage_only_covered_chunks(self):
        env = Environment()
        store = make_store(env, placement="remote")
        file, manifest = record_one(store)
        store.apply_placement()
        plan = store.plan_read(file, 0, store.spec.chunk_pages)
        assert len(plan) == 1
        run_stage(env, store, plan)
        assert len(store._local) == 1


class TestEviction:
    def test_capacity_demotes_private_before_shared(self):
        env = Environment()
        registry = ChunkRegistry()
        spec = SnapStoreSpec(chunk_pages=16, hdd_tier=True,
                             local_capacity_bytes=4 * MIB)
        store = SnapStore(env, spec, chunks=registry,
                          metrics=MetricsRegistry())
        _, manifest_a = record_one(store, "alpha", ino=1)
        _, manifest_b = record_one(store, "beta", ino=2)
        shared = set(manifest_a.cids) & set(manifest_b.cids)
        assert store.local_bytes <= 4 * MIB
        demoted = set(store._on_hdd)
        assert demoted  # capacity forced spills
        # Shared base chunks are spared while private victims remain.
        private_resident = [c for c in store._local if c not in shared]
        shared_demoted = [c for c in demoted if c in shared]
        if private_resident:
            assert not shared_demoted
        # Demotion is an event count: a chunk re-promoted by a later
        # record can demote again, so events >= unique demoted chunks.
        assert store.result_extras()["snapstore_demotions"] >= len(demoted)

    def test_demoted_chunks_stage_from_the_hdd_tier(self):
        env = Environment()
        spec = SnapStoreSpec(chunk_pages=16, hdd_tier=True,
                             local_capacity_bytes=2 * MIB)
        store = SnapStore(env, spec, metrics=MetricsRegistry())
        file, manifest = record_one(store)
        assert store._on_hdd
        plan = store.plan_read(file, 0, manifest.size_pages)
        run_stage(env, store, plan)
        assert store.remote.stats.requests == 0  # spindle, not network
        assert store.metrics.get(
            "snapstore_chunk_hits_hdd_total").value > 0


class TestGC:
    def test_release_reclaims_only_unreferenced_chunks(self):
        env = Environment()
        store = make_store(env)
        _, manifest_a = record_one(store, "alpha", ino=1)
        _, manifest_b = record_one(store, "beta", ino=2)
        shared = set(manifest_a.cids) & set(manifest_b.cids)
        reclaimed = store.release(1)
        assert reclaimed > 0
        for cid in manifest_b.cids:
            assert cid in store.chunks  # live references survive
        assert all(cid in store._local for cid in manifest_b.cids)
        assert store.release_all() > 0
        assert len(store.chunks) == 0
        assert store.local_bytes == 0

    def test_release_unknown_ino_raises(self):
        env = Environment()
        store = make_store(env)
        with pytest.raises(FileNotFoundError):
            store.release(99)

    def test_duplicate_record_raises(self):
        env = Environment()
        store = make_store(env)
        file, _ = record_one(store)
        with pytest.raises(FileExistsError):
            store.record(file, make_profile())


def make_injector(**config_overrides):
    config = FaultConfig(**config_overrides)
    return RemoteFetchInjector(random.Random(1), config, FaultStats())


class TestFaults:
    def test_forced_error_retries_then_succeeds(self):
        env = Environment()
        store = make_store(env, placement="remote")
        store.fault_injector = make_injector()
        store.fault_injector.fail_next(1)
        file, manifest = record_one(store)
        store.apply_placement()
        plan = store.plan_read(file, 0, manifest.size_pages)
        run_stage(env, store, plan)
        extras = store.result_extras()
        assert extras["snapstore_fetch_retries"] == 1
        assert store.plan_read(file, 0, manifest.size_pages) is None

    def test_exhausted_retries_fail_the_staged_read(self):
        env = Environment()
        store = make_store(env, placement="remote")
        store.fault_injector = make_injector()
        store.fault_injector.fail_next(10)
        file, manifest = record_one(store)
        store.apply_placement()
        plan = store.plan_read(file, 0, manifest.size_pages)
        with pytest.raises(BlockIOError):
            run_stage(env, store, plan)
        assert not store._inflight  # waiters were failed, not leaked

    def test_remote_exhaustion_degrades_to_the_hdd_tier(self):
        env = Environment()
        spec = SnapStoreSpec(chunk_pages=16, placement="remote",
                             hdd_tier=True)
        store = SnapStore(env, spec, metrics=MetricsRegistry())
        store.fault_injector = make_injector()
        file, manifest = record_one(store)
        store.apply_placement()
        cid = manifest.cids[0]
        nbytes = manifest.chunk_nbytes(0)
        # The chunk landed on the spindle after the remote run was
        # dispatched (demotion race): the exhausted remote fetch must
        # fall back to the surviving tier instead of failing.
        store._on_hdd[cid] = nbytes
        store.hdd_bytes += nbytes
        event = Event(env)
        event._defused = True
        store._inflight[cid] = event
        store.fault_injector.fail_next(10)
        offset = store.chunks.get(cid).remote_offset
        env.run(env.process(store._fetch(
            "remote", [(offset, nbytes, cid, event)], 0)))
        assert cid in store._local
        extras = store.result_extras()
        assert extras["snapstore_degraded_fetches"] == 1
        assert extras["snapstore_fetch_retries"] == 2

    def test_stall_charges_simulated_time(self):
        env = Environment()
        store = make_store(env, placement="remote")
        store.fault_injector = make_injector(
            remote_fetch_stall_seconds=5e-3)
        store.fault_injector.stall_next(1)
        file, manifest = record_one(store)
        store.apply_placement()

        clean_env = Environment()
        clean = make_store(clean_env, placement="remote")
        clean_file, _ = record_one(clean)
        clean.apply_placement()

        run_stage(env, store, store.plan_read(file, 0, 16))
        run_stage(clean_env, clean, clean.plan_read(clean_file, 0, 16))
        assert env.now == pytest.approx(clean_env.now + 5e-3)
