"""Chunking, manifests, and the refcounted registry's GC invariants."""

import pytest

from repro.snapstore import (
    ChunkRegistry,
    build_derived_manifest,
    build_manifest,
    private_extent,
    runtime_id,
)
from repro.units import MIB, PAGE_SIZE
from repro.workloads.profile import FunctionProfile

CHUNK_PAGES = 16


def make_profile(name="alpha", seed=7, **overrides):
    fields = dict(name=name, mem_bytes=8 * MIB, ws_bytes=2 * MIB,
                  alloc_bytes=1 * MIB, compute_seconds=0.01,
                  run_len_mean=8.0, seed=seed)
    fields.update(overrides)
    return FunctionProfile(**fields)


def register(registry, manifest):
    for index, cid in enumerate(manifest.cids):
        registry.add_ref(cid, manifest.chunk_nbytes(index),
                         owner=manifest.name)


class TestIdentity:
    def test_runtime_id_ignores_name_and_seed(self):
        base = make_profile()
        clone = make_profile(name="alpha-3", seed=99)
        other = make_profile(mem_bytes=16 * MIB)
        assert runtime_id(base) == runtime_id(clone)
        assert runtime_id(base) != runtime_id(other)

    def test_private_extent_is_deterministic_and_in_bounds(self):
        profile = make_profile()
        start, end = private_extent(profile)
        assert (start, end) == private_extent(make_profile())
        assert 0 <= start < end <= profile.mem_pages
        assert end - start == profile.ws_pages

    def test_rerecord_reproduces_chunk_ids_exactly(self):
        a = build_manifest(1, "alpha", make_profile(), CHUNK_PAGES)
        b = build_manifest(2, "alpha", make_profile(), CHUNK_PAGES)
        assert a.cids == b.cids
        assert a.ino != b.ino

    def test_clones_share_base_chunks_but_not_private_ones(self):
        a = build_manifest(1, "alpha", make_profile("alpha"), CHUNK_PAGES)
        b = build_manifest(2, "beta", make_profile("beta"), CHUNK_PAGES)
        shared = set(a.cids) & set(b.cids)
        assert shared  # the runtime base image dedups
        assert set(a.cids) != set(b.cids)  # private extents differ

    def test_guest_zeroed_changes_free_span_chunks_only(self):
        plain = build_manifest(1, "alpha", make_profile(), CHUNK_PAGES)
        zeroed = build_manifest(2, "alpha", make_profile(), CHUNK_PAGES,
                                guest_zeroed=True)
        assert plain.cids != zeroed.cids
        assert len(plain.cids) == len(zeroed.cids)


class TestManifest:
    def test_covering_chunks(self):
        manifest = build_manifest(1, "alpha", make_profile(), CHUNK_PAGES)
        assert list(manifest.covering_chunks(0, 1)) == [0]
        assert list(manifest.covering_chunks(0, CHUNK_PAGES + 1)) == [0, 1]
        assert list(manifest.covering_chunks(CHUNK_PAGES, 1)) == [1]
        last = len(manifest.cids) - 1
        assert list(manifest.covering_chunks(
            manifest.size_pages - 1, 1)) == [last]

    def test_covering_chunks_bounds(self):
        manifest = build_manifest(1, "alpha", make_profile(), CHUNK_PAGES)
        with pytest.raises(ValueError):
            manifest.covering_chunks(0, 0)
        with pytest.raises(IndexError):
            manifest.covering_chunks(manifest.size_pages, 1)
        with pytest.raises(IndexError):
            manifest.covering_chunks(-1, 2)

    def test_partial_last_chunk_nbytes(self):
        size = 5 * PAGE_SIZE  # not a multiple of 4-page chunks
        manifest = build_derived_manifest(1, "alpha.ws", size, 4)
        assert len(manifest.cids) == 2
        assert manifest.chunk_nbytes(0) == 4 * PAGE_SIZE
        assert manifest.chunk_nbytes(1) == PAGE_SIZE
        with pytest.raises(IndexError):
            manifest.chunk_nbytes(2)

    def test_derived_manifests_do_not_collide_across_names(self):
        a = build_derived_manifest(1, "alpha.ws", 4 * PAGE_SIZE, 4)
        b = build_derived_manifest(2, "beta.ws", 4 * PAGE_SIZE, 4)
        again = build_derived_manifest(3, "alpha.ws", 4 * PAGE_SIZE, 4)
        assert a.cids != b.cids
        assert a.cids == again.cids


class TestRegistryGC:
    def test_rerecord_identical_snapshot_allocates_zero_new_chunks(self):
        registry = ChunkRegistry()
        first = build_manifest(1, "alpha", make_profile(), CHUNK_PAGES)
        register(registry, first)
        unique_before = len(registry)
        bytes_before = registry.unique_bytes
        # The same snapshot recorded again (another node, same clone).
        register(registry, build_manifest(2, "alpha", make_profile(),
                                          CHUNK_PAGES))
        assert len(registry) == unique_before
        assert registry.unique_bytes == bytes_before
        assert registry.dedup_hits == len(first.cids)
        assert registry.logical_bytes == 2 * first.logical_bytes

    def test_gc_never_frees_a_live_referenced_chunk(self):
        registry = ChunkRegistry()
        alpha = build_manifest(1, "alpha", make_profile("alpha"),
                               CHUNK_PAGES)
        beta = build_manifest(2, "beta", make_profile("beta"), CHUNK_PAGES)
        register(registry, alpha)
        register(registry, beta)
        shared = set(alpha.cids) & set(beta.cids)
        assert shared

        for cid in alpha.cids:
            registry.release(cid, owner="alpha")
        # Every chunk beta references must survive alpha's deletion.
        for cid in beta.cids:
            assert cid in registry
        # Only alpha's private chunks were reclaimed.
        assert registry.gc_reclaimed_bytes > 0
        assert registry.logical_bytes == beta.logical_bytes

        for cid in beta.cids:
            registry.release(cid, owner="beta")
        assert len(registry) == 0
        assert registry.unique_bytes == 0
        assert registry.logical_bytes == 0

    def test_same_name_refcounts_before_freeing(self):
        registry = ChunkRegistry()
        manifest = build_manifest(1, "alpha", make_profile(), CHUNK_PAGES)
        register(registry, manifest)
        register(registry, build_manifest(2, "alpha", make_profile(),
                                          CHUNK_PAGES))
        cid = manifest.cids[0]
        assert registry.get(cid).refs == 2
        assert not registry.get(cid).shared  # one distinct name
        assert registry.release(cid, owner="alpha") is False
        assert registry.release(cid, owner="alpha") is True

    def test_over_release_raises(self):
        registry = ChunkRegistry()
        manifest = build_manifest(1, "alpha", make_profile(), CHUNK_PAGES)
        register(registry, manifest)
        cid = manifest.cids[0]
        with pytest.raises(KeyError):
            registry.release(cid, owner="ghost")
        registry.release(cid, owner="alpha")
        with pytest.raises(KeyError):
            registry.release(cid, owner="alpha")

    def test_dedup_factor(self):
        registry = ChunkRegistry()
        assert registry.dedup_factor == 1.0
        register(registry, build_manifest(1, "alpha", make_profile(),
                                          CHUNK_PAGES))
        assert registry.dedup_factor == 1.0
        register(registry, build_manifest(2, "alpha", make_profile(),
                                          CHUNK_PAGES))
        assert registry.dedup_factor == 2.0

    def test_empty_registry_is_falsy_but_usable(self):
        # SnapStore must accept a shared-but-empty registry; the `or`
        # idiom would silently replace it (regression guard).
        registry = ChunkRegistry()
        assert len(registry) == 0
        assert not registry
        from repro.sim import Environment
        from repro.snapstore import SnapStore, SnapStoreSpec
        store = SnapStore(Environment(), SnapStoreSpec(), chunks=registry)
        assert store.chunks is registry
