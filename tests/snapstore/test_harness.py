"""Snapstore through the harness: identity, spec schema, determinism.

The acceptance contract: the default (all-local, unbounded) placement
is *byte-identical* to flat snapshot files — same events, same RNG
stream, same results — while colder placements must cost measurably
more, and every snapstore cell must round-trip exactly through the
content-addressed result store at any job count.
"""

import pytest

from repro.cluster import ClusterSpec
from repro.harness.experiment import ResultCache, run_scenario
from repro.harness.spec import SCHEMA_VERSION, ScenarioSpec
from repro.harness.sweep import ResultStore, SweepRunner
from repro.metrics.results import ScenarioResult
from repro.snapstore import SnapStoreSpec
from repro.units import MIB
from repro.workloads.profile import FunctionProfile


def tiny_profile(name="tiny", seed=31):
    return FunctionProfile(name=name, mem_bytes=48 * MIB, ws_bytes=4 * MIB,
                           alloc_bytes=2 * MIB, compute_seconds=0.02,
                           run_len_mean=8.0, seed=seed)


def spec_with(snapstore, approach="snapbpf", **overrides):
    return ScenarioSpec(function=tiny_profile(), approach=approach,
                        n_instances=2, snapstore=snapstore, **overrides)


TINY_CLUSTER = dict(n_functions=2, rate_per_function=2.0,
                    duration=1.5, warm_pool_ttl=1.0)


def cluster_spec_with(snapstore, policy="snapshot-locality"):
    return ScenarioSpec(function=tiny_profile(), approach="snapbpf",
                        snapstore=snapstore,
                        cluster=ClusterSpec(policy=policy, n_nodes=2,
                                            **TINY_CLUSTER))


class TestSpecSchema:
    def test_schema_is_v5(self):
        assert SCHEMA_VERSION == 5

    def test_snapstore_spec_round_trips(self):
        spec = SnapStoreSpec(chunk_pages=32, placement="base-local",
                             hdd_tier=True,
                             local_capacity_bytes=64 * MIB)
        assert SnapStoreSpec.from_dict(spec.canonical()) == spec

    def test_scenario_spec_round_trips_with_snapstore(self):
        spec = spec_with(SnapStoreSpec(placement="remote"))
        clone = ScenarioSpec.from_dict(spec.canonical())
        assert clone == spec
        assert clone.stable_hash() == spec.stable_hash()
        assert clone.snapstore == spec.snapstore

    def test_snapstore_changes_the_cache_key(self):
        flat = spec_with(None)
        local = spec_with(SnapStoreSpec())
        remote = spec_with(SnapStoreSpec(placement="remote"))
        assert len({flat.stable_hash(), local.stable_hash(),
                    remote.stable_hash()}) == 3

    def test_invalid_placement_rejected(self):
        with pytest.raises(ValueError):
            SnapStoreSpec(placement="tape")
        with pytest.raises(ValueError):
            SnapStoreSpec(chunk_pages=0)


class TestIdentityAndOrdering:
    def test_local_placement_is_byte_identical_to_flat_files(self):
        flat = run_scenario(spec_with(None))
        local = run_scenario(spec_with(SnapStoreSpec()))
        assert local.mean_e2e == flat.mean_e2e  # exact, not approx
        assert local.invocations == flat.invocations
        stripped = {k: v for k, v in local.extra.items()
                    if not k.startswith("snapstore_")}
        assert stripped == flat.extra
        assert local.extra["snapstore_dedup_factor"] >= 1.0

    def test_remote_placement_raises_cold_start_cost(self):
        # linux-ra is pure demand paging — every fault chain now pays
        # remote staging, so the ordering is unambiguous even at tiny
        # scale (batch-prefetch approaches can mask it: their staged
        # fetches coalesce into large sequential remote reads).
        flat = run_scenario(spec_with(None, approach="linux-ra"))
        remote = run_scenario(spec_with(SnapStoreSpec(placement="remote"),
                                        approach="linux-ra"))
        assert remote.mean_e2e > flat.mean_e2e
        assert remote.extra["snapstore_remote_fetches"] > 0
        assert remote.extra["snapstore_remote_fetch_bytes"] > 0

    def test_cluster_local_matches_flat_exactly(self):
        flat = run_scenario(cluster_spec_with(None))
        local = run_scenario(cluster_spec_with(SnapStoreSpec()))
        stripped = {k: v for k, v in local.extra.items()
                    if not k.startswith("snapstore_")}
        assert stripped == flat.extra

    def test_cluster_dedup_spans_nodes(self):
        result = run_scenario(cluster_spec_with(SnapStoreSpec()))
        # Two clones x two nodes sharing one registry: dedup > 1.
        assert result.extra["snapstore_dedup_factor"] > 1.0
        assert result.extra["snapstore_unique_bytes"] < result.extra[
            "snapstore_logical_bytes"]


class TestStoreRoundTrip:
    def test_extras_round_trip_exactly_through_the_store(self, tmp_path):
        spec = cluster_spec_with(
            SnapStoreSpec(placement="base-local", hdd_tier=True,
                          local_capacity_bytes=32 * MIB))
        cold = SweepRunner(ResultCache(store=ResultStore(tmp_path)))
        first = cold.run([spec])[spec]
        assert first.extra["snapstore_dedup_factor"] > 1.0

        warm = SweepRunner(ResultCache(store=ResultStore(tmp_path)))
        second = warm.run([spec])[spec]
        assert warm.last_stats.executed == 0
        assert warm.last_stats.disk_hits == 1
        assert second == first
        assert second.to_json() == first.to_json()
        clone = ScenarioResult.from_json(first.to_json())
        assert clone.extra == first.extra

    def test_tier_state_is_deterministic_across_job_counts(self, tmp_path):
        specs = [cluster_spec_with(
                     SnapStoreSpec(placement="base-local", hdd_tier=True,
                                   local_capacity_bytes=32 * MIB),
                     policy=policy)
                 for policy in ("random", "snapshot-locality")]
        serial = SweepRunner(ResultCache(store=ResultStore(tmp_path / "s")),
                             jobs=1).run(specs)
        parallel = SweepRunner(ResultCache(store=ResultStore(tmp_path / "p")),
                               jobs=2).run(specs)
        for spec in specs:
            assert serial[spec].to_json() == parallel[spec].to_json()
