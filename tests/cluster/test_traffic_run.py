"""Traffic plane end-to-end: SLO schema, determinism, store replay."""

import pytest

from repro.cluster.spec import ClusterSpec
from repro.cluster.traffic import run_traffic, run_traffic_scenario
from repro.harness.experiment import ResultCache, run_scenario
from repro.harness.spec import ScenarioSpec
from repro.harness.sweep import ResultStore, SweepRunner
from repro.metrics.results import ScenarioResult
from repro.workloads.profile import profile_by_name
from repro.workloads.traffic import TrafficSpec


def tiny_traffic(**overrides):
    fields = dict(n_functions=30, n_tenants=3, total_rps=15.0,
                  duration=12.0, diurnal_amplitude=0.3, diurnal_period=8.0,
                  n_bursts=1, burst_multiplier=2.0, burst_duration=2.0,
                  seed=5)
    fields.update(overrides)
    return TrafficSpec(**fields)


def traffic_spec(keepalive="fixed", approach="snapbpf", traffic=None,
                 **overrides):
    return ScenarioSpec(
        function=profile_by_name("json"), approach=approach,
        cluster=ClusterSpec(keepalive=keepalive,
                            traffic=traffic or tiny_traffic(),
                            n_nodes=2, overflow_inflight=8, **overrides))


def test_report_accounts_for_every_invocation():
    report = run_traffic(traffic_spec())
    assert report.invocations > 0
    assert report.completed == report.invocations
    assert report.cold_starts + report.warm_starts == report.invocations
    assert report.failures == 0 and report.timeouts == 0
    assert 0.0 < report.cold_ratio < 1.0
    assert report.events_processed > report.invocations


def test_runs_are_deterministic():
    a = run_traffic(traffic_spec())
    b = run_traffic(traffic_spec())
    assert a.digest == b.digest
    assert a.fingerprint() == b.fingerprint()


def test_slo_rows_cover_every_tenant():
    report = run_traffic(traffic_spec())
    spec_tenants = traffic_spec().cluster.traffic.n_tenants
    assert sorted(report.slo) == list(range(spec_tenants))
    total = 0
    for row in report.slo.values():
        assert set(row) == {"requests", "cold_ratio", "p99_e2e",
                            "p999_e2e", "p99_cold", "p999_cold"}
        assert 0.0 <= row["cold_ratio"] <= 1.0
        assert row["p999_e2e"] >= row["p99_e2e"] >= 0.0
        total += row["requests"]
    assert total == report.invocations


def test_scenario_result_extra_schema():
    result = run_traffic_scenario(traffic_spec())
    assert isinstance(result, ScenarioResult)
    assert result.invocations == []
    extra = result.extra
    for key in ("traffic_invocations", "traffic_cold_starts",
                "traffic_warm_starts", "traffic_cold_ratio",
                "traffic_completed", "traffic_timeouts",
                "traffic_failures", "traffic_reroutes",
                "traffic_prewarms", "traffic_p99_e2e", "traffic_p999_e2e",
                "traffic_events_processed", "traffic_digest",
                "traffic_nodes_peak", "traffic_nodes_final"):
        assert key in extra, key
        assert isinstance(extra[key], float)
    for tenant in range(3):
        for key in ("requests", "cold_ratio", "p99_e2e", "p999_e2e",
                    "p99_cold", "p999_cold"):
            assert isinstance(extra[f"slo_t{tenant}_{key}"], float)
    # Flat floats only: the exact-JSON-round-trip store contract.
    clone = ScenarioResult.from_json(result.to_json())
    assert clone == result and clone.to_json() == result.to_json()


def test_run_scenario_dispatches_traffic_specs():
    direct = run_traffic_scenario(traffic_spec())
    dispatched = run_scenario(traffic_spec())
    assert dispatched.to_json() == direct.to_json()


def test_serial_and_parallel_sweeps_agree(tmp_path):
    specs = [traffic_spec("fixed"), traffic_spec("histogram")]
    serial = SweepRunner(ResultCache(store=ResultStore(tmp_path / "s")),
                         jobs=1).run(specs)
    parallel = SweepRunner(ResultCache(store=ResultStore(tmp_path / "p")),
                           jobs=2).run(specs)
    for spec in specs:
        assert serial[spec].to_json() == parallel[spec].to_json()


def test_store_replay_skips_execution(tmp_path):
    specs = [traffic_spec("fixed"), traffic_spec("histogram")]
    cold = SweepRunner(ResultCache(store=ResultStore(tmp_path)))
    first = cold.run(specs)
    assert cold.last_stats.executed == 2

    warm = SweepRunner(ResultCache(store=ResultStore(tmp_path)))
    second = warm.run(specs)
    assert warm.last_stats.executed == 0
    assert warm.last_stats.disk_hits == 2
    for spec in specs:
        assert second[spec].to_json() == first[spec].to_json()


def test_histogram_keepalive_beats_fixed_at_moderate_load():
    # A horizon long enough to learn (min_samples gaps per popular
    # function): typical gaps near 2 s beat the fixed 1.5 s TTL once the
    # histogram policy learns to cover them (clamped at 8 s).
    traffic = tiny_traffic(duration=30.0)
    fixed = run_traffic(traffic_spec("fixed", traffic=traffic))
    histogram = run_traffic(traffic_spec("histogram", traffic=traffic))
    assert histogram.invocations == fixed.invocations
    assert histogram.cold_ratio < fixed.cold_ratio


def test_keepalive_knobs_reach_the_policy():
    # min_samples above any count freezes the histogram policy at its
    # default TTL == warm_pool_ttl: identical outcome to fixed.
    frozen = run_traffic(traffic_spec("histogram",
                                      keepalive_min_samples=10**6,
                                      prewarm=False))
    fixed = run_traffic(traffic_spec("fixed"))
    assert frozen.digest == fixed.digest


def test_traffic_spec_validation():
    with pytest.raises(ValueError, match="keep-alive"):
        traffic_spec("nope")
    with pytest.raises(ValueError, match="percentile"):
        traffic_spec(keepalive_percentile=0.0)
    with pytest.raises(ValueError, match="min_ttl"):
        traffic_spec(keepalive_min_ttl=9.0, keepalive_max_ttl=8.0)
    with pytest.raises(ValueError, match="min_samples"):
        traffic_spec(keepalive_min_samples=0)


def test_cluster_spec_round_trips_with_traffic():
    spec = traffic_spec("histogram")
    clone = ScenarioSpec.from_dict(spec.canonical())
    assert clone == spec
    assert clone.stable_hash() == spec.stable_hash()
    assert clone.cluster.traffic == spec.cluster.traffic
