"""Cluster scenarios through the harness: dispatch, store, figure."""

import pytest

from repro.cluster import ClusterSpec
from repro.harness.experiment import ResultCache, run_scenario
from repro.harness.figures import cluster_cell_spec, cluster_figure_data
from repro.harness.spec import ScenarioSpec
from repro.harness.sweep import ResultStore, SweepRunner
from repro.metrics.results import ScenarioResult
from repro.units import MIB
from repro.workloads.profile import FunctionProfile


def tiny_profile(name="tiny", seed=31):
    return FunctionProfile(name=name, mem_bytes=48 * MIB, ws_bytes=4 * MIB,
                           alloc_bytes=2 * MIB, compute_seconds=0.02,
                           run_len_mean=8.0, seed=seed)


#: Cluster knobs shared by direct specs and figure cells (n_nodes is a
#: figure axis, so it stays out of this dict).
TINY_CLUSTER = dict(n_functions=2, rate_per_function=2.0,
                    duration=1.5, warm_pool_ttl=1.0)


def tiny_spec(policy="snapshot-locality", approach="snapbpf"):
    return ScenarioSpec(function=tiny_profile(), approach=approach,
                        cluster=ClusterSpec(policy=policy, n_nodes=2,
                                            **TINY_CLUSTER))


def test_run_scenario_dispatches_cluster_specs():
    result = run_scenario(tiny_spec())
    assert isinstance(result, ScenarioResult)
    assert result.invocations == []
    assert result.extra["cluster_requests"] > 0
    assert result.extra["cluster_completed"] == result.extra[
        "cluster_requests"]
    assert 0.0 <= result.extra["cluster_cold_ratio"] <= 1.0
    assert result.metrics["cluster_requests_total"] == result.extra[
        "cluster_requests"]


def test_run_scenario_rejects_kernel_override_for_clusters():
    from repro.harness.experiment import make_kernel
    with pytest.raises(TypeError, match="kernel"):
        run_scenario(tiny_spec(), kernel=make_kernel())


def test_result_json_round_trip_exactly():
    result = run_scenario(tiny_spec())
    clone = ScenarioResult.from_json(result.to_json())
    assert clone == result
    assert clone.to_json() == result.to_json()


def test_store_replay_skips_execution(tmp_path):
    specs = [tiny_spec("random"), tiny_spec("snapshot-locality")]
    cold = SweepRunner(ResultCache(store=ResultStore(tmp_path)))
    first = cold.run(specs)
    assert cold.last_stats.executed == 2

    warm = SweepRunner(ResultCache(store=ResultStore(tmp_path)))
    second = warm.run(specs)
    assert warm.last_stats.executed == 0
    assert warm.last_stats.disk_hits == 2
    for spec in specs:
        assert second[spec] == first[spec]
        assert second[spec].to_json() == first[spec].to_json()


def test_serial_and_parallel_sweeps_agree(tmp_path):
    specs = [tiny_spec("random"), tiny_spec("least-loaded")]
    serial = SweepRunner(ResultCache(store=ResultStore(tmp_path / "s")),
                         jobs=1).run(specs)
    parallel = SweepRunner(ResultCache(store=ResultStore(tmp_path / "p")),
                           jobs=2).run(specs)
    for spec in specs:
        assert serial[spec].to_json() == parallel[spec].to_json()


def test_cluster_figure_data_shape():
    profile = tiny_profile()
    cache = ResultCache()
    data = cluster_figure_data(cache, [profile], ("snapbpf",),
                               policies=("random", "snapshot-locality"),
                               node_counts=(2,), **TINY_CLUSTER)
    assert data.ylabel == "cold-start ratio"
    assert data.functions == ["tiny random n=2",
                              "tiny snapshot-locality n=2"]
    random_ratio = data.series["snapbpf"][0]
    locality_ratio = data.series["snapbpf"][1]
    assert locality_ratio <= random_ratio


def test_cluster_cell_spec_is_cacheable():
    profile = tiny_profile()
    a = cluster_cell_spec(profile, "snapbpf", "random", 2, **TINY_CLUSTER)
    b = cluster_cell_spec(profile, "snapbpf", "random", 2, **TINY_CLUSTER)
    assert a == b and a.stable_hash() == b.stable_hash()
    assert a.cluster.policy == "random" and a.cluster.n_nodes == 2
