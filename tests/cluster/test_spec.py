"""ClusterSpec: validation, canonical form, and cache-key stability."""

import pytest

from repro.cluster import ClusterSpec
from repro.harness.spec import ScenarioSpec
from repro.workloads.profile import profile_by_name


def test_defaults_are_valid():
    spec = ClusterSpec()
    assert spec.n_nodes == 2
    assert spec.policy == "snapshot-locality"


def test_rejects_unknown_policy():
    with pytest.raises(ValueError, match="policy"):
        ClusterSpec(policy="sticky")


@pytest.mark.parametrize("kwargs", [
    {"n_nodes": 0},
    {"n_functions": 0},
    {"rate_per_function": 0.0},
    {"duration": 0.0},
    {"min_nodes": 0},
    {"min_nodes": 5, "max_nodes": 2},
    {"overflow_inflight": 0},
])
def test_rejects_bad_values(kwargs):
    with pytest.raises(ValueError):
        ClusterSpec(**kwargs)


def test_canonical_round_trip():
    spec = ClusterSpec(n_nodes=3, policy="least-loaded", autoscale=True,
                       max_nodes=5)
    assert ClusterSpec.from_dict(spec.canonical()) == spec


def test_is_hashable_and_frozen():
    spec = ClusterSpec()
    assert hash(spec) == hash(ClusterSpec())
    with pytest.raises(Exception):
        spec.n_nodes = 3


def test_scenario_spec_nesting_and_dict_coercion():
    cluster = ClusterSpec(n_nodes=3)
    spec = ScenarioSpec(function=profile_by_name("json"), approach="snapbpf",
                        cluster=cluster)
    coerced = ScenarioSpec(function=profile_by_name("json"),
                           approach="snapbpf",
                           cluster=cluster.canonical())
    assert coerced.cluster == cluster
    assert coerced.stable_hash() == spec.stable_hash()
    # Round trip through the serialized form keeps the cache key.
    assert (ScenarioSpec.from_dict(spec.canonical()).stable_hash()
            == spec.stable_hash())


def test_cluster_field_changes_the_cache_key():
    base = ScenarioSpec(function=profile_by_name("json"), approach="snapbpf")
    clustered = ScenarioSpec(function=profile_by_name("json"),
                             approach="snapbpf", cluster=ClusterSpec())
    other = ScenarioSpec(function=profile_by_name("json"), approach="snapbpf",
                         cluster=ClusterSpec(n_nodes=4))
    assert len({base.stable_hash(), clustered.stable_hash(),
                other.stable_hash()}) == 3


def test_cluster_requires_single_instance():
    with pytest.raises(ValueError, match="n_instances"):
        ScenarioSpec(function=profile_by_name("json"), approach="snapbpf",
                     n_instances=2, cluster=ClusterSpec())


def test_cluster_type_checked():
    with pytest.raises(TypeError, match="ClusterSpec"):
        ScenarioSpec(function=profile_by_name("json"), approach="snapbpf",
                     cluster="snapshot-locality")
