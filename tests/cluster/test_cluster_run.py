"""End-to-end fleet runs: routing, determinism, crashes, metrics."""

import pytest

from repro.cluster import ClusterSpec
from repro.cluster.runner import run_cluster
from repro.faults import FaultConfig
from repro.harness.spec import ScenarioSpec
from repro.units import MIB
from repro.workloads.profile import FunctionProfile


def tiny_profile(name="tiny", seed=31):
    return FunctionProfile(name=name, mem_bytes=48 * MIB, ws_bytes=4 * MIB,
                           alloc_bytes=2 * MIB, compute_seconds=0.02,
                           run_len_mean=8.0, seed=seed)


def cluster_spec(approach="snapbpf", **cluster_kwargs):
    cluster_kwargs.setdefault("n_nodes", 2)
    cluster_kwargs.setdefault("n_functions", 2)
    cluster_kwargs.setdefault("rate_per_function", 2.0)
    cluster_kwargs.setdefault("duration", 2.0)
    cluster_kwargs.setdefault("warm_pool_ttl", 1.0)
    return ScenarioSpec(function=tiny_profile(), approach=approach,
                        cluster=ClusterSpec(**cluster_kwargs))


def test_every_request_is_served():
    report = run_cluster(cluster_spec())
    assert report.requests > 0
    assert report.completed == report.requests
    assert report.failures == 0
    assert all(r.latency > 0 for r in report.results)
    assert sum(report.per_node_served().values()) == report.requests


def test_rejects_non_cluster_spec():
    spec = ScenarioSpec(function=tiny_profile(), approach="snapbpf")
    with pytest.raises(ValueError, match="cluster"):
        run_cluster(spec)


def test_runs_are_deterministic():
    a = run_cluster(cluster_spec())
    b = run_cluster(cluster_spec())
    assert a.fingerprint() == b.fingerprint()


def test_different_seeds_differ():
    a = run_cluster(cluster_spec())
    spec = cluster_spec()
    b = run_cluster(ScenarioSpec(function=spec.function, approach="snapbpf",
                                 input_seed=99, cluster=spec.cluster))
    assert a.fingerprint() != b.fingerprint()


def test_locality_beats_random_on_cold_starts():
    random_report = run_cluster(cluster_spec(policy="random", duration=4.0))
    locality_report = run_cluster(
        cluster_spec(policy="snapshot-locality", duration=4.0))
    assert locality_report.cold_ratio < random_report.cold_ratio


def test_cluster_metrics_exposed():
    report = run_cluster(cluster_spec())
    m = report.metrics
    assert m["cluster_requests_total"] == report.requests
    assert (m["cluster_cold_starts_total"] + m["cluster_warm_starts_total"]
            == report.requests)
    assert m["cluster_nodes"] == 2.0
    assert 0.0 <= m["cluster_cold_start_ratio"] <= 1.0
    # Per-node degradation counters roll up next to the cluster_* set
    # (satellite: fault_summary counters in the text exposition).
    assert m["node_requests_total"] == report.requests
    assert m["node_requests_completed_total"] == report.completed


def test_node_timeline_and_node_seconds():
    report = run_cluster(cluster_spec())
    assert report.node_timeline[-1][1] == 2.0
    window = report.end_time - report.start_time
    assert report.node_seconds() == pytest.approx(2.0 * window)


def test_node_crash_reroutes_to_survivor():
    # Long-running requests (250 ms compute) keep work in flight, so the
    # crash lands on a busy node and its requests must re-route.
    import dataclasses
    profile = dataclasses.replace(tiny_profile(), compute_seconds=0.25)
    spec = ScenarioSpec(
        function=profile, approach="snapbpf",
        cluster=ClusterSpec(n_nodes=2, n_functions=2, rate_per_function=4.0,
                            duration=3.0, warm_pool_ttl=1.0))
    config = FaultConfig(node_crash_rate=0.1)
    report = run_cluster(spec, fault_config=config, fault_seed=1)
    m = report.metrics
    # The crasher never kills the last survivor, so with two nodes at
    # most one dies; this seed kills exactly one mid-traffic.
    assert m["cluster_node_crashes_total"] == 1.0
    assert m["cluster_nodes"] == 1.0
    # Nothing is lost: interrupted requests re-route and complete.
    assert report.completed == report.requests
    assert report.reroutes >= 1
    assert m["cluster_crash_reroutes_total"] == report.reroutes
    rerouted = [r for r in report.results if r.reroutes]
    crashed_id = min(report.per_node_served())  # survivor served them
    assert all(r.status == "ok" for r in rerouted)
    assert crashed_id in set(report.per_node_served())


def test_crash_rate_zero_is_identical_to_no_fault_config():
    baseline = run_cluster(cluster_spec())
    with_config = run_cluster(cluster_spec(),
                              fault_config=FaultConfig(node_crash_rate=0.0),
                              fault_seed=5)
    assert baseline.fingerprint() == with_config.fingerprint()


def test_autoscale_grows_fleet_under_pressure():
    spec = cluster_spec(n_nodes=1, autoscale=True, target_inflight=0.5,
                        min_nodes=1, max_nodes=3, scale_interval=0.25,
                        node_boot_seconds=0.1, rate_per_function=6.0,
                        duration=3.0)
    report = run_cluster(spec)
    m = report.metrics
    assert m["cluster_scale_ups_total"] >= 1.0
    assert max(n for _, n in report.node_timeline) >= 2.0
    assert report.completed == report.requests
