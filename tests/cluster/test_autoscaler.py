"""Autoscaler control loop against a fake fleet (no kernels)."""

from repro.cluster.autoscaler import ClusterAutoscaler
from repro.cluster.gateway import BOOTING, DRAINING, RETIRED, UP, Gateway
from repro.cluster.routing import make_routing_policy
from repro.metrics.registry import MetricsRegistry
from repro.sim import Environment


class FakeFaaSNode:
    """Duck-typed stand-in for FaaSNode: instant boot, 7 cached pages."""

    def prepare(self):
        return
        yield  # pragma: no cover - makes this a generator

    def shutdown(self):
        return 7


def make_cluster(**kwargs):
    env = Environment()
    gateway = Gateway(env, make_routing_policy("least-loaded"),
                      registry=MetricsRegistry())
    gateway.add_node(FakeFaaSNode(), state=UP)

    def spawn_node():
        return gateway.add_node(FakeFaaSNode(), state=BOOTING)

    scaler = ClusterAutoscaler(env, gateway, spawn_node, **kwargs)
    return env, gateway, scaler


def test_scales_up_under_load():
    env, gateway, scaler = make_cluster(target_inflight=2.0,
                                        scale_interval=0.5,
                                        node_boot_seconds=0.25, max_nodes=2)
    gateway.nodes[0].inflight = 5
    env.run(until=2.2)
    assert scaler.scale_ups == 1
    assert len(gateway.routable_nodes()) == 2
    assert gateway.registry.get("cluster_scale_ups_total").value == 1


def test_one_boot_at_a_time():
    env, gateway, scaler = make_cluster(target_inflight=1.0,
                                        scale_interval=0.5,
                                        node_boot_seconds=5.0)
    gateway.nodes[0].inflight = 50
    env.run(until=3.2)  # several evaluations while the boot is in flight
    assert scaler._booting == 1
    assert len(gateway.nodes) == 2  # not one spawn per evaluation


def test_respects_max_nodes():
    env, gateway, scaler = make_cluster(target_inflight=0.5,
                                        scale_interval=0.5,
                                        node_boot_seconds=0.1, max_nodes=2)
    gateway.nodes[0].inflight = 50
    env.run(until=5.2)
    assert len(gateway.live_nodes()) == 2


def test_drains_and_retires_idle_node_down_to_min():
    env, gateway, scaler = make_cluster(target_inflight=2.0,
                                        scale_interval=0.5,
                                        node_boot_seconds=0.25, max_nodes=2,
                                        drain_idle_intervals=2, min_nodes=1)
    gateway.nodes[0].inflight = 5
    # Node 1 boots at 0.5+0.25, then sits idle (the fake fleet never
    # routes to it), so two idle evaluations drain and retire it while
    # the loaded original node survives as the stable core.
    env.run(until=2.2)
    assert scaler.scale_ups == 1
    assert [n.node_id for n in gateway.routable_nodes()] == [0]
    # The newest node was the victim and its pages count as evictions.
    assert gateway.nodes[1].state == RETIRED
    assert gateway.registry.get("cluster_scale_downs_total").value == 1
    assert gateway.registry.get(
        "cluster_rebalance_evictions_total").value == 7


def test_draining_node_waits_for_inflight_work():
    env, gateway, scaler = make_cluster(target_inflight=100.0,
                                        scale_interval=0.5,
                                        drain_idle_intervals=1, min_nodes=1)
    busy = gateway.add_node(FakeFaaSNode(), state=UP)
    env.run(until=0.7)
    assert busy.state == DRAINING  # newest idle node gets drained
    busy.inflight = 1  # a request routed just before the drain
    env.run(until=3.2)
    assert busy.state == DRAINING  # retire waits for the straggler
    busy.inflight = 0
    env.run(until=4.2)
    assert busy.state == RETIRED


def test_stop_halts_the_loop():
    env, gateway, scaler = make_cluster(target_inflight=0.1,
                                        scale_interval=0.5,
                                        node_boot_seconds=0.1)
    gateway.nodes[0].inflight = 50
    scaler.stop()
    env.run()  # drains with no further scaling activity
    assert scaler.scale_ups == 0
