"""Keep-alive policies: learned TTL boundaries, pre-warm hit vs miss."""

import pytest

from repro.cluster.keepalive import (
    FixedTTLPolicy,
    HistogramKeepAlivePolicy,
    make_keepalive_policy,
)
from repro.harness.experiment import make_kernel
from repro.harness.sweep import parallel_map
from repro.platform.node import FaaSNode
from repro.platform.workload import Arrival
from repro.units import MIB
from repro.workloads.profile import FunctionProfile

GAP = 2.0
EPSILON = 1e-9


def tiny_profile():
    return FunctionProfile(name="alpha", mem_bytes=48 * MIB,
                           ws_bytes=4 * MIB, alloc_bytes=2 * MIB,
                           compute_seconds=0.02, run_len_mean=8.0, seed=31)


def learned_policy():
    """Histogram policy whose TTL is exactly GAP after four GAP gaps
    (the percentile estimate clamps to the observed max)."""
    return HistogramKeepAlivePolicy(default_ttl=GAP, min_samples=4)


# -- policy state machine ----------------------------------------------------

def test_fixed_policy_is_constant():
    policy = FixedTTLPolicy(1.5)
    assert policy.ttl("anything") == 1.5
    assert policy.prewarm_at("anything", 0.0) is None
    assert FixedTTLPolicy(None).ttl("x") is None
    with pytest.raises(ValueError):
        FixedTTLPolicy(0.0)


def test_histogram_defaults_until_min_samples():
    policy = learned_policy()
    for i in range(4):  # 4 arrivals = 3 gaps < min_samples
        policy.observe("f", i * GAP)
        assert policy.ttl("f") == GAP  # default_ttl
    policy.observe("f", 4 * GAP)  # 4th gap
    assert policy.ttl("f") == pytest.approx(GAP)
    assert policy.tracked_functions() == 1


def test_histogram_learns_exact_gap():
    policy = learned_policy()
    for i in range(6):
        policy.observe("f", i * GAP)
    # Identical gaps: the p99 estimate clamps to the observed max, so
    # the learned TTL covers the steady state with zero slack.
    assert policy.ttl("f") == pytest.approx(GAP)


def test_histogram_clamps_to_bounds():
    policy = HistogramKeepAlivePolicy(min_ttl=0.5, max_ttl=4.0,
                                      min_samples=2)
    for i in range(4):
        policy.observe("slow", i * 100.0)
    assert policy.ttl("slow") == 4.0
    for i in range(4):
        policy.observe("fast", i * 0.01)
    assert policy.ttl("fast") == 0.5


def test_prewarm_fires_only_when_pool_loses_the_race():
    # Typical gap 5 s but TTL clamped to 0.5 s: the pool always expires
    # before the next arrival, so the policy pre-warms instead.
    policy = HistogramKeepAlivePolicy(max_ttl=0.5, min_ttl=0.1,
                                      default_ttl=0.5, min_samples=4,
                                      margin=0.1)
    for i in range(5):
        policy.observe("f", i * 5.0)
    assert policy.ttl("f") == 0.5
    when = policy.prewarm_at("f", now=20.6)
    assert when == pytest.approx(20.0 + 5.0 * 0.9)
    # Past the prediction: nothing to schedule.
    assert policy.prewarm_at("f", now=30.0) is None
    # Past the workload horizon: never schedule.
    policy.horizon = 22.0
    assert policy.prewarm_at("f", now=20.6) is None
    policy.horizon = None
    policy.prewarm = False
    assert policy.prewarm_at("f", now=20.6) is None


def test_no_prewarm_when_pool_covers_typical_gap():
    policy = learned_policy()
    for i in range(6):
        policy.observe("f", i * GAP)
    # ttl == p50 == GAP: the pool wins, no speculative spawn.
    assert policy.prewarm_at("f", now=6 * GAP) is None


def test_make_keepalive_policy():
    assert isinstance(make_keepalive_policy("fixed"), FixedTTLPolicy)
    hist = make_keepalive_policy("histogram", warm_pool_ttl=2.5,
                                 max_ttl=16.0)
    assert isinstance(hist, HistogramKeepAlivePolicy)
    assert hist.default_ttl == 2.5 and hist.max_ttl == 16.0
    assert make_keepalive_policy("fixed", warm_pool_ttl=None).ttl("x") is None
    with pytest.raises(ValueError, match="keep-alive"):
        make_keepalive_policy("nope")


# -- node integration: learned-TTL expiry boundary ---------------------------

def run_node(extra_arrivals=(), keepalive=None, warm_pool_ttl=None):
    node = FaaSNode(make_kernel(), "snapbpf", [tiny_profile()],
                    warm_pool_ttl=warm_pool_ttl, keepalive=keepalive)
    arrivals = [Arrival(i * GAP, "alpha", 0) for i in range(5)]
    arrivals += [Arrival(t, "alpha", 0) for t in extra_arrivals]
    return node.run(arrivals)


def warm_latency():
    """Deterministic warm-start latency (every non-first request in the
    GAP train hits the pool: idle time < GAP == TTL)."""
    report = run_node(keepalive=learned_policy())
    assert [r.cold for r in report.results] == [True] + [False] * 4
    return report.results[-1].latency


def test_arrival_exactly_at_learned_expiry_is_warm():
    # The 5th request parks at 4*GAP + warm latency with the learned
    # TTL == GAP; an arrival landing exactly at expiry is still warm.
    probe = 4 * GAP + warm_latency() + GAP
    report = run_node((probe,), keepalive=learned_policy())
    assert report.results[-1].cold is False


def test_arrival_just_after_learned_expiry_is_cold():
    probe = 4 * GAP + warm_latency() + GAP + EPSILON
    report = run_node((probe,), keepalive=learned_policy())
    assert report.results[-1].cold is True


def classify(probe):
    report = run_node((probe,), keepalive=learned_policy())
    return tuple(r.cold for r in report.results)


def test_boundary_identical_across_jobs():
    base = 4 * GAP + warm_latency() + GAP
    probes = [base, base + EPSILON, base - GAP / 2]
    serial = parallel_map(classify, probes, jobs=1)
    parallel = parallel_map(classify, probes, jobs=2)
    assert serial == parallel
    assert [c[-1] for c in serial] == [False, True, False]


def test_histogram_with_huge_min_samples_matches_fixed():
    # A histogram policy that never reaches min_samples always answers
    # default_ttl — byte-identical to the fixed path it generalizes.
    frozen = HistogramKeepAlivePolicy(default_ttl=GAP, min_samples=10**6,
                                      prewarm=False)
    a = run_node((11.0, 14.5), keepalive=frozen)
    b = run_node((11.0, 14.5), warm_pool_ttl=GAP)
    assert ([(r.cold, r.latency) for r in a.results]
            == [(r.cold, r.latency) for r in b.results])


# -- node integration: pre-warm hit vs miss ----------------------------------

def sparse_run(prewarm):
    """Arrivals every 5 s with TTL clamped to 0.5 s: the pool always
    expires, so only a pre-warm can make the last arrival warm."""
    policy = HistogramKeepAlivePolicy(max_ttl=0.5, min_ttl=0.1,
                                      default_ttl=0.5, min_samples=4,
                                      prewarm=prewarm, margin=0.1)
    node = FaaSNode(make_kernel(), "snapbpf", [tiny_profile()],
                    keepalive=policy)
    arrivals = [Arrival(i * 5.0, "alpha", 0) for i in range(6)]
    report = node.run(arrivals)
    prewarms = node.kernel.metrics.get("node_prewarms_total").value
    return report, prewarms


def test_prewarm_turns_predicted_arrival_warm():
    report, prewarms = sparse_run(prewarm=True)
    assert prewarms >= 1
    assert report.results[-1].cold is False


def test_without_prewarm_predicted_arrival_is_cold():
    report, prewarms = sparse_run(prewarm=False)
    assert prewarms == 0
    assert all(r.cold for r in report.results)
