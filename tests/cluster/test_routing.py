"""Routing policies against duck-typed fake node handles."""

import pytest

from repro.cluster.routing import (
    ROUTING_POLICIES,
    RoutingError,
    SnapshotLocalityRouting,
    make_routing_policy,
)


class FakeNode:
    def __init__(self, node_id, inflight=0, residency=None):
        self.node_id = node_id
        self.inflight = inflight
        self._residency = residency or {}

    def snapshot_residency(self, function):
        return self._residency.get(function, 0)


def fleet(*inflights):
    return [FakeNode(i, inflight=load) for i, load in enumerate(inflights)]


def test_registry_names():
    assert set(ROUTING_POLICIES) == {"random", "round-robin", "least-loaded",
                                     "snapshot-locality"}


def test_unknown_policy_rejected():
    with pytest.raises(ValueError, match="unknown routing policy"):
        make_routing_policy("sticky")


def test_random_is_seeded_and_in_range():
    nodes = fleet(0, 0, 0)
    a = make_routing_policy("random", seed=7)
    b = make_routing_policy("random", seed=7)
    picks_a = [a.choose("fn", nodes).node_id for _ in range(20)]
    picks_b = [b.choose("fn", nodes).node_id for _ in range(20)]
    assert picks_a == picks_b
    assert set(picks_a) <= {0, 1, 2}
    assert len(set(picks_a)) > 1  # actually sprays


def test_round_robin_rotates():
    nodes = fleet(0, 0, 0)
    policy = make_routing_policy("round-robin")
    picks = [policy.choose("fn", nodes).node_id for _ in range(6)]
    assert picks == [0, 1, 2, 0, 1, 2]


def test_least_loaded_prefers_idle_then_lowest_id():
    policy = make_routing_policy("least-loaded")
    assert policy.choose("fn", fleet(3, 1, 2)).node_id == 1
    assert policy.choose("fn", fleet(2, 2, 2)).node_id == 0


def test_locality_is_sticky_per_function():
    policy = make_routing_policy("snapshot-locality")
    nodes = fleet(0, 0, 0, 0)
    homes = {fn: policy.choose(fn, nodes).node_id
             for fn in ("json-0", "json-1", "bert-0", "gzip-0")}
    for fn, home in homes.items():
        for _ in range(3):
            assert policy.choose(fn, nodes).node_id == home


def test_locality_remaps_only_moved_arcs_on_membership_change():
    policy = make_routing_policy("snapshot-locality")
    functions = [f"fn-{i}" for i in range(32)]
    big = fleet(*([0] * 4))
    before = {fn: policy.home(fn, big).node_id for fn in functions}
    small = [n for n in big if n.node_id != 3]
    after = {fn: policy.home(fn, small).node_id for fn in functions}
    moved = [fn for fn in functions if after[fn] != before[fn]]
    # Everything that moved had to move (its home vanished); functions
    # homed elsewhere stay put — the consistent-hashing contract.
    assert all(before[fn] == 3 for fn in moved)


def test_locality_overflows_to_highest_residency():
    policy = make_routing_policy("snapshot-locality", overflow_inflight=2)
    nodes = fleet(0, 0, 0)
    home = policy.choose("fn-x", nodes)
    home.inflight = 2  # saturate the home node
    others = [n for n in nodes if n is not home]
    others[0]._residency["fn-x"] = 10
    others[1]._residency["fn-x"] = 500
    assert policy.choose("fn-x", nodes) is others[1]
    assert policy.overflow_routes == 1


def test_locality_single_node_never_overflows():
    policy = make_routing_policy("snapshot-locality", overflow_inflight=1)
    nodes = fleet(99)
    assert policy.choose("fn", nodes) is nodes[0]
    assert policy.overflow_routes == 0


def test_locality_ring_is_balanced_enough():
    policy = SnapshotLocalityRouting()
    nodes = fleet(0, 0, 0, 0)
    homes = [policy.home(f"fn-{i}", nodes).node_id for i in range(400)]
    counts = [homes.count(i) for i in range(4)]
    assert all(c > 0 for c in counts)  # every node owns some arc


def test_gateway_raises_routing_error_when_empty():
    from repro.cluster.gateway import Gateway
    from repro.metrics.registry import MetricsRegistry
    from repro.sim import Environment

    gateway = Gateway(Environment(), make_routing_policy("random"),
                      registry=MetricsRegistry())
    with pytest.raises(RoutingError):
        gateway.route("fn")
