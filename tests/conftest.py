"""Shared fixtures: a fresh DES environment, a host kernel, small
function profiles sized so full scenarios run in milliseconds."""

from __future__ import annotations

import pytest

from repro.harness.experiment import make_kernel
from repro.mm.kernel import Kernel
from repro.sim import Environment
from repro.units import MIB
from repro.workloads.profile import FunctionProfile

# Importing repro registers every approach.
import repro  # noqa: F401


@pytest.fixture
def env() -> Environment:
    return Environment()


@pytest.fixture
def kernel() -> Kernel:
    return make_kernel("ssd")


@pytest.fixture
def tiny_profile() -> FunctionProfile:
    """A small function: 64 MiB VM, 6 MiB WS, 3 MiB ephemeral allocs."""
    return FunctionProfile(
        name="tiny", mem_bytes=64 * MIB, ws_bytes=6 * MIB,
        alloc_bytes=3 * MIB, compute_seconds=0.02, write_frac=0.15,
        run_len_mean=8.0, seed=42)


@pytest.fixture
def alloc_heavy_profile() -> FunctionProfile:
    """Allocation-dominated function (an 'image'-like shape)."""
    return FunctionProfile(
        name="tiny-alloc", mem_bytes=96 * MIB, ws_bytes=4 * MIB,
        alloc_bytes=24 * MIB, compute_seconds=0.02, write_frac=0.1,
        run_len_mean=8.0, free_span_pages=12.0, seed=43)


def drive(env: Environment, generator, name: str = "test"):
    """Run a kernel-path generator to completion; returns its value."""
    process = env.process(generator, name=name)
    env.run(process)
    return process.value
