"""TelemetryServer: /metrics, /api/state, /api/events (SSE), static web."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.metrics.registry import TEXT_CONTENT_TYPE, MetricsRegistry
from repro.serve import TelemetryHub, TelemetryServer


@pytest.fixture()
def served():
    """A started server around a fast-publishing hub; always stopped."""
    registry = MetricsRegistry()
    registry.counter("reqs_total", help="requests").inc(7)
    registry.histogram("lat", base=1.0, n_buckets=2).observe(1.5)
    hub = TelemetryHub(registry, wall_interval=0.0)
    server = TelemetryServer(hub, port=0, sse_timeout=0.2)
    server.start()
    try:
        yield hub, server
    finally:
        server.stop()


def get(url: str):
    with urllib.request.urlopen(url, timeout=10) as response:
        return response.status, dict(response.headers), response.read()


class TestHttpEndpoints:
    def test_metrics_is_prometheus_text(self, served):
        hub, server = served
        status, headers, body = get(server.url + "/metrics")
        assert status == 200
        assert headers["Content-Type"] == TEXT_CONTENT_TYPE
        text = body.decode()
        assert "# TYPE reqs_total counter" in text
        assert "reqs_total 7" in text
        assert 'lat_bucket{le="+Inf"} 1' in text

    def test_api_state_returns_current_snapshot(self, served):
        hub, server = served
        hub.update_sweep(executed=3, unique=9)
        hub.flush(phase="testing")
        status, headers, body = get(server.url + "/api/state")
        assert status == 200
        assert headers["Content-Type"].startswith("application/json")
        state = json.loads(body)
        assert state["phase"] == "testing"
        assert state["sweep"]["executed"] == 3
        assert state["metrics"]["reqs_total"] == 7

    def test_dashboard_static_files_served(self, served):
        _, server = served
        status, headers, body = get(server.url + "/")
        assert status == 200
        assert headers["Content-Type"].startswith("text/html")
        assert b"control room" in body
        for path, kind in (("/app.js", "javascript"), ("/style.css", "css")):
            status, headers, _ = get(server.url + path)
            assert status == 200
            assert kind in headers["Content-Type"]

    def test_unknown_path_is_404_not_traversal(self, served):
        _, server = served
        for path in ("/nope", "/../etc/passwd", "/web/../../secret"):
            try:
                status, _, _ = get(server.url + path)
            except urllib.error.HTTPError as exc:
                status = exc.code
            assert status == 404


class TestServerSentEvents:
    def test_stream_delivers_monotonic_versions_live(self, served):
        """Connect, receive >= 2 snapshot events with increasing
        versions while a 'run' publishes, disconnect cleanly."""
        hub, server = served
        events = []
        connected = threading.Event()

        def consume():
            request = urllib.request.Request(
                server.url + "/api/events",
                headers={"Accept": "text/event-stream"})
            with urllib.request.urlopen(request, timeout=10) as stream:
                assert stream.headers["Content-Type"].startswith(
                    "text/event-stream")
                connected.set()
                fields = {}
                for raw in stream:
                    line = raw.decode().rstrip("\n")
                    if line.startswith(":"):
                        continue  # keepalive comment
                    if line == "":
                        if fields.get("event") == "state":
                            events.append(
                                (int(fields["id"]),
                                 json.loads(fields["data"])))
                        fields = {}
                        if len(events) >= 3:
                            return
                        continue
                    key, _, value = line.partition(":")
                    fields[key] = value.strip()

        consumer = threading.Thread(target=consume, daemon=True)
        consumer.start()
        assert connected.wait(timeout=10)
        # Simulate run progress: each publish must reach the stream.
        for i in range(40):
            hub.update_sweep(executed=i)
            hub.flush(phase="running")
            consumer.join(timeout=0.1)
            if not consumer.is_alive():
                break
        consumer.join(timeout=10)
        assert not consumer.is_alive()
        assert len(events) >= 2
        ids = [event_id for event_id, _ in events]
        assert ids == sorted(ids) and len(set(ids)) == len(ids)
        versions = [state["version"] for _, state in events]
        assert versions == ids
        assert events[-1][1]["sweep"]["executed"] >= 1

    def test_stop_unblocks_waiting_sse_clients_and_joins_thread(self):
        hub = TelemetryHub(wall_interval=0.0)
        server = TelemetryServer(hub, port=0, sse_timeout=0.1)
        server.start()
        threads_before = threading.active_count()

        def consume():
            try:
                with urllib.request.urlopen(server.url + "/api/events",
                                            timeout=10) as stream:
                    for _ in stream:
                        pass
            except Exception:
                pass  # connection torn down by shutdown: expected

        consumer = threading.Thread(target=consume, daemon=True)
        consumer.start()
        server.stop()
        consumer.join(timeout=10)
        assert not consumer.is_alive()
        # The server's acceptor thread is gone (daemon handler threads
        # may linger briefly; the acceptor join is the contract).
        assert server._thread is None or not server._thread.is_alive()
        assert threading.active_count() <= threads_before + 1
