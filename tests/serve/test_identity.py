"""The serve plane is observation-only: attaching a hub changes nothing.

Same contract the tracer is held to — results, fingerprints, and store
bytes are byte-identical with telemetry on and off, and the publication
hooks actually publish when a hub is attached.
"""

import json

from repro.cluster import ClusterSpec
from repro.cluster.runner import run_cluster
from repro.harness.chaos import run_chaos_suite
from repro.harness.experiment import ResultCache
from repro.harness.spec import ScenarioSpec
from repro.harness.sweep import SweepRunner
from repro.serve import TelemetryHub
from repro.units import MIB
from repro.workloads.profile import FunctionProfile


def tiny_profile(name="tiny", seed=31):
    return FunctionProfile(name=name, mem_bytes=48 * MIB, ws_bytes=4 * MIB,
                           alloc_bytes=2 * MIB, compute_seconds=0.02,
                           run_len_mean=8.0, seed=seed)


def scenario_spec(approach="snapbpf"):
    return ScenarioSpec(function=tiny_profile(), approach=approach,
                        n_instances=2)


def cluster_spec():
    return ScenarioSpec(
        function=tiny_profile(), approach="snapbpf",
        cluster=ClusterSpec(n_nodes=2, n_functions=2,
                            rate_per_function=2.0, duration=2.0,
                            warm_pool_ttl=1.0))


def result_bytes(result) -> bytes:
    return json.dumps(result.to_dict(), sort_keys=True).encode()


class TestIdentity:
    def test_sweep_results_identical_with_and_without_hub(self):
        spec = scenario_spec()
        plain = SweepRunner(ResultCache()).run([spec])[spec]
        hub = TelemetryHub(wall_interval=0.0)
        observed = SweepRunner(ResultCache(),
                               telemetry=hub).run([spec])[spec]
        assert result_bytes(plain) == result_bytes(observed)
        assert hub.version > 0  # ...and the hub really was publishing

    def test_cluster_fingerprint_identical_with_and_without_hub(self):
        # The cluster path wires the hub into the DES engine's per-event
        # hook — the strongest identity surface.
        plain = run_cluster(cluster_spec())
        hub = TelemetryHub(sim_interval=0.05, wall_interval=0.0)
        observed = run_cluster(cluster_spec(), telemetry=hub)
        assert plain.fingerprint() == observed.fingerprint()
        assert hub.version > 0
        assert hub.state()["fleet"]["nodes"]  # topology was published

    def test_chaos_fingerprints_identical_with_and_without_hub(self):
        profile = tiny_profile()
        plain = run_chaos_suite(profile, ["reap", "snapbpf"])
        hub = TelemetryHub(wall_interval=0.0)
        observed = run_chaos_suite(profile, ["reap", "snapbpf"],
                                   telemetry=hub)
        assert ([r.fingerprint() for r in plain]
                == [r.fingerprint() for r in observed])
        assert hub.state()["sweep"]["done"] is True

    def test_store_bytes_identical_with_and_without_hub(self, tmp_path):
        from repro.harness.sweep import ResultStore
        spec = scenario_spec()
        plain_store = ResultStore(tmp_path / "plain")
        SweepRunner(ResultCache(store=plain_store)).run([spec])
        hub_store = ResultStore(tmp_path / "hub")
        SweepRunner(ResultCache(store=hub_store),
                    telemetry=TelemetryHub(wall_interval=0.0)).run([spec])
        key = spec.stable_hash()
        assert (plain_store.path(key).read_bytes()
                == hub_store.path(key).read_bytes())


class TestSweepPublication:
    def test_runner_publishes_progress_and_completion(self):
        hub = TelemetryHub(wall_interval=0.0)
        cache = ResultCache()
        hub.attach_registry(cache.metrics)
        specs = [scenario_spec("reap"), scenario_spec("snapbpf")]
        versions = []
        runner = SweepRunner(cache, telemetry=hub)
        runner.run(specs, on_result=lambda s, r:
                   versions.append(hub.version))
        sweep = hub.state()["sweep"]
        assert sweep["unique"] == 2
        assert sweep["executed"] == 2
        assert sweep["remaining"] == 0
        assert sweep["done"] is True
        assert sweep["quarantined"] == 0
        # Versions advanced strictly during the run (live SSE feed).
        assert versions == sorted(versions) and len(set(versions)) == 2
        # The cache registry rode along into the snapshot.
        assert hub.state()["metrics"]["sweep_runs_total"] == 1

    def test_warm_rerun_reports_hits_not_execution(self):
        hub = TelemetryHub(wall_interval=0.0)
        cache = ResultCache()
        runner = SweepRunner(cache, telemetry=hub)
        spec = scenario_spec()
        runner.run([spec])
        runner.run([spec])  # warm: memory hit
        sweep = hub.state()["sweep"]
        assert sweep["memory_hits"] == 1
        assert sweep["executed"] == 0
        assert sweep["done"] is True
